# Empty compiler generated dependencies file for zelos_vs_zk.
# This may be replaced when dependencies are built.
