file(REMOVE_RECURSE
  "CMakeFiles/zelos_vs_zk.dir/zelos_vs_zk.cpp.o"
  "CMakeFiles/zelos_vs_zk.dir/zelos_vs_zk.cpp.o.d"
  "zelos_vs_zk"
  "zelos_vs_zk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zelos_vs_zk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
