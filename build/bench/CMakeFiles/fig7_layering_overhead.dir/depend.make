# Empty dependencies file for fig7_layering_overhead.
# This may be replaced when dependencies are built.
