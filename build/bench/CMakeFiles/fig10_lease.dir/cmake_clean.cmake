file(REMOVE_RECURSE
  "CMakeFiles/fig10_lease.dir/fig10_lease.cpp.o"
  "CMakeFiles/fig10_lease.dir/fig10_lease.cpp.o.d"
  "fig10_lease"
  "fig10_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
