# Empty compiler generated dependencies file for fig10_lease.
# This may be replaced when dependencies are built.
