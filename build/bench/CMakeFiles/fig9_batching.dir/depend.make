# Empty dependencies file for fig9_batching.
# This may be replaced when dependencies are built.
