file(REMOVE_RECURSE
  "CMakeFiles/fig9_batching.dir/fig9_batching.cpp.o"
  "CMakeFiles/fig9_batching.dir/fig9_batching.cpp.o.d"
  "fig9_batching"
  "fig9_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
