# Empty compiler generated dependencies file for fig11_observer_dashboard.
# This may be replaced when dependencies are built.
