file(REMOVE_RECURSE
  "CMakeFiles/fig11_observer_dashboard.dir/fig11_observer_dashboard.cpp.o"
  "CMakeFiles/fig11_observer_dashboard.dir/fig11_observer_dashboard.cpp.o.d"
  "fig11_observer_dashboard"
  "fig11_observer_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_observer_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
