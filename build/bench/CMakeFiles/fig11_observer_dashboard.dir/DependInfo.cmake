
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_observer_dashboard.cpp" "bench/CMakeFiles/fig11_observer_dashboard.dir/fig11_observer_dashboard.cpp.o" "gcc" "bench/CMakeFiles/fig11_observer_dashboard.dir/fig11_observer_dashboard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/delos_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/engines/CMakeFiles/delos_engines.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/delos_restore.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/delos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/localstore/CMakeFiles/delos_localstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sharedlog/CMakeFiles/delos_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/delos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/delos_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/delos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
