file(REMOVE_RECURSE
  "CMakeFiles/fig8_apply_utilization.dir/fig8_apply_utilization.cpp.o"
  "CMakeFiles/fig8_apply_utilization.dir/fig8_apply_utilization.cpp.o.d"
  "fig8_apply_utilization"
  "fig8_apply_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_apply_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
