# Empty dependencies file for fig8_apply_utilization.
# This may be replaced when dependencies are built.
