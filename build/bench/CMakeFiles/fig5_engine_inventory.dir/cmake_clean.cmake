file(REMOVE_RECURSE
  "CMakeFiles/fig5_engine_inventory.dir/fig5_engine_inventory.cpp.o"
  "CMakeFiles/fig5_engine_inventory.dir/fig5_engine_inventory.cpp.o.d"
  "fig5_engine_inventory"
  "fig5_engine_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_engine_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
