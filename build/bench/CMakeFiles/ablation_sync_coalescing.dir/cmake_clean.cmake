file(REMOVE_RECURSE
  "CMakeFiles/ablation_sync_coalescing.dir/ablation_sync_coalescing.cpp.o"
  "CMakeFiles/ablation_sync_coalescing.dir/ablation_sync_coalescing.cpp.o.d"
  "ablation_sync_coalescing"
  "ablation_sync_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
