# Empty dependencies file for ablation_sync_coalescing.
# This may be replaced when dependencies are built.
