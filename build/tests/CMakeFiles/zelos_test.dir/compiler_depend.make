# Empty compiler generated dependencies file for zelos_test.
# This may be replaced when dependencies are built.
