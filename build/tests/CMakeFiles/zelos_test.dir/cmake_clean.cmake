file(REMOVE_RECURSE
  "CMakeFiles/zelos_test.dir/zelos_test.cc.o"
  "CMakeFiles/zelos_test.dir/zelos_test.cc.o.d"
  "zelos_test"
  "zelos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zelos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
