# Empty dependencies file for zelos_test.
# This may be replaced when dependencies are built.
