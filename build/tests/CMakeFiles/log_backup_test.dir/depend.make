# Empty dependencies file for log_backup_test.
# This may be replaced when dependencies are built.
