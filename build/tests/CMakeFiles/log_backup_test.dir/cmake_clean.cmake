file(REMOVE_RECURSE
  "CMakeFiles/log_backup_test.dir/log_backup_test.cc.o"
  "CMakeFiles/log_backup_test.dir/log_backup_test.cc.o.d"
  "log_backup_test"
  "log_backup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_backup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
