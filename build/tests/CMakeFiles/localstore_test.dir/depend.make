# Empty dependencies file for localstore_test.
# This may be replaced when dependencies are built.
