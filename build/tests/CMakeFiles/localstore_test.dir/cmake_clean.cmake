file(REMOVE_RECURSE
  "CMakeFiles/localstore_test.dir/localstore_test.cc.o"
  "CMakeFiles/localstore_test.dir/localstore_test.cc.o.d"
  "localstore_test"
  "localstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
