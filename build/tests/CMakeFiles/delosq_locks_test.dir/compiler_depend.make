# Empty compiler generated dependencies file for delosq_locks_test.
# This may be replaced when dependencies are built.
