# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for delosq_locks_test.
