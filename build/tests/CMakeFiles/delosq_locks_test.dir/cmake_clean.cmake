file(REMOVE_RECURSE
  "CMakeFiles/delosq_locks_test.dir/delosq_locks_test.cc.o"
  "CMakeFiles/delosq_locks_test.dir/delosq_locks_test.cc.o.d"
  "delosq_locks_test"
  "delosq_locks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delosq_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
