file(REMOVE_RECURSE
  "CMakeFiles/base_engine_test.dir/base_engine_test.cc.o"
  "CMakeFiles/base_engine_test.dir/base_engine_test.cc.o.d"
  "base_engine_test"
  "base_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
