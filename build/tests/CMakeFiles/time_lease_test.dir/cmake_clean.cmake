file(REMOVE_RECURSE
  "CMakeFiles/time_lease_test.dir/time_lease_test.cc.o"
  "CMakeFiles/time_lease_test.dir/time_lease_test.cc.o.d"
  "time_lease_test"
  "time_lease_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_lease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
