# Empty dependencies file for time_lease_test.
# This may be replaced when dependencies are built.
