file(REMOVE_RECURSE
  "CMakeFiles/session_order_test.dir/session_order_test.cc.o"
  "CMakeFiles/session_order_test.dir/session_order_test.cc.o.d"
  "session_order_test"
  "session_order_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
