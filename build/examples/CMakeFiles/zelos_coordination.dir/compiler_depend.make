# Empty compiler generated dependencies file for zelos_coordination.
# This may be replaced when dependencies are built.
