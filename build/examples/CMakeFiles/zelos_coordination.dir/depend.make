# Empty dependencies file for zelos_coordination.
# This may be replaced when dependencies are built.
