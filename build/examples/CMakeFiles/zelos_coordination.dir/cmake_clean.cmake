file(REMOVE_RECURSE
  "CMakeFiles/zelos_coordination.dir/zelos_coordination.cpp.o"
  "CMakeFiles/zelos_coordination.dir/zelos_coordination.cpp.o.d"
  "zelos_coordination"
  "zelos_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zelos_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
