# Empty compiler generated dependencies file for queue_pipeline.
# This may be replaced when dependencies are built.
