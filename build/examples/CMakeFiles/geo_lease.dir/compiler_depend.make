# Empty compiler generated dependencies file for geo_lease.
# This may be replaced when dependencies are built.
