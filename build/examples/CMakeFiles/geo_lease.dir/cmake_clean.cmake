file(REMOVE_RECURSE
  "CMakeFiles/geo_lease.dir/geo_lease.cpp.o"
  "CMakeFiles/geo_lease.dir/geo_lease.cpp.o.d"
  "geo_lease"
  "geo_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
