# Empty dependencies file for table_analytics.
# This may be replaced when dependencies are built.
