file(REMOVE_RECURSE
  "CMakeFiles/table_analytics.dir/table_analytics.cpp.o"
  "CMakeFiles/table_analytics.dir/table_analytics.cpp.o.d"
  "table_analytics"
  "table_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
