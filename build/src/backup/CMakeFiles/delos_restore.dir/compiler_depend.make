# Empty compiler generated dependencies file for delos_restore.
# This may be replaced when dependencies are built.
