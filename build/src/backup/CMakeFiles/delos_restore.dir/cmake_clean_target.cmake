file(REMOVE_RECURSE
  "libdelos_restore.a"
)
