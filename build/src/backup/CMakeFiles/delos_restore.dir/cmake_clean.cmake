file(REMOVE_RECURSE
  "CMakeFiles/delos_restore.dir/restore.cc.o"
  "CMakeFiles/delos_restore.dir/restore.cc.o.d"
  "libdelos_restore.a"
  "libdelos_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
