file(REMOVE_RECURSE
  "CMakeFiles/delos_backup.dir/backup_store.cc.o"
  "CMakeFiles/delos_backup.dir/backup_store.cc.o.d"
  "libdelos_backup.a"
  "libdelos_backup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_backup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
