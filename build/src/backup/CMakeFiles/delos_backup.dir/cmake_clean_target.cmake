file(REMOVE_RECURSE
  "libdelos_backup.a"
)
