# Empty dependencies file for delos_backup.
# This may be replaced when dependencies are built.
