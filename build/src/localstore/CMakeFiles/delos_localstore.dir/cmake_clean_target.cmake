file(REMOVE_RECURSE
  "libdelos_localstore.a"
)
