# Empty compiler generated dependencies file for delos_localstore.
# This may be replaced when dependencies are built.
