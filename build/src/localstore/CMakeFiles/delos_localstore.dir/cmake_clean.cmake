file(REMOVE_RECURSE
  "CMakeFiles/delos_localstore.dir/localstore.cc.o"
  "CMakeFiles/delos_localstore.dir/localstore.cc.o.d"
  "libdelos_localstore.a"
  "libdelos_localstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_localstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
