file(REMOVE_RECURSE
  "CMakeFiles/delos_sharedlog.dir/chaos_log.cc.o"
  "CMakeFiles/delos_sharedlog.dir/chaos_log.cc.o.d"
  "CMakeFiles/delos_sharedlog.dir/inmemory_log.cc.o"
  "CMakeFiles/delos_sharedlog.dir/inmemory_log.cc.o.d"
  "CMakeFiles/delos_sharedlog.dir/quorum_loglet.cc.o"
  "CMakeFiles/delos_sharedlog.dir/quorum_loglet.cc.o.d"
  "CMakeFiles/delos_sharedlog.dir/virtual_log.cc.o"
  "CMakeFiles/delos_sharedlog.dir/virtual_log.cc.o.d"
  "libdelos_sharedlog.a"
  "libdelos_sharedlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_sharedlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
