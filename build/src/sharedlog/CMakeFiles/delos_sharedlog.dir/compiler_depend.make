# Empty compiler generated dependencies file for delos_sharedlog.
# This may be replaced when dependencies are built.
