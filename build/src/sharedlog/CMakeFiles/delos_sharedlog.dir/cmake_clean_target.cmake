file(REMOVE_RECURSE
  "libdelos_sharedlog.a"
)
