
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sharedlog/chaos_log.cc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/chaos_log.cc.o" "gcc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/chaos_log.cc.o.d"
  "/root/repo/src/sharedlog/inmemory_log.cc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/inmemory_log.cc.o" "gcc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/inmemory_log.cc.o.d"
  "/root/repo/src/sharedlog/quorum_loglet.cc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/quorum_loglet.cc.o" "gcc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/quorum_loglet.cc.o.d"
  "/root/repo/src/sharedlog/virtual_log.cc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/virtual_log.cc.o" "gcc" "src/sharedlog/CMakeFiles/delos_sharedlog.dir/virtual_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/delos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/delos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
