file(REMOVE_RECURSE
  "libdelos_net.a"
)
