# Empty dependencies file for delos_net.
# This may be replaced when dependencies are built.
