file(REMOVE_RECURSE
  "CMakeFiles/delos_net.dir/sim_network.cc.o"
  "CMakeFiles/delos_net.dir/sim_network.cc.o.d"
  "libdelos_net.a"
  "libdelos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
