file(REMOVE_RECURSE
  "CMakeFiles/delos_core.dir/base_engine.cc.o"
  "CMakeFiles/delos_core.dir/base_engine.cc.o.d"
  "CMakeFiles/delos_core.dir/cluster.cc.o"
  "CMakeFiles/delos_core.dir/cluster.cc.o.d"
  "CMakeFiles/delos_core.dir/entry.cc.o"
  "CMakeFiles/delos_core.dir/entry.cc.o.d"
  "CMakeFiles/delos_core.dir/stackable_engine.cc.o"
  "CMakeFiles/delos_core.dir/stackable_engine.cc.o.d"
  "libdelos_core.a"
  "libdelos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
