# Empty dependencies file for delos_core.
# This may be replaced when dependencies are built.
