
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/base_engine.cc" "src/core/CMakeFiles/delos_core.dir/base_engine.cc.o" "gcc" "src/core/CMakeFiles/delos_core.dir/base_engine.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/delos_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/delos_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/entry.cc" "src/core/CMakeFiles/delos_core.dir/entry.cc.o" "gcc" "src/core/CMakeFiles/delos_core.dir/entry.cc.o.d"
  "/root/repo/src/core/stackable_engine.cc" "src/core/CMakeFiles/delos_core.dir/stackable_engine.cc.o" "gcc" "src/core/CMakeFiles/delos_core.dir/stackable_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/delos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/localstore/CMakeFiles/delos_localstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sharedlog/CMakeFiles/delos_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/delos_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
