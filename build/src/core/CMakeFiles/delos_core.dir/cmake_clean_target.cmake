file(REMOVE_RECURSE
  "libdelos_core.a"
)
