file(REMOVE_RECURSE
  "libdelos_apps.a"
)
