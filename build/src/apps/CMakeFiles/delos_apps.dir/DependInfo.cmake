
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/delosq/delosq.cc" "src/apps/CMakeFiles/delos_apps.dir/delosq/delosq.cc.o" "gcc" "src/apps/CMakeFiles/delos_apps.dir/delosq/delosq.cc.o.d"
  "/root/repo/src/apps/delostable/query.cc" "src/apps/CMakeFiles/delos_apps.dir/delostable/query.cc.o" "gcc" "src/apps/CMakeFiles/delos_apps.dir/delostable/query.cc.o.d"
  "/root/repo/src/apps/delostable/table_db.cc" "src/apps/CMakeFiles/delos_apps.dir/delostable/table_db.cc.o" "gcc" "src/apps/CMakeFiles/delos_apps.dir/delostable/table_db.cc.o.d"
  "/root/repo/src/apps/delostable/value.cc" "src/apps/CMakeFiles/delos_apps.dir/delostable/value.cc.o" "gcc" "src/apps/CMakeFiles/delos_apps.dir/delostable/value.cc.o.d"
  "/root/repo/src/apps/locks/lock_service.cc" "src/apps/CMakeFiles/delos_apps.dir/locks/lock_service.cc.o" "gcc" "src/apps/CMakeFiles/delos_apps.dir/locks/lock_service.cc.o.d"
  "/root/repo/src/apps/zelos/session_monitor.cc" "src/apps/CMakeFiles/delos_apps.dir/zelos/session_monitor.cc.o" "gcc" "src/apps/CMakeFiles/delos_apps.dir/zelos/session_monitor.cc.o.d"
  "/root/repo/src/apps/zelos/zelos.cc" "src/apps/CMakeFiles/delos_apps.dir/zelos/zelos.cc.o" "gcc" "src/apps/CMakeFiles/delos_apps.dir/zelos/zelos.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/delos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/localstore/CMakeFiles/delos_localstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sharedlog/CMakeFiles/delos_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/delos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/delos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
