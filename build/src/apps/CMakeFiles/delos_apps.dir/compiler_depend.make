# Empty compiler generated dependencies file for delos_apps.
# This may be replaced when dependencies are built.
