file(REMOVE_RECURSE
  "CMakeFiles/delos_apps.dir/delosq/delosq.cc.o"
  "CMakeFiles/delos_apps.dir/delosq/delosq.cc.o.d"
  "CMakeFiles/delos_apps.dir/delostable/query.cc.o"
  "CMakeFiles/delos_apps.dir/delostable/query.cc.o.d"
  "CMakeFiles/delos_apps.dir/delostable/table_db.cc.o"
  "CMakeFiles/delos_apps.dir/delostable/table_db.cc.o.d"
  "CMakeFiles/delos_apps.dir/delostable/value.cc.o"
  "CMakeFiles/delos_apps.dir/delostable/value.cc.o.d"
  "CMakeFiles/delos_apps.dir/locks/lock_service.cc.o"
  "CMakeFiles/delos_apps.dir/locks/lock_service.cc.o.d"
  "CMakeFiles/delos_apps.dir/zelos/session_monitor.cc.o"
  "CMakeFiles/delos_apps.dir/zelos/session_monitor.cc.o.d"
  "CMakeFiles/delos_apps.dir/zelos/zelos.cc.o"
  "CMakeFiles/delos_apps.dir/zelos/zelos.cc.o.d"
  "libdelos_apps.a"
  "libdelos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
