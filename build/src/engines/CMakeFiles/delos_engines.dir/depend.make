# Empty dependencies file for delos_engines.
# This may be replaced when dependencies are built.
