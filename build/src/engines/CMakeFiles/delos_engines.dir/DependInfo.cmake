
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engines/batching_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/batching_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/batching_engine.cc.o.d"
  "/root/repo/src/engines/brain_doctor_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/brain_doctor_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/brain_doctor_engine.cc.o.d"
  "/root/repo/src/engines/compression_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/compression_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/compression_engine.cc.o.d"
  "/root/repo/src/engines/lease_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/lease_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/lease_engine.cc.o.d"
  "/root/repo/src/engines/log_backup_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/log_backup_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/log_backup_engine.cc.o.d"
  "/root/repo/src/engines/observer_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/observer_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/observer_engine.cc.o.d"
  "/root/repo/src/engines/session_order_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/session_order_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/session_order_engine.cc.o.d"
  "/root/repo/src/engines/stacks.cc" "src/engines/CMakeFiles/delos_engines.dir/stacks.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/stacks.cc.o.d"
  "/root/repo/src/engines/time_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/time_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/time_engine.cc.o.d"
  "/root/repo/src/engines/view_tracking_engine.cc" "src/engines/CMakeFiles/delos_engines.dir/view_tracking_engine.cc.o" "gcc" "src/engines/CMakeFiles/delos_engines.dir/view_tracking_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/delos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/backup/CMakeFiles/delos_backup.dir/DependInfo.cmake"
  "/root/repo/build/src/localstore/CMakeFiles/delos_localstore.dir/DependInfo.cmake"
  "/root/repo/build/src/sharedlog/CMakeFiles/delos_sharedlog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/delos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/delos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
