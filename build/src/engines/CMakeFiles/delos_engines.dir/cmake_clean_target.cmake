file(REMOVE_RECURSE
  "libdelos_engines.a"
)
