file(REMOVE_RECURSE
  "CMakeFiles/delos_engines.dir/batching_engine.cc.o"
  "CMakeFiles/delos_engines.dir/batching_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/brain_doctor_engine.cc.o"
  "CMakeFiles/delos_engines.dir/brain_doctor_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/compression_engine.cc.o"
  "CMakeFiles/delos_engines.dir/compression_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/lease_engine.cc.o"
  "CMakeFiles/delos_engines.dir/lease_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/log_backup_engine.cc.o"
  "CMakeFiles/delos_engines.dir/log_backup_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/observer_engine.cc.o"
  "CMakeFiles/delos_engines.dir/observer_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/session_order_engine.cc.o"
  "CMakeFiles/delos_engines.dir/session_order_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/stacks.cc.o"
  "CMakeFiles/delos_engines.dir/stacks.cc.o.d"
  "CMakeFiles/delos_engines.dir/time_engine.cc.o"
  "CMakeFiles/delos_engines.dir/time_engine.cc.o.d"
  "CMakeFiles/delos_engines.dir/view_tracking_engine.cc.o"
  "CMakeFiles/delos_engines.dir/view_tracking_engine.cc.o.d"
  "libdelos_engines.a"
  "libdelos_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
