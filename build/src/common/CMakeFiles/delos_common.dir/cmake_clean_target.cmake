file(REMOVE_RECURSE
  "libdelos_common.a"
)
