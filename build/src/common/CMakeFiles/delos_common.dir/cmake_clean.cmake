file(REMOVE_RECURSE
  "CMakeFiles/delos_common.dir/checksum.cc.o"
  "CMakeFiles/delos_common.dir/checksum.cc.o.d"
  "CMakeFiles/delos_common.dir/clock.cc.o"
  "CMakeFiles/delos_common.dir/clock.cc.o.d"
  "CMakeFiles/delos_common.dir/compress.cc.o"
  "CMakeFiles/delos_common.dir/compress.cc.o.d"
  "CMakeFiles/delos_common.dir/logging.cc.o"
  "CMakeFiles/delos_common.dir/logging.cc.o.d"
  "CMakeFiles/delos_common.dir/metrics.cc.o"
  "CMakeFiles/delos_common.dir/metrics.cc.o.d"
  "libdelos_common.a"
  "libdelos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
