# Empty dependencies file for delos_common.
# This may be replaced when dependencies are built.
