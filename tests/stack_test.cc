// Tests for StackableEngine semantics: header dispatch, control entries,
// nested-transaction exception layering, the two-phase enable/disable
// protocol, and trim min-relay. Includes a faithful implementation of the
// paper's Figure 4 BlockingEngine as a test engine.
#include <gtest/gtest.h>

#include "src/core/base_engine.h"
#include "src/core/stackable_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// The example engine from paper Figure 4: a control command toggles a
// replicated "blocked" flag; while blocked, application entries are filtered
// with an exception.
class BlockedException : public DeterministicError {
 public:
  BlockedException() : DeterministicError("blocked") {}
};

class BlockingEngine : public StackableEngine {
 public:
  BlockingEngine(IEngine* downstream, LocalStore* store)
      : StackableEngine("blocking", downstream, store) {}

  void ToggleBlock() { ProposeControl(kMsgTypeToggle, "").Get(); }

 protected:
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    const bool blocked = txn.Get(space().Key("blocked")).value_or("False") == "True";
    if (blocked) {
      throw BlockedException();
    }
    return CallUpstream(txn, entry, pos);
  }

  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override {
    if (header.msgtype == kMsgTypeToggle) {
      const std::string key = space().Key("blocked");
      txn.Put(key, txn.Get(key).value_or("False") == "True" ? "False" : "True");
    }
    return std::any(Unit{});
  }

 private:
  static constexpr uint64_t kMsgTypeToggle = 1;
};

// Engine that writes a marker key for every data entry and can be told to
// throw from its own apply logic.
class MarkerEngine : public StackableEngine {
 public:
  MarkerEngine(std::string name, IEngine* downstream, LocalStore* store)
      : StackableEngine(std::move(name), downstream, store) {}

  void set_throw_on_apply(bool value) { throw_on_apply_ = value; }
  int post_applies() const { return post_applies_; }

 protected:
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put(space().Key("seen/" + std::to_string(pos)), "1");
    if (throw_on_apply_) {
      throw DeterministicError(name() + " own failure");
    }
    return CallUpstream(txn, entry, pos);
  }
  void PostApplyData(const LogEntry& entry, LogPos pos) override {
    ++post_applies_;
    ForwardPostApply(entry, pos);
  }

 private:
  bool throw_on_apply_ = false;
  int post_applies_ = 0;
};

class RecordingApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    if (entry.payload == "app-throws") {
      txn.Put("app/partial", "1");
      throw DeterministicError("app failure");
    }
    txn.Put("app/" + std::to_string(pos), entry.payload);
    return std::any(entry.payload);
  }
  void PostApply(const LogEntry& entry, LogPos pos) override { ++post_applies_; }
  int post_applies() const { return post_applies_; }

 private:
  int post_applies_ = 0;
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

class StackTest : public testing::Test {
 protected:
  void BuildStack() {
    base_ = std::make_unique<BaseEngine>(log_, &store_, BaseEngineOptions{});
    lower_ = std::make_unique<MarkerEngine>("lower", base_.get(), &store_);
    blocking_ = std::make_unique<BlockingEngine>(lower_.get(), &store_);
    upper_ = std::make_unique<MarkerEngine>("upper", blocking_.get(), &store_);
    upper_->RegisterUpcall(&app_);
    base_->Start();
  }

  void TearDown() override {
    if (base_ != nullptr) {
      base_->Stop();
    }
  }

  std::shared_ptr<InMemoryLog> log_ = std::make_shared<InMemoryLog>();
  LocalStore store_;
  RecordingApplicator app_;
  std::unique_ptr<BaseEngine> base_;
  std::unique_ptr<MarkerEngine> lower_;
  std::unique_ptr<BlockingEngine> blocking_;
  std::unique_ptr<MarkerEngine> upper_;
};

TEST_F(StackTest, EntryFlowsThroughAllLayers) {
  BuildStack();
  std::any result = upper_->Propose(PayloadEntry("hello")).Get();
  EXPECT_EQ(std::any_cast<std::string>(result), "hello");
  ROTxn snap = store_.Snapshot();
  EXPECT_TRUE(snap.Get("e/lower/seen/1").has_value());
  EXPECT_TRUE(snap.Get("e/upper/seen/1").has_value());
  EXPECT_TRUE(snap.Get("app/1").has_value());
  EXPECT_EQ(app_.post_applies(), 1);
  EXPECT_EQ(lower_->post_applies(), 1);
}

TEST_F(StackTest, BlockingEngineFiltersWhileBlocked) {
  BuildStack();
  blocking_->ToggleBlock();
  EXPECT_THROW(upper_->Propose(PayloadEntry("dropped")).Get(), BlockedException);
  ROTxn snap = store_.Snapshot();
  // Layers below the thrower saw the entry; layers above did not.
  EXPECT_TRUE(snap.Get("e/lower/seen/2").has_value());
  EXPECT_FALSE(snap.Get("e/upper/seen/2").has_value());
  EXPECT_FALSE(snap.Get("app/2").has_value());

  blocking_->ToggleBlock();
  EXPECT_EQ(std::any_cast<std::string>(upper_->Propose(PayloadEntry("passes")).Get()), "passes");
}

TEST_F(StackTest, AppExceptionPreservesEngineWrites) {
  BuildStack();
  EXPECT_THROW(upper_->Propose(PayloadEntry("app-throws")).Get(), DeterministicError);
  ROTxn snap = store_.Snapshot();
  // The app's partial write rolled back; every engine's write survived.
  EXPECT_FALSE(snap.Get("app/partial").has_value());
  EXPECT_TRUE(snap.Get("e/lower/seen/1").has_value());
  EXPECT_TRUE(snap.Get("e/upper/seen/1").has_value());
  // postApply: the app must not get one; the engines do.
  EXPECT_EQ(app_.post_applies(), 0);
  EXPECT_EQ(lower_->post_applies(), 1);
  EXPECT_EQ(upper_->post_applies(), 1);
}

TEST_F(StackTest, MiddleEngineOwnFailureRollsBackItsWrites) {
  BuildStack();
  upper_->set_throw_on_apply(true);
  EXPECT_THROW(upper_->Propose(PayloadEntry("x")).Get(), DeterministicError);
  ROTxn snap = store_.Snapshot();
  // upper's own write rolled back; lower's write preserved.
  EXPECT_FALSE(snap.Get("e/upper/seen/1").has_value());
  EXPECT_TRUE(snap.Get("e/lower/seen/1").has_value());
  EXPECT_FALSE(snap.Get("app/1").has_value());
}

TEST_F(StackTest, ControlEntriesDoNotReachUpperLayers) {
  BuildStack();
  blocking_->ToggleBlock();  // a control entry at position 1
  ROTxn snap = store_.Snapshot();
  // lower (below blocking) processed it as data; upper and app never saw it.
  EXPECT_TRUE(snap.Get("e/lower/seen/1").has_value());
  EXPECT_FALSE(snap.Get("e/upper/seen/1").has_value());
  EXPECT_FALSE(snap.Get("app/1").has_value());
}

TEST_F(StackTest, TrimConstraintIsMinOfAllOpinions) {
  BuildStack();
  for (int i = 0; i < 10; ++i) {
    upper_->Propose(PayloadEntry("e")).Get();
  }
  base_->FlushNow();
  // The app (via the top) allows trimming to 8.
  upper_->SetTrimPrefix(8);
  base_->TrimNow();
  EXPECT_EQ(log_->trim_prefix(), 8u);
}

TEST_F(StackTest, DisabledEngineDoesNotMutateButPassesThrough) {
  BuildStack();
  upper_->DisableViaLog();
  upper_->Propose(PayloadEntry("while-disabled")).Get();
  ROTxn snap = store_.Snapshot();
  EXPECT_FALSE(snap.Get("e/upper/seen/2").has_value());  // no state change
  EXPECT_TRUE(snap.Get("app/2").has_value());            // entry still flowed up
  EXPECT_FALSE(upper_->enabled());

  upper_->EnableViaLog();
  EXPECT_TRUE(upper_->enabled());
  upper_->Propose(PayloadEntry("after-enable")).Get();
  EXPECT_TRUE(store_.Snapshot().Get("e/upper/seen/4").has_value());
}

TEST_F(StackTest, EnableFlagRecoversFromStore) {
  BuildStack();
  upper_->DisableViaLog();
  EXPECT_FALSE(upper_->enabled());
  // A rebuilt engine on the same store starts disabled (the flag is state,
  // not config).
  MarkerEngine rebuilt("upper", blocking_.get(), &store_);
  EXPECT_FALSE(rebuilt.enabled());
  // Restore the original upcall wiring for teardown.
  blocking_->RegisterUpcall(upper_.get());
}

// Two-phase insertion across a two-server cluster: the new engine is present
// but disabled on both servers, then enabled via a single log command; both
// servers flip at the same log position, keeping state deterministic.
TEST(TwoPhaseInsertionTest, EnableViaLogIsConsistentAcrossServers) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store_a;
  LocalStore store_b;
  RecordingApplicator app_a;
  RecordingApplicator app_b;

  BaseEngineOptions options_a;
  options_a.server_id = "a";
  BaseEngine base_a(log, &store_a, options_a);
  BaseEngineOptions options_b;
  options_b.server_id = "b";
  BaseEngine base_b(log, &store_b, options_b);

  StackableEngineOptions disabled;
  disabled.start_enabled = false;
  StackableEngine engine_a("probe", &base_a, &store_a, disabled);
  StackableEngine engine_b("probe", &base_b, &store_b, disabled);
  engine_a.RegisterUpcall(&app_a);
  engine_b.RegisterUpcall(&app_b);
  base_a.Start();
  base_b.Start();

  engine_a.Propose(PayloadEntry("pre")).Get();
  engine_a.EnableViaLog();
  engine_a.Propose(PayloadEntry("post")).Get();
  base_b.Sync().Get();
  EXPECT_TRUE(engine_a.enabled());
  EXPECT_TRUE(engine_b.enabled());
  EXPECT_EQ(store_a.Checksum(), store_b.Checksum());

  base_a.Stop();
  base_b.Stop();
}

}  // namespace
}  // namespace delos
