// Zelos (ZooKeeper clone) tests: znode tree, versions, ephemerals,
// sequentials, sessions, watches (postApply soft state), multi-op atomicity,
// and full-stack replication with session ordering + batching.
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/zelos/zelos.h"
#include "src/core/base_engine.h"
#include "src/engines/stacks.h"
#include "src/sharedlog/chaos_log.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos::zelos {
namespace {

TEST(ZelosPathTest, Validation) {
  EXPECT_TRUE(IsValidPath("/"));
  EXPECT_TRUE(IsValidPath("/a"));
  EXPECT_TRUE(IsValidPath("/a/b/c"));
  EXPECT_FALSE(IsValidPath(""));
  EXPECT_FALSE(IsValidPath("a"));
  EXPECT_FALSE(IsValidPath("/a/"));
  EXPECT_FALSE(IsValidPath("/a//b"));
}

TEST(ZelosPathTest, ParentAndBase) {
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(ParentPath("/a/b"), "/a");
  EXPECT_EQ(BaseName("/a/b"), "b");
  EXPECT_EQ(BaseName("/a"), "a");
}

class ZelosTest : public testing::Test {
 protected:
  ZelosTest() {
    log_ = std::make_shared<InMemoryLog>();
    base_ = std::make_unique<BaseEngine>(log_, &store_, BaseEngineOptions{});
    applicator_.set_metrics(&metrics_);
    base_->RegisterUpcall(&applicator_);
    base_->Start();
    client_ = std::make_unique<ZelosClient>(base_.get(), &applicator_);
    session_ = client_->CreateSession();
  }
  ~ZelosTest() override { base_->Stop(); }

  std::shared_ptr<InMemoryLog> log_;
  LocalStore store_;
  MetricsRegistry metrics_;
  ZelosApplicator applicator_;
  std::unique_ptr<BaseEngine> base_;
  std::unique_ptr<ZelosClient> client_;
  SessionId session_ = 0;
};

TEST_F(ZelosTest, CreateGetSetDelete) {
  EXPECT_EQ(client_->Create(session_, "/app", "v0"), "/app");
  auto data = client_->GetData("/app");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->first, "v0");
  EXPECT_EQ(data->second.version, 0);

  EXPECT_EQ(client_->SetData("/app", "v1"), 1);
  data = client_->GetData("/app");
  EXPECT_EQ(data->first, "v1");
  EXPECT_EQ(data->second.version, 1);

  client_->Delete("/app");
  EXPECT_FALSE(client_->Exists("/app").has_value());
}

TEST_F(ZelosTest, ZkErrorSemantics) {
  EXPECT_FALSE(client_->GetData("/missing").has_value());  // reads do not throw
  client_->Create(session_, "/a", "x");
  EXPECT_THROW(client_->Create(session_, "/a", "dup"), NodeExistsError);
  EXPECT_THROW(client_->Create(session_, "/deep/child", "x"), NoNodeError);
  EXPECT_THROW(client_->SetData("/a", "y", /*expected_version=*/5), BadVersionError);
  EXPECT_THROW(client_->Delete("/a", /*expected_version=*/5), BadVersionError);
  client_->Create(session_, "/a/b", "x");
  EXPECT_THROW(client_->Delete("/a"), NotEmptyError);
}

TEST_F(ZelosTest, GetChildrenAndCversion) {
  client_->Create(session_, "/dir", "");
  client_->Create(session_, "/dir/a", "");
  client_->Create(session_, "/dir/b", "");
  auto children = client_->GetChildren("/dir");
  EXPECT_EQ(children, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(client_->Exists("/dir")->cversion, 2);
  client_->Delete("/dir/a");
  EXPECT_EQ(client_->GetChildren("/dir"), std::vector<std::string>{"b"});
  EXPECT_EQ(client_->Exists("/dir")->cversion, 3);
}

TEST_F(ZelosTest, SequentialNodesGetIncreasingSuffixes) {
  client_->Create(session_, "/q", "");
  const std::string p1 = client_->Create(session_, "/q/item-", "", kSequential);
  const std::string p2 = client_->Create(session_, "/q/item-", "", kSequential);
  EXPECT_EQ(p1, "/q/item-0000000000");
  EXPECT_EQ(p2, "/q/item-0000000001");
  EXPECT_LT(p1, p2);
}

TEST_F(ZelosTest, EphemeralsDieWithSession) {
  const SessionId other = client_->CreateSession();
  client_->Create(other, "/eph", "x", kEphemeral);
  client_->Create(session_, "/persistent", "x");
  EXPECT_TRUE(client_->Exists("/eph").has_value());
  EXPECT_EQ(client_->Exists("/eph")->ephemeral_owner, other);

  client_->CloseSession(other);
  EXPECT_FALSE(client_->Exists("/eph").has_value());
  EXPECT_TRUE(client_->Exists("/persistent").has_value());
  // Ops on the dead session now fail.
  EXPECT_THROW(client_->Create(other, "/more", "x", kEphemeral), SessionExpiredError);
}

TEST_F(ZelosTest, OpenSessionsGaugeTracksLifecycle) {
  Gauge* gauge = metrics_.GetGauge("zelos.open_sessions");
  EXPECT_EQ(gauge->value(), 1);  // the fixture's session
  const SessionId other = client_->CreateSession();
  EXPECT_EQ(gauge->value(), 2);
  client_->CloseSession(other);
  EXPECT_EQ(gauge->value(), 1);
  // Closing twice is idempotent: the gauge must not double-decrement.
  client_->CloseSession(other);
  EXPECT_EQ(gauge->value(), 1);
}

TEST_F(ZelosTest, EphemeralsCannotHaveChildren) {
  client_->Create(session_, "/eph", "x", kEphemeral);
  EXPECT_THROW(client_->Create(session_, "/eph/child", "x"), NoChildrenForEphemeralsError);
}

TEST_F(ZelosTest, ExpireSessionActsLikeClose) {
  const SessionId victim = client_->CreateSession();
  client_->Create(victim, "/lock", "x", kEphemeral);
  client_->ExpireSession(victim);
  EXPECT_FALSE(client_->Exists("/lock").has_value());
}

TEST_F(ZelosTest, DataWatchFiresOnceOnChange) {
  client_->Create(session_, "/watched", "v0");
  std::atomic<int> events{0};
  WatchEvent::Type last_type = WatchEvent::Type::kCreated;
  client_->GetData("/watched", [&](const WatchEvent& event) {
    last_type = event.type;
    events.fetch_add(1);
  });
  client_->SetData("/watched", "v1");
  EXPECT_EQ(events.load(), 1);
  EXPECT_EQ(last_type, WatchEvent::Type::kDataChanged);
  // One-shot: a second change does not fire again.
  client_->SetData("/watched", "v2");
  EXPECT_EQ(events.load(), 1);
}

TEST_F(ZelosTest, ExistsWatchFiresOnCreate) {
  std::atomic<int> events{0};
  client_->Exists("/future", [&](const WatchEvent& event) {
    EXPECT_EQ(event.type, WatchEvent::Type::kCreated);
    events.fetch_add(1);
  });
  client_->Create(session_, "/future", "x");
  EXPECT_EQ(events.load(), 1);
}

TEST_F(ZelosTest, ChildWatchFiresOnChildChange) {
  client_->Create(session_, "/dir", "");
  std::atomic<int> events{0};
  client_->GetChildren("/dir", [&](const WatchEvent& event) {
    EXPECT_EQ(event.type, WatchEvent::Type::kChildrenChanged);
    events.fetch_add(1);
  });
  client_->Create(session_, "/dir/kid", "");
  EXPECT_EQ(events.load(), 1);
}

TEST_F(ZelosTest, DataWatchFiresOnDelete) {
  client_->Create(session_, "/doomed", "x");
  std::atomic<int> events{0};
  client_->GetData("/doomed", [&](const WatchEvent& event) {
    EXPECT_EQ(event.type, WatchEvent::Type::kDeleted);
    events.fetch_add(1);
  });
  client_->Delete("/doomed");
  EXPECT_EQ(events.load(), 1);
}

TEST_F(ZelosTest, MultiIsAtomic) {
  client_->Create(session_, "/m", "");
  std::vector<ZelosClient::Op> ops;
  ops.push_back({ZelosClient::Op::Kind::kCreate, "/m/a", "1", kPersistent, -1, session_});
  ops.push_back({ZelosClient::Op::Kind::kCreate, "/m/b", "2", kPersistent, -1, session_});
  auto results = client_->Multi(ops);
  EXPECT_EQ(results[0], "/m/a");
  EXPECT_TRUE(client_->Exists("/m/b").has_value());

  // A failing op in the middle rolls back the whole multi.
  ops.clear();
  ops.push_back({ZelosClient::Op::Kind::kCreate, "/m/c", "3", kPersistent, -1, session_});
  ops.push_back({ZelosClient::Op::Kind::kSetData, "/m/missing", "x", 0, -1, session_});
  EXPECT_THROW(client_->Multi(ops), NoNodeError);
  EXPECT_FALSE(client_->Exists("/m/c").has_value());
}

TEST_F(ZelosTest, MultiCheckVersionGuardsTransaction) {
  client_->Create(session_, "/cfg", "v0");
  std::vector<ZelosClient::Op> ops;
  ops.push_back({ZelosClient::Op::Kind::kCheckVersion, "/cfg", "", 0, /*version=*/0, session_});
  ops.push_back({ZelosClient::Op::Kind::kSetData, "/cfg", "v1", 0, -1, session_});
  client_->Multi(ops);
  EXPECT_EQ(client_->GetData("/cfg")->first, "v1");

  ops[0].version = 0;  // stale now (version is 1)
  EXPECT_THROW(client_->Multi(ops), BadVersionError);
}

// Full production-shaped Zelos stack (Batching + SessionOrder + ViewTracking
// + BrainDoctor + Base) on three servers over one log, with injected
// reordering underneath — the paper's deployment shape.
TEST(ZelosStackTest, ThreeServerConvergenceUnderChaoticLog) {
  auto inner = std::make_shared<InMemoryLog>();
  auto chaos = std::make_shared<ReorderingLog>(inner, 0.1, 500);

  struct Server {
    LocalStore store;
    ZelosApplicator app;
    std::unique_ptr<BaseEngine> base;
    std::unique_ptr<SessionOrderEngine> so;
    std::unique_ptr<BatchingEngine> batching;
    std::unique_ptr<ZelosClient> client;
  };
  std::vector<std::unique_ptr<Server>> servers;
  for (int i = 0; i < 3; ++i) {
    auto server = std::make_unique<Server>();
    BaseEngineOptions base_options;
    base_options.server_id = "server" + std::to_string(i);
    // Only server0 proposes through the chaotic wrapper; followers read the
    // real log.
    std::shared_ptr<ISharedLog> log = (i == 0) ? std::static_pointer_cast<ISharedLog>(chaos)
                                               : std::static_pointer_cast<ISharedLog>(inner);
    server->base = std::make_unique<BaseEngine>(log, &server->store, base_options);
    SessionOrderEngine::Options so_options;
    so_options.server_id = base_options.server_id;
    server->so =
        std::make_unique<SessionOrderEngine>(so_options, server->base.get(), &server->store);
    BatchingEngine::Options batch_options;
    batch_options.max_batch_entries = 4;
    batch_options.max_delay_micros = 300;
    server->batching =
        std::make_unique<BatchingEngine>(batch_options, server->so.get(), &server->store);
    server->batching->RegisterUpcall(&server->app);
    server->base->Start();
    server->client = std::make_unique<ZelosClient>(server->batching.get(), &server->app);
    servers.push_back(std::move(server));
  }

  ZelosClient& writer = *servers[0]->client;
  const SessionId session = writer.CreateSession();
  writer.Create(session, "/root-node", "");
  std::vector<std::thread> client_threads;
  for (int t = 0; t < 3; ++t) {
    client_threads.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        writer.Create(session, "/root-node/n" + std::to_string(t) + "-" + std::to_string(i),
                      "data");
      }
    });
  }
  for (auto& thread : client_threads) {
    thread.join();
  }
  // All servers converge to identical state.
  for (auto& server : servers) {
    server->base->Sync().Get();
  }
  EXPECT_EQ(servers[0]->client->GetChildren("/root-node").size(), 45u);
  EXPECT_EQ(servers[0]->store.Checksum(), servers[1]->store.Checksum());
  EXPECT_EQ(servers[1]->store.Checksum(), servers[2]->store.Checksum());

  for (auto& server : servers) {
    server->base->Stop();
  }
}

}  // namespace
}  // namespace delos::zelos
