// LogBackupEngine + Point-in-Time restore tests: segment bidding through the
// log, upload, trim gating, and restore (full and point-in-time, with and
// without snapshots).
#include <gtest/gtest.h>

#include <thread>

#include "src/backup/restore.h"
#include "src/core/base_engine.h"
#include "src/engines/log_backup_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

class KvApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    if (!entry.payload.empty()) {
      txn.Put("kv/" + entry.payload, std::to_string(pos));
    }
    return std::any(Unit{});
  }
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

struct LbServer {
  LbServer(const std::string& id, std::shared_ptr<ISharedLog> log, BackupStore* backup,
           uint64_t segment_size) {
    BaseEngineOptions base_options;
    base_options.server_id = id;
    base = std::make_unique<BaseEngine>(log, &store, base_options);
    LogBackupEngine::Options options;
    options.server_id = id;
    options.backup_store = backup;
    options.log = base->shared_log();
    options.segment_size = segment_size;
    lb = std::make_unique<LogBackupEngine>(options, base.get(), &store);
    lb->RegisterUpcall(&app);
    base->Start();
  }
  ~LbServer() {
    base->Stop();
    lb.reset();
  }

  LocalStore store;
  KvApplicator app;
  std::unique_ptr<BaseEngine> base;
  std::unique_ptr<LogBackupEngine> lb;
};

void WaitForBackedPrefix(LogBackupEngine* engine, LogPos target, int64_t timeout_ms = 5000) {
  const int64_t deadline = RealClock::Instance()->NowMicros() + timeout_ms * 1000;
  while (engine->BackedUpPrefix() < target &&
         RealClock::Instance()->NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(LogBackupTest, SegmentsUploadedAndPrefixAdvances) {
  auto log = std::make_shared<InMemoryLog>();
  InMemoryBackupStore backup;
  LbServer server("a", log, &backup, /*segment_size=*/4);
  for (int i = 0; i < 13; ++i) {
    server.lb->Propose(PayloadEntry("k" + std::to_string(i))).Get();
  }
  WaitForBackedPrefix(server.lb.get(), 8);
  EXPECT_GE(server.lb->BackedUpPrefix(), 8u);
  const auto objects = backup.ListObjects(LogBackupEngine::kSegmentPrefix);
  EXPECT_GE(objects.size(), 2u);
}

TEST(LogBackupTest, BidsAreExclusivePerSegment) {
  auto log = std::make_shared<InMemoryLog>();
  InMemoryBackupStore backup;
  LbServer a("a", log, &backup, 4);
  LbServer b("b", log, &backup, 4);
  for (int i = 0; i < 20; ++i) {
    (i % 2 == 0 ? a : b).lb->Propose(PayloadEntry("k" + std::to_string(i))).Get();
  }
  a.base->Sync().Get();
  b.base->Sync().Get();
  WaitForBackedPrefix(a.lb.get(), 16);
  // Both servers agree on the backed-up prefix (replicated bid state) —
  // compared once both have applied the same log prefix. Background uploads
  // keep appending COMPLETE entries, so quiesce first.
  const int64_t deadline = RealClock::Instance()->NowMicros() + 5'000'000;
  while (RealClock::Instance()->NowMicros() < deadline) {
    a.base->Sync().Get();
    b.base->Sync().Get();
    if (a.base->applied_position() == b.base->applied_position() &&
        a.lb->BackedUpPrefix() == b.lb->BackedUpPrefix()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(a.lb->BackedUpPrefix(), b.lb->BackedUpPrefix());
  EXPECT_GE(a.lb->BackedUpPrefix(), 16u);
}

TEST(LogBackupTest, TrimWaitsForBackup) {
  auto log = std::make_shared<InMemoryLog>();
  InMemoryBackupStore backup;
  LbServer server("a", log, &backup, /*segment_size=*/4);
  for (int i = 0; i < 10; ++i) {
    server.lb->Propose(PayloadEntry("k" + std::to_string(i))).Get();
  }
  server.base->FlushNow();
  // The app allows trimming everything...
  server.lb->SetTrimPrefix(10);
  WaitForBackedPrefix(server.lb.get(), 8);
  server.base->TrimNow();
  // ...but only the backed-up prefix may actually be trimmed.
  EXPECT_LE(log->trim_prefix(), server.lb->BackedUpPrefix());
  EXPECT_GT(log->trim_prefix(), 0u);
}

// Replays positions [1, upto] of `source` through a fresh Base+KvApplicator
// and returns the resulting store checksum — the ground truth a restore of
// that prefix must match.
uint64_t ReferenceChecksum(ISharedLog* source, LogPos upto) {
  auto replay_log = std::make_shared<InMemoryLog>();
  for (const LogRecord& record : source->ReadRange(1, upto)) {
    replay_log->Append(record.payload).Get();
  }
  LocalStore store;
  KvApplicator app;
  BaseEngine base(replay_log, &store, BaseEngineOptions{});
  base.RegisterUpcall(&app);
  base.Start();
  base.Sync().Get();
  const uint64_t checksum = store.Checksum();
  base.Stop();
  return checksum;
}

TEST(LogBackupTest, RestoreRebuildsStateAtBackedPrefix) {
  auto log = std::make_shared<InMemoryLog>();
  InMemoryBackupStore backup;
  {
    LbServer server("a", log, &backup, /*segment_size=*/4);
    for (int i = 0; i < 12; ++i) {
      server.lb->Propose(PayloadEntry("k" + std::to_string(i))).Get();
    }
    WaitForBackedPrefix(server.lb.get(), 12);
  }

  RestoreOptions options;
  auto result = RestoreFromBackup(backup, options, [](ClusterServer& server) {
    static KvApplicator app;
    server.base()->RegisterUpcall(&app);
  });
  EXPECT_GE(result.restored_to, 12u);
  // The restored store must equal a direct replay of the same log prefix
  // (modulo engine-private keys, which the reference stack also lacks).
  EXPECT_EQ(result.server->store()->Checksum(),
            ReferenceChecksum(log.get(), result.restored_to));
  result.server->Stop();
}

TEST(LogBackupTest, PointInTimeRestoreStopsAtTarget) {
  auto log = std::make_shared<InMemoryLog>();
  InMemoryBackupStore backup;
  {
    LbServer server("a", log, &backup, /*segment_size=*/4);
    for (int i = 0; i < 12; ++i) {
      server.lb->Propose(PayloadEntry("k" + std::to_string(i))).Get();
    }
    WaitForBackedPrefix(server.lb.get(), 12);
  }
  RestoreOptions options;
  options.target_pos = 5;
  auto result = RestoreFromBackup(backup, options, [](ClusterServer& server) {
    static KvApplicator app;
    server.base()->RegisterUpcall(&app);
  });
  EXPECT_EQ(result.restored_to, 5u);
  ROTxn snap = result.server->store()->Snapshot();
  // Entries at positions 1..5 applied, later ones absent.
  EXPECT_TRUE(snap.Get("kv/k0").has_value());
  EXPECT_FALSE(snap.Get("kv/k11").has_value());
  result.server->Stop();
}

TEST(SnapshotBackupTest, SnapshotPlusSuffixReplayMatchesFullReplay) {
  const std::string ckpt = testing::TempDir() + "/snapbackup.ckpt";
  std::filesystem::remove(ckpt);
  auto log = std::make_shared<InMemoryLog>();
  InMemoryBackupStore backup;
  LogPos snapshot_pos = 0;
  LogPos last_data_pos = 0;
  {
    auto store = LocalStore::Open({ckpt});
    KvApplicator app;
    BaseEngine base(log, store.get(), BaseEngineOptions{});
    LogBackupEngine::Options lb_options;
    lb_options.server_id = "a";
    lb_options.backup_store = &backup;
    lb_options.log = base.shared_log();
    lb_options.segment_size = 4;
    LogBackupEngine lb(lb_options, &base, store.get());
    lb.RegisterUpcall(&app);
    base.Start();
    LogEntry entry;
    for (int i = 0; i < 6; ++i) {
      entry.payload = "k" + std::to_string(i);
      lb.Propose(entry).Get();
    }
    SnapshotBackupManager manager(&backup, ckpt, &lb);
    snapshot_pos = manager.BackupNow(&base);
    for (int i = 6; i < 12; ++i) {
      entry.payload = "k" + std::to_string(i);
      lb.Propose(entry).Get();
    }
    last_data_pos = base.applied_position();
    // Filler traffic until the segment containing the last data entry is
    // backed up.
    entry.payload = "";
    while (lb.BackedUpPrefix() < last_data_pos) {
      lb.Propose(entry).Get();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    base.Stop();
  }
  EXPECT_GE(snapshot_pos, 6u);

  const auto kv_builder = [](ClusterServer& server) {
    static KvApplicator app;
    server.base()->RegisterUpcall(&app);
  };
  // Restore the same target twice: once by replaying the whole log backup,
  // once from the snapshot plus the suffix. The application state must
  // agree.
  auto full = RestoreFromBackup(backup, RestoreOptions{}, kv_builder);
  RestoreOptions snap_options;
  snap_options.use_snapshot = true;
  snap_options.scratch_checkpoint_path = testing::TempDir() + "/snaprestore.ckpt";
  auto snapped = RestoreFromBackup(backup, snap_options, kv_builder);

  EXPECT_EQ(full.restored_to, snapped.restored_to);
  const auto full_kv = full.server->store()->Snapshot().ScanPrefix("kv/");
  const auto snap_kv = snapped.server->store()->Snapshot().ScanPrefix("kv/");
  EXPECT_EQ(full_kv, snap_kv);
  EXPECT_EQ(full_kv.size(), 12u);
  full.server->Stop();
  snapped.server->Stop();
  std::filesystem::remove(ckpt);
}

}  // namespace
}  // namespace delos
