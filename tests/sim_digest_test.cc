// Digest-beacon divergence detection, simulator coverage.
//
//  * Sabotage conviction: a kSabotage fault corrupts one replica's store
//    after the workload quiesces; the post-sabotage beacon rounds must
//    convict divergence on EVERY server, on every seed, and the
//    schedule-determined divergence summary must be byte-identical across
//    replays of the same schedule (checkpoint flushes pinned off, as in the
//    workload-attribution suite).
//  * False-positive freedom: a fault-free-of-sabotage seed sweep (crashes,
//    torn flushes, append timeout / drop / duplicate / reorder all active)
//    must report zero digest mismatches and no conviction while the beacons
//    demonstrably ran. DELOS_DIGEST_SCHEDULES scales the sweep.
//
// A failing seed writes its plan, divergence artifact (digest pair + flight
// excerpt), and flight dump to DELOS_DIGEST_ARTIFACT_DIR for CI to upload.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::RunReport;
using sim::SimCluster;
using sim::SimOptions;
using sim::StackShape;

int EnvInt(const char* name, int fallback, int floor) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const int parsed = std::atoi(value);
  return parsed < floor ? floor : parsed;
}

std::filesystem::path ArtifactDir() {
  const char* dir = std::getenv("DELOS_DIGEST_ARTIFACT_DIR");
  return (dir != nullptr && *dir != '\0') ? std::filesystem::path(dir)
                                          : std::filesystem::path("digest_artifacts");
}

// Everything needed to chase a failing seed offline: the plan, the verdict
// summary, the full-fidelity divergence artifact (digest pair + flight
// excerpt + trace ids), and the flight dump. ci.yml uploads this directory
// when the digest suite fails.
void DumpArtifacts(const RunReport& report, const std::string& kind) {
  const std::filesystem::path dir = ArtifactDir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string prefix = "seed_" + std::to_string(report.seed) + "_" + kind;
  {
    std::ofstream out(dir / (prefix + "_plan.txt"));
    out << report.Summary() << "\nfault plan:\n" << report.plan_text;
  }
  {
    std::ofstream out(dir / (prefix + "_divergence.txt"));
    out << report.divergence_summary << "\n" << report.divergence_artifact;
  }
  std::ofstream(dir / (prefix + "_flight.txt")) << report.flight_dump;
}

std::string ScratchDir(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / ("delos_sim_digest_" + leaf)).string();
}

SimOptions DigestOptions(const std::string& leaf) {
  SimOptions options;
  options.shape = StackShape::kDelosTable;
  options.num_servers = 3;
  options.num_ops = 24;
  options.plan.num_ops = 24;
  options.scratch_dir = ScratchDir(leaf);
  // A tight cadence so beacons flow during the short workload and the
  // conviction window is narrow.
  options.digest_beacon_every = 4;
  // Freeze background checkpoint flushes: a crashed server cold-starts from
  // the log, so its beacon counters — and hence the divergence summary — are
  // a pure function of the schedule (same pinning as the workload suite).
  options.flush_interval_micros = 3'600'000'000;
  return options;
}

// The sabotaged replica diverges from the fault-free reference replay, so a
// sabotage run legitimately FAILS the offline checksum diff; the online
// detector must agree (conviction), not add unrelated failures.
void ExpectOnlyChecksumFailures(const RunReport& report) {
  EXPECT_FALSE(report.ok());
  for (const std::string& failure : report.failures) {
    EXPECT_NE(failure.find("diverges from the"), std::string::npos) << failure;
  }
}

TEST(SimDigestTest, SabotageConvictsEveryServerWithReplayIdenticalReport) {
  SimOptions options = DigestOptions("sabotage");
  FaultPlan plan;
  plan.seed = 77;
  plan.events = {{FaultKind::kSabotage, 1, 0, 0}};

  SimCluster cluster_a(options);
  const RunReport first = cluster_a.Run(plan);
  SimCluster cluster_b(options);
  const RunReport second = cluster_b.Run(plan);

  ExpectOnlyChecksumFailures(first);
  EXPECT_TRUE(first.divergence_convicted) << first.divergence_summary;
  EXPECT_GT(first.divergence_mismatches, 0u);
  // Every server convicts — the corrupt replica sees everyone else's digests
  // disagree with its own, the healthy ones see its beacons disagree.
  for (const char* server : {"server s0:", "server s1:", "server s2:"}) {
    const size_t at = first.divergence_summary.find(server);
    ASSERT_NE(at, std::string::npos) << first.divergence_summary;
    const size_t line_end = first.divergence_summary.find('\n', at);
    const std::string line = first.divergence_summary.substr(at, line_end - at);
    EXPECT_NE(line.find("digest divergence convicted in ("), std::string::npos) << line;
  }
  // The earliest-divergence report is byte-identical across replays of the
  // schedule: positions, proposer ids, and counters only — never absolute
  // digest values.
  EXPECT_EQ(first.divergence_summary, second.divergence_summary);
  EXPECT_EQ(first.Summary(), second.Summary());
  // The full-fidelity artifact carries what the summary deliberately omits.
  EXPECT_NE(first.divergence_artifact.find("digest pair:"), std::string::npos)
      << first.divergence_artifact;
  EXPECT_NE(first.divergence_artifact.find("flight excerpt:"), std::string::npos)
      << first.divergence_artifact;
  if (!first.divergence_convicted || first.divergence_summary != second.divergence_summary) {
    DumpArtifacts(first, "sabotage_a");
    DumpArtifacts(second, "sabotage_b");
  }
}

TEST(SimDigestTest, SabotageConvictsUnderConcurrentFaultSchedules) {
  // Sabotage layered over randomized crash + append-fault schedules: the
  // conviction must land on every seed and replay byte-identically.
  for (uint64_t seed : {11u, 212u, 3333u}) {
    SimOptions options = DigestOptions("sabotage_sweep");
    FaultPlan plan = FaultPlan::Random(seed, options.plan);
    plan.events.push_back({FaultKind::kSabotage, 2, 0, 0});

    SimCluster cluster_a(options);
    const RunReport first = cluster_a.Run(plan);
    SimCluster cluster_b(options);
    const RunReport second = cluster_b.Run(plan);

    ExpectOnlyChecksumFailures(first);
    EXPECT_TRUE(first.divergence_convicted)
        << "seed " << seed << "\n" << first.divergence_summary;
    EXPECT_EQ(first.divergence_summary, second.divergence_summary) << "seed " << seed;
    if (!first.divergence_convicted || first.divergence_summary != second.divergence_summary) {
      DumpArtifacts(first, "sabotage_sweep_a");
      DumpArtifacts(second, "sabotage_sweep_b");
    }
  }
}

TEST(SimDigestTest, FaultFreeSweepNeverMismatches) {
  // ≥20 sabotage-free seeds with the full fault arsenal active: crash (clean
  // and torn-flush), append timeout, drop, duplicate, reorder. The digest
  // plane must stay silent — zero mismatches, zero convictions — while
  // demonstrably checking beacons on every seed.
  const int seeds = EnvInt("DELOS_DIGEST_SCHEDULES", 20, 4);
  for (int seed = 1; seed <= seeds; ++seed) {
    SimOptions options = DigestOptions("clean_sweep");
    const RunReport report = SimCluster::RunSeed(static_cast<uint64_t>(seed), options);
    if (!report.ok() || report.divergence_convicted || report.divergence_mismatches != 0) {
      DumpArtifacts(report, "clean_sweep");
    }
    ASSERT_TRUE(report.ok()) << "seed " << seed << "\n" << report.Summary();
    EXPECT_FALSE(report.divergence_convicted)
        << "seed " << seed << "\n" << report.divergence_summary;
    EXPECT_EQ(report.divergence_mismatches, 0u)
        << "seed " << seed << "\n" << report.divergence_summary;
    // The detector actually ran: every server checked beacons.
    for (const char* server : {"server s0:", "server s1:", "server s2:"}) {
      EXPECT_NE(report.divergence_summary.find(server), std::string::npos)
          << "seed " << seed << "\n" << report.divergence_summary;
    }
    EXPECT_EQ(report.divergence_summary.find("beacons_checked=0"), std::string::npos)
        << "seed " << seed << "\n" << report.divergence_summary;
  }
}

TEST(SimDigestTest, BeaconsOffKeepsLegacySchedulesUntouched) {
  // digest_beacon_every = 0 (the default) must leave the run byte-identical
  // to a pre-digest-plane run: no beacon records, no divergence report.
  SimOptions options = DigestOptions("beacons_off");
  options.digest_beacon_every = 0;
  const RunReport report = SimCluster::RunSeed(5, options);
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.divergence_summary.empty());
  EXPECT_FALSE(report.divergence_convicted);
}

}  // namespace
}  // namespace delos
