// The repro contract: a failing fault schedule is fully identified by its
// seed. Re-running the seed regenerates the identical plan, drives the
// identical injections, and — when the run fails — prints the identical
// failure report. (Reports deliberately exclude absolute checksum values,
// which vary across runs with per-incarnation engine instance ids; what must
// be stable is the schedule and the verdict.)
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::RunReport;
using sim::SimCluster;
using sim::SimOptions;
using sim::StackShape;

std::string ScratchDir(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / ("delos_sim_repro_" + leaf)).string();
}

TEST(SimReproTest, SameSeedProducesIdenticalPlanAndReport) {
  for (uint64_t seed : {11u, 23u, 57u}) {
    SimOptions options;
    options.shape = StackShape::kDelosTable;
    options.num_ops = 16;
    options.scratch_dir = ScratchDir("same_seed");
    const RunReport first = SimCluster::RunSeed(seed, options);
    const RunReport second = SimCluster::RunSeed(seed, options);
    EXPECT_EQ(first.plan_bytes, second.plan_bytes) << "seed " << seed;
    EXPECT_EQ(first.plan_text, second.plan_text) << "seed " << seed;
    EXPECT_EQ(first.failures, second.failures) << "seed " << seed;
    EXPECT_EQ(first.crashes_fired, second.crashes_fired) << "seed " << seed;
    EXPECT_EQ(first.final_tail, second.final_tail) << "seed " << seed;
    EXPECT_EQ(first.Summary(), second.Summary()) << "seed " << seed;
  }
}

// A schedule that MUST fail (kSabotage corrupts one replica after recovery)
// reports the same failure, byte for byte, on every run — the acceptance
// criterion for "a failing schedule printed as a seed reproduces the
// identical failure".
TEST(SimReproTest, FailingScheduleReproducesByteForByte) {
  SimOptions options;
  options.shape = StackShape::kDelosTable;
  options.num_ops = 12;
  options.scratch_dir = ScratchDir("sabotage");

  FaultPlan plan;
  plan.seed = 99;
  plan.events = {
      {FaultKind::kCrash, 0, 4, 0},
      {FaultKind::kSabotage, 1, 0, 0},
  };

  SimCluster cluster_a(options);
  const RunReport first = cluster_a.Run(plan);
  SimCluster cluster_b(options);
  const RunReport second = cluster_b.Run(plan);

  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.failures, second.failures);
  EXPECT_EQ(first.Summary(), second.Summary());
  EXPECT_NE(first.Summary().find("checksum mismatch"), std::string::npos)
      << first.Summary();
  // The sabotaged replica diverges; the untouched ones match the reference.
  ASSERT_EQ(first.server_checksums.size(), 3u);
  EXPECT_EQ(first.server_checksums[0], first.reference_checksum);
  EXPECT_NE(first.server_checksums[1], first.reference_checksum);
  EXPECT_EQ(first.server_checksums[2], first.reference_checksum);
}

// The serialized plan round-trips into an equivalent run: feeding
// Parse(Serialize(plan)) back into a fresh cluster yields the same verdict —
// so a failing plan can be shipped around as bytes, not just as a seed.
TEST(SimReproTest, SerializedPlanReplaysTheSameFailure) {
  SimOptions options;
  options.shape = StackShape::kDelosTable;
  options.num_ops = 12;
  options.scratch_dir = ScratchDir("bytes");

  FaultPlan plan;
  plan.seed = 7;
  plan.events = {
      {FaultKind::kAppendTimeout, 0, 1, 0},
      {FaultKind::kCrash, 2, 5, 1 + 6},
      {FaultKind::kSabotage, 2, 0, 0},
  };

  SimCluster cluster_a(options);
  const RunReport original = cluster_a.Run(plan);
  SimCluster cluster_b(options);
  const RunReport replayed = cluster_b.Run(FaultPlan::Parse(plan.Serialize()));

  ASSERT_FALSE(original.ok());
  EXPECT_EQ(original.failures, replayed.failures);
  EXPECT_EQ(original.Summary(), replayed.Summary());
  EXPECT_EQ(original.crashes_fired, 1u);
}

}  // namespace
}  // namespace delos
