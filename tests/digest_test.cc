// Digest-beacon divergence detection: the IncrementalChecksum algebra the
// digests are built on, RWTxn::EffectiveDigest (committed checksum patched
// with the staged overlay, minus excluded keys), checkpoint checksum-mismatch
// handling under tolerant open, the DivergenceTracker's earliest-window
// latch, and the DigestEngine end-to-end on live clusters: clean replicas
// cross-check without convicting (including across trim and log
// reconfiguration), a corrupted replica is convicted on every server, and
// the admin /digest + /divergence routes serve the reports.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "src/apps/delostable/table_db.h"
#include "src/common/checksum.h"
#include "src/common/divergence.h"
#include "src/common/errors.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/cluster.h"
#include "src/engines/stacks.h"
#include "src/localstore/localstore.h"
#include "src/net/admin_server.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/sharedlog/read_cache.h"

namespace delos {
namespace {

using table::Row;
using table::TableApplicator;
using table::TableClient;
using table::TableSchema;
using table::Value;
using table::ValueType;

TEST(IncrementalChecksumTest, AddRemoveRoundTripsToIdentity) {
  IncrementalChecksum checksum;
  const uint64_t empty = checksum.digest();
  checksum.Add("k1", "v1");
  checksum.Add("k2", "v2");
  EXPECT_NE(checksum.digest(), empty);
  checksum.Remove("k2", "v2");
  checksum.Remove("k1", "v1");
  EXPECT_EQ(checksum.digest(), empty);
}

TEST(IncrementalChecksumTest, DigestIsOrderIndependent) {
  IncrementalChecksum forward;
  forward.Add("a", "1");
  forward.Add("b", "2");
  forward.Add("c", "3");
  IncrementalChecksum shuffled;
  shuffled.Add("c", "3");
  shuffled.Add("a", "1");
  shuffled.Add("b", "2");
  EXPECT_EQ(forward.digest(), shuffled.digest());
  // A value update = remove old pair + add new pair, from any order.
  forward.Remove("b", "2");
  forward.Add("b", "9");
  IncrementalChecksum direct;
  direct.Add("a", "1");
  direct.Add("b", "9");
  direct.Add("c", "3");
  EXPECT_EQ(forward.digest(), direct.digest());
}

TEST(EffectiveDigestTest, FoldsStagedOverlayAndDropsExcludedKeys) {
  auto store = LocalStore::Open({});
  {
    auto setup = store->BeginRW();
    setup.Put("a", "1");
    setup.Put("b", "2");
    setup.Put("e/base/cursor", "cursor-state");
    setup.Commit();
  }
  const std::vector<std::string> exclude = {"e/base/cursor"};

  // Committed state only: digest of {a:1, b:2} once the cursor is excluded.
  IncrementalChecksum committed;
  committed.Add("a", "1");
  committed.Add("b", "2");
  {
    auto txn = store->BeginRW();
    EXPECT_EQ(txn.EffectiveDigest(exclude), committed.digest());
    // With no exclusions the cursor pair participates.
    IncrementalChecksum with_cursor = committed;
    with_cursor.Add("e/base/cursor", "cursor-state");
    EXPECT_EQ(txn.EffectiveDigest({}), with_cursor.digest());
    txn.Commit();
  }

  // Staged overlay: an overwrite, a fresh key, and a delete must all be
  // visible in the effective digest before the transaction commits.
  {
    auto txn = store->BeginRW();
    txn.Put("a", "9");
    txn.Put("c", "3");
    txn.Delete("b");
    IncrementalChecksum staged;
    staged.Add("a", "9");
    staged.Add("c", "3");
    EXPECT_EQ(txn.EffectiveDigest(exclude), staged.digest());
    txn.Abort();
  }
  // The rollback left the committed state untouched.
  auto txn = store->BeginRW();
  EXPECT_EQ(txn.EffectiveDigest(exclude), committed.digest());
}

TEST(EffectiveDigestTest, CursorExclusionMakesDigestBatchShapeInvariant) {
  // Two stores with identical application state but different group-commit
  // cursor values (different batch boundaries) must agree once the cursor is
  // excluded — the property that keeps beacons false-positive free across
  // replicas with different batching.
  auto a = LocalStore::Open({});
  auto b = LocalStore::Open({});
  {
    auto txn = a->BeginRW();
    txn.Put("x", "1");
    txn.Put("e/base/cursor", "batch-at-4");
    txn.Commit();
  }
  {
    auto txn = b->BeginRW();
    txn.Put("x", "1");
    txn.Put("e/base/cursor", "batch-at-7");
    txn.Commit();
  }
  auto txn_a = a->BeginRW();
  auto txn_b = b->BeginRW();
  EXPECT_NE(txn_a.EffectiveDigest({}), txn_b.EffectiveDigest({}));
  EXPECT_EQ(txn_a.EffectiveDigest({"e/base/cursor"}), txn_b.EffectiveDigest({"e/base/cursor"}));
}

TEST(CheckpointDigestTest, ChecksumMismatchColdStartsUnderTolerantOpen) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "delos_digest_ckpt").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/store.ckpt";
  {
    LocalStore::Options options;
    options.checkpoint_path = path;
    auto store = LocalStore::Open(options);
    auto txn = store->BeginRW();
    txn.Put("durable", "value");
    txn.Commit();
    store->Flush();
  }
  // Flip one byte in the middle of the file: the checkpoint's own checksum
  // must catch it at parse time.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 8u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Strict open refuses the corrupt checkpoint...
  LocalStore::Options strict;
  strict.checkpoint_path = path;
  EXPECT_THROW(LocalStore::Open(strict), StoreError);
  // ...tolerant open treats it like a torn flush: cold start from the log.
  LocalStore::Options tolerant;
  tolerant.checkpoint_path = path;
  tolerant.tolerate_torn_checkpoint = true;
  auto recovered = LocalStore::Open(tolerant);
  EXPECT_EQ(recovered->KeyCount(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(DivergenceTrackerTest, LatchesEarliestWindowAndRecordsFlightEvent) {
  MetricsRegistry metrics;
  FlightRecorder recorder(64);
  DivergenceOptions options;
  options.server = "s0";
  options.metrics = &metrics;
  options.recorder = &recorder;
  DivergenceTracker tracker(options);

  tracker.OnBeaconAppended();
  tracker.OnBeaconChecked(10, "s1");
  tracker.OnSampleMatch(8);
  EXPECT_FALSE(tracker.convicted());
  EXPECT_EQ(tracker.last_verified_pos(), 8u);
  EXPECT_TRUE(tracker.HealthReason().empty());

  tracker.OnSampleMismatch(8, 12, 0x1111, 0x2222, "s1", 77);
  ASSERT_TRUE(tracker.convicted());
  EXPECT_EQ(tracker.window_lo(), 8u);
  EXPECT_EQ(tracker.window_hi(), 12u);
  // A later, wider mismatch never widens the latched earliest window.
  tracker.OnSampleMismatch(0, 40, 0x3333, 0x4444, "s2", 78);
  EXPECT_EQ(tracker.window_lo(), 8u);
  EXPECT_EQ(tracker.window_hi(), 12u);
  EXPECT_EQ(tracker.mismatches(), 2u);

  EXPECT_NE(tracker.HealthReason().find("(8, 12] vs s1"), std::string::npos)
      << tracker.HealthReason();
  // Full render carries the digest pair; the schedule-determined render
  // drops it (absolute digests vary across runs).
  EXPECT_NE(tracker.Render(true).find("digest pair"), std::string::npos);
  EXPECT_EQ(tracker.Render(false).find("digest pair"), std::string::npos);
  EXPECT_NE(tracker.RenderJson().find("\"convicted\":true"), std::string::npos);

  EXPECT_EQ(metrics.GetCounter("digest.mismatches")->value(), 2);
  EXPECT_EQ(metrics.GetCounter("digest.beacons_checked")->value(), 1);
  bool saw_divergence_event = false;
  for (const FlightRecorder::Event& event : recorder.Snapshot()) {
    if (event.kind == FlightEventKind::kDivergence) {
      saw_divergence_event = true;
      EXPECT_EQ(event.a, 8u);
      EXPECT_EQ(event.b, 12u);
      EXPECT_NE(event.detail.find("s1"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_divergence_event);
}

TEST(ReadCacheSealTest, SealRecordsFlightEventWithDroppedEntryCount) {
  FlightRecorder recorder(64);
  ReadCacheOptions options;
  options.recorder = &recorder;
  auto cache = std::make_shared<ReadCachingLog>(std::make_shared<InMemoryLog>(), options);
  for (int i = 0; i < 3; ++i) {
    cache->Append("payload" + std::to_string(i)).Get();
  }
  ASSERT_EQ(cache->entries(), 3u);  // write-through filled
  cache->Seal();
  EXPECT_EQ(cache->entries(), 0u);
  bool saw_seal = false;
  for (const FlightRecorder::Event& event : recorder.Snapshot()) {
    if (event.kind == FlightEventKind::kSeal) {
      saw_seal = true;
      EXPECT_EQ(event.a, 3u);  // records the seal invalidated
    }
  }
  EXPECT_TRUE(saw_seal);
  // The new kinds render by name in dumps (/flight surfacing).
  EXPECT_NE(recorder.Dump().find("seal"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live-cluster coverage.

TableSchema UsersSchema() {
  TableSchema schema;
  schema.name = "users";
  schema.columns = {{"id", ValueType::kInt64}, {"name", ValueType::kString}};
  schema.primary_key = "id";
  return schema;
}

Row User(int64_t id, const std::string& name) {
  return Row{{"id", Value{id}}, {"name", Value{name}}};
}

DigestEngine* DigestOf(ClusterServer& server) {
  return dynamic_cast<DigestEngine*>(server.FindEngine("digest"));
}

void SyncAll(Cluster& cluster) {
  for (int s = 0; s < cluster.size(); ++s) {
    cluster.server(s).top()->Sync().Get();
  }
}

// One beacon round: every server proposes a standalone beacon (in index
// order, like the sim driver), then everyone catches up.
void BeaconRound(Cluster& cluster) {
  for (int s = 0; s < cluster.size(); ++s) {
    DigestEngine* digest = DigestOf(cluster.server(s));
    ASSERT_NE(digest, nullptr);
    ASSERT_TRUE(digest->ProposeBeaconNow(10'000'000));
  }
  SyncAll(cluster);
}

TEST(DigestEngineClusterTest, CleanReplicasCrossCheckWithoutConvicting) {
  Cluster::Options options;
  options.num_servers = 3;
  options.log_kind = Cluster::LogKind::kInMemory;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(nullptr);
    config.digest_beacon_every = 4;
    BuildStack(server, config);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  TableClient client(cluster.server(0).top());
  client.CreateTable(UsersSchema());
  for (int i = 0; i < 16; ++i) {
    client.Insert("users", User(i, "u" + std::to_string(i)));
  }
  SyncAll(cluster);
  BeaconRound(cluster);
  BeaconRound(cluster);

  std::map<LogPos, uint64_t> reference_table;
  for (int s = 0; s < 3; ++s) {
    DigestEngine* digest = DigestOf(cluster.server(s));
    ASSERT_NE(digest, nullptr) << "server " << s;
    EXPECT_FALSE(digest->tracker()->convicted()) << digest->tracker()->Render();
    EXPECT_GT(digest->tracker()->beacons_checked(), 0u) << "server " << s;
    EXPECT_GT(digest->tracker()->last_verified_pos(), 0u) << "server " << s;
    EXPECT_EQ(digest->HealthCheck().state, HealthState::kOk);
    // Identical prefixes -> byte-identical sample tables on every replica.
    if (s == 0) {
      reference_table = digest->SampleTable();
      EXPECT_FALSE(reference_table.empty());
    } else {
      EXPECT_EQ(digest->SampleTable(), reference_table) << "server " << s;
    }
  }
}

TEST(DigestEngineClusterTest, CorruptedReplicaIsConvictedOnEveryServer) {
  Cluster::Options options;
  options.num_servers = 3;
  options.log_kind = Cluster::LogKind::kInMemory;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(nullptr);
    config.digest_beacon_every = 4;
    BuildStack(server, config);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  TableClient client(cluster.server(0).top());
  client.CreateTable(UsersSchema());
  for (int i = 0; i < 16; ++i) {
    client.Insert("users", User(i, "u" + std::to_string(i)));
  }
  SyncAll(cluster);
  BeaconRound(cluster);  // pre-corruption samples: all replicas agree

  // Corrupt server 1's store out-of-band (the sim's kSabotage, live): the
  // apply threads are idle, so the single-writer invariant holds.
  {
    auto txn = cluster.server(1).store()->BeginRW();
    txn.Put("corruption", "divergent");
    txn.Commit();
  }
  // Round 1 publishes diverging samples, round 2 cross-checks them.
  BeaconRound(cluster);
  BeaconRound(cluster);

  for (int s = 0; s < 3; ++s) {
    DigestEngine* digest = DigestOf(cluster.server(s));
    ASSERT_NE(digest, nullptr);
    EXPECT_TRUE(digest->tracker()->convicted())
        << "server " << s << "\n" << digest->tracker()->Render();
    EXPECT_GT(digest->tracker()->window_hi(), digest->tracker()->window_lo());
    const HealthReport health = digest->HealthCheck();
    EXPECT_EQ(health.state, HealthState::kUnhealthy);
    EXPECT_NE(health.reason.find("digest divergence convicted in ("), std::string::npos)
        << health.reason;
  }

  // The admin routes serve the conviction, and the flight ring carries the
  // kDivergence breadcrumb.
  AdminEndpoint endpoint(&cluster.server(0));
  const AdminResponse digest_page = endpoint.Handle("/digest");
  EXPECT_EQ(digest_page.status, 200);
  EXPECT_NE(digest_page.body.find("beacons checked"), std::string::npos);
  const AdminResponse divergence_json = endpoint.Handle("/divergence?format=json");
  EXPECT_EQ(divergence_json.status, 200);
  EXPECT_NE(divergence_json.body.find("\"convicted\":true"), std::string::npos)
      << divergence_json.body;
  const AdminResponse divergence_text = endpoint.Handle("/divergence");
  EXPECT_NE(divergence_text.body.find("DIVERGED in ("), std::string::npos)
      << divergence_text.body;
  EXPECT_NE(endpoint.Handle("/flight").body.find("divergence"), std::string::npos);
}

TEST(DigestEngineClusterTest, RoutesReturn404WhenDigestDisabled) {
  Cluster::Options options;
  options.num_servers = 1;
  options.log_kind = Cluster::LogKind::kInMemory;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(nullptr);
    config.digest = false;
    BuildStack(server, config);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });
  AdminEndpoint endpoint(&cluster.server(0));
  EXPECT_EQ(endpoint.Handle("/digest").status, 404);
  EXPECT_EQ(endpoint.Handle("/divergence").status, 404);
}

TEST(DigestEngineClusterTest, TrimAndReconfigurationNeverConvict) {
  Cluster::Options options;
  options.num_servers = 3;
  options.log_kind = Cluster::LogKind::kVirtual;  // reconfigurable loglet chain
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(nullptr);
    config.digest_beacon_every = 4;
    BuildStack(server, config);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  TableClient client(cluster.server(0).top());
  client.CreateTable(UsersSchema());
  for (int i = 0; i < 12; ++i) {
    client.Insert("users", User(i, "before"));
  }
  SyncAll(cluster);
  BeaconRound(cluster);

  // Trim the applied prefix, then swap the consensus protocol underneath —
  // both preserve "state = f(prefix)", so beacons must keep matching.
  cluster.server(0).base()->TrimNow();
  cluster.ReconfigureLog();
  for (int i = 12; i < 24; ++i) {
    client.Insert("users", User(i, "after"));
  }
  SyncAll(cluster);
  BeaconRound(cluster);
  BeaconRound(cluster);

  for (int s = 0; s < 3; ++s) {
    DigestEngine* digest = DigestOf(cluster.server(s));
    ASSERT_NE(digest, nullptr);
    EXPECT_FALSE(digest->tracker()->convicted())
        << "server " << s << "\n" << digest->tracker()->Render();
    EXPECT_GT(digest->tracker()->beacons_checked(), 0u);
  }
}

}  // namespace
}  // namespace delos
