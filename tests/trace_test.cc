// End-to-end proposal tracing across the full nine-engine stack.
//
// The contract under test (the observability tentpole): a single propose on
// a three-replica cluster yields exactly one trace whose spans cover every
// layer's down-path hand-off, the shared-log append, and the up-path apply
// of every layer on every replica — with timestamps from the injected clock,
// and, under the simulator, a rendering that is byte-identical across
// replays of the same schedule.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/backup/backup_store.h"
#include "src/common/trace.h"
#include "src/core/apply_profiler.h"
#include "src/core/cluster.h"
#include "src/engines/compression_engine.h"
#include "src/engines/stacks.h"
#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

class NoopApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put("app/last", entry.payload);
    return std::any(Unit{});
  }
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

// Three replicas, all nine engine types (with observers interleaved), over
// one in-memory log, sharing one Tracer driven by a SimClock.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Options tracer_options;
    tracer_options.clock = &clock_;
    tracer_ = std::make_unique<Tracer>(tracer_options);

    Cluster::Options options;
    options.num_servers = 3;
    options.base_options.tracer = tracer_.get();
    cluster_ = std::make_unique<Cluster>(options, [this](ClusterServer& server) {
      StackConfig config = DelosTableStackConfig(&backup_);
      config.backup_segment_size = 1'000'000;  // keep the upload worker passive
      config.session_order = true;
      config.batching = true;
      config.time = true;
      config.lease = true;
      config.lease_ttl_micros = 600'000'000;  // nobody acquires; nothing expires
      config.observers = true;
      BuildStack(server, config);
      CompressionEngine::Options copt;
      copt.profiler = server.profiler();
      copt.metrics = server.metrics();
      server.AddEngine<CompressionEngine>(copt);

      auto app = std::make_unique<NoopApplicator>();
      auto traced =
          std::make_unique<TracedApplicator>(app.get(), tracer_.get(), server.id());
      server.top()->RegisterUpcall(traced.get());
      apps_.push_back(std::move(app));
      traced_apps_.push_back(std::move(traced));
    });
  }

  void TearDown() override { cluster_.reset(); }

  SimClock clock_{0};
  std::unique_ptr<Tracer> tracer_;
  InMemoryBackupStore backup_;
  std::vector<std::unique_ptr<NoopApplicator>> apps_;
  std::vector<std::unique_ptr<TracedApplicator>> traced_apps_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(TraceTest, SingleProposeYieldsOneTraceCoveringEveryLayerAndReplica) {
  clock_.Advance(1000);
  cluster_->server(0).top()->Propose(PayloadEntry("traced-write")).Get();
  clock_.Advance(1000);
  for (int i = 0; i < cluster_->size(); ++i) {
    cluster_->server(i).top()->Sync().Get();
  }

  const uint64_t id = tracer_->last_trace_id();
  ASSERT_EQ(id, 1u) << "exactly one trace for one propose";
  const std::vector<TraceSpan> spans = tracer_->Collect(id);
  ASSERT_FALSE(spans.empty());

  std::set<std::string> names;
  std::set<std::pair<std::string, std::string>> by_server;  // (server, name)
  for (const TraceSpan& span : spans) {
    EXPECT_EQ(span.trace_id, id);
    names.insert(span.name);
    by_server.insert({span.server, span.name});
  }

  // The client-visible end-to-end span, recorded by the minting layer.
  EXPECT_TRUE(names.count("client.propose")) << tracer_->Render(id);

  // Down-path: at least one span per engine layer. Batching and SessionOrder
  // record their specialized spans (queue wait, sequencing); everything else
  // records the generic hand-off.
  const std::vector<std::string> down_spans = {
      "compression.down",    "batching.queue",   "lease.down",
      "sessionorder.seq",    "time.down",        "viewtracking.down",
      "braindoctor.down",    "logbackup.down",   "observer-base.down",
      "observer-batching.down"};
  for (const std::string& name : down_spans) {
    EXPECT_TRUE(names.count(name)) << "missing down-path span " << name << "\n"
                                   << tracer_->Render(id);
  }

  // The shared-log append, attributed to the proposing server.
  EXPECT_TRUE(by_server.count({"server0", "base.append"})) << tracer_->Render(id);

  // Up-path: every layer's apply on EVERY replica, app applicator included.
  const std::vector<std::string> apply_spans = {
      "base.apply",        "logbackup.apply", "braindoctor.apply",
      "viewtracking.apply", "time.apply",     "sessionorder.apply",
      "lease.apply",       "batching.apply",  "compression.apply",
      "app.apply"};
  for (int i = 0; i < cluster_->size(); ++i) {
    const std::string server = "server" + std::to_string(i);
    for (const std::string& name : apply_spans) {
      EXPECT_TRUE(by_server.count({server, name}))
          << "missing " << name << " on " << server << "\n"
          << tracer_->Render(id);
    }
  }

  // Timestamps come from the injected clock and are monotonic: the clock
  // only moves forward, so every span is well-formed and inside the run.
  const int64_t now = clock_.NowMicros();
  for (const TraceSpan& span : spans) {
    EXPECT_GE(span.start_micros, 0);
    EXPECT_LE(span.start_micros, span.end_micros);
    EXPECT_LE(span.end_micros, now);
  }
}

TEST_F(TraceTest, EachProposeGetsItsOwnTraceAndHeaderSurvivesTheStack) {
  cluster_->server(0).top()->Propose(PayloadEntry("first")).Get();
  cluster_->server(1).top()->Propose(PayloadEntry("second")).Get();
  EXPECT_EQ(tracer_->last_trace_id(), 2u);

  // Both traces exist and do not share spans.
  const std::vector<TraceSpan> first = tracer_->Collect(1);
  const std::vector<TraceSpan> second = tracer_->Collect(2);
  EXPECT_FALSE(first.empty());
  EXPECT_FALSE(second.empty());
  for (const TraceSpan& span : second) {
    EXPECT_EQ(span.trace_id, 2u);
  }
  // The second propose entered at s1, so its append is attributed there.
  bool append_on_s1 = false;
  for (const TraceSpan& span : second) {
    append_on_s1 |= (span.name == "base.append" && span.server == "server1");
  }
  EXPECT_TRUE(append_on_s1) << tracer_->Render(2);
}

TEST_F(TraceTest, RenderIsDeterministicForIdenticalSpanSets) {
  cluster_->server(0).top()->Propose(PayloadEntry("x")).Get();
  for (int i = 0; i < cluster_->size(); ++i) {
    cluster_->server(i).top()->Sync().Get();
  }
  const uint64_t id = tracer_->last_trace_id();
  const std::string a = tracer_->Render(id);
  const std::string b = tracer_->Render(id);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("trace 1"), std::string::npos);
}

// The simulator's replay-identical-trace contract: the same fault-free
// schedule produces byte-identical trace renderings on every run (ids from
// the deterministic workload order, timestamps from the pinned SimClock).
TEST(SimTraceReplay, TraceIsByteIdenticalAcrossReplaysOfOneSchedule) {
  sim::SimOptions options;
  options.shape = sim::StackShape::kFullNine;
  options.num_ops = 8;

  sim::FaultPlan plan;
  plan.seed = 424242;  // no fault events: pure workload schedule

  options.scratch_dir = "trace_replay_a";
  sim::SimCluster first(options);
  const sim::RunReport a = first.Run(plan);
  options.scratch_dir = "trace_replay_b";
  sim::SimCluster second(options);
  const sim::RunReport b = second.Run(plan);

  ASSERT_TRUE(a.ok()) << a.Summary();
  ASSERT_TRUE(b.ok()) << b.Summary();
  ASSERT_NE(a.last_trace_id, 0u);
  EXPECT_EQ(a.last_trace_id, b.last_trace_id);
  ASSERT_FALSE(a.last_trace.empty());
  EXPECT_EQ(a.last_trace, b.last_trace) << "replay trace diverged:\n=== run A ===\n"
                                        << a.last_trace << "=== run B ===\n"
                                        << b.last_trace;
}

}  // namespace
}  // namespace delos
