// delosctl end-to-end smoke test: runs the real CLI binary (path injected by
// CMake as DELOSCTL_BIN) in --demo mode, which boots an in-process
// single-server Zelos cluster plus its admin HTTP endpoint, issues the
// subcommand over real HTTP, and exits. Each subcommand must exit 0 and
// print a non-empty body; usage errors must exit 2.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string stdout_text;
};

CommandResult RunCli(const std::string& args) {
  const std::string command = std::string(DELOSCTL_BIN) + " " + args + " 2>/dev/null";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.stdout_text.append(buffer, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

TEST(DelosctlSmoke, EverySubcommandSucceedsOverDemoCluster) {
  for (const char* command : {"status", "top", "stack", "metrics", "healthz", "flight",
                              "trace", "latency", "slow", "workload", "top keys",
                              "top clients", "digest", "divergence"}) {
    SCOPED_TRACE(command);
    // "trace" with no id resolves to the demo run's most recent trace.
    const CommandResult result = RunCli(std::string("--demo ") + command);
    EXPECT_EQ(result.exit_code, 0) << "stdout:\n" << result.stdout_text;
    EXPECT_FALSE(result.stdout_text.empty());
  }
}

TEST(DelosctlSmoke, LatencyShowsTheStageBreakdown) {
  const CommandResult result = RunCli("--demo latency");
  ASSERT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("latency attribution"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("base.append"), std::string::npos)
      << result.stdout_text;
  // The conservation footer: stage contributions sum to end-to-end.
  EXPECT_NE(result.stdout_text.find("100.0% of end-to-end"), std::string::npos)
      << result.stdout_text;
}

TEST(DelosctlSmoke, JsonFlagSwitchesOutputToMachineReadable) {
  struct Case {
    const char* command;
    const char* marker;
  };
  for (const Case& c : {Case{"status", "\"components\""}, Case{"top", "\"windows\""},
                        Case{"metrics", "\"histograms\""}, Case{"latency", "\"stages\""},
                        Case{"slow", "\"traces\""}, Case{"workload", "\"layers\""},
                        Case{"top keys", "\"keys\""}, Case{"top clients", "\"clients\""},
                        Case{"digest", "\"samples\""}, Case{"divergence", "\"convicted\""}}) {
    SCOPED_TRACE(c.command);
    const CommandResult result = RunCli(std::string("--demo --json ") + c.command);
    EXPECT_EQ(result.exit_code, 0) << "stdout:\n" << result.stdout_text;
    EXPECT_NE(result.stdout_text.find(c.marker), std::string::npos) << result.stdout_text;
  }
}

TEST(DelosctlSmoke, StatusShowsEveryStackEngine) {
  const CommandResult result = RunCli("--demo stack");
  ASSERT_EQ(result.exit_code, 0);
  // The demo stack is the production Zelos shape; spot-check that the
  // introspection output names its distinctive layers.
  EXPECT_NE(result.stdout_text.find("\"base\""), std::string::npos) << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("sessionorder"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("batching"), std::string::npos) << result.stdout_text;
}

TEST(DelosctlSmoke, MetricsExposeVerifiableCounters) {
  const CommandResult result = RunCli("--demo metrics");
  ASSERT_EQ(result.exit_code, 0);
  // Prometheus exposition with at least one engine counter present.
  EXPECT_NE(result.stdout_text.find("# TYPE"), std::string::npos) << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("base_apply_records"), std::string::npos)
      << result.stdout_text;
}

TEST(DelosctlSmoke, WorkloadSurfacesNameTheDemoKeys) {
  // The demo workload hammers /demo0../demo15, so the heavy-hitter table
  // must name the extractor's semantic keys and the workload page must show
  // the per-layer propose accounting.
  const CommandResult keys = RunCli("--demo top keys");
  ASSERT_EQ(keys.exit_code, 0);
  EXPECT_NE(keys.stdout_text.find("zelos/demo"), std::string::npos) << keys.stdout_text;
  const CommandResult workload = RunCli("--demo workload");
  ASSERT_EQ(workload.exit_code, 0);
  EXPECT_NE(workload.stdout_text.find("per-layer propose usage"), std::string::npos)
      << workload.stdout_text;
}

TEST(DelosctlSmoke, DigestBeaconsCheckVerifiablyRanOverTheDemoBurst) {
  // The demo stack runs a tight beacon cadence (every 8 proposals), so the
  // 80+-proposal demo burst must leave a non-zero checked-beacon count — a
  // zero here means beacons were appended but never cross-checked.
  const CommandResult result = RunCli("--demo --json digest");
  ASSERT_EQ(result.exit_code, 0) << result.stdout_text;
  const std::string marker = "\"beacons_checked\":";
  const size_t at = result.stdout_text.find(marker);
  ASSERT_NE(at, std::string::npos) << result.stdout_text;
  const uint64_t checked = std::strtoull(
      result.stdout_text.c_str() + at + marker.size(), nullptr, 10);
  EXPECT_GT(checked, 0u) << result.stdout_text;
  // No divergence on a healthy demo cluster.
  const CommandResult divergence = RunCli("--demo divergence");
  ASSERT_EQ(divergence.exit_code, 0);
  EXPECT_NE(divergence.stdout_text.find("no divergence"), std::string::npos)
      << divergence.stdout_text;
}

TEST(DelosctlSmoke, UsageErrorsExitTwo) {
  EXPECT_EQ(RunCli("").exit_code, 2);
  EXPECT_EQ(RunCli("--demo not-a-command").exit_code, 2);
}

TEST(DelosctlSmoke, UnreachableEndpointExitsTwo) {
  // Port 1 on localhost: connection refused, not a hang.
  EXPECT_EQ(RunCli("--host 127.0.0.1 --port 1 status").exit_code, 2);
}

}  // namespace
