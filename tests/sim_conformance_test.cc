// Engine crash-recovery conformance: every engine type, stacked alone above
// the BaseEngine, is run through a crash at *every* log position — kill the
// server after it has applied exactly c entries (alternating warm recovery
// from a flushed checkpoint and cold recovery by full replay), restart it,
// replay to the tail, and require the recovered LocalStore to be
// byte-identical (checksum and key count) to a fault-free reference run of
// the same log. This is the per-engine distillation of the SimCluster
// invariant: local state is a pure function of the applied log prefix.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/delostable/table_db.h"
#include "src/backup/backup_store.h"
#include "src/core/cluster.h"
#include "src/engines/compression_engine.h"
#include "src/engines/stacks.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// A StackConfig with nothing enabled (the defaults enable the DelosTable
// production pair).
StackConfig BareConfig() {
  StackConfig config;
  config.view_tracking = false;
  config.brain_doctor = false;
  return config;
}

struct EngineCase {
  const char* name;
  std::function<void(ClusterServer&, BackupStore*)> build;
};

std::vector<EngineCase> EngineCases() {
  return {
      {"observer",
       [](ClusterServer& server, BackupStore*) {
         StackConfig config = BareConfig();
         config.observers = true;  // wraps the BaseEngine in an ObserverEngine
         BuildStack(server, config);
       }},
      {"log_backup",
       [](ClusterServer& server, BackupStore* backup) {
         StackConfig config = BareConfig();
         config.log_backup = true;
         config.backup_store = backup;
         config.backup_segment_size = 1'000'000;  // passive during the test
         BuildStack(server, config);
       }},
      {"brain_doctor",
       [](ClusterServer& server, BackupStore*) {
         StackConfig config = BareConfig();
         config.brain_doctor = true;
         BuildStack(server, config);
       }},
      {"view_tracking",
       [](ClusterServer& server, BackupStore*) {
         StackConfig config = BareConfig();
         config.view_tracking = true;
         BuildStack(server, config);
       }},
      {"time",
       [](ClusterServer& server, BackupStore*) {
         StackConfig config = BareConfig();
         config.time = true;
         BuildStack(server, config);
       }},
      {"session_order",
       [](ClusterServer& server, BackupStore*) {
         StackConfig config = BareConfig();
         config.session_order = true;
         BuildStack(server, config);
       }},
      {"lease",
       [](ClusterServer& server, BackupStore*) {
         StackConfig config = BareConfig();
         config.lease = true;
         config.lease_ttl_micros = 600'000'000;
         BuildStack(server, config);
       }},
      {"batching",
       [](ClusterServer& server, BackupStore*) {
         StackConfig config = BareConfig();
         config.batching = true;
         BuildStack(server, config);
       }},
      {"compression",
       [](ClusterServer& server, BackupStore*) {
         BuildStack(server, BareConfig());
         CompressionEngine::Options options;
         server.AddEngine<CompressionEngine>(options);
       }},
  };
}

class EngineConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "delos_sim_conformance";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  BaseEngineOptions BaseOptions(const std::string& id) {
    BaseEngineOptions options;
    options.server_id = id;
    options.play_batch_size = 4;
    options.flush_interval_micros = 1'000'000'000;  // flushes only on demand
    options.trim_interval_micros = 1'000'000'000;
    options.fatal_handler = [this](const std::string& message) {
      fatals_.push_back(message);
    };
    return options;
  }

  std::unique_ptr<ClusterServer> MakeServer(const EngineCase& engine_case,
                                            const std::string& id,
                                            std::shared_ptr<ISharedLog> log,
                                            const std::string& checkpoint_path) {
    LocalStore::Options store_options;
    store_options.checkpoint_path = checkpoint_path;
    auto server = std::make_unique<ClusterServer>(id, std::move(log),
                                                  LocalStore::Open(store_options),
                                                  BaseOptions(id));
    engine_case.build(*server, &backup_);
    auto app = std::make_unique<table::TableApplicator>();
    server->top()->RegisterUpcall(app.get());
    apps_.push_back(std::move(app));
    server->Start();
    return server;
  }

  // Runs the identical workload every case uses: one schema + eight upserts
  // (values long enough to engage the CompressionEngine's threshold).
  static void RunWorkload(ClusterServer& server) {
    table::TableClient client(server.top());
    table::TableSchema schema;
    schema.name = "conf";
    schema.columns = {{"id", table::ValueType::kInt64},
                      {"payload", table::ValueType::kString}};
    schema.primary_key = "id";
    client.CreateTable(schema);
    for (int i = 0; i < 8; ++i) {
      table::Row row;
      row["id"] = static_cast<int64_t>(i);
      row["payload"] = "value-" + std::to_string(i) + "-" + std::string(90, 'p');
      client.Upsert("conf", row);
    }
  }

  std::filesystem::path dir_;
  InMemoryBackupStore backup_;
  std::vector<std::unique_ptr<IApplicator>> apps_;
  std::vector<std::string> fatals_;
};

TEST_F(EngineConformanceTest, EveryEngineSurvivesCrashAtEveryPosition) {
  for (const EngineCase& engine_case : EngineCases()) {
    SCOPED_TRACE(engine_case.name);

    // Fault-free reference run: produces the canonical log bytes and the
    // canonical recovered state.
    auto ref_log = std::make_shared<InMemoryLog>();
    uint64_t reference_checksum = 0;
    size_t reference_key_count = 0;
    LogPos tail = 0;
    {
      auto ref = MakeServer(engine_case, "ref", ref_log, "");
      RunWorkload(*ref);
      // Sync before reading the cursor: the SessionOrderEngine's postApply
      // short-circuit settles the last propose a hair before the BaseEngine
      // publishes applied_position.
      ref->base()->Sync().Get();
      tail = ref_log->CheckTail().Get() - 1;
      ASSERT_EQ(ref->base()->applied_position(), tail);
      reference_checksum = ref->store()->Checksum();
      reference_key_count = ref->store()->KeyCount();
      ref->Stop();
    }
    ASSERT_GE(tail, 9u);
    const auto records = ref_log->ReadRange(1, tail);
    ASSERT_EQ(records.size(), tail);

    for (LogPos crash_at = 0; crash_at <= tail; ++crash_at) {
      SCOPED_TRACE("crash after applying " + std::to_string(crash_at) + "/" +
                   std::to_string(tail) + " entries");
      const std::string checkpoint =
          (dir_ / (std::string(engine_case.name) + "_" + std::to_string(crash_at) + ".ckpt"))
              .string();
      auto replay_log = std::make_shared<InMemoryLog>();
      for (LogPos i = 0; i < crash_at; ++i) {
        replay_log->Append(records[i].payload).Get();
      }
      // Incarnation one: applies exactly the first crash_at entries, then
      // dies. Odd positions flush first (warm recovery from the checkpoint);
      // even ones don't (cold recovery by full replay).
      {
        auto first = MakeServer(engine_case, "a", replay_log, checkpoint);
        first->base()->Sync().Get();
        ASSERT_EQ(first->base()->applied_position(), crash_at);
        if (crash_at % 2 == 1) {
          first->base()->FlushNow();
        }
        first->Stop();
      }
      // The rest of the log arrives while the server is down.
      for (LogPos i = crash_at; i < tail; ++i) {
        replay_log->Append(records[i].payload).Get();
      }
      // Incarnation two: recover + replay to the tail.
      {
        auto second = MakeServer(engine_case, "b", replay_log, checkpoint);
        second->base()->Sync().Get();
        EXPECT_EQ(second->base()->applied_position(), tail);
        EXPECT_EQ(second->store()->Checksum(), reference_checksum)
            << "recovered state diverges from the reference";
        EXPECT_EQ(second->store()->KeyCount(), reference_key_count);
        second->Stop();
      }
    }
    EXPECT_TRUE(fatals_.empty()) << fatals_.front();
  }
}

}  // namespace
}  // namespace delos
