// Unit tests for src/common: serde, futures, metrics, checksum, clocks,
// blocking queue, scheduler.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/blocking_queue.h"
#include "src/common/checksum.h"
#include "src/common/clock.h"
#include "src/common/future.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/common/scheduler.h"
#include "src/common/serde.h"
#include "src/core/entry.h"

namespace delos {
namespace {

// --- serde ---

TEST(SerdeTest, VarintRoundTrip) {
  Serializer ser;
  const uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384, UINT64_MAX};
  for (uint64_t v : values) {
    ser.WriteVarint(v);
  }
  Deserializer de(ser.buffer());
  for (uint64_t v : values) {
    EXPECT_EQ(de.ReadVarint(), v);
  }
  EXPECT_TRUE(de.AtEnd());
}

TEST(SerdeTest, SignedZigzagRoundTrip) {
  Serializer ser;
  const int64_t values[] = {0, -1, 1, -2, 63, -64, INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    ser.WriteSigned(v);
  }
  Deserializer de(ser.buffer());
  for (int64_t v : values) {
    EXPECT_EQ(de.ReadSigned(), v);
  }
}

TEST(SerdeTest, StringRoundTrip) {
  Serializer ser;
  ser.WriteString("");
  ser.WriteString("hello");
  ser.WriteString(std::string("\x00\x01\xff", 3));
  Deserializer de(ser.buffer());
  EXPECT_EQ(de.ReadString(), "");
  EXPECT_EQ(de.ReadString(), "hello");
  EXPECT_EQ(de.ReadString(), std::string("\x00\x01\xff", 3));
}

TEST(SerdeTest, DoubleAndBoolRoundTrip) {
  Serializer ser;
  ser.WriteDouble(3.14159);
  ser.WriteDouble(-0.0);
  ser.WriteBool(true);
  ser.WriteBool(false);
  Deserializer de(ser.buffer());
  EXPECT_DOUBLE_EQ(de.ReadDouble(), 3.14159);
  EXPECT_DOUBLE_EQ(de.ReadDouble(), -0.0);
  EXPECT_TRUE(de.ReadBool());
  EXPECT_FALSE(de.ReadBool());
}

TEST(SerdeTest, OptionalVectorMapRoundTrip) {
  Serializer ser;
  ser.WriteOptional(std::optional<std::string>("x"),
                    [](Serializer& s, const std::string& v) { s.WriteString(v); });
  ser.WriteOptional(std::optional<std::string>{},
                    [](Serializer& s, const std::string& v) { s.WriteString(v); });
  ser.WriteVector(std::vector<std::string>{"a", "b"},
                  [](Serializer& s, const std::string& v) { s.WriteString(v); });
  std::map<std::string, std::string> m{{"k1", "v1"}, {"k2", "v2"}};
  ser.WriteMap(
      m, [](Serializer& s, const std::string& k) { s.WriteString(k); },
      [](Serializer& s, const std::string& v) { s.WriteString(v); });

  Deserializer de(ser.buffer());
  auto opt1 = de.ReadOptional<std::string>([](Deserializer& d) { return d.ReadString(); });
  ASSERT_TRUE(opt1.has_value());
  EXPECT_EQ(*opt1, "x");
  auto opt2 = de.ReadOptional<std::string>([](Deserializer& d) { return d.ReadString(); });
  EXPECT_FALSE(opt2.has_value());
  auto vec = de.ReadVector<std::string>([](Deserializer& d) { return d.ReadString(); });
  EXPECT_EQ(vec, (std::vector<std::string>{"a", "b"}));
  auto map = de.ReadMap<std::string, std::string>(
      [](Deserializer& d) { return d.ReadString(); },
      [](Deserializer& d) { return d.ReadString(); });
  EXPECT_EQ(map, m);
}

TEST(SerdeTest, TruncationThrows) {
  Serializer ser;
  ser.WriteString("hello world");
  const std::string bytes = ser.buffer().substr(0, 3);
  Deserializer de(bytes);
  EXPECT_THROW(de.ReadString(), SerdeError);
}

TEST(SerdeTest, MalformedVarintThrows) {
  const std::string bytes(11, '\xff');  // continuation bit forever
  Deserializer de(bytes);
  EXPECT_THROW(de.ReadVarint(), SerdeError);
}

TEST(SerdeTest, HugeClaimedStringSizeThrows) {
  // A length prefix near UINT64_MAX must not wrap the bounds check
  // (`pos_ + size` overflows to a small number) and read out of bounds.
  Serializer ser;
  ser.WriteVarint(UINT64_MAX);
  ser.WriteVarint(UINT64_MAX - 7);  // crafted so pos_ + size wraps past zero
  Deserializer de(ser.buffer());
  EXPECT_THROW(de.ReadString(), SerdeError);
  EXPECT_THROW(de.ReadStringView(), SerdeError);
}

TEST(SerdeTest, ClaimedSizeJustPastEndThrows) {
  Serializer ser;
  ser.WriteVarint(6);  // claims 6 bytes, only 5 present
  const std::string bytes = ser.buffer() + "hello";
  Deserializer de(bytes);
  EXPECT_THROW(de.ReadStringView(), SerdeError);
}

TEST(SerdeTest, TruncatedFixed64AtTailThrows) {
  // Fewer than 8 bytes remaining: the subtraction-based check must catch it
  // even when pos_ is within 8 of the end.
  const std::string bytes("\x01\x02\x03", 3);
  Deserializer de(bytes);
  EXPECT_THROW(de.ReadFixed64(), SerdeError);
}

TEST(SerdeTest, ReadStringViewBorrowsFromInput) {
  Serializer ser;
  ser.WriteString("zero-copy");
  const std::string bytes = ser.buffer();
  Deserializer de(bytes);
  std::string_view view = de.ReadStringView();
  EXPECT_EQ(view, "zero-copy");
  // The view must point into the input buffer, not a copy.
  EXPECT_GE(view.data(), bytes.data());
  EXPECT_LE(view.data() + view.size(), bytes.data() + bytes.size());
}

TEST(SerdeTest, MalformedLogEntryHeaderCountThrows) {
  // A corrupt entry claiming a huge header map must fail parsing cleanly
  // rather than over-read.
  Serializer ser;
  ser.WriteVarint(1u << 20);  // header count with no header bytes
  EXPECT_THROW(LogEntry::Deserialize(ser.buffer()), SerdeError);
}

// --- future ---

TEST(FutureTest, SetBeforeGet) {
  Promise<int> promise;
  promise.SetValue(42);
  EXPECT_EQ(promise.GetFuture().Get(), 42);
}

TEST(FutureTest, GetBlocksUntilSet) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    promise.SetValue(7);
  });
  EXPECT_EQ(future.Get(), 7);
  setter.join();
}

TEST(FutureTest, ExceptionPropagates) {
  Promise<int> promise;
  promise.SetException(std::make_exception_ptr(DelosError("boom")));
  EXPECT_THROW(promise.GetFuture().Get(), DelosError);
}

TEST(FutureTest, ThenRunsInlineWhenReady) {
  Promise<int> promise;
  promise.SetValue(5);
  int seen = 0;
  promise.GetFuture().Then([&](Result<int> r) { seen = r.value(); });
  EXPECT_EQ(seen, 5);
}

TEST(FutureTest, ThenRunsOnFulfillingThread) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  std::atomic<int> seen{0};
  future.Then([&](Result<int> r) { seen = r.value(); });
  promise.SetValue(9);
  EXPECT_EQ(seen.load(), 9);
}

TEST(FutureTest, BrokenPromiseDeliversError) {
  Future<int> future;
  {
    Promise<int> promise;
    future = promise.GetFuture();
  }
  EXPECT_THROW(future.Get(), BrokenPromiseError);
}

TEST(FutureTest, GetForTimesOut) {
  Promise<int> promise;
  Future<int> future = promise.GetFuture();
  EXPECT_FALSE(future.GetFor(std::chrono::microseconds(1000)).has_value());
  promise.SetValue(1);
  EXPECT_EQ(future.GetFor(std::chrono::microseconds(1000)).value(), 1);
}

TEST(FutureTest, MultipleCopiesShareResult) {
  Promise<std::string> promise;
  Future<std::string> a = promise.GetFuture();
  Future<std::string> b = a;
  promise.SetValue("shared");
  EXPECT_EQ(a.Get(), "shared");
  EXPECT_EQ(b.Get(), "shared");
}

// --- metrics ---

TEST(MetricsTest, HistogramPercentiles) {
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) {
    hist.Record(i);
  }
  EXPECT_EQ(hist.count(), 1000u);
  // Log-bucketed: allow ~10% relative error.
  EXPECT_NEAR(static_cast<double>(hist.Percentile(50)), 500, 60);
  EXPECT_NEAR(static_cast<double>(hist.Percentile(99)), 990, 100);
  EXPECT_EQ(hist.Max(), 1000);
  EXPECT_NEAR(hist.Mean(), 500.5, 1.0);
}

TEST(MetricsTest, HistogramMerge) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Max(), 1000);
}

TEST(MetricsTest, HistogramLargeValues) {
  Histogram hist;
  hist.Record(50'000'000);  // 50 s
  EXPECT_GE(hist.Percentile(50), 45'000'000);
}

TEST(MetricsTest, HistogramPercentileOnEmptyAndSingleSample) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Percentile(0), 0);
  EXPECT_EQ(hist.Percentile(50), 0);
  EXPECT_EQ(hist.Percentile(100), 0);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Max(), 0);

  hist.Record(7);
  EXPECT_EQ(hist.count(), 1u);
  // One sample: every percentile lands in its (exact, linear) bucket.
  EXPECT_EQ(hist.Percentile(1), 7);
  EXPECT_EQ(hist.Percentile(50), 7);
  EXPECT_EQ(hist.Percentile(100), 7);
  EXPECT_EQ(hist.Max(), 7);
}

TEST(MetricsTest, HistogramMergeDisjointRanges) {
  Histogram low;
  Histogram high;
  for (int i = 1; i <= 10; ++i) {
    low.Record(i);                 // 1..10 us
    high.Record(100'000 + i);      // ~100 ms
  }
  low.Merge(high);
  EXPECT_EQ(low.count(), 20u);
  // The merged distribution is bimodal: the lower quartile stays in the
  // linear buckets, the upper quartile in the high range, nothing between.
  EXPECT_LE(low.Percentile(25), 10);
  EXPECT_GE(low.Percentile(75), 90'000);
  EXPECT_EQ(low.Max(), 100'010);
  EXPECT_NEAR(low.Mean(), (5.5 + 100'005.5) / 2, 1.0);
}

TEST(MetricsTest, HistogramValuesAboveBucketCapClampButKeepExactMax) {
  Histogram hist;
  const int64_t huge = int64_t{10'000'000'000};  // ~2.8 hours, above 2^31 us
  hist.Record(huge);
  EXPECT_EQ(hist.count(), 1u);
  // Bucketed percentiles saturate at the top bucket's upper bound...
  EXPECT_EQ(hist.Percentile(50), (int64_t{1} << 31) - 1);
  // ...while Max and the mean keep the exact value.
  EXPECT_EQ(hist.Max(), huge);
  EXPECT_NEAR(hist.Mean(), static_cast<double>(huge), 1.0);
}

TEST(MetricsTest, HistogramP999TracksTheExtremeTail) {
  Histogram hist;
  for (int i = 0; i < 995; ++i) {
    hist.Record(100);
  }
  for (int i = 0; i < 5; ++i) {
    hist.Record(1'000'000);  // a 0.5% extreme tail
  }
  // p99 sits in the bulk; p99.9 must land on the outliers' bucket.
  EXPECT_LE(hist.Percentile(99), 200);
  EXPECT_GE(hist.Percentile(99.9), 900'000);

  MetricsRegistry metrics;
  metrics.GetHistogram("tail")->Record(100);
  EXPECT_NE(metrics.Render().find("p999="), std::string::npos);
  EXPECT_NE(metrics.RenderPrometheus().find("{quantile=\"0.999\"}"), std::string::npos);
}

TEST(MetricsTest, HistogramCustomBucketBounds) {
  // Bucket i covers (bounds[i-1], bounds[i]]; an implicit overflow bucket
  // saturates at the last bound.
  Histogram hist({10, 100, 1000});
  hist.Record(5);      // -> (.., 10]
  hist.Record(50);     // -> (10, 100]
  hist.Record(500);    // -> (100, 1000]
  hist.Record(50'000); // -> overflow
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.Percentile(20), 10);
  EXPECT_EQ(hist.Percentile(45), 100);
  EXPECT_EQ(hist.Percentile(70), 1000);
  // Percentiles saturate at the last bound; Max keeps the exact value.
  EXPECT_EQ(hist.Percentile(99), 1000);
  EXPECT_EQ(hist.Max(), 50'000);
}

TEST(MetricsTest, HistogramInvalidCustomBoundsFallBackToDefaultLayout) {
  Histogram unsorted({100, 10});  // not strictly increasing
  unsorted.Record(500);
  EXPECT_GE(unsorted.Percentile(50), 400);  // default log-bucket resolution
  Histogram negative({-5, 10});
  negative.Record(7);
  EXPECT_LE(negative.Percentile(50), 10);
}

TEST(MetricsTest, HistogramMergeAcrossLayoutsReBuckets) {
  Histogram coarse({100, 10'000});
  Histogram fine;  // default layout
  fine.Record(50);
  fine.Record(5'000);
  coarse.Merge(fine);
  EXPECT_EQ(coarse.count(), 2u);
  // Each merged sample lands at its source bucket's upper bound, re-bucketed
  // into the coarse layout.
  EXPECT_EQ(coarse.Percentile(25), 100);
  EXPECT_EQ(coarse.Percentile(95), 10'000);
}

TEST(MetricsTest, RegistryCustomBoundsFirstRegistrationWins) {
  MetricsRegistry metrics;
  Histogram* first = metrics.GetHistogram("lat", {10, 100});
  Histogram* second = metrics.GetHistogram("lat", {1, 2, 3});
  Histogram* plain = metrics.GetHistogram("lat");
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, plain);
  EXPECT_EQ(first->bucket_bounds(), (std::vector<int64_t>{10, 100}));
}

TEST(MetricsTest, HistogramConcurrentRecordVersusMerge) {
  Histogram src;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&src, t] {
      for (int i = 0; i < kPerThread; ++i) {
        src.Record(t * 1000 + (i % 997));
      }
    });
  }
  // Merge while the writers hammer the source: every snapshot must be
  // internally sane even though it is not a point-in-time cut.
  for (int round = 0; round < 50; ++round) {
    Histogram snapshot;
    snapshot.Merge(src);
    EXPECT_LE(snapshot.count(), uint64_t{kThreads} * kPerThread);
    EXPECT_LE(snapshot.Percentile(50), snapshot.Percentile(99));
    EXPECT_GE(snapshot.Mean(), 0.0);
  }
  for (auto& writer : writers) {
    writer.join();
  }
  Histogram final_merge;
  final_merge.Merge(src);
  EXPECT_EQ(final_merge.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(final_merge.Max(), src.Max());
}

TEST(MetricsTest, GaugeSetAddResetMerge) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);

  Gauge other;
  other.Set(5);
  gauge.Merge(other);  // fleet aggregation sums per-server gauges
  EXPECT_EQ(gauge.value(), 12);

  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
  gauge.Add(-4);  // gauges go negative (e.g. lag measured the other way)
  EXPECT_EQ(gauge.value(), -4);
}

TEST(MetricsTest, GaugeRendersInBothExpositionFormats) {
  MetricsRegistry registry;
  registry.GetGauge("queue.depth")->Set(-3);
  EXPECT_NE(registry.Render().find("queue.depth gauge=-3"), std::string::npos);
  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("queue_depth -3"), std::string::npos);
}

TEST(MetricsTest, RegistryCreatesLazily) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ops");
  c->Increment(3);
  EXPECT_EQ(registry.GetCounter("ops")->value(), 3u);
  registry.GetHistogram("lat")->Record(5);
  EXPECT_NE(registry.Render().find("ops value=3"), std::string::npos);
}

// --- checksum ---

TEST(ChecksumTest, OrderIndependent) {
  IncrementalChecksum a;
  IncrementalChecksum b;
  a.Add("k1", "v1");
  a.Add("k2", "v2");
  b.Add("k2", "v2");
  b.Add("k1", "v1");
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(ChecksumTest, AddRemoveRestores) {
  IncrementalChecksum check;
  check.Add("k1", "v1");
  const uint64_t before = check.digest();
  check.Add("k2", "v2");
  check.Remove("k2", "v2");
  EXPECT_EQ(check.digest(), before);
}

TEST(ChecksumTest, KeyValueBoundaryMatters) {
  EXPECT_NE(IncrementalChecksum::PairHash("ab", "c"), IncrementalChecksum::PairHash("a", "bc"));
}

TEST(ChecksumTest, DifferentContentsDiffer) {
  IncrementalChecksum a;
  IncrementalChecksum b;
  a.Add("k", "v1");
  b.Add("k", "v2");
  EXPECT_NE(a.digest(), b.digest());
}

// --- clock ---

TEST(ClockTest, SimClockAdvance) {
  SimClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
}

TEST(ClockTest, SimClockWakesSleepers) {
  SimClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.SleepMicros(1000);
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(woke.load());
  clock.Advance(1000);
  sleeper.join();
  EXPECT_TRUE(woke.load());
}

TEST(ClockTest, SkewedClockOffsets) {
  SimClock base(1000);
  SkewedClock skewed(&base, 250);
  EXPECT_EQ(skewed.NowMicros(), 1250);
  skewed.set_skew_micros(-250);
  EXPECT_EQ(skewed.NowMicros(), 750);
}

// --- blocking queue ---

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
}

TEST(BlockingQueueTest, CloseDrainsAndStops) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BlockingQueueTest, PopBlocksForPush) {
  BlockingQueue<int> queue;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.Push(42);
  });
  EXPECT_EQ(queue.Pop().value(), 42);
  producer.join();
}

// --- scheduler ---

TEST(SchedulerTest, RunsAfterDelay) {
  TimerScheduler scheduler;
  std::atomic<bool> ran{false};
  const int64_t start = RealClock::Instance()->NowMicros();
  std::atomic<int64_t> ran_at{0};
  scheduler.Schedule(5000, [&] {
    ran_at = RealClock::Instance()->NowMicros();
    ran = true;
  });
  while (!ran.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ran_at.load() - start, 4500);
}

TEST(SchedulerTest, OrdersByDeadline) {
  TimerScheduler scheduler;
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> done{0};
  scheduler.Schedule(10000, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
    ++done;
  });
  scheduler.Schedule(2000, [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
    ++done;
  });
  while (done.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, StringLength) {
  Rng rng(1);
  EXPECT_EQ(rng.String(16).size(), 16u);
}

// --- log entry decode fuzz ---

// Seeded mutation fuzz over the zero-copy entry decoder: start from valid
// serialized entries, flip/truncate/extend bytes, and require that Parse
// either succeeds (in which case Materialize and header lookups must be
// safe) or throws SerdeError — never anything else, never a crash or an
// unbounded allocation. The apply pipeline feeds raw log bytes straight into
// this decoder, so on a torn or corrupted log record this is the line
// between a DeterministicError the engine can handle and undefined behavior.
TEST(LogEntryFuzzTest, MutatedEntriesEitherParseOrThrowSerdeError) {
  Rng rng(20260806);

  // A corpus of valid encodings of varying shape.
  std::vector<std::string> corpus;
  {
    LogEntry plain;
    plain.payload = "hello world, this is a payload";
    corpus.push_back(plain.Serialize());

    LogEntry with_headers;
    with_headers.payload = rng.String(200);
    with_headers.SetHeader("base", EngineHeader{kMsgTypeApp, rng.String(24)});
    with_headers.SetHeader("batching", EngineHeader{3, rng.String(64)});
    with_headers.SetHeader("sessionorder", EngineHeader{1, ""});
    corpus.push_back(with_headers.Serialize());

    LogEntry empty;
    corpus.push_back(empty.Serialize());
  }

  int parsed = 0;
  int rejected = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    std::string bytes = corpus[static_cast<size_t>(rng.Uniform(0, corpus.size() - 1))];
    const int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      switch (rng.Uniform(0, 3)) {
        case 0:  // flip a byte
          if (!bytes.empty()) {
            const auto at = static_cast<size_t>(rng.Uniform(0, bytes.size() - 1));
            bytes[at] = static_cast<char>(rng.Uniform(0, 255));
          }
          break;
        case 1:  // truncate
          bytes.resize(static_cast<size_t>(rng.Uniform(0, bytes.size())));
          break;
        case 2:  // splice random garbage into the middle
          bytes.insert(static_cast<size_t>(rng.Uniform(0, bytes.size())),
                       rng.String(static_cast<size_t>(rng.Uniform(1, 8))));
          break;
        default:  // append trailing garbage
          bytes += rng.String(static_cast<size_t>(rng.Uniform(1, 16)));
          break;
      }
    }

    try {
      const LogEntryView view = LogEntryView::Parse(bytes);
      // A successful parse must yield a fully usable view.
      const LogEntry owned = view.Materialize();
      EXPECT_EQ(owned.payload, view.payload);
      EXPECT_EQ(owned.headers.size(), view.headers.size());
      for (const auto& [name, blob] : view.headers) {
        EXPECT_TRUE(view.HasHeader(name));
        (void)blob;
      }
      ++parsed;
    } catch (const SerdeError&) {
      ++rejected;  // the only acceptable failure mode
    }
  }
  // The corpus mutation mix lands on both sides; if either count collapses
  // to ~zero the fuzz stopped exercising anything.
  EXPECT_GT(parsed, 25);
  EXPECT_GT(rejected, 100);
}

}  // namespace
}  // namespace delos
