// TimeEngine tests (distributed timers, quorum firing, time-based trimming)
// and LeaseEngine tests (0-RTT reads, designated-proposer enforcement, live
// enable/disable, takeover, and the clock-skew safety property).
#include <gtest/gtest.h>

#include <thread>

#include "src/core/base_engine.h"
#include "src/engines/lease_engine.h"
#include "src/engines/time_engine.h"
#include "src/sharedlog/chaos_log.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

class KvApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    if (!entry.payload.empty()) {
      txn.Put("kv/" + entry.payload, std::to_string(pos));
    }
    return std::any(pos);
  }
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

// --- TimeEngine ---

struct TimeServer {
  TimeServer(const std::string& id, std::shared_ptr<ISharedLog> log, int quorum, Clock* clock) {
    BaseEngineOptions base_options;
    base_options.server_id = id;
    base = std::make_unique<BaseEngine>(std::move(log), &store, base_options);
    TimeEngine::Options options;
    options.server_id = id;
    options.quorum = quorum;
    options.clock = clock;
    time = std::make_unique<TimeEngine>(options, base.get(), &store);
    time->RegisterUpcall(&app);
    base->Start();
  }
  ~TimeServer() {
    base->Stop();
    time.reset();
  }

  LocalStore store;
  KvApplicator app;
  std::unique_ptr<BaseEngine> base;
  std::unique_ptr<TimeEngine> time;
};

TEST(TimeEngineTest, TimerFiresAfterQuorumElapsed) {
  auto log = std::make_shared<InMemoryLog>();
  TimeServer a("a", log, /*quorum=*/2, RealClock::Instance());
  TimeServer b("b", log, 2, RealClock::Instance());

  std::atomic<bool> fired_a{false};
  a.time->OnFire([&](const std::string& id, LogPos) { fired_a = id == "t1"; });
  a.time->CreateTimer("t1", /*duration_micros=*/5000).Get();
  // b must observe the creation to start its countdown.
  b.base->Sync().Get();

  const int64_t deadline = RealClock::Instance()->NowMicros() + 3'000'000;
  while (!fired_a.load() && RealClock::Instance()->NowMicros() < deadline) {
    // Both servers need applied entries to observe the ELAPSED commands.
    a.base->Sync().Get();
    b.base->Sync().Get();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fired_a.load());
  EXPECT_TRUE(a.time->IsFired("t1"));
  b.base->Sync().Get();
  EXPECT_TRUE(b.time->IsFired("t1"));
}

TEST(TimeEngineTest, TimerWaitsForQuorumNotOneServer) {
  // quorum=2 but only one server exists: the timer must not fire.
  auto log = std::make_shared<InMemoryLog>();
  TimeServer a("a", log, /*quorum=*/2, RealClock::Instance());
  a.time->CreateTimer("t1", 1000).Get();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  a.base->Sync().Get();
  EXPECT_FALSE(a.time->IsFired("t1"));
}

TEST(TimeEngineTest, DuplicateElapsedFromOneServerCountsOnce) {
  auto log = std::make_shared<InMemoryLog>();
  TimeServer a("a", log, /*quorum=*/1, RealClock::Instance());
  a.time->CreateTimer("t1", 1000).Get();
  const int64_t deadline = RealClock::Instance()->NowMicros() + 2'000'000;
  while (!a.time->IsFired("t1") && RealClock::Instance()->NowMicros() < deadline) {
    a.base->Sync().Get();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(a.time->IsFired("t1"));
}

TEST(TimeEngineTest, TimedTrimmerReleasesPrefix) {
  auto log = std::make_shared<InMemoryLog>();
  TimeServer a("a", log, /*quorum=*/1, RealClock::Instance());
  for (int i = 0; i < 5; ++i) {
    a.time->Propose(PayloadEntry("k" + std::to_string(i))).Get();
  }
  a.base->FlushNow();
  TimedTrimmer trimmer(a.time.get(), a.time.get());
  trimmer.ScheduleTrim(5, /*delay_micros=*/2000);
  const int64_t deadline = RealClock::Instance()->NowMicros() + 2'000'000;
  while (log->trim_prefix() < 5 && RealClock::Instance()->NowMicros() < deadline) {
    a.base->Sync().Get();
    a.base->FlushNow();
    a.base->TrimNow();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(log->trim_prefix(), 5u);
}

// --- LeaseEngine ---

struct LeaseServer {
  LeaseServer(const std::string& id, std::shared_ptr<ISharedLog> log, Clock* clock,
              int64_t ttl = 200'000, int64_t eps = 40'000, bool auto_renew = true) {
    BaseEngineOptions base_options;
    base_options.server_id = id;
    base = std::make_unique<BaseEngine>(std::move(log), &store, base_options);
    LeaseEngine::Options options;
    options.server_id = id;
    options.lease_ttl_micros = ttl;
    options.guard_epsilon_micros = eps;
    options.auto_renew = auto_renew;
    options.clock = clock;
    lease = std::make_unique<LeaseEngine>(options, base.get(), &store);
    lease->RegisterUpcall(&app);
    base->Start();
  }
  ~LeaseServer() {
    base->Stop();
    lease.reset();
  }

  LocalStore store;
  KvApplicator app;
  std::unique_ptr<BaseEngine> base;
  std::unique_ptr<LeaseEngine> lease;
};

TEST(LeaseEngineTest, AcquireGrantsAndSyncIsLocal) {
  auto inner = std::make_shared<InMemoryLog>();
  // Make tail checks visibly slow so the 0-RTT path is distinguishable.
  auto log = std::make_shared<DelayedLog>(inner, DelayedLog::Delays{.tail_check_micros = 5000});
  LeaseServer a("a", log, RealClock::Instance());

  a.lease->Propose(PayloadEntry("w1")).Get();
  EXPECT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));
  EXPECT_TRUE(a.lease->HoldsValidLease());
  EXPECT_EQ(a.lease->CurrentHolder(), "a");

  const int64_t start = RealClock::Instance()->NowMicros();
  ROTxn snap = a.lease->Sync().Get();
  const int64_t elapsed = RealClock::Instance()->NowMicros() - start;
  EXPECT_LT(elapsed, 4000);  // no tail check: local read
  EXPECT_TRUE(snap.Get("kv/w1").has_value());
}

TEST(LeaseEngineTest, NonHolderProposalsRejected) {
  auto log = std::make_shared<InMemoryLog>();
  LeaseServer a("a", log, RealClock::Instance());
  LeaseServer b("b", log, RealClock::Instance());

  ASSERT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));
  b.base->Sync().Get();
  EXPECT_THROW(b.lease->Propose(PayloadEntry("intruder")).Get(), ProposeRejectedError);
  // The holder still writes fine.
  a.lease->Propose(PayloadEntry("fine")).Get();
  EXPECT_TRUE(a.store.Snapshot().Get("kv/fine").has_value());
  EXPECT_FALSE(a.store.Snapshot().Get("kv/intruder").has_value());
}

TEST(LeaseEngineTest, HolderReadsReflectAllCompletedWrites) {
  auto log = std::make_shared<InMemoryLog>();
  LeaseServer a("a", log, RealClock::Instance());
  LeaseServer b("b", log, RealClock::Instance());
  // Writes from b BEFORE the lease exists...
  b.lease->Propose(PayloadEntry("pre-lease")).Get();
  // ...must be visible through a's 0-RTT reads after it acquires.
  ASSERT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));
  ROTxn snap = a.lease->Sync().Get();
  EXPECT_TRUE(snap.Get("kv/pre-lease").has_value());
}

TEST(LeaseEngineTest, DisableRestoresQuorumReads) {
  auto inner = std::make_shared<InMemoryLog>();
  auto log = std::make_shared<DelayedLog>(inner, DelayedLog::Delays{.tail_check_micros = 3000});
  LeaseServer a("a", log, RealClock::Instance());
  ASSERT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));

  int64_t start = RealClock::Instance()->NowMicros();
  a.lease->Sync().Get();
  EXPECT_LT(RealClock::Instance()->NowMicros() - start, 2500);

  a.lease->DisableViaLog();
  start = RealClock::Instance()->NowMicros();
  a.lease->Sync().Get();
  EXPECT_GE(RealClock::Instance()->NowMicros() - start, 3000);

  // Writes from anyone work again while disabled.
  a.lease->Propose(PayloadEntry("open")).Get();
  EXPECT_TRUE(a.store.Snapshot().Get("kv/open").has_value());
}

TEST(LeaseEngineTest, TakeoverAfterHolderStopsRenewing) {
  auto log = std::make_shared<InMemoryLog>();
  LeaseServer b("b", log, RealClock::Instance(), /*ttl=*/50'000, /*eps=*/10'000);
  {
    LeaseServer a("a", log, RealClock::Instance(), 50'000, 10'000);
    ASSERT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));
    b.base->Sync().Get();
    EXPECT_EQ(b.lease->CurrentHolder(), "a");
    // a dies (stops renewing) when this scope ends.
  }
  // b waits out the lease, expires it via the log, and takes over. One
  // attempt can legitimately abort: 'a' auto-renews, and a renewal issued
  // just before 'a' died may reach b's apply thread mid-wait (the abort-on-
  // renewal behavior itself is TakeoverAbortsIfHolderRenews's subject). The
  // dead holder never renews again, so retrying must converge.
  bool took_over = false;
  for (int attempt = 0; attempt < 5 && !took_over; ++attempt) {
    took_over = b.lease->TryTakeover();
  }
  EXPECT_TRUE(took_over);
  EXPECT_EQ(b.lease->CurrentHolder(), "b");
  b.lease->Propose(PayloadEntry("b-writes")).Get();
  EXPECT_TRUE(b.store.Snapshot().Get("kv/b-writes").has_value());
}

TEST(LeaseEngineTest, TakeoverAbortsIfHolderRenews) {
  auto log = std::make_shared<InMemoryLog>();
  LeaseServer a("a", log, RealClock::Instance(), /*ttl=*/60'000, /*eps=*/10'000,
                /*auto_renew=*/true);
  LeaseServer b("b", log, RealClock::Instance(), 60'000, 10'000, false);
  ASSERT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));
  // a keeps renewing in the background, so b's takeover must keep failing.
  std::thread syncer([&] {
    for (int i = 0; i < 50; ++i) {
      b.base->Sync().Get();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  EXPECT_FALSE(b.lease->TryTakeover());
  syncer.join();
  EXPECT_EQ(b.lease->CurrentHolder(), "a");
}

// Clock-skew safety property: with guard epsilon >= the skew bound, a read
// served locally by the (old) holder can never miss a write committed by a
// new holder. We place the holder on a fast-running clock (worst case) and
// verify it stops serving local reads before the expirer can free the lease.
TEST(LeaseEngineProperty, GuardEpsilonPreventsStaleReadsUnderSkew) {
  constexpr int64_t kTtl = 80'000;
  constexpr int64_t kSkew = 20'000;

  auto log = std::make_shared<InMemoryLog>();
  RealClock* real = RealClock::Instance();
  // Holder's clock runs AHEAD by kSkew: it thinks time passed faster, so it
  // gives up the lease early — the safe direction. Guard must cover skew.
  SkewedClock holder_clock(real, kSkew);
  LeaseServer a("a", log, &holder_clock, kTtl, /*eps=*/kSkew + 5000, /*auto_renew=*/false);
  LeaseServer b("b", log, real, kTtl, kSkew + 5000, false);

  ASSERT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));
  b.base->Sync().Get();

  // b expires + acquires as soon as its own clock allows.
  std::thread taker([&] { ASSERT_TRUE(b.lease->TryTakeover()); });

  // While b is waiting, continuously verify: whenever a serves a 0-RTT read,
  // b must NOT yet have committed any write.
  bool violation = false;
  while (b.lease->CurrentHolder() != "b") {
    if (a.lease->HoldsValidLease()) {
      ROTxn snap = a.store.Snapshot();
      if (snap.Get("kv/b-write").has_value()) {
        // a still considers its lease valid but b already wrote: if a had
        // answered a local read it could have missed this write.
        violation = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  taker.join();
  b.lease->Propose(PayloadEntry("b-write")).Get();
  // After the takeover, a's local validity must already be over.
  EXPECT_FALSE(a.lease->HoldsValidLease());
  EXPECT_FALSE(violation);
}

}  // namespace
}  // namespace delos
