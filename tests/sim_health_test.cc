// Deterministic stall detection: under an injected clock, a wedged apply
// thread must be flagged DEGRADED then UNHEALTHY within a bounded number of
// watchdog windows — on every seed — and a fault-free workload sweep must
// produce zero non-OK transitions (no false positives).
//
// The watchdog's background thread is never started here; the test drives
// Evaluate() directly, one call per 250ms simulated window, so detection
// latency is measured in windows, not wall seconds, and the verdict is a
// pure function of the schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/apps/zelos/zelos.h"
#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/metrics_ts.h"
#include "src/common/trace.h"
#include "src/core/base_engine.h"
#include "src/core/cluster.h"
#include "src/core/health.h"
#include "src/engines/stacks.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

constexpr int64_t kWindowMicros = 250'000;

// Applicator whose apply thread wedges on a designated payload until
// released — the injected stall.
class StallableApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    if (entry.payload == "stall") {
      in_stall_.store(true, std::memory_order_release);
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return released_; });
    }
    txn.Put("k/" + std::to_string(pos), entry.payload);
    return std::any(entry.payload);
  }
  void PostApply(const LogEntry& entry, LogPos pos) override {}

  bool in_stall() const { return in_stall_.load(std::memory_order_acquire); }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::atomic<bool> in_stall_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

// With thresholds 500ms/1.5s and 250ms windows, the stall is DEGRADED at
// window 2 and UNHEALTHY at window 6 after onset — exactly, on every seed.
TEST(SimHealthTest, InjectedApplyStallIsFlaggedWithinBoundedWindows) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimClock clock(static_cast<int64_t>(seed) * 1'000'000);
    auto log = std::make_shared<InMemoryLog>();
    LocalStore store;
    StallableApplicator app;
    BaseEngineOptions engine_options;
    engine_options.server_id = "victim";
    engine_options.clock = &clock;
    BaseEngine engine(log, &store, engine_options);
    engine.RegisterUpcall(&app);
    engine.Start();

    MetricsRegistry metrics;
    FlightRecorder recorder(128);
    TimeSeriesStore series(64);
    WatchdogOptions watchdog_options;
    watchdog_options.clock = &clock;
    watchdog_options.metrics = &metrics;
    watchdog_options.recorder = &recorder;
    watchdog_options.series = &series;
    Watchdog watchdog(watchdog_options);
    watchdog.AddTarget(&engine);

    // Seed-varied healthy prefix: everything applies, the verdict is OK.
    const int prefix_ops = 1 + static_cast<int>(seed % 5);
    for (int i = 0; i < prefix_ops; ++i) {
      engine.Propose(PayloadEntry("ok" + std::to_string(i))).Get();
    }
    auto reports = watchdog.Evaluate();
    EXPECT_EQ(AggregateHealth(reports), HealthState::kOk);
    EXPECT_EQ(watchdog.non_ok_transitions(), 0u);

    // Inject the stall and wait (real time) until the apply thread is
    // actually wedged inside Apply; simulated time has not moved yet.
    Future<std::any> stalled_propose = engine.Propose(PayloadEntry("stall"));
    while (!app.in_stall()) {
      RealClock::Instance()->SleepMicros(100);
    }

    int degraded_window = -1;
    int unhealthy_window = -1;
    for (int window = 1; window <= 8 && unhealthy_window < 0; ++window) {
      clock.Advance(kWindowMicros);
      reports = watchdog.Evaluate();
      const HealthState state = AggregateHealth(reports);
      if (state == HealthState::kDegraded && degraded_window < 0) {
        degraded_window = window;
      }
      if (state == HealthState::kUnhealthy) {
        unhealthy_window = window;
      }
    }
    // Detection is exact, not merely bounded: the schedule fixes it.
    EXPECT_EQ(degraded_window, 2);
    EXPECT_EQ(unhealthy_window, 6);
    EXPECT_EQ(watchdog.non_ok_transitions(), 2u);  // OK->DEGRADED->UNHEALTHY
    EXPECT_EQ(metrics.GetGauge("health.state.base")->value(), 2);
    EXPECT_EQ(metrics.GetGauge("health.state")->value(), 2);
    const std::string dump = recorder.Dump();
    EXPECT_NE(dump.find("base OK->DEGRADED"), std::string::npos);
    EXPECT_NE(dump.find("base DEGRADED->UNHEALTHY"), std::string::npos);
    EXPECT_NE(dump.find("apply stalled"), std::string::npos);

    // Release the stall: the proposal completes and the next pass recovers.
    app.Release();
    stalled_propose.Get();
    clock.Advance(kWindowMicros);
    reports = watchdog.Evaluate();
    EXPECT_EQ(AggregateHealth(reports), HealthState::kOk);
    EXPECT_EQ(metrics.GetGauge("health.state.base")->value(), 0);

    engine.Stop();
  }
}

// The reason text carries the measurements an operator needs: lag and age.
TEST(SimHealthTest, StallReportNamesLagAndAge) {
  SimClock clock;
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  StallableApplicator app;
  BaseEngineOptions engine_options;
  engine_options.clock = &clock;
  BaseEngine engine(log, &store, engine_options);
  engine.RegisterUpcall(&app);
  engine.Start();

  Future<std::any> stalled_propose = engine.Propose(PayloadEntry("stall"));
  while (!app.in_stall()) {
    RealClock::Instance()->SleepMicros(100);
  }
  clock.Advance(2'000'000);
  const HealthReport report = engine.HealthCheck();
  EXPECT_EQ(report.state, HealthState::kUnhealthy);
  EXPECT_NE(report.reason.find("apply stalled 2000000us"), std::string::npos);
  EXPECT_NE(report.reason.find("lag 1"), std::string::npos);
  EXPECT_EQ(report.value, 2'000'000);

  app.Release();
  stalled_propose.Get();
  engine.Stop();
}

// Fault-free sweep over the full Zelos stack: many seeds, a watchdog pass
// after every operation, and not a single non-OK transition anywhere.
TEST(SimHealthTest, FaultFreeSweepProducesZeroNonOkTransitions) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SimClock clock(static_cast<int64_t>(seed) * 10'000'000);
    std::map<std::string, std::unique_ptr<zelos::ZelosApplicator>> apps;
    Cluster::Options options;
    options.num_servers = 1;
    options.base_options.clock = &clock;
    Cluster cluster(options, [&](ClusterServer& server) {
      StackConfig config = ZelosStackConfig(nullptr);
      config.clock = &clock;
      // Size-triggered flushes: the batch timer would wait on simulated time
      // that only advances between operations.
      config.batch_max_entries = 1;
      BuildStack(server, config);
      auto app = std::make_unique<zelos::ZelosApplicator>();
      app->set_metrics(server.metrics());
      server.top()->RegisterUpcall(app.get());
      server.RegisterHealthTarget(app.get());
      apps[server.id()] = std::move(app);
    });
    ClusterServer& server = cluster.server(0);
    zelos::ZelosClient client(server.top(), apps["server0"].get());

    server.CollectHealth();
    const zelos::SessionId session = client.CreateSession();
    const int ops = 6 + static_cast<int>(seed % 5);
    for (int i = 0; i < ops; ++i) {
      if (i % 3 == 0) {
        client.Create(session, "/s" + std::to_string(seed) + "n" + std::to_string(i), "v");
      } else {
        client.SetData("/s" + std::to_string(seed) + "n0", "v" + std::to_string(i));
      }
      clock.Advance(kWindowMicros);
      const auto reports = server.CollectHealth();
      EXPECT_EQ(AggregateHealth(reports), HealthState::kOk)
          << RenderHealthJson(reports) << " at op " << i;
    }
    EXPECT_EQ(server.watchdog()->non_ok_transitions(), 0u);
    EXPECT_EQ(server.watchdog()->aggregate(), HealthState::kOk);
    EXPECT_GE(server.series()->windows_committed(), static_cast<uint64_t>(ops));
    server.Stop();
  }
}

}  // namespace
}  // namespace delos
