// Tests for the BaseEngine: replicated-RPC propose, linearizable sync with
// coalesced tail checks, exception relay, trim clamping, recovery-by-replay.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "src/core/base_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// Applicator that appends every payload to a list and echoes it back.
class EchoApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put("applied/" + std::to_string(pos), entry.payload);
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(entry.payload);
    return std::any(entry.payload);
  }
  void PostApply(const LogEntry& entry, LogPos pos) override { post_applies_.fetch_add(1); }

  std::vector<std::string> order() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }
  int post_applies() const { return post_applies_.load(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> order_;
  std::atomic<int> post_applies_{0};
};

// Applicator that throws on demand.
class ThrowingApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    if (entry.payload == "boom-deterministic") {
      txn.Put("partial", "must-roll-back");
      throw DeterministicError("boom");
    }
    if (entry.payload == "boom-nondeterministic") {
      throw std::runtime_error("platform failure");
    }
    txn.Put("ok/" + std::to_string(pos), entry.payload);
    return std::any(Unit{});
  }
};

// Log wrapper that counts tail checks (for the coalescing test).
class TailCountingLog : public ISharedLog {
 public:
  explicit TailCountingLog(std::shared_ptr<ISharedLog> inner) : inner_(std::move(inner)) {}
  Future<LogPos> Append(std::string payload) override { return inner_->Append(std::move(payload)); }
  Future<LogPos> CheckTail() override {
    tail_checks_.fetch_add(1);
    // Slow the check down so concurrent syncs pile up behind it.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return inner_->CheckTail();
  }
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override {
    return inner_->ReadRange(lo, hi);
  }
  void Trim(LogPos prefix) override { inner_->Trim(prefix); }
  LogPos trim_prefix() const override { return inner_->trim_prefix(); }
  void Seal() override { inner_->Seal(); }
  int tail_checks() const { return tail_checks_.load(); }

 private:
  std::shared_ptr<ISharedLog> inner_;
  std::atomic<int> tail_checks_{0};
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

TEST(BaseEngineTest, ProposeAppliesAndEchoes) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  std::any result = engine.Propose(PayloadEntry("hello")).Get();
  EXPECT_EQ(std::any_cast<std::string>(result), "hello");
  EXPECT_EQ(engine.applied_position(), 1u);
  EXPECT_EQ(app.post_applies(), 1);
  engine.Stop();
}

TEST(BaseEngineTest, ConcurrentProposalsAllApplyInLogOrder) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload = std::to_string(t) + ":" + std::to_string(i);
        EXPECT_EQ(std::any_cast<std::string>(engine.Propose(PayloadEntry(payload)).Get()),
                  payload);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto order = app.order();
  EXPECT_EQ(order.size(), static_cast<size_t>(kThreads * kPerThread));
  // Apply order must equal log order.
  auto records = log->ReadRange(1, kThreads * kPerThread);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(LogEntry::Deserialize(records[i].payload).payload, order[i]);
  }
  engine.Stop();
}

TEST(BaseEngineTest, SyncReflectsCompletedWrites) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  engine.Propose(PayloadEntry("w1")).Get();
  ROTxn snap = engine.Sync().Get();
  EXPECT_EQ(snap.Get("applied/1").value(), "w1");
  engine.Stop();
}

TEST(BaseEngineTest, SyncSeesRemoteWrites) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store_a;
  LocalStore store_b;
  EchoApplicator app_a;
  EchoApplicator app_b;
  BaseEngineOptions options_a;
  options_a.server_id = "a";
  BaseEngineOptions options_b;
  options_b.server_id = "b";
  BaseEngine engine_a(log, &store_a, options_a);
  BaseEngine engine_b(log, &store_b, options_b);
  engine_a.RegisterUpcall(&app_a);
  engine_b.RegisterUpcall(&app_b);
  engine_a.Start();
  engine_b.Start();

  engine_a.Propose(PayloadEntry("from-a")).Get();
  ROTxn snap = engine_b.Sync().Get();
  EXPECT_EQ(snap.Get("applied/1").value(), "from-a");
  // Replica state machines agree.
  EXPECT_EQ(store_a.Checksum(), store_b.Checksum());
  engine_a.Stop();
  engine_b.Stop();
}

TEST(BaseEngineTest, SyncsCoalesceBehindOneTailCheck) {
  auto counting = std::make_shared<TailCountingLog>(std::make_shared<InMemoryLog>());
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(counting, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  engine.Propose(PayloadEntry("seed")).Get();

  const int before = counting->tail_checks();
  constexpr int kSyncs = 32;
  std::vector<Future<ROTxn>> futures;
  futures.reserve(kSyncs);
  for (int i = 0; i < kSyncs; ++i) {
    futures.push_back(engine.Sync());
  }
  for (auto& future : futures) {
    future.Get();
  }
  const int used = counting->tail_checks() - before;
  // 32 concurrent syncs should need far fewer than 32 checks.
  EXPECT_LT(used, kSyncs / 2);
  EXPECT_GE(used, 1);
  engine.Stop();
}

TEST(BaseEngineTest, DeterministicExceptionRelayedAndRolledBack) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  ThrowingApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  EXPECT_THROW(engine.Propose(PayloadEntry("boom-deterministic")).Get(), DeterministicError);
  // The thrower's writes were rolled back, but the entry was consumed (the
  // cursor advanced) and the engine keeps going.
  EXPECT_FALSE(store.Snapshot().Get("partial").has_value());
  EXPECT_EQ(engine.applied_position(), 1u);
  engine.Propose(PayloadEntry("fine")).Get();
  EXPECT_TRUE(store.Snapshot().Get("ok/2").has_value());
  engine.Stop();
}

TEST(BaseEngineTest, NonDeterministicExceptionIsFatal) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  ThrowingApplicator app;
  std::atomic<bool> fatal{false};
  BaseEngineOptions options;
  options.fatal_handler = [&](const std::string&) { fatal = true; };
  BaseEngine engine(log, &store, options);
  engine.RegisterUpcall(&app);
  engine.Start();

  engine.Propose(PayloadEntry("boom-nondeterministic"));
  while (!fatal.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fatal.load());
  engine.Stop();
}

TEST(BaseEngineTest, InjectedCommitFaultIsFatal) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  std::atomic<bool> fatal{false};
  BaseEngineOptions options;
  options.fatal_handler = [&](const std::string&) { fatal = true; };
  BaseEngine engine(log, &store, options);
  engine.RegisterUpcall(&app);
  engine.Start();

  store.InjectCommitFault();
  engine.Propose(PayloadEntry("doomed"));
  while (!fatal.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.Stop();
}

TEST(BaseEngineTest, RecoveryReplaysFromCursor) {
  auto log = std::make_shared<InMemoryLog>();
  const std::string path = testing::TempDir() + "/base_recovery.ckpt";
  std::filesystem::remove(path);
  {
    auto store = LocalStore::Open({path});
    EchoApplicator app;
    BaseEngine engine(log, store.get(), BaseEngineOptions{});
    engine.RegisterUpcall(&app);
    engine.Start();
    engine.Propose(PayloadEntry("one")).Get();
    engine.Propose(PayloadEntry("two")).Get();
    engine.FlushNow();
    engine.Propose(PayloadEntry("three")).Get();
    engine.Stop();
    // "three" was applied but never flushed: it is lost with the crash and
    // must come back from the log.
  }
  auto store = LocalStore::Open({path});
  EXPECT_FALSE(store->Snapshot().Get("applied/3").has_value());
  EchoApplicator app;
  BaseEngine engine(log, store.get(), BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  ROTxn snap = engine.Sync().Get();
  EXPECT_EQ(snap.Get("applied/3").value(), "three");
  // Only the unflushed suffix was replayed.
  EXPECT_EQ(app.order(), std::vector<std::string>{"three"});
  engine.Stop();
  std::filesystem::remove(path);
}

TEST(BaseEngineTest, TrimClampedToDurablePosition) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  for (int i = 0; i < 10; ++i) {
    engine.Propose(PayloadEntry("e" + std::to_string(i))).Get();
  }
  // Nothing flushed yet: durable position is 0, so nothing may be trimmed.
  engine.SetTrimPrefix(10);
  engine.TrimNow();
  EXPECT_EQ(log->trim_prefix(), 0u);

  engine.FlushNow();
  engine.TrimNow();
  EXPECT_EQ(log->trim_prefix(), 10u);
  engine.Stop();
}

TEST(BaseEngineTest, NoTrimWithoutConstraint) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  engine.Propose(PayloadEntry("x")).Get();
  engine.FlushNow();
  engine.TrimNow();
  EXPECT_EQ(log->trim_prefix(), 0u);
  engine.Stop();
}

TEST(BaseEngineTest, StopFailsPendingWork) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  engine.Propose(PayloadEntry("ok")).Get();
  engine.Stop();
  EXPECT_THROW(engine.Sync().Get(), DelosError);
}

// --- group-commit pipeline ---

// The state machine must be batch-size invariant: playing the same log with
// play_batch_size 1, 8, and 128 yields byte-identical LocalStore state, even
// when records throw DeterministicError mid-batch (savepoint rollback inside
// the shared transaction must equal a rolled-back solo transaction).
TEST(BaseEngineTest, ChecksumInvariantAcrossBatchSizes) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore writer_store;
  ThrowingApplicator writer_app;
  BaseEngineOptions writer_options;
  writer_options.server_id = "writer";
  writer_options.play_batch_size = 1;
  BaseEngine writer(log, &writer_store, writer_options);
  writer.RegisterUpcall(&writer_app);
  writer.Start();
  // Interleave successful writes with deterministic failures so that large
  // batches contain rolled-back records in the middle.
  for (int i = 0; i < 100; ++i) {
    if (i % 7 == 3) {
      EXPECT_THROW(writer.Propose(PayloadEntry("boom-deterministic")).Get(), DeterministicError);
    } else {
      writer.Propose(PayloadEntry("v" + std::to_string(i))).Get();
    }
  }
  writer.Stop();

  const uint64_t want = writer_store.Checksum();
  for (const LogPos batch_size : {LogPos{1}, LogPos{8}, LogPos{128}}) {
    LocalStore store;
    ThrowingApplicator app;
    BaseEngineOptions options;
    options.server_id = "replica" + std::to_string(batch_size);
    options.play_batch_size = batch_size;
    BaseEngine replica(log, &store, options);
    replica.RegisterUpcall(&app);
    replica.Start();
    replica.Sync().Get();
    EXPECT_EQ(replica.applied_position(), 100u);
    EXPECT_EQ(store.Checksum(), want) << "batch_size=" << batch_size;
    EXPECT_EQ(replica.apply_records(), 100u);
    if (batch_size > 1) {
      // The whole backlog was available up front, so playback must have
      // grouped records instead of committing one at a time.
      EXPECT_LT(replica.apply_batches(), replica.apply_records());
    }
    replica.Stop();
  }
}

// Applicator that throws a non-deterministic error the first time it sees the
// poisoned payload, simulating a transient platform fault mid-batch.
class FaultOnceApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    if (entry.payload == "fault-once" && !faulted_.exchange(true)) {
      throw std::runtime_error("transient platform failure");
    }
    txn.Put("applied/" + std::to_string(pos), entry.payload);
    return std::any(entry.payload);
  }

 private:
  std::atomic<bool> faulted_{false};
};

// A non-deterministic failure mid-batch must abort the whole transaction:
// the store stays at the last committed batch boundary (no partial batch, no
// advanced cursor), and a restarted engine replays every record of the
// aborted batch exactly.
TEST(BaseEngineTest, FatalMidBatchAbortsWholeBatchAndReplays) {
  auto log = std::make_shared<InMemoryLog>();
  // Fill the log via a scratch writer so the records already exist before
  // the engine under test starts playing (forcing one large batch).
  {
    LocalStore scratch;
    EchoApplicator scratch_app;
    BaseEngineOptions scratch_options;
    scratch_options.server_id = "scratch";
    BaseEngine writer(log, &scratch, scratch_options);
    writer.RegisterUpcall(&scratch_app);
    writer.Start();
    for (int i = 0; i < 10; ++i) {
      writer.Propose(PayloadEntry(i == 5 ? "fault-once" : "r" + std::to_string(i))).Get();
    }
    writer.Stop();
  }

  LocalStore store;
  FaultOnceApplicator app;
  const uint64_t checksum_before = store.Checksum();
  std::atomic<bool> fatal{false};
  BaseEngineOptions options;
  options.server_id = "victim";
  options.play_batch_size = 128;
  options.fatal_handler = [&](const std::string&) { fatal = true; };
  {
    BaseEngine engine(log, &store, options);
    engine.RegisterUpcall(&app);
    engine.Start();
    engine.Sync();  // triggers playback of the 10-record backlog
    while (!fatal.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    engine.Stop();
  }
  // Records 1..5 were applied in the aborted transaction; none may be
  // visible and the cursor must not have advanced.
  EXPECT_EQ(store.Checksum(), checksum_before);
  EXPECT_FALSE(store.Snapshot().Get("applied/1").has_value());

  // Restart on the same store: the fault does not recur, and the replayed
  // batch applies all 10 records.
  BaseEngine engine(log, &store, options);
  engine.RegisterUpcall(&app);
  engine.Start();
  engine.Sync().Get();
  EXPECT_EQ(engine.applied_position(), 10u);
  for (int pos = 1; pos <= 10; ++pos) {
    EXPECT_TRUE(store.Snapshot().Get("applied/" + std::to_string(pos)).has_value()) << pos;
  }
  engine.Stop();
}

// Start/stop stress: Stop must drain in-flight append continuations before
// tearing down, so racing proposers never touch a dead engine, and every
// outstanding propose future settles (value or LogUnavailableError).
TEST(BaseEngineTest, StartStopStressWithRacingProposers) {
  for (int round = 0; round < 20; ++round) {
    auto log = std::make_shared<InMemoryLog>();
    LocalStore store;
    EchoApplicator app;
    BaseEngine engine(log, &store, BaseEngineOptions{});
    engine.RegisterUpcall(&app);
    engine.Start();

    std::vector<Future<std::any>> futures;
    std::mutex futures_mu;
    std::atomic<bool> stop_proposing{false};
    std::vector<std::thread> proposers;
    for (int t = 0; t < 3; ++t) {
      proposers.emplace_back([&, t] {
        for (int i = 0; i < 50 && !stop_proposing.load(); ++i) {
          auto future = engine.Propose(PayloadEntry(std::to_string(t) + ":" + std::to_string(i)));
          std::lock_guard<std::mutex> lock(futures_mu);
          futures.push_back(std::move(future));
        }
      });
    }
    // Stop while proposals are in flight.
    std::this_thread::sleep_for(std::chrono::microseconds(100 * (round % 5)));
    engine.Stop();
    stop_proposing = true;
    for (auto& thread : proposers) {
      thread.join();
    }
    int settled = 0;
    for (auto& future : futures) {
      try {
        future.Get();
        ++settled;
      } catch (const DelosError&) {
        ++settled;  // failed with a clean shutdown/unavailable error
      }
    }
    EXPECT_EQ(settled, static_cast<int>(futures.size()));
  }
}

}  // namespace
}  // namespace delos
