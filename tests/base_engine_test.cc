// Tests for the BaseEngine: replicated-RPC propose, linearizable sync with
// coalesced tail checks, exception relay, trim clamping, recovery-by-replay.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "src/core/base_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// Applicator that appends every payload to a list and echoes it back.
class EchoApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put("applied/" + std::to_string(pos), entry.payload);
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(entry.payload);
    return std::any(entry.payload);
  }
  void PostApply(const LogEntry& entry, LogPos pos) override { post_applies_.fetch_add(1); }

  std::vector<std::string> order() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }
  int post_applies() const { return post_applies_.load(); }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> order_;
  std::atomic<int> post_applies_{0};
};

// Applicator that throws on demand.
class ThrowingApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    if (entry.payload == "boom-deterministic") {
      txn.Put("partial", "must-roll-back");
      throw DeterministicError("boom");
    }
    if (entry.payload == "boom-nondeterministic") {
      throw std::runtime_error("platform failure");
    }
    txn.Put("ok/" + std::to_string(pos), entry.payload);
    return std::any(Unit{});
  }
};

// Log wrapper that counts tail checks (for the coalescing test).
class TailCountingLog : public ISharedLog {
 public:
  explicit TailCountingLog(std::shared_ptr<ISharedLog> inner) : inner_(std::move(inner)) {}
  Future<LogPos> Append(std::string payload) override { return inner_->Append(std::move(payload)); }
  Future<LogPos> CheckTail() override {
    tail_checks_.fetch_add(1);
    // Slow the check down so concurrent syncs pile up behind it.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return inner_->CheckTail();
  }
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override {
    return inner_->ReadRange(lo, hi);
  }
  void Trim(LogPos prefix) override { inner_->Trim(prefix); }
  LogPos trim_prefix() const override { return inner_->trim_prefix(); }
  void Seal() override { inner_->Seal(); }
  int tail_checks() const { return tail_checks_.load(); }

 private:
  std::shared_ptr<ISharedLog> inner_;
  std::atomic<int> tail_checks_{0};
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

TEST(BaseEngineTest, ProposeAppliesAndEchoes) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  std::any result = engine.Propose(PayloadEntry("hello")).Get();
  EXPECT_EQ(std::any_cast<std::string>(result), "hello");
  EXPECT_EQ(engine.applied_position(), 1u);
  EXPECT_EQ(app.post_applies(), 1);
  engine.Stop();
}

TEST(BaseEngineTest, ConcurrentProposalsAllApplyInLogOrder) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload = std::to_string(t) + ":" + std::to_string(i);
        EXPECT_EQ(std::any_cast<std::string>(engine.Propose(PayloadEntry(payload)).Get()),
                  payload);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto order = app.order();
  EXPECT_EQ(order.size(), static_cast<size_t>(kThreads * kPerThread));
  // Apply order must equal log order.
  auto records = log->ReadRange(1, kThreads * kPerThread);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(LogEntry::Deserialize(records[i].payload).payload, order[i]);
  }
  engine.Stop();
}

TEST(BaseEngineTest, SyncReflectsCompletedWrites) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  engine.Propose(PayloadEntry("w1")).Get();
  ROTxn snap = engine.Sync().Get();
  EXPECT_EQ(snap.Get("applied/1").value(), "w1");
  engine.Stop();
}

TEST(BaseEngineTest, SyncSeesRemoteWrites) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store_a;
  LocalStore store_b;
  EchoApplicator app_a;
  EchoApplicator app_b;
  BaseEngineOptions options_a;
  options_a.server_id = "a";
  BaseEngineOptions options_b;
  options_b.server_id = "b";
  BaseEngine engine_a(log, &store_a, options_a);
  BaseEngine engine_b(log, &store_b, options_b);
  engine_a.RegisterUpcall(&app_a);
  engine_b.RegisterUpcall(&app_b);
  engine_a.Start();
  engine_b.Start();

  engine_a.Propose(PayloadEntry("from-a")).Get();
  ROTxn snap = engine_b.Sync().Get();
  EXPECT_EQ(snap.Get("applied/1").value(), "from-a");
  // Replica state machines agree.
  EXPECT_EQ(store_a.Checksum(), store_b.Checksum());
  engine_a.Stop();
  engine_b.Stop();
}

TEST(BaseEngineTest, SyncsCoalesceBehindOneTailCheck) {
  auto counting = std::make_shared<TailCountingLog>(std::make_shared<InMemoryLog>());
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(counting, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  engine.Propose(PayloadEntry("seed")).Get();

  const int before = counting->tail_checks();
  constexpr int kSyncs = 32;
  std::vector<Future<ROTxn>> futures;
  futures.reserve(kSyncs);
  for (int i = 0; i < kSyncs; ++i) {
    futures.push_back(engine.Sync());
  }
  for (auto& future : futures) {
    future.Get();
  }
  const int used = counting->tail_checks() - before;
  // 32 concurrent syncs should need far fewer than 32 checks.
  EXPECT_LT(used, kSyncs / 2);
  EXPECT_GE(used, 1);
  engine.Stop();
}

TEST(BaseEngineTest, DeterministicExceptionRelayedAndRolledBack) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  ThrowingApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();

  EXPECT_THROW(engine.Propose(PayloadEntry("boom-deterministic")).Get(), DeterministicError);
  // The thrower's writes were rolled back, but the entry was consumed (the
  // cursor advanced) and the engine keeps going.
  EXPECT_FALSE(store.Snapshot().Get("partial").has_value());
  EXPECT_EQ(engine.applied_position(), 1u);
  engine.Propose(PayloadEntry("fine")).Get();
  EXPECT_TRUE(store.Snapshot().Get("ok/2").has_value());
  engine.Stop();
}

TEST(BaseEngineTest, NonDeterministicExceptionIsFatal) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  ThrowingApplicator app;
  std::atomic<bool> fatal{false};
  BaseEngineOptions options;
  options.fatal_handler = [&](const std::string&) { fatal = true; };
  BaseEngine engine(log, &store, options);
  engine.RegisterUpcall(&app);
  engine.Start();

  engine.Propose(PayloadEntry("boom-nondeterministic"));
  while (!fatal.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fatal.load());
  engine.Stop();
}

TEST(BaseEngineTest, InjectedCommitFaultIsFatal) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  std::atomic<bool> fatal{false};
  BaseEngineOptions options;
  options.fatal_handler = [&](const std::string&) { fatal = true; };
  BaseEngine engine(log, &store, options);
  engine.RegisterUpcall(&app);
  engine.Start();

  store.InjectCommitFault();
  engine.Propose(PayloadEntry("doomed"));
  while (!fatal.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.Stop();
}

TEST(BaseEngineTest, RecoveryReplaysFromCursor) {
  auto log = std::make_shared<InMemoryLog>();
  const std::string path = testing::TempDir() + "/base_recovery.ckpt";
  std::filesystem::remove(path);
  {
    auto store = LocalStore::Open({path});
    EchoApplicator app;
    BaseEngine engine(log, store.get(), BaseEngineOptions{});
    engine.RegisterUpcall(&app);
    engine.Start();
    engine.Propose(PayloadEntry("one")).Get();
    engine.Propose(PayloadEntry("two")).Get();
    engine.FlushNow();
    engine.Propose(PayloadEntry("three")).Get();
    engine.Stop();
    // "three" was applied but never flushed: it is lost with the crash and
    // must come back from the log.
  }
  auto store = LocalStore::Open({path});
  EXPECT_FALSE(store->Snapshot().Get("applied/3").has_value());
  EchoApplicator app;
  BaseEngine engine(log, store.get(), BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  ROTxn snap = engine.Sync().Get();
  EXPECT_EQ(snap.Get("applied/3").value(), "three");
  // Only the unflushed suffix was replayed.
  EXPECT_EQ(app.order(), std::vector<std::string>{"three"});
  engine.Stop();
  std::filesystem::remove(path);
}

TEST(BaseEngineTest, TrimClampedToDurablePosition) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  for (int i = 0; i < 10; ++i) {
    engine.Propose(PayloadEntry("e" + std::to_string(i))).Get();
  }
  // Nothing flushed yet: durable position is 0, so nothing may be trimmed.
  engine.SetTrimPrefix(10);
  engine.TrimNow();
  EXPECT_EQ(log->trim_prefix(), 0u);

  engine.FlushNow();
  engine.TrimNow();
  EXPECT_EQ(log->trim_prefix(), 10u);
  engine.Stop();
}

TEST(BaseEngineTest, NoTrimWithoutConstraint) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  engine.Propose(PayloadEntry("x")).Get();
  engine.FlushNow();
  engine.TrimNow();
  EXPECT_EQ(log->trim_prefix(), 0u);
  engine.Stop();
}

TEST(BaseEngineTest, StopFailsPendingWork) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine engine(log, &store, BaseEngineOptions{});
  engine.RegisterUpcall(&app);
  engine.Start();
  engine.Propose(PayloadEntry("ok")).Get();
  engine.Stop();
  EXPECT_THROW(engine.Sync().Get(), DelosError);
}

}  // namespace
}  // namespace delos
