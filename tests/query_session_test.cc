// Tests for the DelosTable query layer (planner + execution) and the Zelos
// SessionMonitor (heartbeat-driven session expiry via the log).
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/delostable/query.h"
#include "src/apps/zelos/session_monitor.h"
#include "src/core/base_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// --- query layer ---

class QueryTest : public testing::Test {
 protected:
  QueryTest() {
    log_ = std::make_shared<InMemoryLog>();
    base_ = std::make_unique<BaseEngine>(log_, &store_, BaseEngineOptions{});
    base_->RegisterUpcall(&applicator_);
    base_->Start();
    client_ = std::make_unique<table::TableClient>(base_.get());
    engine_ = std::make_unique<table::QueryEngine>(client_.get());

    table::TableSchema schema;
    schema.name = "emp";
    schema.columns = {{"id", table::ValueType::kInt64},
                      {"name", table::ValueType::kString},
                      {"dept", table::ValueType::kString},
                      {"salary", table::ValueType::kInt64}};
    schema.primary_key = "id";
    schema.secondary_indexes = {"dept"};
    client_->CreateTable(schema);
    const char* depts[] = {"eng", "sales", "eng", "hr", "eng", "sales", "hr", "eng"};
    for (int64_t i = 0; i < 8; ++i) {
      client_->Insert("emp", {{"id", table::Value{i}},
                              {"name", table::Value{std::string("emp") + std::to_string(i)}},
                              {"dept", table::Value{std::string(depts[i])}},
                              {"salary", table::Value{int64_t{50000 + i * 10000}}}});
    }
  }
  ~QueryTest() override { base_->Stop(); }

  static table::Predicate Pred(const std::string& col, table::Predicate::Op op,
                               table::Value value) {
    return table::Predicate{col, op, std::move(value)};
  }

  std::shared_ptr<InMemoryLog> log_;
  LocalStore store_;
  table::TableApplicator applicator_;
  std::unique_ptr<BaseEngine> base_;
  std::unique_ptr<table::TableClient> client_;
  std::unique_ptr<table::QueryEngine> engine_;
};

TEST_F(QueryTest, EqualityOnIndexedColumnUsesIndex) {
  table::Query query;
  query.table = "emp";
  query.predicates = {Pred("dept", table::Predicate::Op::kEq, table::Value{std::string("eng")})};
  const auto plan = engine_->Plan(query);
  EXPECT_EQ(plan.access, table::QueryPlan::Access::kIndexLookup);
  EXPECT_EQ(plan.index_column, "dept");
  EXPECT_TRUE(plan.residual.empty());
  EXPECT_EQ(engine_->Select(query).size(), 4u);
}

TEST_F(QueryTest, IndexLookupWithResidualFilter) {
  table::Query query;
  query.table = "emp";
  query.predicates = {Pred("dept", table::Predicate::Op::kEq, table::Value{std::string("eng")}),
                      Pred("salary", table::Predicate::Op::kGt, table::Value{int64_t{60000}})};
  const auto plan = engine_->Plan(query);
  EXPECT_EQ(plan.access, table::QueryPlan::Access::kIndexLookup);
  EXPECT_EQ(plan.residual.size(), 1u);
  const auto rows = engine_->Select(query);
  EXPECT_EQ(rows.size(), 3u);  // ids 2, 4, 7 (salary 70k, 90k, 120k)
  for (const auto& row : rows) {
    EXPECT_GT(std::get<int64_t>(row.at("salary")), 60000);
    EXPECT_EQ(std::get<std::string>(row.at("dept")), "eng");
  }
}

TEST_F(QueryTest, PkRangeUsesBoundedScan) {
  table::Query query;
  query.table = "emp";
  query.predicates = {Pred("id", table::Predicate::Op::kGe, table::Value{int64_t{2}}),
                      Pred("id", table::Predicate::Op::kLt, table::Value{int64_t{6}})};
  const auto plan = engine_->Plan(query);
  EXPECT_EQ(plan.access, table::QueryPlan::Access::kPkRange);
  ASSERT_TRUE(plan.pk_lower.has_value());
  ASSERT_TRUE(plan.pk_upper.has_value());
  const auto rows = engine_->Select(query);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(std::get<int64_t>(rows.front().at("id")), 2);
  EXPECT_EQ(std::get<int64_t>(rows.back().at("id")), 5);
}

TEST_F(QueryTest, StrictLowerBoundFiltersExactly) {
  table::Query query;
  query.table = "emp";
  query.predicates = {Pred("id", table::Predicate::Op::kGt, table::Value{int64_t{5}})};
  const auto rows = engine_->Select(query);
  ASSERT_EQ(rows.size(), 2u);  // 6, 7 (strict)
  EXPECT_EQ(std::get<int64_t>(rows.front().at("id")), 6);
}

TEST_F(QueryTest, NonIndexedPredicateFallsBackToFullScan) {
  table::Query query;
  query.table = "emp";
  query.predicates = {
      Pred("name", table::Predicate::Op::kEq, table::Value{std::string("emp3")})};
  const auto plan = engine_->Plan(query);
  EXPECT_EQ(plan.access, table::QueryPlan::Access::kFullScan);
  const auto rows = engine_->Select(query);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(rows.front().at("id")), 3);
}

TEST_F(QueryTest, LimitAndCount) {
  table::Query query;
  query.table = "emp";
  query.predicates = {Pred("salary", table::Predicate::Op::kGe, table::Value{int64_t{0}})};
  query.limit = 3;
  EXPECT_EQ(engine_->Select(query).size(), 3u);
  query.limit = SIZE_MAX;
  EXPECT_EQ(engine_->Count(query), 8u);
}

TEST_F(QueryTest, NotEqualsAndEmptyResult) {
  table::Query query;
  query.table = "emp";
  query.predicates = {Pred("dept", table::Predicate::Op::kNe, table::Value{std::string("eng")})};
  EXPECT_EQ(engine_->Count(query), 4u);
  query.predicates = {
      Pred("dept", table::Predicate::Op::kEq, table::Value{std::string("nonexistent")})};
  EXPECT_TRUE(engine_->Select(query).empty());
}

TEST_F(QueryTest, ErrorsOnBadTableOrColumn) {
  table::Query query;
  query.table = "nope";
  EXPECT_THROW(engine_->Select(query), table::NoSuchTableError);
  query.table = "emp";
  query.predicates = {Pred("bogus", table::Predicate::Op::kEq, table::Value{int64_t{1}})};
  EXPECT_THROW(engine_->Select(query), table::SchemaError);
}

// --- session monitor ---

class SessionMonitorTest : public testing::Test {
 protected:
  SessionMonitorTest() {
    log_ = std::make_shared<InMemoryLog>();
    base_ = std::make_unique<BaseEngine>(log_, &store_, BaseEngineOptions{});
    base_->RegisterUpcall(&applicator_);
    base_->Start();
    client_ = std::make_unique<zelos::ZelosClient>(base_.get(), &applicator_);
  }
  ~SessionMonitorTest() override { base_->Stop(); }

  std::shared_ptr<InMemoryLog> log_;
  LocalStore store_;
  zelos::ZelosApplicator applicator_;
  std::unique_ptr<BaseEngine> base_;
  std::unique_ptr<zelos::ZelosClient> client_;
};

TEST_F(SessionMonitorTest, ExpiresSilentSessionAndCleansEphemerals) {
  const zelos::SessionId session = client_->CreateSession(/*timeout_micros=*/40'000);
  client_->Create(session, "/lock", "held", zelos::kEphemeral);
  ASSERT_TRUE(client_->Exists("/lock").has_value());

  zelos::SessionMonitor::Options options;
  options.check_interval_micros = 10'000;
  zelos::SessionMonitor monitor(client_.get(), &store_, options);

  const int64_t deadline = RealClock::Instance()->NowMicros() + 3'000'000;
  while (client_->Exists("/lock").has_value() &&
         RealClock::Instance()->NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(client_->Exists("/lock").has_value());
  EXPECT_GE(monitor.sessions_expired(), 1u);
}

TEST_F(SessionMonitorTest, HeartbeatsKeepSessionAlive) {
  const zelos::SessionId session = client_->CreateSession(/*timeout_micros=*/60'000);
  client_->Create(session, "/alive", "x", zelos::kEphemeral);

  zelos::SessionMonitor::Options options;
  options.check_interval_micros = 10'000;
  zelos::SessionMonitor monitor(client_.get(), &store_, options);

  // Heartbeat well inside the timeout for a while.
  for (int i = 0; i < 10; ++i) {
    client_->Heartbeat(session);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(client_->Exists("/alive").has_value()) << "iteration " << i;
  }
  EXPECT_EQ(monitor.sessions_expired(), 0u);
  // Stop heartbeating: the session dies.
  const int64_t deadline = RealClock::Instance()->NowMicros() + 3'000'000;
  while (client_->Exists("/alive").has_value() &&
         RealClock::Instance()->NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(client_->Exists("/alive").has_value());
}

TEST_F(SessionMonitorTest, ClosedSessionNeedsNoExpiry) {
  const zelos::SessionId session = client_->CreateSession(40'000);
  client_->CloseSession(session);
  zelos::SessionMonitor::Options options;
  options.check_interval_micros = 10'000;
  zelos::SessionMonitor monitor(client_.get(), &store_, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_EQ(monitor.sessions_expired(), 0u);
}

}  // namespace
}  // namespace delos
