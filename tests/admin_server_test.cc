// Admin endpoint tests: every route exercised in-process (no sockets), then
// the HTTP server itself over a real loopback connection.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "src/apps/zelos/zelos.h"
#include "src/common/trace.h"
#include "src/core/cluster.h"
#include "src/engines/stacks.h"
#include "src/net/admin_server.h"

namespace delos {
namespace {

// One Zelos server with the production-shaped stack and a short committed
// workload, so every admin surface has real content.
class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Cluster::Options options;
    options.num_servers = 1;
    options.base_options.tracer = &tracer_;
    cluster_ = std::make_unique<Cluster>(options, [&](ClusterServer& server) {
      BuildStack(server, ZelosStackConfig(nullptr));
      auto app = std::make_unique<zelos::ZelosApplicator>();
      app->set_metrics(server.metrics());
      server.top()->RegisterUpcall(app.get());
      server.RegisterHealthTarget(app.get());
      apps_[server.id()] = std::move(app);
    });
    client_ = std::make_unique<zelos::ZelosClient>(cluster_->server(0).top(),
                                                   apps_["server0"].get());
    server().CollectHealth();  // time-series baseline
    session_ = client_->CreateSession();
    for (int i = 0; i < 8; ++i) {
      client_->Create(session_, "/n" + std::to_string(i), "v");
    }
    server().top()->Sync().Get();
    server().CollectHealth();  // close a window over the workload
  }

  ClusterServer& server() { return cluster_->server(0); }

  Tracer tracer_;
  std::map<std::string, std::unique_ptr<zelos::ZelosApplicator>> apps_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<zelos::ZelosClient> client_;
  zelos::SessionId session_ = 0;
};

TEST_F(AdminServerTest, MetricsRouteServesPrometheusExposition) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("# TYPE base_apply_records counter"), std::string::npos);
  EXPECT_NE(response.body.find("zelos_open_sessions"), std::string::npos);
}

TEST_F(AdminServerTest, HealthzReportsEveryComponentOk) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"state\":\"OK\""), std::string::npos);
  EXPECT_NE(response.body.find("\"component\":\"base\""), std::string::npos);
  EXPECT_NE(response.body.find("\"component\":\"zelos\""), std::string::npos);
  EXPECT_NE(response.body.find("\"component\":\"batching\""), std::string::npos);
}

// A wedged component flips /healthz to 503 — the contract a load balancer or
// Kubernetes probe relies on.
TEST_F(AdminServerTest, HealthzReturns503WhenAnyComponentIsUnhealthy) {
  class WedgedTarget : public IHealthCheckable {
   public:
    HealthReport HealthCheck() const override {
      return HealthReport{"wedged", HealthState::kUnhealthy, "stuck", 1};
    }
  };
  WedgedTarget wedged;
  server().RegisterHealthTarget(&wedged);
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"state\":\"UNHEALTHY\""), std::string::npos);
  EXPECT_NE(response.body.find("wedged"), std::string::npos);
  server().watchdog()->RemoveTarget(&wedged);
}

TEST_F(AdminServerTest, StatusRouteRendersTheComponentTable) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/status");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("server server0: OK"), std::string::npos);
  EXPECT_NE(response.body.find("component"), std::string::npos);
  EXPECT_NE(response.body.find("base"), std::string::npos);
  EXPECT_NE(response.body.find("applied="), std::string::npos);
}

TEST_F(AdminServerTest, StackRouteRendersEnginesBottomUp) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/stack");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"server\":\"server0\""), std::string::npos);
  EXPECT_NE(response.body.find("\"applied_position\""), std::string::npos);
  // base must come before batching (bottom-up order).
  const size_t base_at = response.body.find("\"name\":\"base\"");
  const size_t batching_at = response.body.find("\"name\":\"batching\"");
  ASSERT_NE(base_at, std::string::npos);
  ASSERT_NE(batching_at, std::string::npos);
  EXPECT_LT(base_at, batching_at);
}

TEST_F(AdminServerTest, TopAndSeriesServeTheTimeSeriesRing) {
  AdminEndpoint endpoint(&server());
  const AdminResponse top = endpoint.Handle("/top");
  EXPECT_EQ(top.status, 200);
  EXPECT_NE(top.body.find("rate/s"), std::string::npos);
  EXPECT_NE(top.body.find("base.apply.records"), std::string::npos);
  const AdminResponse series = endpoint.Handle("/series");
  EXPECT_EQ(series.status, 200);
  EXPECT_EQ(series.content_type, "application/json");
  EXPECT_NE(series.body.find("\"windows\""), std::string::npos);
}

TEST_F(AdminServerTest, FlightAndTraceRoutesServeTheRecorders) {
  AdminEndpoint endpoint(&server());
  const AdminResponse flight = endpoint.Handle("/flight");
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.body.find("append"), std::string::npos);

  const uint64_t trace_id = tracer_.last_trace_id();
  ASSERT_NE(trace_id, 0u);
  const AdminResponse trace = endpoint.Handle("/trace/" + std::to_string(trace_id));
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("trace " + std::to_string(trace_id)), std::string::npos);
  EXPECT_NE(trace.body.find("base.append"), std::string::npos);
}

TEST_F(AdminServerTest, UnknownAndMalformedPathsReturn404) {
  AdminEndpoint endpoint(&server());
  EXPECT_EQ(endpoint.Handle("/nope").status, 404);
  EXPECT_EQ(endpoint.Handle("/trace/abc").status, 404);
  EXPECT_EQ(endpoint.Handle("/trace/12junk").status, 404);
  EXPECT_EQ(endpoint.Handle("").status, 404);
}

TEST_F(AdminServerTest, QueryStringsAreIgnored) {
  AdminEndpoint endpoint(&server());
  EXPECT_EQ(endpoint.Handle("/metrics?scrape=1").status, 200);
  EXPECT_EQ(endpoint.Handle("/healthz?verbose=true").status, 200);
}

TEST_F(AdminServerTest, HttpServerServesRoutesOverLoopback) {
  AdminServer admin{AdminEndpoint(&server())};
  ASSERT_TRUE(admin.Start());
  ASSERT_NE(admin.port(), 0);  // ephemeral port was bound and recovered

  int status = 0;
  std::string body;
  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/healthz", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"state\":\"OK\""), std::string::npos);

  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/metrics", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("base_apply_records"), std::string::npos);

  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/nope", &status, &body));
  EXPECT_EQ(status, 404);

  // Serial requests on fresh connections (Connection: close semantics).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/stack", &status, &body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"name\":\"base\""), std::string::npos);
  }
  admin.Stop();
  // After Stop the port no longer answers.
  EXPECT_FALSE(AdminHttpGet("127.0.0.1", admin.port(), "/healthz", &status, &body));
}

TEST_F(AdminServerTest, ServerRestartsCleanly) {
  AdminServer admin{AdminEndpoint(&server())};
  ASSERT_TRUE(admin.Start());
  const uint16_t first_port = admin.port();
  admin.Stop();
  ASSERT_TRUE(admin.Start());  // rebind (possibly a different ephemeral port)
  int status = 0;
  std::string body;
  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/status", &status, &body));
  EXPECT_EQ(status, 200);
  admin.Stop();
  (void)first_port;
}

}  // namespace
}  // namespace delos
