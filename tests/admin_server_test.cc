// Admin endpoint tests: every route exercised in-process (no sockets), then
// the HTTP server itself over a real loopback connection.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "src/apps/zelos/zelos.h"
#include "src/common/trace.h"
#include "src/core/cluster.h"
#include "src/engines/stacks.h"
#include "src/net/admin_server.h"

namespace delos {
namespace {

// One Zelos server with the production-shaped stack and a short committed
// workload, so every admin surface has real content.
class AdminServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Cluster::Options options;
    options.num_servers = 1;
    options.base_options.tracer = &tracer_;
    cluster_ = std::make_unique<Cluster>(options, [&](ClusterServer& server) {
      BuildStack(server, ZelosStackConfig(nullptr));
      auto app = std::make_unique<zelos::ZelosApplicator>();
      app->set_metrics(server.metrics());
      server.top()->RegisterUpcall(app.get());
      server.RegisterHealthTarget(app.get());
      apps_[server.id()] = std::move(app);
    });
    client_ = std::make_unique<zelos::ZelosClient>(cluster_->server(0).top(),
                                                   apps_["server0"].get());
    server().CollectHealth();  // time-series baseline
    session_ = client_->CreateSession();
    for (int i = 0; i < 8; ++i) {
      client_->Create(session_, "/n" + std::to_string(i), "v");
    }
    server().top()->Sync().Get();
    server().CollectHealth();  // close a window over the workload
  }

  ClusterServer& server() { return cluster_->server(0); }

  Tracer tracer_;
  std::map<std::string, std::unique_ptr<zelos::ZelosApplicator>> apps_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<zelos::ZelosClient> client_;
  zelos::SessionId session_ = 0;
};

TEST_F(AdminServerTest, MetricsRouteServesPrometheusExposition) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("# TYPE base_apply_records counter"), std::string::npos);
  EXPECT_NE(response.body.find("zelos_open_sessions"), std::string::npos);
}

TEST_F(AdminServerTest, HealthzReportsEveryComponentOk) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"state\":\"OK\""), std::string::npos);
  EXPECT_NE(response.body.find("\"component\":\"base\""), std::string::npos);
  EXPECT_NE(response.body.find("\"component\":\"zelos\""), std::string::npos);
  EXPECT_NE(response.body.find("\"component\":\"batching\""), std::string::npos);
}

// A wedged component flips /healthz to 503 — the contract a load balancer or
// Kubernetes probe relies on.
TEST_F(AdminServerTest, HealthzReturns503WhenAnyComponentIsUnhealthy) {
  class WedgedTarget : public IHealthCheckable {
   public:
    HealthReport HealthCheck() const override {
      return HealthReport{"wedged", HealthState::kUnhealthy, "stuck", 1};
    }
  };
  WedgedTarget wedged;
  server().RegisterHealthTarget(&wedged);
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/healthz");
  EXPECT_EQ(response.status, 503);
  EXPECT_NE(response.body.find("\"state\":\"UNHEALTHY\""), std::string::npos);
  EXPECT_NE(response.body.find("wedged"), std::string::npos);
  server().watchdog()->RemoveTarget(&wedged);
}

TEST_F(AdminServerTest, StatusRouteRendersTheComponentTable) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/status");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("server server0: OK"), std::string::npos);
  EXPECT_NE(response.body.find("component"), std::string::npos);
  EXPECT_NE(response.body.find("base"), std::string::npos);
  EXPECT_NE(response.body.find("applied="), std::string::npos);
}

TEST_F(AdminServerTest, StackRouteRendersEnginesBottomUp) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/stack");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"server\":\"server0\""), std::string::npos);
  EXPECT_NE(response.body.find("\"applied_position\""), std::string::npos);
  // base must come before batching (bottom-up order).
  const size_t base_at = response.body.find("\"name\":\"base\"");
  const size_t batching_at = response.body.find("\"name\":\"batching\"");
  ASSERT_NE(base_at, std::string::npos);
  ASSERT_NE(batching_at, std::string::npos);
  EXPECT_LT(base_at, batching_at);
}

TEST_F(AdminServerTest, TopAndSeriesServeTheTimeSeriesRing) {
  AdminEndpoint endpoint(&server());
  const AdminResponse top = endpoint.Handle("/top");
  EXPECT_EQ(top.status, 200);
  EXPECT_NE(top.body.find("rate/s"), std::string::npos);
  EXPECT_NE(top.body.find("base.apply.records"), std::string::npos);
  const AdminResponse series = endpoint.Handle("/series");
  EXPECT_EQ(series.status, 200);
  EXPECT_EQ(series.content_type, "application/json");
  EXPECT_NE(series.body.find("\"windows\""), std::string::npos);
}

TEST_F(AdminServerTest, FlightAndTraceRoutesServeTheRecorders) {
  AdminEndpoint endpoint(&server());
  const AdminResponse flight = endpoint.Handle("/flight");
  EXPECT_EQ(flight.status, 200);
  EXPECT_NE(flight.body.find("append"), std::string::npos);

  const uint64_t trace_id = tracer_.last_trace_id();
  ASSERT_NE(trace_id, 0u);
  const AdminResponse trace = endpoint.Handle("/trace/" + std::to_string(trace_id));
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("trace " + std::to_string(trace_id)), std::string::npos);
  EXPECT_NE(trace.body.find("base.append"), std::string::npos);
}

TEST_F(AdminServerTest, LatencyRouteRendersTheStageTable) {
  AdminEndpoint endpoint(&server());
  const AdminResponse response = endpoint.Handle("/latency");
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("latency attribution: server server0"), std::string::npos);
  EXPECT_NE(response.body.find("e2e"), std::string::npos);
  EXPECT_NE(response.body.find("base.append"), std::string::npos);
  // The conservation footer: attributed + unattributed == end-to-end.
  EXPECT_NE(response.body.find("100.0% of end-to-end"), std::string::npos);
}

TEST_F(AdminServerTest, SlowRoutesServeExemplars) {
  AdminEndpoint endpoint(&server());
  const AdminResponse list = endpoint.Handle("/slow");
  EXPECT_EQ(list.status, 200);
  EXPECT_NE(list.body.find("slow traces:"), std::string::npos);
  EXPECT_EQ(endpoint.Handle("/slow/999999").status, 404);
  EXPECT_EQ(endpoint.Handle("/slow/junk").status, 404);
}

TEST_F(AdminServerTest, LatencyRoutesReturn404WhenAttributionIsDisabled) {
  Tracer tracer;
  Cluster::Options options;
  options.num_servers = 1;
  options.base_options.tracer = &tracer;
  options.base_options.latency_attribution = false;
  std::map<std::string, std::unique_ptr<zelos::ZelosApplicator>> apps;
  Cluster cluster(options, [&](ClusterServer& server) {
    BuildStack(server, ZelosStackConfig(nullptr));
    auto app = std::make_unique<zelos::ZelosApplicator>();
    server.top()->RegisterUpcall(app.get());
    apps[server.id()] = std::move(app);
  });
  AdminEndpoint endpoint(&cluster.server(0));
  EXPECT_EQ(endpoint.Handle("/latency").status, 404);
  EXPECT_EQ(endpoint.Handle("/slow").status, 404);
  cluster.server(0).Stop();
}

TEST_F(AdminServerTest, FormatJsonSwitchesRoutesToMachineReadableBodies) {
  AdminEndpoint endpoint(&server());
  const AdminResponse metrics = endpoint.Handle("/metrics?format=json");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type, "application/json");
  EXPECT_NE(metrics.body.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.body.find("\"histograms\""), std::string::npos);

  const AdminResponse status = endpoint.Handle("/status?format=json");
  EXPECT_EQ(status.status, 200);
  EXPECT_NE(status.body.find("\"server\":\"server0\""), std::string::npos);
  EXPECT_NE(status.body.find("\"components\""), std::string::npos);

  const AdminResponse top = endpoint.Handle("/top?format=json");
  EXPECT_EQ(top.status, 200);
  EXPECT_NE(top.body.find("\"windows\""), std::string::npos);

  const AdminResponse latency = endpoint.Handle("/latency?format=json");
  EXPECT_EQ(latency.status, 200);
  EXPECT_NE(latency.body.find("\"stages\""), std::string::npos);

  const AdminResponse slow = endpoint.Handle("/slow?format=json");
  EXPECT_EQ(slow.status, 200);
  EXPECT_NE(slow.body.find("\"traces\""), std::string::npos);

  // Unknown query parameters stay ignored alongside format=json.
  EXPECT_EQ(endpoint.Handle("/metrics?scrape=1&format=json").status, 200);
}

TEST_F(AdminServerTest, UnknownAndMalformedPathsReturn404) {
  AdminEndpoint endpoint(&server());
  EXPECT_EQ(endpoint.Handle("/nope").status, 404);
  EXPECT_EQ(endpoint.Handle("/trace/abc").status, 404);
  EXPECT_EQ(endpoint.Handle("/trace/12junk").status, 404);
  EXPECT_EQ(endpoint.Handle("").status, 404);
}

TEST_F(AdminServerTest, QueryStringsAreIgnored) {
  AdminEndpoint endpoint(&server());
  EXPECT_EQ(endpoint.Handle("/metrics?scrape=1").status, 200);
  EXPECT_EQ(endpoint.Handle("/healthz?verbose=true").status, 200);
}

TEST_F(AdminServerTest, HttpServerServesRoutesOverLoopback) {
  AdminServer admin{AdminEndpoint(&server())};
  ASSERT_TRUE(admin.Start());
  ASSERT_NE(admin.port(), 0);  // ephemeral port was bound and recovered

  int status = 0;
  std::string body;
  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/healthz", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"state\":\"OK\""), std::string::npos);

  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/metrics", &status, &body));
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("base_apply_records"), std::string::npos);

  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/nope", &status, &body));
  EXPECT_EQ(status, 404);

  // Serial requests on fresh connections (Connection: close semantics).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/stack", &status, &body));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"name\":\"base\""), std::string::npos);
  }
  admin.Stop();
  // After Stop the port no longer answers.
  EXPECT_FALSE(AdminHttpGet("127.0.0.1", admin.port(), "/healthz", &status, &body));
}

// Sends raw bytes to the admin server and returns everything it answered
// (empty on connect failure). Shuts down the write side so the server's
// header read loop terminates without waiting out its receive timeout.
std::string RawAdminRequest(uint16_t port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return "";
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(AdminServerTest, MalformedRequestLineReturns400) {
  AdminServer admin{AdminEndpoint(&server())};
  ASSERT_TRUE(admin.Start());
  // No CRLF at all: not even a request line to parse.
  EXPECT_NE(RawAdminRequest(admin.port(), "complete garbage").find("HTTP/1.1 400"),
            std::string::npos);
  // A request line with a method but no path.
  EXPECT_NE(RawAdminRequest(admin.port(), "GET\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  // A path that does not start with '/'.
  EXPECT_NE(RawAdminRequest(admin.port(), "GET metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  // Wrong method on a well-formed line.
  EXPECT_NE(RawAdminRequest(admin.port(), "POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  admin.Stop();
}

TEST_F(AdminServerTest, OversizedRequestReturns431) {
  AdminServer admin{AdminEndpoint(&server())};
  ASSERT_TRUE(admin.Start());
  // 20 KB of headers with no terminating blank line: the server must stop
  // buffering at its 16 KB bound and reject, not read forever.
  std::string huge = "GET /metrics HTTP/1.1\r\n";
  huge += "X-Padding: " + std::string(20 * 1024, 'a') + "\r\n";
  const std::string response = RawAdminRequest(admin.port(), huge);
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos);
  EXPECT_NE(response.find("request too large"), std::string::npos);
  admin.Stop();
}

TEST_F(AdminServerTest, UnknownRouteOverHttpReturns404) {
  AdminServer admin{AdminEndpoint(&server())};
  ASSERT_TRUE(admin.Start());
  int status = 0;
  std::string body;
  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/definitely-not-a-route", &status,
                           &body));
  EXPECT_EQ(status, 404);
  admin.Stop();
}

TEST_F(AdminServerTest, ServerRestartsCleanly) {
  AdminServer admin{AdminEndpoint(&server())};
  ASSERT_TRUE(admin.Start());
  const uint16_t first_port = admin.port();
  admin.Stop();
  ASSERT_TRUE(admin.Start());  // rebind (possibly a different ephemeral port)
  int status = 0;
  std::string body;
  ASSERT_TRUE(AdminHttpGet("127.0.0.1", admin.port(), "/status", &status, &body));
  EXPECT_EQ(status, 200);
  admin.Stop();
  (void)first_port;
}

}  // namespace
}  // namespace delos
