// The simulation harness's main conformance suite: scripted and randomized
// fault schedules driven through SimCluster, checking that every replica
// recovers to the byte-identical pure function of the final log; plus the
// commit-to-publish crash-window test for the group-commit apply pipeline.
//
// DELOS_SIM_SCHEDULES overrides the randomized schedule count (the sanitizer
// suites set a reduced value; see scripts/check.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/base_engine.h"
#include "src/localstore/localstore.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::RunReport;
using sim::SimCluster;
using sim::SimOptions;
using sim::StackShape;

std::string ScratchDir(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / ("delos_sim_" + leaf)).string();
}

int ScheduleCount() {
  if (const char* env = std::getenv("DELOS_SIM_SCHEDULES"); env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) {
      return n;
    }
  }
  return 200;
}

TEST(SimCrashRecoveryTest, ScriptedCrashesRecoverOnEveryShape) {
  for (StackShape shape :
       {StackShape::kDelosTable, StackShape::kZelos, StackShape::kFullNine}) {
    SimOptions options;
    options.shape = shape;
    options.num_servers = 3;
    options.num_ops = 24;
    options.scratch_dir = ScratchDir("scripted");

    FaultPlan plan;
    plan.seed = 1;
    plan.events = {
        {FaultKind::kCrash, 0, 5, 0},
        {FaultKind::kCrash, 1, 9, 0},
        {FaultKind::kCrash, 0, 14, 0},
        {FaultKind::kAppendTimeout, 2, 2, 0},
        {FaultKind::kDuplicateAppend, 1, 3, 0},
    };

    SimCluster cluster(options);
    const RunReport report = cluster.Run(plan);
    EXPECT_TRUE(report.ok()) << sim::StackShapeName(shape) << "\n" << report.Summary();
    EXPECT_EQ(report.crashes_fired, 3u) << sim::StackShapeName(shape);
    EXPECT_GT(report.final_tail, 24u) << sim::StackShapeName(shape);
    ASSERT_EQ(report.server_checksums.size(), 3u);
    for (uint64_t checksum : report.server_checksums) {
      EXPECT_EQ(checksum, report.reference_checksum);
    }
  }
}

TEST(SimCrashRecoveryTest, TornCheckpointColdStartRecovers) {
  SimOptions options;
  options.shape = StackShape::kDelosTable;
  options.num_ops = 20;
  options.scratch_dir = ScratchDir("torn");

  FaultPlan plan;
  plan.seed = 2;
  plan.events = {
      // Torn flush leaving 12 bytes: magic survives, decode fails mid-file,
      // the tolerant open discards it and replays the whole log.
      {FaultKind::kCrash, 1, 6, 1 + 12},
      // And a second torn crash that keeps almost nothing.
      {FaultKind::kCrash, 1, 15, 1 + 2},
  };

  SimCluster cluster(options);
  const RunReport report = cluster.Run(plan);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.crashes_fired, 2u);
}

// The tentpole acceptance gate: randomized fault schedules, rotating through
// the three stack shapes, every replica byte-identical to the fault-free
// reference replay.
TEST(SimCrashRecoveryTest, RandomizedSchedulesConverge) {
  const int schedules = ScheduleCount();
  uint64_t crashes = 0;
  uint64_t append_faults = 0;
  int failures = 0;
  for (int i = 0; i < schedules; ++i) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(i);
    SimOptions options;
    options.shape = static_cast<StackShape>(i % 3);
    options.num_servers = 3;
    options.num_ops = 18;
    options.scratch_dir = ScratchDir("random");
    const RunReport report = SimCluster::RunSeed(seed, options);
    crashes += report.crashes_fired;
    append_faults += report.append_faults_fired;
    if (!report.ok()) {
      ++failures;
      // The printed seed + plan is the repro handle: rerunning the seed
      // regenerates the identical schedule (sim_repro_test holds that down).
      ADD_FAILURE() << "schedule failed; rerun with seed " << seed << " shape "
                    << sim::StackShapeName(options.shape) << "\n"
                    << report.Summary();
      if (failures >= 3) {
        break;  // enough evidence; don't spam the log
      }
    }
  }
  EXPECT_EQ(failures, 0);
  // The generator guarantees at least one crash per plan.
  EXPECT_GE(crashes, static_cast<uint64_t>(schedules));
}

// --- Satellite: the commit-to-publish crash window (group-commit apply) ---

// Applicator that tracks, durably, how many times each position was applied
// — the store is the only thing that survives the crash, so the counts must
// live there. PostApply side effects are counted in memory (volatile soft
// state, by design).
class CountingApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    const std::string key = "count/" + std::to_string(pos);
    int count = 0;
    if (auto existing = txn.Get(key); existing.has_value()) {
      count = std::stoi(*existing);
    }
    txn.Put(key, std::to_string(count + 1));
    txn.Put("val/" + std::to_string(pos), entry.payload);
    return std::any(entry.payload);
  }
  void PostApply(const LogEntry& entry, LogPos pos) override {
    std::lock_guard<std::mutex> lock(mu_);
    post_applies_[pos]++;
  }
  std::map<LogPos, int> post_applies() const {
    std::lock_guard<std::mutex> lock(mu_);
    return post_applies_;
  }

 private:
  mutable std::mutex mu_;
  std::map<LogPos, int> post_applies_;
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

// Crash exactly between a batch's transaction commit (which includes the
// cursor) and everything that follows: postApply, the applied_pos_ publish,
// promise settlement. Replay after recovery must be exact — every position
// applied once, the crashed batch never re-applied, postApply never run
// twice for any position.
TEST(PostCommitCrashWindowTest, ReplayAfterCommitWindowCrashIsExact) {
  constexpr LogPos kTotal = 12;
  constexpr LogPos kCrashBatchLast = 6;

  auto log = std::make_shared<InMemoryLog>();
  // A scratch writer fills the log so the victim's replay (not its propose
  // path) hits the window.
  {
    LocalStore scratch_store;
    CountingApplicator scratch_app;
    BaseEngine writer(log, &scratch_store, BaseEngineOptions{});
    writer.RegisterUpcall(&scratch_app);
    writer.Start();
    for (LogPos i = 1; i <= kTotal; ++i) {
      writer.Propose(PayloadEntry("op" + std::to_string(i))).Get();
    }
    writer.Stop();
  }

  LocalStore store;  // shared across incarnations: the committed state IS
                     // what the crash preserved (the hook fires after commit)
  CountingApplicator app1;
  BaseEngineOptions options;
  options.play_batch_size = 3;
  options.post_commit_crash_hook = [&](LogPos batch_last) {
    return batch_last >= kCrashBatchLast;
  };
  auto victim = std::make_unique<BaseEngine>(log, &store, options);
  victim->RegisterUpcall(&app1);
  victim->Start();
  auto doomed_sync = victim->Sync();
  // The apply thread exits inside the window: the batch ending at 6 is
  // committed (cursor included) but applied_pos_ never advances past 3 and
  // postApply for 4..6 never runs.
  while (store.Snapshot().Get("count/" + std::to_string(kCrashBatchLast)) == std::nullopt) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  EXPECT_LT(victim->applied_position(), kCrashBatchLast);
  victim->Stop();
  EXPECT_THROW(doomed_sync.Get(), std::exception);
  const auto crashed_posts = app1.post_applies();
  for (LogPos pos = 4; pos <= kTotal; ++pos) {
    EXPECT_EQ(crashed_posts.count(pos), 0u) << "postApply ran past the crash at pos " << pos;
  }
  victim.reset();

  // Recovery: a fresh engine on the same committed store state.
  CountingApplicator app2;
  auto recovered = std::make_unique<BaseEngine>(log, &store, BaseEngineOptions{});
  recovered->RegisterUpcall(&app2);
  recovered->Start();
  recovered->Sync().Get();
  EXPECT_EQ(recovered->applied_position(), kTotal);

  auto snapshot = store.Snapshot();
  for (LogPos pos = 1; pos <= kTotal; ++pos) {
    EXPECT_EQ(snapshot.Get("count/" + std::to_string(pos)),
              std::optional<std::string>("1"))
        << "position " << pos << " applied more than once (or never)";
  }
  // postApply never fired twice for any position across both incarnations;
  // positions 4..6 (committed with the crashed batch) lost theirs, which is
  // the documented contract for volatile soft state.
  const auto recovered_posts = app2.post_applies();
  for (LogPos pos = 1; pos <= kTotal; ++pos) {
    const int total = (crashed_posts.count(pos) ? crashed_posts.at(pos) : 0) +
                      (recovered_posts.count(pos) ? recovered_posts.at(pos) : 0);
    EXPECT_LE(total, 1) << "postApply double-fired at pos " << pos;
  }
  for (LogPos pos = 4; pos <= kCrashBatchLast; ++pos) {
    EXPECT_EQ(recovered_posts.count(pos), 0u)
        << "recovery re-ran postApply for a position committed before the crash";
  }
  recovered->Stop();
}

}  // namespace
}  // namespace delos
