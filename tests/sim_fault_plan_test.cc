// Unit tests for the fault-injection substrate: FaultPlan generation and
// serialization, FaultyLog's scripted append/crash faults, the SimNetwork
// deterministic fault hook, and LocalStore torn-flush recovery.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>

#include "src/localstore/localstore.h"
#include "src/net/sim_network.h"
#include "src/sharedlog/chaos_log.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/sim/fault_plan.h"

namespace delos {
namespace {

using sim::FaultEvent;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultPlanOptions;

// --- FaultPlan ---

TEST(FaultPlanTest, RandomIsAPureFunctionOfSeedAndOptions) {
  FaultPlanOptions options;
  const FaultPlan a = FaultPlan::Random(42, options);
  const FaultPlan b = FaultPlan::Random(42, options);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Serialize(), b.Serialize());
  EXPECT_FALSE(a.events.empty());  // max_crashes >= 1 guarantees one crash

  const FaultPlan c = FaultPlan::Random(43, options);
  EXPECT_NE(a.Serialize(), c.Serialize());
}

TEST(FaultPlanTest, SerializeRoundTrip) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const FaultPlan plan = FaultPlan::Random(seed, FaultPlanOptions{});
    EXPECT_EQ(FaultPlan::Parse(plan.Serialize()), plan) << "seed " << seed;
  }

  FaultPlan hand;
  hand.seed = 7;
  hand.events = {
      {FaultKind::kAppendTimeout, 0, 3, 0}, {FaultKind::kDroppedAppend, 1, 1, 0},
      {FaultKind::kDuplicateAppend, 2, 9, 0}, {FaultKind::kReorderAppend, 0, 4, 0},
      {FaultKind::kCrash, 1, 17, 9},          {FaultKind::kSabotage, 2, 0, 0},
  };
  EXPECT_EQ(FaultPlan::Parse(hand.Serialize()), hand);
  // Describe names every event (the text printed for a failing seed).
  const std::string text = hand.Describe();
  EXPECT_NE(text.find("append-timeout"), std::string::npos);
  EXPECT_NE(text.find("crash"), std::string::npos);
  EXPECT_NE(text.find("torn-flush-keep-bytes=8"), std::string::npos);
}

TEST(FaultPlanTest, CrashPositionsStrictlyIncreasePerServer) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    FaultPlanOptions options;
    options.max_crashes = 4;
    const FaultPlan plan = FaultPlan::Random(seed, options);
    std::map<uint32_t, uint64_t> last;
    for (const FaultEvent& event : plan.events) {
      if (event.kind != FaultKind::kCrash) {
        continue;
      }
      auto it = last.find(event.server);
      if (it != last.end()) {
        EXPECT_GT(event.trigger, it->second) << "seed " << seed;
      }
      last[event.server] = event.trigger;
    }
  }
}

// --- FaultyLog ---

TEST(FaultyLogTest, TimeoutCommitsButFailsTheAck) {
  auto inner = std::make_shared<InMemoryLog>();
  FaultyLog::Faults faults;
  faults.timeout_appends = {2};
  FaultyLog log(inner, faults);

  EXPECT_EQ(log.Append("a").Get(), 1u);
  auto ambiguous = log.Append("b");
  EXPECT_THROW(ambiguous.Get(), LogUnavailableError);
  // The entry is in the log regardless — the ambiguity clients must retry
  // through.
  const auto records = inner->ReadRange(1, 2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].payload, "b");
  EXPECT_EQ(log.faults_fired(), 1u);
}

TEST(FaultyLogTest, DropLosesTheEntry) {
  auto inner = std::make_shared<InMemoryLog>();
  FaultyLog::Faults faults;
  faults.dropped_appends = {1};
  FaultyLog log(inner, faults);

  EXPECT_THROW(log.Append("lost").Get(), LogUnavailableError);
  EXPECT_EQ(inner->CheckTail().Get(), 1u);  // nothing committed
  EXPECT_EQ(log.Append("kept").Get(), 1u);
}

TEST(FaultyLogTest, DuplicateCommitsTwice) {
  auto inner = std::make_shared<InMemoryLog>();
  FaultyLog::Faults faults;
  faults.duplicated_appends = {1};
  FaultyLog log(inner, faults);

  EXPECT_EQ(log.Append("twin").Get(), 1u);
  const auto records = inner->ReadRange(1, 2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "twin");
  EXPECT_EQ(records[1].payload, "twin");
}

TEST(FaultyLogTest, ReorderSwapsWithTheNextAppend) {
  auto inner = std::make_shared<InMemoryLog>();
  FaultyLog::Faults faults;
  faults.reordered_appends = {1};
  FaultyLog log(inner, faults);

  auto held = log.Append("first");
  auto second = log.Append("second");
  EXPECT_EQ(second.Get(), 1u);
  EXPECT_EQ(held.Get(), 2u);
  const auto records = inner->ReadRange(1, 2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "second");
  EXPECT_EQ(records[1].payload, "first");
}

TEST(FaultyLogTest, ReorderHoldReleasesOnTimeoutWhenNothingFollows) {
  auto inner = std::make_shared<InMemoryLog>();
  FaultyLog::Faults faults;
  faults.reordered_appends = {1};
  FaultyLog log(inner, faults, nullptr, /*reorder_hold_timeout_micros=*/1000);

  EXPECT_EQ(log.Append("only").Get(), 1u);  // Get blocks until the timer fires
  EXPECT_EQ(inner->ReadRange(1, 1)[0].payload, "only");
}

TEST(FaultyLogTest, CrashWedgesReplayAtThePosition) {
  auto inner = std::make_shared<InMemoryLog>();
  FaultyLog::Faults faults;
  faults.crash_at_pos = 2;
  FaultyLog log(inner, faults);
  for (const char* payload : {"a", "b", "c"}) {
    log.Append(payload).Get();
  }

  // A range below the wedge is clamped to the prefix.
  EXPECT_FALSE(log.crashed());
  const auto prefix = log.ReadRange(1, 3);
  ASSERT_EQ(prefix.size(), 1u);
  EXPECT_EQ(prefix[0].payload, "a");
  // Reaching the position latches the crash.
  EXPECT_THROW(log.ReadRange(2, 3), LogUnavailableError);
  EXPECT_TRUE(log.crashed());
  // It stays wedged: this incarnation is dead until the driver rebuilds it.
  EXPECT_THROW(log.ReadRange(2, 3), LogUnavailableError);
}

TEST(FaultyLogTest, AppendCounterSurvivesIncarnations) {
  auto inner = std::make_shared<InMemoryLog>();
  auto counter = std::make_shared<std::atomic<uint64_t>>(0);
  FaultyLog::Faults faults;
  faults.dropped_appends = {3};

  auto first = std::make_unique<FaultyLog>(inner, faults, counter);
  first->Append("one").Get();
  first->Append("two").Get();
  first.reset();  // the server crashed; the counter lives on

  FaultyLog second(inner, faults, counter);
  EXPECT_THROW(second.Append("three").Get(), LogUnavailableError);
  EXPECT_EQ(second.appends_seen(), 3u);
  EXPECT_EQ(second.Append("four").Get(), 3u);
}

// --- SimNetwork fault hook ---

TEST(SimNetworkFaultHookTest, HookDropsByMessageIndex) {
  NetworkConfig config;
  config.default_one_way_latency_micros = 0;
  config.call_timeout_micros = 20'000;
  SimNetwork net(config);
  net.RegisterHandler("b", [](const NodeId&, const std::string&, const std::string& request) {
    return "ack:" + request;
  });

  std::vector<uint64_t> seen;
  net.SetFaultHook([&seen](const NodeId&, const NodeId&, const std::string&,
                           uint64_t message_index) {
    seen.push_back(message_index);
    return message_index == 1;  // drop the first request leg
  });

  auto dropped = net.Call("a", "b", "ping", "x");
  EXPECT_THROW(dropped.Get(), LogUnavailableError);

  auto ok = net.Call("a", "b", "ping", "y");
  EXPECT_EQ(ok.Get(), "ack:y");
  // The hook saw the dropped request, then the second call's request and
  // reply legs, each with a distinct increasing index.
  ASSERT_GE(seen.size(), 3u);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_LT(seen[1], seen[2]);
}

// --- LocalStore torn flush + tolerant recovery ---

class TornFlushTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "delos_torn_flush_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "store.ckpt").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(TornFlushTest, TornCheckpointRejectedByDefault) {
  {
    auto store = LocalStore::Open({path_});
    auto txn = store->BeginRW();
    txn.Put("k1", "v1");
    txn.Put("k2", "v2");
    txn.Commit();
    store->InjectTornFlush(10);
    store->Flush();
  }
  EXPECT_THROW(LocalStore::Open({path_}), StoreError);
}

TEST_F(TornFlushTest, TolerantOpenDiscardsTheTornCheckpoint) {
  {
    auto store = LocalStore::Open({path_});
    auto txn = store->BeginRW();
    txn.Put("k1", "v1");
    txn.Commit();
    store->InjectTornFlush(10);
    store->Flush();
  }
  LocalStore::Options options;
  options.checkpoint_path = path_;
  options.tolerate_torn_checkpoint = true;
  auto recovered = LocalStore::Open(options);
  // Cold start: the store admits it lost the flush and lets log replay
  // rebuild everything.
  EXPECT_EQ(recovered->KeyCount(), 0u);
  // The torn file is gone, so a later flush starts from scratch.
  EXPECT_FALSE(std::filesystem::exists(path_));
}

TEST_F(TornFlushTest, UntornCheckpointStillRecoversUnderTolerantOpen) {
  {
    auto store = LocalStore::Open({path_});
    auto txn = store->BeginRW();
    txn.Put("k1", "v1");
    txn.Commit();
    store->Flush();
  }
  LocalStore::Options options;
  options.checkpoint_path = path_;
  options.tolerate_torn_checkpoint = true;
  auto recovered = LocalStore::Open(options);
  EXPECT_EQ(recovered->KeyCount(), 1u);
  auto snapshot = recovered->Snapshot();
  EXPECT_EQ(snapshot.Get("k1"), std::optional<std::string>("v1"));
}

TEST_F(TornFlushTest, InjectionIsOneShot) {
  auto store = LocalStore::Open({path_});
  auto txn = store->BeginRW();
  txn.Put("k1", "v1");
  txn.Commit();
  store->InjectTornFlush(4);
  store->Flush();
  store->Flush();  // second flush is whole again
  auto recovered = LocalStore::Open({path_});
  EXPECT_EQ(recovered->KeyCount(), 1u);
}

}  // namespace
}  // namespace delos
