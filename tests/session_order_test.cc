// SessionOrderEngine tests: in-order fast path, disorder detection with
// re-propose, exactly-once duplicate filtering, and the short-circuit
// propose completion — driven by the ReorderingLog chaos wrapper that
// manufactures the rare log-reordering events the paper describes (§4.3).
#include <gtest/gtest.h>

#include <thread>

#include "src/core/base_engine.h"
#include "src/engines/session_order_engine.h"
#include "src/sharedlog/chaos_log.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// Applicator that records the order in which payloads reach the app.
class OrderRecordingApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put("app/log/" + std::to_string(pos), entry.payload);
    std::lock_guard<std::mutex> lock(mu_);
    order_.push_back(entry.payload);
    return std::any(entry.payload);
  }
  std::vector<std::string> order() const {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> order_;
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

struct SoServer {
  SoServer(const std::string& id, std::shared_ptr<ISharedLog> log) {
    BaseEngineOptions base_options;
    base_options.server_id = id;
    base = std::make_unique<BaseEngine>(std::move(log), &store, base_options);
    SessionOrderEngine::Options options;
    options.server_id = id;
    so = std::make_unique<SessionOrderEngine>(options, base.get(), &store);
    so->RegisterUpcall(&app);
    base->Start();
  }
  ~SoServer() { base->Stop(); }

  LocalStore store;
  OrderRecordingApplicator app;
  std::unique_ptr<BaseEngine> base;
  std::unique_ptr<SessionOrderEngine> so;
};

TEST(SessionOrderTest, InOrderFastPath) {
  auto log = std::make_shared<InMemoryLog>();
  SoServer server("a", log);
  for (int i = 0; i < 10; ++i) {
    const std::string payload = "op" + std::to_string(i);
    EXPECT_EQ(std::any_cast<std::string>(server.so->Propose(PayloadEntry(payload)).Get()),
              payload);
  }
  EXPECT_EQ(server.so->disorder_events(), 0u);
  EXPECT_EQ(server.app.order().size(), 10u);
}

TEST(SessionOrderTest, RepairsInjectedReordering) {
  auto inner = std::make_shared<InMemoryLog>();
  // Swap ~30% of adjacent appends.
  auto chaos = std::make_shared<ReorderingLog>(inner, 0.3, /*hold_timeout_micros=*/500);
  SoServer server("a", chaos);

  constexpr int kOps = 60;
  std::vector<Future<std::any>> futures;
  futures.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    futures.push_back(server.so->Propose(PayloadEntry("op" + std::to_string(i))));
  }
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(std::any_cast<std::string>(futures[i].Get()), "op" + std::to_string(i));
  }
  // The log really was reordered, and the engine really detected it.
  EXPECT_GT(chaos->swaps_performed(), 0u);
  EXPECT_GT(server.so->disorder_events(), 0u);

  // Despite the chaos, the app saw each op exactly once, in session order.
  const auto order = server.app.order();
  ASSERT_EQ(order.size(), static_cast<size_t>(kOps));
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(order[i], "op" + std::to_string(i));
  }
}

TEST(SessionOrderTest, ReplicasConvergeUnderReordering) {
  auto inner = std::make_shared<InMemoryLog>();
  auto chaos = std::make_shared<ReorderingLog>(inner, 0.4, 500);
  SoServer writer("w", chaos);
  // The follower plays the same (reordered + re-proposed) log directly.
  SoServer follower("f", inner);

  constexpr int kOps = 40;
  std::vector<Future<std::any>> futures;
  for (int i = 0; i < kOps; ++i) {
    futures.push_back(writer.so->Propose(PayloadEntry("op" + std::to_string(i))));
  }
  for (auto& future : futures) {
    future.Get();
  }
  writer.base->Sync().Get();
  follower.base->Sync().Get();
  EXPECT_EQ(writer.app.order(), follower.app.order());
  EXPECT_EQ(writer.store.Checksum(), follower.store.Checksum());
}

TEST(SessionOrderTest, MultiThreadedProposersKeepPerSessionOrder) {
  // The engine orders the server's session stream even when multiple client
  // threads propose concurrently: apply order equals stamp order.
  auto inner = std::make_shared<InMemoryLog>();
  auto chaos = std::make_shared<ReorderingLog>(inner, 0.2, 500);
  SoServer server("a", chaos);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        server.so->Propose(PayloadEntry(std::to_string(t) + "/" + std::to_string(i))).Get();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto order = server.app.order();
  EXPECT_EQ(order.size(), static_cast<size_t>(kThreads * kPerThread));
  // Exactly-once: no payload appears twice.
  std::set<std::string> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
}

TEST(SessionOrderTest, SessionWriteThenReadIsOrdered) {
  // The session-ordering guarantee: issue a write, then a sync'd read
  // without waiting; the read must reflect the write once the write's
  // propose completes.
  auto log = std::make_shared<InMemoryLog>();
  SoServer server("a", log);
  Future<std::any> write = server.so->Propose(PayloadEntry("w"));
  write.Get();
  ROTxn snap = server.so->Sync().Get();
  bool found = false;
  snap.Scan("app/log/", "app/log0", [&](std::string_view, std::string_view value) {
    found = found || value == "w";
    return true;
  });
  EXPECT_TRUE(found);
}

TEST(SessionOrderTest, DisabledEnginePassesThrough) {
  auto log = std::make_shared<InMemoryLog>();
  SoServer server("a", log);
  server.so->DisableViaLog();
  EXPECT_EQ(std::any_cast<std::string>(server.so->Propose(PayloadEntry("raw")).Get()), "raw");
  EXPECT_EQ(server.so->disorder_events(), 0u);
}

}  // namespace
}  // namespace delos
