// Tests for the LZ codec and the CompressionEngine (payload mutation en
// route to the log, transparent to the application).
#include <gtest/gtest.h>

#include "src/apps/delostable/table_db.h"
#include "src/common/compress.h"
#include "src/common/random.h"
#include "src/core/base_engine.h"
#include "src/engines/compression_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// --- codec ---

TEST(CompressTest, RoundTripBasics) {
  for (const std::string& input :
       {std::string(""), std::string("a"), std::string("abc"),
        std::string("hello world hello world hello world"), std::string(1000, 'x'),
        std::string("\0\0\0\1\2\3\0\0\0\1\2\3", 12)}) {
    EXPECT_EQ(Decompress(Compress(input)), input);
  }
}

TEST(CompressTest, CompressesRepetitiveData) {
  const std::string repetitive(4096, 'z');
  const std::string compressed = Compress(repetitive);
  EXPECT_LT(compressed.size(), repetitive.size() / 10);
  EXPECT_EQ(Decompress(compressed), repetitive);
}

TEST(CompressTest, CompressesStructuredPayloads) {
  // Serialized-row-like content: repeated field names.
  std::string payload;
  for (int i = 0; i < 50; ++i) {
    payload += "column_name_owner=user" + std::to_string(i) + ";column_name_region=emea;";
  }
  const std::string compressed = Compress(payload);
  EXPECT_LT(compressed.size(), payload.size() / 2);
  EXPECT_EQ(Decompress(compressed), payload);
}

TEST(CompressTest, RandomDataRoundTrips) {
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    std::string input;
    const int chunks = static_cast<int>(rng.Uniform(0, 20));
    for (int c = 0; c < chunks; ++c) {
      if (rng.Bernoulli(0.5)) {
        input += rng.String(rng.Uniform(1, 40));
      } else {
        input += std::string(rng.Uniform(1, 60), static_cast<char>(rng.Uniform(0, 255)));
      }
    }
    EXPECT_EQ(Decompress(Compress(input)), input);
  }
}

TEST(CompressTest, OverlappingMatchesDecodeCorrectly) {
  // "abcabcabc..." forces self-overlapping match copies.
  std::string input;
  for (int i = 0; i < 300; ++i) {
    input += "abc";
  }
  EXPECT_EQ(Decompress(Compress(input)), input);
}

TEST(CompressTest, CorruptInputThrows) {
  const std::string compressed = Compress(std::string(100, 'q'));
  // Truncation.
  const std::string truncated = compressed.substr(0, compressed.size() / 2);
  EXPECT_THROW(Decompress(truncated), SerdeError);
  // Garbage.
  EXPECT_THROW(Decompress("\xff\xff\xff\xff"), SerdeError);
}

// --- engine ---

class EchoApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put("seen/" + std::to_string(pos), entry.payload);
    return std::any(entry.payload);
  }
  void PostApply(const LogEntry& entry, LogPos pos) override { last_post_payload_ = entry.payload; }
  std::string last_post_payload_;
};

TEST(CompressionEngineTest, TransparentToApplication) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine base(log, &store, BaseEngineOptions{});
  CompressionEngine::Options options;
  options.min_payload_bytes = 16;
  CompressionEngine compression(options, &base, &store);
  compression.RegisterUpcall(&app);
  base.Start();

  const std::string payload(500, 'r');
  LogEntry entry;
  entry.payload = payload;
  // The application sees (and echoes) the original payload.
  EXPECT_EQ(std::any_cast<std::string>(compression.Propose(entry).Get()), payload);
  EXPECT_EQ(store.Snapshot().Get("seen/1").value(), payload);
  EXPECT_EQ(app.last_post_payload_, payload);

  // But the log stores the compressed form.
  const LogEntry stored = LogEntry::Deserialize(log->ReadRange(1, 1)[0].payload);
  EXPECT_LT(stored.payload.size(), payload.size());
  EXPECT_EQ(stored.GetHeader("compression")->blob, "1");
  EXPECT_GT(compression.bytes_in(), compression.bytes_out());
  base.Stop();
}

TEST(CompressionEngineTest, SmallPayloadsPassThrough) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  EchoApplicator app;
  BaseEngine base(log, &store, BaseEngineOptions{});
  CompressionEngine::Options options;
  options.min_payload_bytes = 64;
  CompressionEngine compression(options, &base, &store);
  compression.RegisterUpcall(&app);
  base.Start();

  LogEntry entry;
  entry.payload = "tiny";
  compression.Propose(entry).Get();
  const LogEntry stored = LogEntry::Deserialize(log->ReadRange(1, 1)[0].payload);
  EXPECT_EQ(stored.payload, "tiny");
  EXPECT_EQ(stored.GetHeader("compression")->blob, "0");
  base.Stop();
}

TEST(CompressionEngineTest, ReplicasAgreeAcrossCompressedEntries) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store_a;
  LocalStore store_b;
  EchoApplicator app_a;
  EchoApplicator app_b;
  BaseEngineOptions opt_a;
  opt_a.server_id = "a";
  BaseEngineOptions opt_b;
  opt_b.server_id = "b";
  BaseEngine base_a(log, &store_a, opt_a);
  BaseEngine base_b(log, &store_b, opt_b);
  CompressionEngine::Options options;
  options.min_payload_bytes = 16;
  CompressionEngine comp_a(options, &base_a, &store_a);
  CompressionEngine comp_b(options, &base_b, &store_b);
  comp_a.RegisterUpcall(&app_a);
  comp_b.RegisterUpcall(&app_b);
  base_a.Start();
  base_b.Start();

  LogEntry entry;
  entry.payload = std::string(300, 'c') + "unique-suffix";
  comp_a.Propose(entry).Get();
  base_b.Sync().Get();
  EXPECT_EQ(store_a.Checksum(), store_b.Checksum());
  base_a.Stop();
  base_b.Stop();
}

TEST(CompressionEngineTest, WorksUnderDelosTable) {
  // Full transparency check with a real application above it.
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  table::TableApplicator app;
  BaseEngine base(log, &store, BaseEngineOptions{});
  CompressionEngine::Options options;
  options.min_payload_bytes = 32;
  CompressionEngine compression(options, &base, &store);
  compression.RegisterUpcall(&app);
  base.Start();
  table::TableClient client(&compression);

  table::TableSchema schema;
  schema.name = "docs";
  schema.columns = {{"id", table::ValueType::kInt64}, {"body", table::ValueType::kString}};
  schema.primary_key = "id";
  client.CreateTable(schema);
  const std::string body(2000, 'd');
  client.Insert("docs", {{"id", table::Value{int64_t{1}}},
                         {"body", table::Value{body}}});
  auto row = client.Get("docs", table::Value{int64_t{1}});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(std::get<std::string>((*row)["body"]), body);
  EXPECT_GT(compression.bytes_in(), compression.bytes_out() * 2);
  base.Stop();
}

}  // namespace
}  // namespace delos
