// ReadCachingLog stress: concurrent overlapping ReadRanges racing Trim,
// eviction churn, and full invalidation. Every payload encodes its own log
// position, so any cache bug that serves bytes at the wrong position (a
// stale entry surviving trim, an eviction tearing a range, a fill racing an
// invalidation) shows up as a payload/position mismatch.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/common/errors.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/sharedlog/read_cache.h"

namespace delos {
namespace {

constexpr int kRecords = 2000;

std::string PayloadFor(LogPos pos) { return "pos:" + std::to_string(pos); }

std::shared_ptr<InMemoryLog> FilledLog() {
  auto log = std::make_shared<InMemoryLog>();
  for (LogPos pos = 1; pos <= kRecords; ++pos) {
    const LogPos assigned = log->Append(PayloadFor(pos)).Get();
    EXPECT_EQ(assigned, pos);
  }
  return log;
}

// Readers hammer overlapping ranges while a trimmer advances the trim prefix
// through half the log. A read may legitimately throw TrimmedError (it raced
// the trim), but every record it does return must carry the bytes committed
// at that position, and the cache must never serve a position at or below
// the trim prefix it already acknowledged.
TEST(ReadCacheStress, OverlappingReadsRacingTrimStayPositionConsistent) {
  auto inner = FilledLog();
  ReadCacheOptions options;
  options.capacity_records = 256;  // far below kRecords: eviction churns too
  options.write_through = false;
  ReadCachingLog cache(inner, options);

  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> validated{0};
  std::atomic<uint64_t> unexpected_trims{0};
  std::atomic<LogPos> trim_acknowledged{0};

  constexpr int kReaders = 6;
  constexpr int kIterations = 400;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kIterations; ++i) {
        const LogPos floor = trim_acknowledged.load(std::memory_order_acquire);
        const LogPos lo = floor + 1 + static_cast<LogPos>(rng() % (kRecords - floor));
        const LogPos hi = std::min<LogPos>(lo + 1 + rng() % 64, kRecords);
        try {
          for (const LogRecord& record : cache.ReadRange(lo, hi)) {
            if (record.payload != PayloadFor(record.pos)) {
              mismatches.fetch_add(1);
            }
            validated.fetch_add(1);
          }
        } catch (const TrimmedError&) {
          // Legal only if the trimmer moved past lo after we sampled floor.
          if (lo > cache.trim_prefix()) {
            unexpected_trims.fetch_add(1);
          }
        }
      }
    });
  }

  std::thread trimmer([&] {
    for (LogPos prefix = 100; prefix <= kRecords / 2; prefix += 100) {
      cache.Trim(prefix);
      trim_acknowledged.store(prefix, std::memory_order_release);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (std::thread& reader : readers) {
    reader.join();
  }
  trimmer.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(unexpected_trims.load(), 0u);
  EXPECT_GT(validated.load(), 0u);
  EXPECT_LE(cache.entries(), options.capacity_records);

  // Post-race: the trimmed prefix fails fast, the live suffix is intact.
  EXPECT_THROW(cache.ReadRange(1, 10), TrimmedError);
  const auto live = cache.ReadRange(kRecords / 2 + 1, kRecords / 2 + 10);
  ASSERT_EQ(live.size(), 10u);
  for (const LogRecord& record : live) {
    EXPECT_EQ(record.payload, PayloadFor(record.pos));
  }
}

// Readers race InvalidateAll (the reconfiguration hook, also wired to Seal):
// dropping the whole cache mid-read must never surface wrong bytes or leave
// the entry count above capacity.
TEST(ReadCacheStress, ReadsRacingInvalidationStayPositionConsistent) {
  auto inner = FilledLog();
  ReadCacheOptions options;
  options.capacity_records = 512;
  options.write_through = false;
  ReadCachingLog cache(inner, options);

  std::atomic<uint64_t> mismatches{0};
  std::atomic<bool> stop{false};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) + 99);
      while (!stop.load(std::memory_order_acquire)) {
        const LogPos lo = 1 + static_cast<LogPos>(rng() % kRecords);
        const LogPos hi = std::min<LogPos>(lo + rng() % 32, kRecords);
        for (const LogRecord& record : cache.ReadRange(lo, hi)) {
          if (record.payload != PayloadFor(record.pos)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }

  for (int i = 0; i < 200; ++i) {
    cache.InvalidateAll();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) {
    reader.join();
  }

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_LE(cache.entries(), options.capacity_records);
  // The cache still works after the churn: a full re-read round-trips.
  const auto all = cache.ReadRange(1, 64);
  ASSERT_EQ(all.size(), 64u);
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace delos
