// Tests for the shared-log substrate: SimNetwork RPC, in-memory loglet,
// quorum loglet (failures, seal), VirtualLog (chaining, reconfiguration),
// and the chaos wrappers.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/errors.h"
#include "src/net/sim_network.h"
#include "src/sharedlog/chaos_log.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/sharedlog/quorum_loglet.h"
#include "src/sharedlog/virtual_log.h"

namespace delos {
namespace {

// --- SimNetwork ---

TEST(SimNetworkTest, BasicRpc) {
  NetworkConfig config;
  config.default_one_way_latency_micros = 100;
  SimNetwork net(config);
  net.RegisterHandler("srv", [](const NodeId& from, const std::string& method,
                                const std::string& req) { return method + ":" + req; });
  EXPECT_EQ(net.Call("cli", "srv", "echo", "hi").Get(), "echo:hi");
}

TEST(SimNetworkTest, LatencyApplied) {
  NetworkConfig config;
  config.default_one_way_latency_micros = 5000;
  SimNetwork net(config);
  net.RegisterHandler("srv", [](const NodeId&, const std::string&, const std::string&) {
    return std::string("ok");
  });
  const int64_t start = RealClock::Instance()->NowMicros();
  net.Call("cli", "srv", "m", "").Get();
  EXPECT_GE(RealClock::Instance()->NowMicros() - start, 9000);  // two one-way hops
}

TEST(SimNetworkTest, DownNodeTimesOut) {
  NetworkConfig config;
  config.call_timeout_micros = 20'000;
  SimNetwork net(config);
  net.RegisterHandler("srv", [](const NodeId&, const std::string&, const std::string&) {
    return std::string("ok");
  });
  net.SetNodeUp("srv", false);
  EXPECT_THROW(net.Call("cli", "srv", "m", "").Get(), LogUnavailableError);
  net.SetNodeUp("srv", true);
  EXPECT_EQ(net.Call("cli", "srv", "m", "").Get(), "ok");
}

TEST(SimNetworkTest, PartitionBlocksBothWays) {
  NetworkConfig config;
  config.call_timeout_micros = 20'000;
  SimNetwork net(config);
  net.RegisterHandler("a", [](const NodeId&, const std::string&, const std::string&) {
    return std::string("from-a");
  });
  net.SetPartitioned("a", "b", true);
  EXPECT_THROW(net.Call("b", "a", "m", "").Get(), LogUnavailableError);
  net.SetPartitioned("a", "b", false);
  EXPECT_EQ(net.Call("b", "a", "m", "").Get(), "from-a");
}

TEST(SimNetworkTest, AsyncHandlerRepliesLater) {
  SimNetwork net;
  SimNetwork::ReplyFn saved;
  std::mutex mu;
  net.RegisterAsyncHandler("srv", [&](const NodeId&, const std::string&, const std::string&,
                                      SimNetwork::ReplyFn reply) {
    std::lock_guard<std::mutex> lock(mu);
    saved = std::move(reply);
  });
  Future<std::string> future = net.Call("cli", "srv", "m", "");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(future.IsReady());
  {
    std::lock_guard<std::mutex> lock(mu);
    saved("deferred");
  }
  EXPECT_EQ(future.Get(), "deferred");
}

// --- InMemoryLog ---

TEST(InMemoryLogTest, AppendReadTail) {
  InMemoryLog log;
  EXPECT_EQ(log.CheckTail().Get(), 1u);
  EXPECT_EQ(log.Append("a").Get(), 1u);
  EXPECT_EQ(log.Append("b").Get(), 2u);
  EXPECT_EQ(log.CheckTail().Get(), 3u);
  auto records = log.ReadRange(1, 10);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "a");
  EXPECT_EQ(records[1].pos, 2u);
}

TEST(InMemoryLogTest, TrimForbidsOldReads) {
  InMemoryLog log;
  log.Append("a").Get();
  log.Append("b").Get();
  log.Append("c").Get();
  log.Trim(2);
  EXPECT_EQ(log.trim_prefix(), 2u);
  EXPECT_THROW(log.ReadRange(1, 3), TrimmedError);
  auto records = log.ReadRange(3, 3);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "c");
}

TEST(InMemoryLogTest, SealStopsAppends) {
  InMemoryLog log;
  log.Append("a").Get();
  log.Seal();
  EXPECT_THROW(log.Append("b").Get(), SealedError);
  EXPECT_EQ(log.CheckTail().Get(), 2u);  // tail still readable
}

TEST(InMemoryLogTest, StartPosOffsets) {
  InMemoryLog log(100);
  EXPECT_EQ(log.CheckTail().Get(), 100u);
  EXPECT_EQ(log.Append("x").Get(), 100u);
  EXPECT_EQ(log.ReadRange(100, 100)[0].payload, "x");
}

// --- QuorumLoglet ---

class QuorumLogletTest : public testing::Test {
 protected:
  QuorumLogletTest() {
    NetworkConfig net_config;
    net_config.default_one_way_latency_micros = 50;
    net_config.call_timeout_micros = 300'000;
    network_ = std::make_unique<SimNetwork>(net_config);
    QuorumLogletConfig config;
    config.num_acceptors = 3;
    ensemble_ = std::make_unique<QuorumEnsemble>(network_.get(), config);
    client_ = std::make_unique<QuorumLogletClient>(network_.get(), "client0", config);
  }

  std::unique_ptr<SimNetwork> network_;
  std::unique_ptr<QuorumEnsemble> ensemble_;
  std::unique_ptr<QuorumLogletClient> client_;
};

TEST_F(QuorumLogletTest, AppendAssignsSequentialPositions) {
  EXPECT_EQ(client_->Append("a").Get(), 1u);
  EXPECT_EQ(client_->Append("b").Get(), 2u);
  EXPECT_EQ(client_->CheckTail().Get(), 3u);
}

TEST_F(QuorumLogletTest, ReadsBackCommittedEntries) {
  client_->Append("a").Get();
  client_->Append("b").Get();
  auto records = client_->ReadRange(1, 2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "a");
  EXPECT_EQ(records[1].payload, "b");
}

TEST_F(QuorumLogletTest, SurvivesMinorityAcceptorFailure) {
  ensemble_->SetAcceptorUp(0, false);
  EXPECT_EQ(client_->Append("a").Get(), 1u);
  auto records = client_->ReadRange(1, 1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "a");
}

TEST_F(QuorumLogletTest, MajorityFailureBlocksAppends) {
  ensemble_->SetAcceptorUp(0, false);
  ensemble_->SetAcceptorUp(1, false);
  EXPECT_THROW(client_->Append("a").Get(), LogUnavailableError);
}

TEST_F(QuorumLogletTest, CompletedAppendIsBelowCheckedTail) {
  // Linearizability anchor: after an append completes, a tail check must
  // cover it.
  for (int i = 0; i < 20; ++i) {
    const LogPos pos = client_->Append("x").Get();
    EXPECT_GT(client_->CheckTail().Get(), pos);
  }
}

TEST_F(QuorumLogletTest, ConcurrentAppendsAllCommitDistinctPositions) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::mutex mu;
  std::set<LogPos> positions;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const LogPos pos = client_->Append("t" + std::to_string(t)).Get();
        std::lock_guard<std::mutex> lock(mu);
        positions.insert(pos);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(positions.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(*positions.rbegin(), static_cast<LogPos>(kThreads * kPerThread));
}

TEST_F(QuorumLogletTest, SealStopsAppendsButNotTail) {
  client_->Append("a").Get();
  client_->Seal();
  EXPECT_THROW(client_->Append("b").Get(), SealedError);
  EXPECT_EQ(client_->CheckTail().Get(), 2u);
  EXPECT_EQ(client_->ReadRange(1, 1).size(), 1u);
}

TEST_F(QuorumLogletTest, TrimRemovesPrefix) {
  client_->Append("a").Get();
  client_->Append("b").Get();
  client_->Trim(1);
  EXPECT_THROW(client_->ReadRange(1, 2), TrimmedError);
  // Give the async trim a moment to reach acceptors.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto records = client_->ReadRange(2, 2);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "b");
}

TEST_F(QuorumLogletTest, ReadMergesAcrossAcceptors) {
  // Kill acceptor 0 for the first append, acceptor 1 for the second; reads
  // preferring each acceptor must still reassemble the full range.
  ensemble_->SetAcceptorUp(0, false);
  client_->Append("a").Get();
  ensemble_->SetAcceptorUp(0, true);
  ensemble_->SetAcceptorUp(1, false);
  client_->Append("b").Get();
  ensemble_->SetAcceptorUp(1, true);
  QuorumLogletConfig config;
  config.num_acceptors = 3;
  QuorumLogletClient reader(network_.get(), "reader", config, /*preferred_acceptor=*/0);
  auto records = reader.ReadRange(1, 2);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "a");
  EXPECT_EQ(records[1].payload, "b");
}

// --- VirtualLog ---

TEST(VirtualLogTest, AppendAndReadThroughChain) {
  auto meta = std::make_shared<MetaStore>(
      std::vector<LogletSegment>{{1, std::make_shared<InMemoryLog>(1)}});
  VirtualLog vlog(meta);
  EXPECT_EQ(vlog.Append("a").Get(), 1u);
  EXPECT_EQ(vlog.Append("b").Get(), 2u);
  auto records = vlog.ReadRange(1, 2);
  ASSERT_EQ(records.size(), 2u);
}

TEST(VirtualLogTest, ReconfigureChainsNewLoglet) {
  auto meta = std::make_shared<MetaStore>(
      std::vector<LogletSegment>{{1, std::make_shared<InMemoryLog>(1)}});
  VirtualLog vlog(meta);
  vlog.Append("a").Get();
  vlog.Append("b").Get();
  vlog.Reconfigure([](LogPos start, uint64_t) { return std::make_shared<InMemoryLog>(start); });
  EXPECT_EQ(vlog.ChainLength(), 2u);
  // Positions continue across the seam.
  EXPECT_EQ(vlog.Append("c").Get(), 3u);
  auto records = vlog.ReadRange(1, 3);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].payload, "c");
}

TEST(VirtualLogTest, AppendRetriesAcrossSeal) {
  auto inner = std::make_shared<InMemoryLog>(1);
  auto meta = std::make_shared<MetaStore>(std::vector<LogletSegment>{{1, inner}});
  VirtualLog vlog(meta,
                  [](LogPos start, uint64_t) { return std::make_shared<InMemoryLog>(start); });
  vlog.Append("a").Get();
  inner->Seal();  // simulate a seal racing this client
  // The default factory lets the appender repair the chain itself.
  EXPECT_EQ(vlog.Append("b").Get(), 2u);
  EXPECT_EQ(vlog.ChainLength(), 2u);
}

TEST(VirtualLogTest, ConcurrentReconfigureOneWins) {
  auto meta = std::make_shared<MetaStore>(
      std::vector<LogletSegment>{{1, std::make_shared<InMemoryLog>(1)}});
  VirtualLog a(meta);
  VirtualLog b(meta);
  a.Append("x").Get();
  std::thread ta([&] {
    a.Reconfigure([](LogPos s, uint64_t) { return std::make_shared<InMemoryLog>(s); });
  });
  std::thread tb([&] {
    b.Reconfigure([](LogPos s, uint64_t) { return std::make_shared<InMemoryLog>(s); });
  });
  ta.join();
  tb.join();
  // At most one new segment per winning CAS; chain stays consistent.
  EXPECT_GE(meta->GetChain().size(), 2u);
  EXPECT_EQ(a.Append("y").Get(), 2u);
}

TEST(VirtualLogTest, TrimRoutesToSegments) {
  auto first = std::make_shared<InMemoryLog>(1);
  auto meta = std::make_shared<MetaStore>(std::vector<LogletSegment>{{1, first}});
  VirtualLog vlog(meta);
  vlog.Append("a").Get();
  vlog.Append("b").Get();
  vlog.Reconfigure([](LogPos s, uint64_t) { return std::make_shared<InMemoryLog>(s); });
  vlog.Append("c").Get();
  vlog.Trim(2);
  EXPECT_EQ(vlog.trim_prefix(), 2u);
  EXPECT_THROW(vlog.ReadRange(1, 3), TrimmedError);
  auto records = vlog.ReadRange(3, 3);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "c");
}

// --- chaos wrappers ---

TEST(DelayedLogTest, AddsAppendLatency) {
  auto inner = std::make_shared<InMemoryLog>();
  DelayedLog log(inner, DelayedLog::Delays{.append_micros = 5000});
  const int64_t start = RealClock::Instance()->NowMicros();
  EXPECT_EQ(log.Append("a").Get(), 1u);
  EXPECT_GE(RealClock::Instance()->NowMicros() - start, 4500);
}

TEST(ReorderingLogTest, SwapsAdjacentAppends) {
  auto inner = std::make_shared<InMemoryLog>();
  // Swap every append that can be swapped.
  ReorderingLog log(inner, /*swap_probability=*/1.0, /*hold_timeout_micros=*/50'000);
  Future<LogPos> first = log.Append("first");
  Future<LogPos> second = log.Append("second");
  EXPECT_EQ(second.Get(), 1u);  // swapped: second landed first
  EXPECT_EQ(first.Get(), 2u);
  EXPECT_EQ(log.swaps_performed(), 1u);
  EXPECT_EQ(inner->ReadRange(1, 1)[0].payload, "second");
}

TEST(ReorderingLogTest, HoldTimeoutReleasesLoneAppend) {
  auto inner = std::make_shared<InMemoryLog>();
  ReorderingLog log(inner, 1.0, /*hold_timeout_micros=*/2000);
  Future<LogPos> only = log.Append("solo");
  EXPECT_EQ(only.Get(), 1u);  // released by the safety valve
}

}  // namespace
}  // namespace delos
