// Parameterized property sweeps (TEST_P):
//  * replica convergence under swept chaos/batching configurations,
//  * the LocalStore-vs-model property over many seeds,
//  * order-preserving codec over random typed values,
//  * lease safety over a sweep of clock skews,
//  * serde round-trip fuzzing over seeds.
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/delostable/value.h"
#include "src/apps/zelos/zelos.h"
#include "src/common/random.h"
#include "src/core/base_engine.h"
#include "src/engines/batching_engine.h"
#include "src/engines/lease_engine.h"
#include "src/engines/session_order_engine.h"
#include "src/sharedlog/chaos_log.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// --- replica convergence under chaos --------------------------------------

struct ConvergenceParam {
  double swap_probability;
  bool batching;
  size_t batch_size;
};

class ConvergenceUnderChaos : public testing::TestWithParam<ConvergenceParam> {};

TEST_P(ConvergenceUnderChaos, WriterAndFollowerAgree) {
  const ConvergenceParam param = GetParam();
  auto inner = std::make_shared<InMemoryLog>();
  auto chaos = std::make_shared<ReorderingLog>(inner, param.swap_probability, 500);

  struct Server {
    Server(const std::string& id, std::shared_ptr<ISharedLog> log, const ConvergenceParam& p) {
      BaseEngineOptions base_options;
      base_options.server_id = id;
      base = std::make_unique<BaseEngine>(std::move(log), &store, base_options);
      IEngine* top = base.get();
      SessionOrderEngine::Options so_options;
      so_options.server_id = id;
      so = std::make_unique<SessionOrderEngine>(so_options, top, &store);
      top = so.get();
      if (p.batching) {
        BatchingEngine::Options batch_options;
        batch_options.max_batch_entries = p.batch_size;
        batch_options.max_delay_micros = 200;
        batching = std::make_unique<BatchingEngine>(batch_options, top, &store);
        top = batching.get();
      }
      top->RegisterUpcall(&app);
      base->Start();
      client = std::make_unique<zelos::ZelosClient>(top, &app);
    }
    ~Server() { base->Stop(); }
    LocalStore store;
    zelos::ZelosApplicator app;
    std::unique_ptr<BaseEngine> base;
    std::unique_ptr<SessionOrderEngine> so;
    std::unique_ptr<BatchingEngine> batching;
    std::unique_ptr<zelos::ZelosClient> client;
  };

  Server writer("w", chaos, param);
  Server follower("f", inner, param);

  const zelos::SessionId session = writer.client->CreateSession();
  writer.client->Create(session, "/root-node", "");
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        try {
          writer.client->Create(session,
                                "/root-node/c" + std::to_string(t) + "-" + std::to_string(i),
                                "d");
        } catch (const DeterministicError&) {
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  writer.base->Sync().Get();
  follower.base->Sync().Get();
  EXPECT_EQ(writer.store.Checksum(), follower.store.Checksum());
  EXPECT_EQ(writer.client->GetChildren("/root-node").size(), 40u);
}

INSTANTIATE_TEST_SUITE_P(
    ChaosSweep, ConvergenceUnderChaos,
    testing::Values(ConvergenceParam{0.0, false, 0}, ConvergenceParam{0.2, false, 0},
                    ConvergenceParam{0.5, false, 0}, ConvergenceParam{0.0, true, 4},
                    ConvergenceParam{0.2, true, 4}, ConvergenceParam{0.2, true, 16},
                    ConvergenceParam{0.5, true, 8}),
    [](const testing::TestParamInfo<ConvergenceParam>& info) {
      return "swap" + std::to_string(static_cast<int>(info.param.swap_probability * 100)) +
             (info.param.batching ? "_batch" + std::to_string(info.param.batch_size)
                                  : "_nobatch");
    });

// --- LocalStore vs model over seeds ----------------------------------------

class LocalStoreModelSweep : public testing::TestWithParam<uint64_t> {};

TEST_P(LocalStoreModelSweep, MatchesStdMap) {
  Rng rng(GetParam());
  LocalStore store;
  std::map<std::string, std::string> model;
  std::vector<ROTxn> held_snapshots;
  std::vector<std::map<std::string, std::string>> held_models;

  for (int round = 0; round < 120; ++round) {
    RWTxn txn = store.BeginRW();
    auto txn_model = model;
    std::vector<std::pair<size_t, std::map<std::string, std::string>>> savepoints;
    const int ops = static_cast<int>(rng.Uniform(1, 8));
    std::vector<Savepoint> sps;
    for (int i = 0; i < ops; ++i) {
      const double dice = rng.UniformDouble();
      const std::string key = "k" + std::to_string(rng.Uniform(0, 20));
      if (dice < 0.35) {
        const std::string value = rng.String(6);
        txn.Put(key, value);
        txn_model[key] = value;
      } else if (dice < 0.55) {
        txn.Delete(key);
        txn_model.erase(key);
      } else if (dice < 0.70) {
        EXPECT_EQ(txn.Get(key), (txn_model.count(key) ? std::optional<std::string>(txn_model[key])
                                                      : std::nullopt));
      } else if (dice < 0.85) {
        sps.push_back(txn.MakeSavepoint());
        savepoints.emplace_back(sps.size() - 1, txn_model);
      } else if (!savepoints.empty()) {
        auto [index, saved_model] = savepoints.back();
        savepoints.pop_back();
        txn.RollbackTo(sps[index]);
        txn_model = std::move(saved_model);
      }
    }
    if (rng.Bernoulli(0.15)) {
      txn.Abort();
    } else {
      txn.Commit();
      model = std::move(txn_model);
    }
    if (rng.Bernoulli(0.1)) {
      held_snapshots.push_back(store.Snapshot());
      held_models.push_back(model);
    }
    if (held_snapshots.size() > 3) {
      held_snapshots.erase(held_snapshots.begin());
      held_models.erase(held_models.begin());
    }
  }
  // Final state matches the model.
  std::map<std::string, std::string> actual;
  for (const auto& [key, value] : store.Snapshot().ScanPrefix("")) {
    actual[key] = value;
  }
  EXPECT_EQ(actual, model);
  // Every held snapshot still reads its historical state (MVCC).
  for (size_t i = 0; i < held_snapshots.size(); ++i) {
    std::map<std::string, std::string> snap_actual;
    for (const auto& [key, value] : held_snapshots[i].ScanPrefix("")) {
      snap_actual[key] = value;
    }
    EXPECT_EQ(snap_actual, held_models[i]) << "snapshot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalStoreModelSweep,
                         testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

// --- ordered codec over random values ---------------------------------------

class OrderedCodecSweep : public testing::TestWithParam<uint64_t> {
 protected:
  static table::Value RandomValue(Rng& rng) {
    switch (rng.Uniform(0, 4)) {
      case 0:
        return table::Value{};
      case 1:
        return table::Value{rng.Bernoulli(0.5)};
      case 2:
        return table::Value{rng.Uniform(INT64_MIN / 2, INT64_MAX / 2)};
      case 3:
        return table::Value{(rng.UniformDouble() - 0.5) * 1e12};
      default: {
        std::string s = rng.String(rng.Uniform(0, 12));
        // Sprinkle NULs to stress the escaping.
        if (rng.Bernoulli(0.3) && !s.empty()) {
          s[rng.Uniform(0, s.size() - 1)] = '\0';
        }
        return table::Value{std::move(s)};
      }
    }
  }
};

TEST_P(OrderedCodecSweep, EncodingOrderMatchesValueOrder) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const table::Value a = RandomValue(rng);
    const table::Value b = RandomValue(rng);
    const std::string ea = table::EncodeOrdered(a);
    const std::string eb = table::EncodeOrdered(b);
    // variant's operator< orders by index first, then value — exactly the
    // type-tag-then-value order the codec promises.
    EXPECT_EQ(a < b, ea < eb) << table::ToString(a) << " vs " << table::ToString(b);
    // Round trip.
    size_t offset = 0;
    EXPECT_EQ(table::DecodeOrdered(ea, &offset), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedCodecSweep, testing::Values(101u, 202u, 303u, 404u));

// --- lease safety over skews -------------------------------------------------

class LeaseSkewSweep : public testing::TestWithParam<int64_t> {};

TEST_P(LeaseSkewSweep, NoStaleLocalReadsAfterTakeover) {
  const int64_t skew = GetParam();
  constexpr int64_t kTtl = 60'000;
  auto log = std::make_shared<InMemoryLog>();

  struct Node {
    Node(const std::string& id, std::shared_ptr<ISharedLog> log, Clock* clock, int64_t eps) {
      BaseEngineOptions base_options;
      base_options.server_id = id;
      base = std::make_unique<BaseEngine>(std::move(log), &store, base_options);
      LeaseEngine::Options options;
      options.server_id = id;
      options.lease_ttl_micros = kTtl;
      options.guard_epsilon_micros = eps;
      options.auto_renew = false;
      options.clock = clock;
      lease = std::make_unique<LeaseEngine>(options, base.get(), &store);
      lease->RegisterUpcall(&app);
      base->Start();
    }
    ~Node() { base->Stop(); }
    struct App : IApplicator {
      std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
        if (!entry.payload.empty()) {
          txn.Put("kv/" + entry.payload, "1");
        }
        return std::any(Unit{});
      }
    } app;
    LocalStore store;
    std::unique_ptr<BaseEngine> base;
    std::unique_ptr<LeaseEngine> lease;
  };

  // Holder's clock runs fast by `skew`; the guard covers it.
  SkewedClock holder_clock(RealClock::Instance(), skew);
  Node a("a", log, &holder_clock, skew + 5000);
  Node b("b", log, RealClock::Instance(), skew + 5000);

  ASSERT_TRUE(std::any_cast<bool>(a.lease->AcquireLease().Get()));
  b.base->Sync().Get();
  std::thread taker([&] { ASSERT_TRUE(b.lease->TryTakeover()); });
  // Invariant: whenever a still considers its lease valid, b has not
  // committed any write yet.
  bool violation = false;
  while (b.lease->CurrentHolder() != "b") {
    if (a.lease->HoldsValidLease() &&
        a.store.Snapshot().Get("kv/b-write").has_value()) {
      violation = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  taker.join();
  LogEntry entry;
  entry.payload = "b-write";
  b.lease->Propose(entry).Get();
  EXPECT_FALSE(violation);
  EXPECT_FALSE(a.lease->HoldsValidLease());
}

INSTANTIATE_TEST_SUITE_P(Skews, LeaseSkewSweep,
                         testing::Values(0L, 5'000L, 15'000L, 30'000L));

// --- serde round-trip fuzz ----------------------------------------------------

class SerdeFuzzSweep : public testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzzSweep, RandomStructuresRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Serializer ser;
    std::vector<uint64_t> varints;
    std::vector<int64_t> signeds;
    std::vector<std::string> strings;
    const int fields = static_cast<int>(rng.Uniform(1, 12));
    std::string plan;
    for (int f = 0; f < fields; ++f) {
      switch (rng.Uniform(0, 2)) {
        case 0: {
          const auto v = static_cast<uint64_t>(rng.Uniform(0, INT64_MAX));
          varints.push_back(v);
          ser.WriteVarint(v);
          plan += 'v';
          break;
        }
        case 1: {
          const int64_t v = rng.Uniform(INT64_MIN / 2, INT64_MAX / 2);
          signeds.push_back(v);
          ser.WriteSigned(v);
          plan += 's';
          break;
        }
        default: {
          std::string s = rng.String(rng.Uniform(0, 40));
          ser.WriteString(s);
          strings.push_back(std::move(s));
          plan += 't';
          break;
        }
      }
    }
    Deserializer de(ser.buffer());
    size_t vi = 0;
    size_t si = 0;
    size_t ti = 0;
    for (const char c : plan) {
      if (c == 'v') {
        EXPECT_EQ(de.ReadVarint(), varints[vi++]);
      } else if (c == 's') {
        EXPECT_EQ(de.ReadSigned(), signeds[si++]);
      } else {
        EXPECT_EQ(de.ReadString(), strings[ti++]);
      }
    }
    EXPECT_TRUE(de.AtEnd());
  }
}

TEST_P(SerdeFuzzSweep, TruncationAlwaysThrowsNeverCrashes) {
  Rng rng(GetParam() ^ 0xdead);
  for (int i = 0; i < 200; ++i) {
    Serializer ser;
    ser.WriteVarint(rng.Uniform(0, INT64_MAX));
    ser.WriteString(rng.String(rng.Uniform(1, 30)));
    ser.WriteSigned(rng.Uniform(INT64_MIN / 2, INT64_MAX / 2));
    const std::string full = ser.buffer();
    const auto cut = static_cast<size_t>(rng.Uniform(0, full.size() - 1));
    // The deserializer holds a view; the truncated buffer must outlive it.
    const std::string truncated = full.substr(0, cut);
    Deserializer de(truncated);
    try {
      de.ReadVarint();
      de.ReadString();
      de.ReadSigned();
      // Short reads may still succeed if the cut landed past all fields —
      // impossible here since cut < full.size(); at least one must throw.
      FAIL() << "expected SerdeError at cut " << cut;
    } catch (const SerdeError&) {
      // Expected.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzzSweep, testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace delos
