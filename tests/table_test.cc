// DelosTable tests: typed values, order-preserving codec, CRUD, secondary
// indexes, conditional updates, scans, replication, and deterministic
// error relay.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/apps/delostable/table_db.h"
#include "src/core/base_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos::table {
namespace {

// --- codec property tests ---

TEST(OrderedCodecTest, Int64OrderPreserved) {
  const int64_t values[] = {INT64_MIN, -1000000, -1, 0, 1, 42, 1000000, INT64_MAX};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(EncodeOrdered(Value{values[i]}), EncodeOrdered(Value{values[i + 1]}))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(OrderedCodecTest, DoubleOrderPreserved) {
  const double values[] = {-1e100, -3.5, -0.25, 0.0, 0.25, 3.5, 1e100};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(EncodeOrdered(Value{values[i]}), EncodeOrdered(Value{values[i + 1]}));
  }
}

TEST(OrderedCodecTest, StringOrderPreservedWithEmbeddedNuls) {
  const std::string values[] = {"", std::string("\0", 1), std::string("\0a", 2), "a",
                                std::string("a\0", 2), "ab", "b"};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(EncodeOrdered(Value{values[i]}), EncodeOrdered(Value{values[i + 1]}));
  }
}

TEST(OrderedCodecTest, RoundTripAllTypes) {
  const Value values[] = {Value{}, Value{true}, Value{false}, Value{int64_t{-42}},
                          Value{3.25}, Value{std::string("hi\0there", 8)}};
  for (const Value& v : values) {
    const std::string encoded = EncodeOrdered(v);
    size_t offset = 0;
    EXPECT_EQ(DecodeOrdered(encoded, &offset), v);
    EXPECT_EQ(offset, encoded.size());
  }
}

TEST(OrderedCodecTest, CompositeKeysDecodeSequentially) {
  std::string composite;
  EncodeOrdered(Value{std::string("user")}, &composite);
  EncodeOrdered(Value{int64_t{7}}, &composite);
  size_t offset = 0;
  EXPECT_EQ(DecodeOrdered(composite, &offset), Value{std::string("user")});
  EXPECT_EQ(DecodeOrdered(composite, &offset), Value{int64_t{7}});
}

// --- table fixture ---

class TableTest : public testing::Test {
 protected:
  TableTest() {
    log_ = std::make_shared<InMemoryLog>();
    base_ = std::make_unique<BaseEngine>(log_, &store_, BaseEngineOptions{});
    base_->RegisterUpcall(&applicator_);
    base_->Start();
    client_ = std::make_unique<TableClient>(base_.get());

    TableSchema schema;
    schema.name = "users";
    schema.columns = {{"id", ValueType::kInt64},
                      {"name", ValueType::kString},
                      {"city", ValueType::kString},
                      {"score", ValueType::kDouble}};
    schema.primary_key = "id";
    schema.secondary_indexes = {"city"};
    client_->CreateTable(schema);
  }
  ~TableTest() override { base_->Stop(); }

  Row MakeUser(int64_t id, const std::string& name, const std::string& city,
               double score = 0.0) {
    return Row{{"id", Value{id}},
               {"name", Value{name}},
               {"city", Value{city}},
               {"score", Value{score}}};
  }

  std::shared_ptr<InMemoryLog> log_;
  LocalStore store_;
  TableApplicator applicator_;
  std::unique_ptr<BaseEngine> base_;
  std::unique_ptr<TableClient> client_;
};

TEST_F(TableTest, InsertAndGet) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  auto row = client_->Get("users", Value{int64_t{1}});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)["name"], Value{std::string("ada")});
  EXPECT_FALSE(client_->Get("users", Value{int64_t{2}}).has_value());
}

TEST_F(TableTest, DuplicateInsertThrows) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  EXPECT_THROW(client_->Insert("users", MakeUser(1, "dup", "paris")), DuplicateKeyError);
  // Upsert overwrites instead.
  client_->Upsert("users", MakeUser(1, "ada2", "paris"));
  EXPECT_EQ((*client_->Get("users", Value{int64_t{1}}))["city"], Value{std::string("paris")});
}

TEST_F(TableTest, UpdateMissingRowThrowsRowNotFound) {
  EXPECT_THROW(client_->Update("users", Value{int64_t{9}}, {{"name", Value{std::string("x")}}}),
               RowNotFoundError);
}

TEST_F(TableTest, PartialUpdateKeepsOtherColumns) {
  client_->Insert("users", MakeUser(1, "ada", "london", 1.5));
  client_->Update("users", Value{int64_t{1}}, {{"score", Value{9.5}}});
  auto row = *client_->Get("users", Value{int64_t{1}});
  EXPECT_EQ(row["name"], Value{std::string("ada")});
  EXPECT_EQ(row["score"], Value{9.5});
}

TEST_F(TableTest, DeleteRemovesRowAndIndex) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  client_->Delete("users", Value{int64_t{1}});
  EXPECT_FALSE(client_->Get("users", Value{int64_t{1}}).has_value());
  EXPECT_TRUE(client_->IndexLookup("users", "city", Value{std::string("london")}).empty());
  EXPECT_THROW(client_->Delete("users", Value{int64_t{1}}), RowNotFoundError);
}

TEST_F(TableTest, SecondaryIndexFollowsUpdates) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  client_->Insert("users", MakeUser(2, "bob", "london"));
  client_->Insert("users", MakeUser(3, "eve", "paris"));

  auto londoners = client_->IndexLookup("users", "city", Value{std::string("london")});
  EXPECT_EQ(londoners.size(), 2u);

  client_->Update("users", Value{int64_t{2}}, {{"city", Value{std::string("paris")}}});
  londoners = client_->IndexLookup("users", "city", Value{std::string("london")});
  EXPECT_EQ(londoners.size(), 1u);
  auto parisians = client_->IndexLookup("users", "city", Value{std::string("paris")});
  EXPECT_EQ(parisians.size(), 2u);
}

TEST_F(TableTest, ScanRangeOrderedByPk) {
  for (int64_t id : {5, 1, 9, 3, 7}) {
    client_->Insert("users", MakeUser(id, "u" + std::to_string(id), "x"));
  }
  auto rows = client_->Scan("users", Value{int64_t{3}}, Value{int64_t{9}});
  ASSERT_EQ(rows.size(), 3u);  // 3, 5, 7 (end exclusive)
  EXPECT_EQ(rows[0]["id"], Value{int64_t{3}});
  EXPECT_EQ(rows[2]["id"], Value{int64_t{7}});

  auto all = client_->Scan("users", std::nullopt, std::nullopt);
  EXPECT_EQ(all.size(), 5u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), [](const Row& a, const Row& b) {
    return std::get<int64_t>(a.at("id")) < std::get<int64_t>(b.at("id"));
  }));
}

TEST_F(TableTest, ConditionalUpdateCas) {
  client_->Insert("users", MakeUser(1, "ada", "london", 1.0));
  client_->ConditionalUpdate("users", Value{int64_t{1}}, "score", Value{1.0},
                             {{"score", Value{2.0}}});
  EXPECT_EQ((*client_->Get("users", Value{int64_t{1}}))["score"], Value{2.0});
  EXPECT_THROW(client_->ConditionalUpdate("users", Value{int64_t{1}}, "score", Value{1.0},
                                          {{"score", Value{3.0}}}),
               ConditionFailedError);
}

TEST_F(TableTest, SchemaValidation) {
  EXPECT_THROW(client_->Insert("users", Row{{"id", Value{int64_t{1}}},
                                            {"bogus", Value{std::string("x")}}}),
               SchemaError);
  EXPECT_THROW(client_->Insert("users", Row{{"id", Value{std::string("not-an-int")}}}),
               SchemaError);
  EXPECT_THROW(client_->Insert("users", Row{{"name", Value{std::string("no-pk")}}}),
               SchemaError);
  EXPECT_THROW(client_->Insert("nope", MakeUser(1, "x", "y")), NoSuchTableError);
}

TEST_F(TableTest, FailedOpLeavesNoPartialState) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  const uint64_t checksum = store_.Checksum();
  EXPECT_THROW(client_->Insert("users", MakeUser(1, "dup", "berlin")), DuplicateKeyError);
  // The duplicate insert must not have touched indexes or rows — only the
  // BaseEngine cursor moved.
  EXPECT_TRUE(client_->IndexLookup("users", "city", Value{std::string("berlin")}).empty());
  EXPECT_EQ((*client_->Get("users", Value{int64_t{1}}))["name"], Value{std::string("ada")});
  (void)checksum;
}

TEST_F(TableTest, DropTableRemovesEverything) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  client_->DropTable("users");
  EXPECT_THROW(client_->Insert("users", MakeUser(2, "x", "y")), NoSuchTableError);
  EXPECT_FALSE(client_->GetSchema("users").has_value());
  // No leftover keys under the table prefix.
  EXPECT_TRUE(store_.Snapshot().ScanPrefix("t/users/").empty());
}

TEST(TableReplicationTest, TwoServersConverge) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store_a;
  LocalStore store_b;
  TableApplicator app_a;
  TableApplicator app_b;
  BaseEngineOptions options_a;
  options_a.server_id = "a";
  BaseEngineOptions options_b;
  options_b.server_id = "b";
  BaseEngine base_a(log, &store_a, options_a);
  BaseEngine base_b(log, &store_b, options_b);
  base_a.RegisterUpcall(&app_a);
  base_b.RegisterUpcall(&app_b);
  base_a.Start();
  base_b.Start();
  TableClient client_a(&base_a);
  TableClient client_b(&base_b);

  TableSchema schema;
  schema.name = "t";
  schema.columns = {{"k", ValueType::kInt64}, {"v", ValueType::kString}};
  schema.primary_key = "k";
  client_a.CreateTable(schema);
  client_a.Insert("t", {{"k", Value{int64_t{1}}}, {"v", Value{std::string("from-a")}}});
  // b reads a's write with strong consistency, then writes.
  auto row = client_b.Get("t", Value{int64_t{1}});
  ASSERT_TRUE(row.has_value());
  client_b.Insert("t", {{"k", Value{int64_t{2}}}, {"v", Value{std::string("from-b")}}});
  client_a.Get("t", Value{int64_t{2}});
  base_a.Sync().Get();
  EXPECT_EQ(store_a.Checksum(), store_b.Checksum());
  base_a.Stop();
  base_b.Stop();
}

}  // namespace
}  // namespace delos::table

namespace delos::table {
namespace {

TEST_F(TableTest, WriteBatchAppliesAtomically) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  std::vector<TableClient::BatchOp> batch;
  batch.push_back({TableClient::BatchOp::Kind::kInsert, "users", MakeUser(2, "bob", "paris"),
                   Value{}});
  batch.push_back({TableClient::BatchOp::Kind::kUpdate, "users",
                   Row{{"city", Value{std::string("berlin")}}}, Value{int64_t{1}}});
  batch.push_back({TableClient::BatchOp::Kind::kDelete, "users", Row{}, Value{int64_t{2}}});
  client_->ApplyBatch(batch);
  EXPECT_EQ((*client_->Get("users", Value{int64_t{1}}))["city"], Value{std::string("berlin")});
  EXPECT_FALSE(client_->Get("users", Value{int64_t{2}}).has_value());
}

TEST_F(TableTest, WriteBatchRollsBackEntirelyOnFailure) {
  client_->Insert("users", MakeUser(1, "ada", "london"));
  const uint64_t version_before = store_.committed_version();
  std::vector<TableClient::BatchOp> batch;
  batch.push_back({TableClient::BatchOp::Kind::kInsert, "users", MakeUser(5, "eve", "oslo"),
                   Value{}});
  // This op fails: row 99 does not exist.
  batch.push_back({TableClient::BatchOp::Kind::kUpdate, "users",
                   Row{{"city", Value{std::string("x")}}}, Value{int64_t{99}}});
  EXPECT_THROW(client_->ApplyBatch(batch), RowNotFoundError);
  // The first op's insert (and its index entries) rolled back with it.
  EXPECT_FALSE(client_->Get("users", Value{int64_t{5}}).has_value());
  EXPECT_TRUE(client_->IndexLookup("users", "city", Value{std::string("oslo")}).empty());
  // Only the cursor moved.
  EXPECT_EQ(store_.committed_version(), version_before + 1);
}

TEST_F(TableTest, WriteBatchSpansTables) {
  TableSchema audit;
  audit.name = "audit";
  audit.columns = {{"seq", ValueType::kInt64}, {"what", ValueType::kString}};
  audit.primary_key = "seq";
  client_->CreateTable(audit);

  std::vector<TableClient::BatchOp> batch;
  batch.push_back({TableClient::BatchOp::Kind::kInsert, "users", MakeUser(7, "gil", "rome"),
                   Value{}});
  batch.push_back({TableClient::BatchOp::Kind::kInsert, "audit",
                   Row{{"seq", Value{int64_t{1}}}, {"what", Value{std::string("added gil")}}},
                   Value{}});
  client_->ApplyBatch(batch);
  EXPECT_TRUE(client_->Get("users", Value{int64_t{7}}).has_value());
  EXPECT_TRUE(client_->Get("audit", Value{int64_t{1}}).has_value());
}

}  // namespace
}  // namespace delos::table
