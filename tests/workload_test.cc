// Workload attribution unit tests: the three streaming sketches (exactness,
// error bounds, merge/serialize round trips) and the WorkloadAttributor
// (byte budget clamp, hot-spot detection and re-arm, per-layer accounting,
// key truncation, sampling semantics).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/errors.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/common/workload.h"

namespace delos {
namespace {

// --- SpaceSaving ---

TEST(SpaceSavingTest, ExactWhileDistinctKeysFitCapacity) {
  SpaceSaving sketch(8, /*seed=*/7);
  for (int i = 0; i < 5; ++i) {
    sketch.Add("key" + std::to_string(i), static_cast<uint64_t>(i + 1) * 10);
  }
  EXPECT_EQ(sketch.size(), 5u);
  EXPECT_EQ(sketch.total_weight(), 10u + 20 + 30 + 40 + 50);
  const auto top = sketch.TopK();
  ASSERT_EQ(top.size(), 5u);
  // Sorted count desc, every count exact with zero error.
  EXPECT_EQ(top[0].key, "key4");
  EXPECT_EQ(top[0].count, 50u);
  for (const auto& hitter : top) {
    EXPECT_EQ(hitter.error, 0u) << hitter.key;
  }
  EXPECT_EQ(sketch.EstimateOf("key2"), 30u);
  EXPECT_EQ(sketch.EstimateOf("never-seen"), 0u);
}

TEST(SpaceSavingTest, EvictionInheritsTheMinimumAsError) {
  SpaceSaving sketch(2, /*seed=*/7);
  sketch.Add("a", 3);
  sketch.Add("b", 2);
  sketch.Add("c");  // evicts b (min count 2); c starts at 2 + 1 with error 2
  EXPECT_EQ(sketch.size(), 2u);
  EXPECT_EQ(sketch.total_weight(), 6u);
  EXPECT_EQ(sketch.EstimateOf("b"), 0u);
  EXPECT_EQ(sketch.EstimateOf("c"), 3u);
  const auto top = sketch.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[1].key, "c");
  EXPECT_EQ(top[1].error, 2u);
  // True count is bounded: count - error <= true (1) <= count.
  EXPECT_LE(top[1].count - top[1].error, 1u);
}

TEST(SpaceSavingTest, HeavyHitterSurvivesAnAdversarialStream) {
  // 400 distinct one-shot keys try to wash out one genuinely hot key. Any
  // key with true count > total/capacity must still be tracked, and its
  // reported range must cover the true count.
  SpaceSaving sketch(16, /*seed=*/7);
  for (int i = 0; i < 400; ++i) {
    sketch.Add("noise" + std::to_string(i));
    if (i % 4 == 0) {
      sketch.Add("hot");
    }
  }
  const uint64_t estimate = sketch.EstimateOf("hot");
  ASSERT_GT(estimate, 0u) << "heavy hitter evicted";
  EXPECT_GE(estimate, 100u);  // overestimate, never under
  const auto top = sketch.TopK();
  EXPECT_EQ(top[0].key, "hot");
  EXPECT_LE(top[0].count - top[0].error, 100u);
  ASSERT_TRUE(sketch.Peak().has_value());
  EXPECT_EQ(sketch.Peak()->key, "hot");
}

TEST(SpaceSavingTest, SerializeRoundTripsByteIdentically) {
  SpaceSaving sketch(8, /*seed=*/42);
  sketch.Add("alpha", 5);
  sketch.Add("beta", 3);
  sketch.Add("gamma", 9);
  const std::string blob = sketch.Serialize();
  SpaceSaving parsed = SpaceSaving::Parse(blob);
  EXPECT_EQ(parsed.capacity(), 8u);
  EXPECT_EQ(parsed.seed(), 42u);
  EXPECT_EQ(parsed.total_weight(), sketch.total_weight());
  EXPECT_EQ(parsed.Serialize(), blob);
}

TEST(SpaceSavingTest, MergeSumsCountsAndRejectsSeedMismatch) {
  SpaceSaving a(8, /*seed=*/42);
  a.Add("x", 5);
  a.Add("y", 2);
  SpaceSaving b(8, /*seed=*/42);
  b.Add("x", 3);
  b.Add("z", 7);
  a.Merge(b);
  EXPECT_EQ(a.EstimateOf("x"), 8u);
  EXPECT_EQ(a.EstimateOf("y"), 2u);
  EXPECT_EQ(a.EstimateOf("z"), 7u);
  EXPECT_EQ(a.total_weight(), 17u);

  SpaceSaving other_family(8, /*seed=*/1);
  EXPECT_THROW(a.Merge(other_family), DelosError);
}

TEST(SpaceSavingTest, ClearResetsEverything) {
  SpaceSaving sketch(4, /*seed=*/7);
  sketch.Add("a", 10);
  sketch.Clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.total_weight(), 0u);
  EXPECT_EQ(sketch.EstimateOf("a"), 0u);
  sketch.Add("b", 2);  // still usable after clear
  EXPECT_EQ(sketch.EstimateOf("b"), 2u);
}

// --- CountMinSketch ---

TEST(CountMinTest, NeverUnderestimatesAndHonorsTheErrorBound) {
  // Narrow grid, adversarial load: 2000 distinct keys of weight 1 against
  // one key of weight 500. Estimates must never underestimate, and the hot
  // key's overestimate must stay within eps * total (eps = e / width,
  // checked with a 2x cushion since the bound is probabilistic per row).
  CountMinSketch sketch(4, 64, /*seed=*/9);
  for (int i = 0; i < 2000; ++i) {
    sketch.Add("noise" + std::to_string(i));
  }
  sketch.Add("hot", 500);
  const uint64_t total = sketch.total_weight();
  EXPECT_EQ(total, 2500u);
  EXPECT_GE(sketch.Estimate("hot"), 500u);
  const uint64_t slack = 2 * (3 * total) / 64;  // 2 * ceil(e)/width * total
  EXPECT_LE(sketch.Estimate("hot"), 500u + slack);
  // A sampled noise key: true count 1, estimate in [1, 1 + slack].
  EXPECT_GE(sketch.Estimate("noise0"), 1u);
  EXPECT_LE(sketch.Estimate("noise0"), 1u + slack);
}

TEST(CountMinTest, SerializeAndMergeRoundTrip) {
  CountMinSketch a(4, 64, /*seed=*/9);
  a.Add("x", 10);
  a.Add("y", 4);
  const std::string blob = a.Serialize();
  CountMinSketch parsed = CountMinSketch::Parse(blob);
  EXPECT_EQ(parsed.Estimate("x"), a.Estimate("x"));
  EXPECT_EQ(parsed.Serialize(), blob);

  CountMinSketch b(4, 64, /*seed=*/9);
  b.Add("x", 5);
  a.Merge(b);
  EXPECT_GE(a.Estimate("x"), 15u);
  EXPECT_EQ(a.total_weight(), 19u);

  CountMinSketch wrong_shape(4, 128, /*seed=*/9);
  EXPECT_THROW(a.Merge(wrong_shape), DelosError);
  CountMinSketch wrong_seed(4, 64, /*seed=*/10);
  EXPECT_THROW(a.Merge(wrong_seed), DelosError);
}

// --- HyperLogLog ---

TEST(HyperLogLogTest, EstimatesTenThousandDistinctWithinFivePercent) {
  HyperLogLog sketch(12, /*seed=*/3);
  for (int i = 0; i < 10'000; ++i) {
    sketch.Add("element-" + std::to_string(i));
  }
  const double estimate = static_cast<double>(sketch.Estimate());
  EXPECT_GT(estimate, 10'000.0 * 0.95);
  EXPECT_LT(estimate, 10'000.0 * 1.05);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflateTheEstimate) {
  HyperLogLog sketch(12, /*seed=*/3);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) {
      sketch.Add("dup-" + std::to_string(i));
    }
  }
  const uint64_t estimate = sketch.Estimate();
  EXPECT_GE(estimate, 18u);
  EXPECT_LE(estimate, 22u);
}

TEST(HyperLogLogTest, SerializeRoundTripsAndMergeIsUnion) {
  HyperLogLog a(10, /*seed=*/3);
  HyperLogLog b(10, /*seed=*/3);
  for (int i = 0; i < 500; ++i) {
    a.Add("a-" + std::to_string(i));
    b.Add("b-" + std::to_string(i));
  }
  const std::string blob = a.Serialize();
  HyperLogLog parsed = HyperLogLog::Parse(blob);
  EXPECT_EQ(parsed.Estimate(), a.Estimate());
  EXPECT_EQ(parsed.Serialize(), blob);

  a.Merge(b);
  const double merged = static_cast<double>(a.Estimate());
  EXPECT_GT(merged, 1000.0 * 0.9);
  EXPECT_LT(merged, 1000.0 * 1.1);

  HyperLogLog wrong_precision(11, /*seed=*/3);
  EXPECT_THROW(a.Merge(wrong_precision), DelosError);
}

// --- WorkloadAttributor ---

WorkloadAttributor::Options ExactOptions(MetricsRegistry* metrics) {
  WorkloadAttributor::Options options;
  options.metrics = metrics;
  options.server = "test";
  options.rate_sample_every = 1;  // exact per-op attribution for assertions
  options.hot_min_ops = 8;
  return options;
}

TEST(WorkloadAttributorTest, ByteBudgetClampShrinksSketchesUnderTheBudget) {
  MetricsRegistry metrics;
  WorkloadAttributor::Options options = ExactOptions(&metrics);
  options.sketch_byte_budget = 32 * 1024;
  WorkloadAttributor attributor(std::move(options));
  // The defaults (2 x 32 KiB Count-Min alone) cannot fit 32 KiB: the clamp
  // must have shrunk the grid, and the live footprint must respect the
  // budget.
  EXPECT_LT(attributor.options().cm_width, 1024u);
  EXPECT_LE(attributor.SketchBytes(), 32u * 1024u);
  EXPECT_EQ(metrics.GetGauge("workload.sketch.bytes")->value(),
            static_cast<int64_t>(attributor.SketchBytes()));
}

TEST(WorkloadAttributorTest, AppliedOpsAttributeKeysAndClients) {
  MetricsRegistry metrics;
  WorkloadAttributor attributor(ExactOptions(&metrics));
  const std::vector<uint64_t> client7{7};
  const std::vector<uint64_t> client9{9};
  for (int i = 0; i < 30; ++i) {
    attributor.ChargeApply("table:users", client7, 100);
  }
  for (int i = 0; i < 10; ++i) {
    attributor.ChargeApply("table:orders", client9, 50);
  }
  EXPECT_EQ(attributor.apply_ops(), 40u);

  const auto hot_key = attributor.HottestKey();
  ASSERT_TRUE(hot_key.has_value());
  EXPECT_EQ(hot_key->name, "table:users");
  EXPECT_EQ(hot_key->ops, 30u);
  EXPECT_NEAR(hot_key->share_pct, 75.0, 0.1);

  const auto hot_client = attributor.HottestClient();
  ASSERT_TRUE(hot_client.has_value());
  EXPECT_EQ(hot_client->name, "7");

  const std::string top_keys = attributor.RenderTopKeys();
  EXPECT_NE(top_keys.find("table:users"), std::string::npos) << top_keys;
  const std::string top_clients = attributor.RenderTopClientsJson();
  EXPECT_NE(top_clients.find("\"client\":\"7\""), std::string::npos) << top_clients;
}

TEST(WorkloadAttributorTest, HotEventsFireOncePerOffenderAndReArm) {
  MetricsRegistry metrics;
  FlightRecorder recorder(64);
  WorkloadAttributor::Options options = ExactOptions(&metrics);
  options.recorder = &recorder;
  WorkloadAttributor attributor(std::move(options));
  const std::vector<uint64_t> no_clients;
  // 64 ops on one key: far past hot_min_ops and the 25% share threshold.
  // The maintenance scan runs every 16th sampled op, so the event fires
  // within the loop; staying hot must not re-fire it.
  for (int i = 0; i < 64; ++i) {
    attributor.ChargeApply("spicy", no_clients, 10);
  }
  uint64_t hot_events = 0;
  for (const auto& event : recorder.Snapshot()) {
    if (event.kind == FlightEventKind::kWorkload) {
      hot_events += 1;
      EXPECT_NE(event.detail.find("spicy"), std::string::npos);
    }
  }
  EXPECT_EQ(hot_events, 1u);
  EXPECT_EQ(metrics.GetCounter("workload.hot.events")->value(), 1u);

  // Dilute far below the threshold (the maintenance scan re-arms), then
  // re-concentrate: the same key fires again.
  for (int i = 0; i < 512; ++i) {
    attributor.ChargeApply("dilute" + std::to_string(i % 16), no_clients, 10);
  }
  for (int i = 0; i < 2048; ++i) {
    attributor.ChargeApply("spicy", no_clients, 10);
  }
  EXPECT_GE(metrics.GetCounter("workload.hot.events")->value(), 2u);
}

TEST(WorkloadAttributorTest, ProposeTapBuildsThePerLayerTable) {
  MetricsRegistry metrics;
  WorkloadAttributor attributor(ExactOptions(&metrics));
  const std::vector<uint64_t> clients{1, 2};
  attributor.ChargePropose("batching.queue", clients, 256);
  attributor.ChargePropose("batching.queue", clients, 256);
  attributor.ChargePropose("base.append", clients, 300);
  const std::string rendered = attributor.RenderWorkload();
  EXPECT_NE(rendered.find("batching.queue"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("base.append"), std::string::npos) << rendered;
  EXPECT_EQ(metrics.GetCounter("workload.layer.batching.queue.ops")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("workload.layer.batching.queue.bytes")->value(), 512u);
  const std::string json = attributor.RenderWorkloadJson();
  EXPECT_NE(json.find("\"layer\":\"base.append\""), std::string::npos) << json;
}

TEST(WorkloadAttributorTest, LongKeysAreTruncatedAndEmptyKeysPooled) {
  MetricsRegistry metrics;
  WorkloadAttributor attributor(ExactOptions(&metrics));
  const std::vector<uint64_t> no_clients;
  const std::string huge(4096, 'k');
  for (int i = 0; i < 16; ++i) {
    attributor.ChargeApply(huge, no_clients, 10);
    attributor.ChargeApply("", no_clients, 10);
  }
  const std::string top = attributor.RenderTopKeys();
  EXPECT_EQ(top.find(huge), std::string::npos);
  EXPECT_NE(top.find(huge.substr(0, WorkloadAttributor::kMaxTrackedKeyBytes)),
            std::string::npos);
  EXPECT_NE(top.find("(unattributed)"), std::string::npos) << top;
}

TEST(WorkloadAttributorTest, WindowCloseResetsWindowEstimatesAndSetsGauges) {
  MetricsRegistry metrics;
  WorkloadAttributor attributor(ExactOptions(&metrics));
  const std::vector<uint64_t> clients{1};
  for (int i = 0; i < 32; ++i) {
    attributor.ChargeApply("k" + std::to_string(i % 4), clients, 10);
  }
  attributor.CloseWindow(1'000'000);
  EXPECT_EQ(metrics.GetGauge("workload.window.distinct.keys")->value(), 4);
  EXPECT_EQ(metrics.GetGauge("workload.window.distinct.clients")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("workload.apply.ops")->value(), 32u);
  // The lifetime estimate survives the window reset; the next window starts
  // empty (the render shows the open window at ~0).
  const std::string json = attributor.RenderWorkloadJson();
  EXPECT_NE(json.find("\"windows_closed\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"window_distinct_keys\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"distinct_keys\":4"), std::string::npos) << json;
}

TEST(WorkloadAttributorTest, SampledTapKeepsTotalsExactAndSharesUnbiased) {
  // The default configuration samples 1 op in 8: op/byte totals stay exact,
  // sampled sketch counts carry the 8x compensating weight, and shares of a
  // steady workload are preserved.
  MetricsRegistry metrics;
  WorkloadAttributor::Options options;
  options.metrics = &metrics;
  options.server = "sampled";
  options.hot_min_ops = 8;
  ASSERT_EQ(options.rate_sample_every, 8u);
  WorkloadAttributor attributor(std::move(options));
  const std::vector<uint64_t> clients{5};
  for (int i = 0; i < 4000; ++i) {
    // 4 of 5 ops on the hot key — period 5 is co-prime with the 1-in-8
    // sampling, so the sampled subset sees the true 80/20 mix.
    attributor.ChargeApply(i % 5 == 4 ? "cold" : "hot", clients, 100);
  }
  EXPECT_EQ(attributor.apply_ops(), 4000u);
  const auto hot = attributor.HottestKey();
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->name, "hot");
  EXPECT_NEAR(hot->share_pct, 80.0, 1.0);
  // BeginApply alone counts without sketching; ordinal 4000 (0-based) is
  // divisible by 8, so it reports sampled.
  EXPECT_TRUE(attributor.BeginApply(10));
  EXPECT_EQ(attributor.apply_ops(), 4001u);
}

}  // namespace
}  // namespace delos
