// Health-plane unit tests: the windowed time-series store, Prometheus
// exposition hygiene, and the Watchdog's transition bookkeeping.
#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/metrics_ts.h"
#include "src/common/trace.h"
#include "src/core/health.h"

namespace delos {
namespace {

// --- TimeSeriesStore ---

TEST(TimeSeriesTest, FirstSnapshotIsBaselineOnly) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.GetCounter("ops")->Increment(10);
  metrics.SnapshotInto(store, 1'000'000);
  EXPECT_EQ(store.window_count(), 0u);
  EXPECT_EQ(store.windows_committed(), 0u);
  EXPECT_FALSE(store.Latest().has_value());
}

TEST(TimeSeriesTest, CounterDeltasBecomeRates) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.SnapshotInto(store, 0);  // baseline
  metrics.GetCounter("ops")->Increment(50);
  metrics.SnapshotInto(store, 1'000'000);  // 1s window: 50 ops
  metrics.GetCounter("ops")->Increment(150);
  metrics.SnapshotInto(store, 2'000'000);  // 1s window: 150 ops

  ASSERT_EQ(store.window_count(), 2u);
  const auto windows = store.Windows();
  EXPECT_EQ(windows[0].counter_deltas.at("ops"), 50u);
  EXPECT_EQ(windows[1].counter_deltas.at("ops"), 150u);
  EXPECT_EQ(windows[1].width_micros(), 1'000'000);
  EXPECT_DOUBLE_EQ(store.RatePerSecond("ops", 1), 150.0);
  EXPECT_DOUBLE_EQ(store.RatePerSecond("ops", 2), 100.0);
  EXPECT_DOUBLE_EQ(store.RatePerSecond("absent"), 0.0);
}

TEST(TimeSeriesTest, GaugesAreLastValue) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.SnapshotInto(store, 0);
  metrics.GetGauge("depth")->Set(7);
  metrics.SnapshotInto(store, 1'000'000);
  metrics.GetGauge("depth")->Set(3);
  metrics.SnapshotInto(store, 2'000'000);
  ASSERT_TRUE(store.LatestGauge("depth").has_value());
  EXPECT_EQ(*store.LatestGauge("depth"), 3);
  EXPECT_FALSE(store.LatestGauge("absent").has_value());
}

TEST(TimeSeriesTest, RingEvictsOldestWindows) {
  MetricsRegistry metrics;
  TimeSeriesStore store(4);
  metrics.SnapshotInto(store, 0);
  for (int i = 1; i <= 10; ++i) {
    metrics.GetCounter("ops")->Increment(1);
    metrics.SnapshotInto(store, i * 1'000'000);
  }
  EXPECT_EQ(store.window_count(), 4u);
  EXPECT_EQ(store.windows_committed(), 10u);
  const auto windows = store.Windows();
  EXPECT_EQ(windows.front().index, 6u);  // oldest retained = 10 - 4
  EXPECT_EQ(windows.back().index, 9u);
}

TEST(TimeSeriesTest, CounterResetClampsDeltaAtZero) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.GetCounter("ops")->Increment(100);
  metrics.SnapshotInto(store, 0);
  metrics.GetCounter("ops")->Reset();
  metrics.SnapshotInto(store, 1'000'000);
  ASSERT_EQ(store.window_count(), 1u);
  // A reset moves the cumulative value backward; the window must not carry a
  // huge wrapped delta.
  EXPECT_EQ(store.Windows()[0].counter_deltas.at("ops"), 0u);
}

TEST(TimeSeriesTest, BackwardClockJumpClampsTheWindowAtItsStart) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.SnapshotInto(store, 2'000'000);  // baseline at t=2s
  metrics.GetCounter("ops")->Increment(10);
  // The injected clock stepped backward (NTP step, or a sim reusing a rig):
  // the window must clamp to zero width, never end before it starts.
  metrics.SnapshotInto(store, 1'000'000);
  ASSERT_EQ(store.window_count(), 1u);
  auto windows = store.Windows();
  EXPECT_EQ(windows[0].start_micros, 2'000'000);
  EXPECT_EQ(windows[0].end_micros, 2'000'000);
  EXPECT_EQ(windows[0].width_micros(), 0);
  EXPECT_EQ(windows[0].counter_deltas.at("ops"), 10u);
  // Zero-width windows contribute no rate (the division is guarded).
  EXPECT_DOUBLE_EQ(store.RatePerSecond("ops", 1), 0.0);
  // The next window opens at the clamped end — a backward jump must not
  // drag subsequent windows' starts backward with it.
  metrics.GetCounter("ops")->Increment(5);
  metrics.SnapshotInto(store, 3'000'000);
  windows = store.Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].start_micros, 2'000'000);
  EXPECT_EQ(windows[1].end_micros, 3'000'000);
  EXPECT_DOUBLE_EQ(store.RatePerSecond("ops", 1), 5.0);
}

TEST(TimeSeriesTest, DuplicateTimestampSnapshotsYieldZeroWidthWindows) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.SnapshotInto(store, 1'000'000);  // baseline
  metrics.GetCounter("ops")->Increment(100);
  metrics.GetHistogram("lat")->Record(250);
  metrics.SnapshotInto(store, 1'000'000);  // same timestamp (frozen sim clock)
  ASSERT_EQ(store.window_count(), 1u);
  const auto windows = store.Windows();
  EXPECT_EQ(windows[0].width_micros(), 0);
  // Deltas still land in the window — only the rate collapses to zero.
  EXPECT_EQ(windows[0].counter_deltas.at("ops"), 100u);
  EXPECT_EQ(windows[0].histograms.at("lat").count, 1u);
  EXPECT_DOUBLE_EQ(store.RatePerSecond("ops", 1), 0.0);
}

TEST(TimeSeriesTest, CounterResetAcrossBackwardJumpStaysClamped) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.GetCounter("ops")->Increment(100);
  metrics.SnapshotInto(store, 5'000'000);  // baseline with a high cumulative
  metrics.GetCounter("ops")->Reset();
  metrics.GetCounter("ops")->Increment(3);
  metrics.SnapshotInto(store, 4'000'000);  // reset AND a backward clock jump
  ASSERT_EQ(store.window_count(), 1u);
  // Both clamps hold at once: no wrapped 2^64 delta, no negative-width
  // window feeding a nonsense rate.
  EXPECT_EQ(store.Windows()[0].counter_deltas.at("ops"), 0u);
  EXPECT_EQ(store.Windows()[0].width_micros(), 0);
  EXPECT_DOUBLE_EQ(store.RatePerSecond("ops", 1), 0.0);
}

TEST(TimeSeriesTest, HistogramWindowsCarryPerWindowPercentiles) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.SnapshotInto(store, 0);
  Histogram* hist = metrics.GetHistogram("lat");
  for (int i = 0; i < 100; ++i) {
    hist->Record(10);
  }
  metrics.SnapshotInto(store, 1'000'000);
  // Second window: much slower samples — its p99 must reflect only them.
  for (int i = 0; i < 100; ++i) {
    hist->Record(5000);
  }
  metrics.SnapshotInto(store, 2'000'000);

  const auto windows = store.Windows();
  ASSERT_EQ(windows.size(), 2u);
  const auto& w0 = windows[0].histograms.at("lat");
  const auto& w1 = windows[1].histograms.at("lat");
  EXPECT_EQ(w0.count, 100u);
  EXPECT_EQ(w1.count, 100u);
  EXPECT_LT(w0.p99, 100);
  EXPECT_GE(w1.p99, 5000 / 2);  // bucket-resolution slack
  EXPECT_GT(w1.max, w0.max);
}

TEST(TimeSeriesTest, RenderJsonAndTableNameTheMetrics) {
  MetricsRegistry metrics;
  TimeSeriesStore store(8);
  metrics.SnapshotInto(store, 0);
  metrics.GetCounter("base.apply.records")->Increment(42);
  metrics.GetGauge("queue.depth")->Set(5);
  metrics.GetHistogram("lat")->Record(100);
  metrics.SnapshotInto(store, 1'000'000);

  const std::string json = store.RenderJson();
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("base.apply.records"), std::string::npos);
  const std::string table = store.RenderTable();
  EXPECT_NE(table.find("rate/s"), std::string::npos);
  EXPECT_NE(table.find("base.apply.records"), std::string::npos);
  EXPECT_NE(table.find("queue.depth"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
}

// --- Prometheus exposition hygiene ---

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(PrometheusName("base.apply.records"), "base_apply_records");
  EXPECT_EQ(PrometheusName("health.state.zelos"), "health_state_zelos");
  EXPECT_EQ(PrometheusName("weird-name/with spaces"), "weird_name_with_spaces");
  EXPECT_EQ(PrometheusName("9lives"), "_9lives");
  EXPECT_EQ(PrometheusName(""), "_");
  EXPECT_EQ(PrometheusName("already_fine:total"), "already_fine:total");
}

TEST(PrometheusTest, LabelValueEscaping) {
  EXPECT_EQ(PrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(PrometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PrometheusLabelValue("a\nb"), "a\\nb");
}

// Round-trip lint: every line RenderPrometheus emits — even for hostile
// metric names — must parse under the exposition grammar.
TEST(PrometheusTest, RenderedExpositionPassesLint) {
  MetricsRegistry metrics;
  metrics.GetCounter("base.apply.records")->Increment(3);
  metrics.GetCounter("9starts.with-digit")->Increment(1);
  metrics.GetGauge("queue depth (entries)")->Set(-2);
  metrics.GetHistogram("lat.us")->Record(150);

  const std::regex type_line(R"(^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)$)");
  const std::regex sample_line(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"\})? -?[0-9]+(\.[0-9]+)?$)");

  const std::string exposition = metrics.RenderPrometheus();
  size_t start = 0;
  int samples = 0;
  while (start < exposition.size()) {
    size_t end = exposition.find('\n', start);
    if (end == std::string::npos) {
      end = exposition.size();
    }
    const std::string line = exposition.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      continue;
    }
    if (line.rfind("# ", 0) == 0) {
      EXPECT_TRUE(std::regex_match(line, type_line)) << "bad TYPE line: " << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_line)) << "bad sample line: " << line;
      ++samples;
    }
  }
  EXPECT_GE(samples, 7);  // 2 counters + 1 gauge + 4 summary lines
}

// --- Watchdog ---

class FakeTarget : public IHealthCheckable {
 public:
  explicit FakeTarget(std::string component) : component_(std::move(component)) {}
  HealthReport HealthCheck() const override {
    return HealthReport{component_, state_, reason_, value_};
  }
  void Set(HealthState state, std::string reason = "", int64_t value = 0) {
    state_ = state;
    reason_ = std::move(reason);
    value_ = value;
  }

 private:
  std::string component_;
  HealthState state_ = HealthState::kOk;
  std::string reason_;
  int64_t value_ = 0;
};

TEST(WatchdogTest, RecordsTransitionsOnceAndUpdatesGauges) {
  SimClock clock;
  MetricsRegistry metrics;
  FlightRecorder recorder(64);
  TimeSeriesStore series(16);
  std::vector<std::string> fired;
  WatchdogOptions options;
  options.clock = &clock;
  options.metrics = &metrics;
  options.recorder = &recorder;
  options.series = &series;
  options.on_transition = [&](const HealthReport& report, HealthState previous) {
    fired.push_back(report.component + ":" + HealthStateName(previous) + "->" +
                    HealthStateName(report.state));
  };
  Watchdog watchdog(options);
  FakeTarget apply("apply");
  FakeTarget batch("batch");
  watchdog.AddTarget(&apply);
  watchdog.AddTarget(&batch);

  // Healthy pass: no transitions (OK is the assumed starting state).
  clock.Advance(250'000);
  watchdog.Evaluate();
  EXPECT_EQ(watchdog.transitions(), 0u);
  EXPECT_EQ(watchdog.aggregate(), HealthState::kOk);

  // One component goes unhealthy: exactly one transition, recorded once.
  apply.Set(HealthState::kUnhealthy, "apply stalled", 1'700'000);
  clock.Advance(250'000);
  watchdog.Evaluate();
  clock.Advance(250'000);
  watchdog.Evaluate();  // still unhealthy: no second transition
  EXPECT_EQ(watchdog.transitions(), 1u);
  EXPECT_EQ(watchdog.non_ok_transitions(), 1u);
  EXPECT_EQ(watchdog.aggregate(), HealthState::kUnhealthy);
  EXPECT_EQ(metrics.GetGauge("health.state")->value(), 2);
  EXPECT_EQ(metrics.GetGauge("health.state.apply")->value(), 2);
  EXPECT_EQ(metrics.GetGauge("health.state.batch")->value(), 0);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "apply:OK->UNHEALTHY");

  // Recovery is also a transition (back to OK), but not a non-OK one.
  apply.Set(HealthState::kOk);
  clock.Advance(250'000);
  watchdog.Evaluate();
  EXPECT_EQ(watchdog.transitions(), 2u);
  EXPECT_EQ(watchdog.non_ok_transitions(), 1u);
  EXPECT_EQ(watchdog.aggregate(), HealthState::kOk);

  // The flight recorder carries the transition with the reason.
  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("health"), std::string::npos);
  EXPECT_NE(dump.find("apply OK->UNHEALTHY apply stalled"), std::string::npos);
  EXPECT_NE(dump.find("apply UNHEALTHY->OK"), std::string::npos);

  // Each pass closed one time-series window (first was the baseline).
  EXPECT_EQ(watchdog.evaluations(), 4u);
  EXPECT_EQ(series.windows_committed(), 3u);
}

TEST(WatchdogTest, AggregateIsTheWorstComponent) {
  Watchdog watchdog{WatchdogOptions{}};
  FakeTarget a("a");
  FakeTarget b("b");
  watchdog.AddTarget(&a);
  watchdog.AddTarget(&b);
  a.Set(HealthState::kDegraded, "slow");
  auto reports = watchdog.Evaluate();
  EXPECT_EQ(AggregateHealth(reports), HealthState::kDegraded);
  b.Set(HealthState::kUnhealthy, "wedged");
  reports = watchdog.Evaluate();
  EXPECT_EQ(AggregateHealth(reports), HealthState::kUnhealthy);
  EXPECT_EQ(watchdog.aggregate(), HealthState::kUnhealthy);
}

TEST(WatchdogTest, RemoveTargetStopsEvaluatingIt) {
  Watchdog watchdog{WatchdogOptions{}};
  FakeTarget a("a");
  FakeTarget b("b");
  watchdog.AddTarget(&a);
  watchdog.AddTarget(&b);
  EXPECT_EQ(watchdog.Evaluate().size(), 2u);
  watchdog.RemoveTarget(&a);
  const auto reports = watchdog.Evaluate();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].component, "b");
}

TEST(WatchdogTest, HealthJsonRendersStateAndEscapes) {
  std::vector<HealthReport> reports;
  reports.push_back({"base", HealthState::kOk, "", 0});
  reports.push_back({"batch", HealthState::kUnhealthy, "stuck \"batch\"\n", 42});
  const std::string json = RenderHealthJson(reports);
  EXPECT_NE(json.find("\"state\":\"UNHEALTHY\""), std::string::npos);
  EXPECT_NE(json.find("\"component\":\"base\""), std::string::npos);
  EXPECT_NE(json.find("stuck \\\"batch\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
}

TEST(WatchdogTest, BackgroundThreadEvaluatesOnCadence) {
  WatchdogOptions options;
  options.cadence_micros = 2'000;  // fast cadence so the test stays quick
  Watchdog watchdog(options);
  FakeTarget a("a");
  watchdog.AddTarget(&a);
  watchdog.Start();
  while (watchdog.evaluations() < 3) {
  }
  watchdog.Stop();
  EXPECT_GE(watchdog.evaluations(), 3u);
  EXPECT_EQ(watchdog.aggregate(), HealthState::kOk);
}

}  // namespace
}  // namespace delos
