// Per-engine tests: ObserverEngine, ViewTrackingEngine, BrainDoctorEngine,
// BatchingEngine.
#include <gtest/gtest.h>

#include <thread>

#include "src/core/base_engine.h"
#include "src/engines/batching_engine.h"
#include "src/engines/brain_doctor_engine.h"
#include "src/engines/observer_engine.h"
#include "src/engines/view_tracking_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

class CountingApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put("app/count", std::to_string(++applies_));
    if (entry.payload == "fail") {
      throw DeterministicError("requested failure");
    }
    return std::any(std::string("r:") + entry.payload);
  }
  int applies() const { return applies_; }

 private:
  int applies_ = 0;
};

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

// A future's waiter can resume before its continuations run on the
// fulfilling thread, so metric updates are polled.
void WaitForCount(Histogram* histogram, uint64_t expected) {
  const int64_t deadline = RealClock::Instance()->NowMicros() + 1'000'000;
  while (histogram->count() < expected && RealClock::Instance()->NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(histogram->count(), expected);
}

// --- ObserverEngine ---

TEST(ObserverEngineTest, RecordsProposeAndSyncLatency) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  MetricsRegistry metrics;
  CountingApplicator app;
  BaseEngine base(log, &store, BaseEngineOptions{});
  ObserverEngine::Options options;
  options.label = "base";
  options.metrics = &metrics;
  ObserverEngine observer(options, &base, &store);
  observer.RegisterUpcall(&app);
  base.Start();

  observer.Propose(PayloadEntry("x")).Get();
  observer.Sync().Get();
  WaitForCount(metrics.GetHistogram("base.propose.latency_us"), 1);
  WaitForCount(metrics.GetHistogram("base.sync.latency_us"), 1);
  base.Stop();
}

TEST(ObserverEngineTest, RecordsLatencyEvenOnFailure) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store;
  MetricsRegistry metrics;
  CountingApplicator app;
  BaseEngine base(log, &store, BaseEngineOptions{});
  ObserverEngine::Options options;
  options.label = "base";
  options.metrics = &metrics;
  ObserverEngine observer(options, &base, &store);
  observer.RegisterUpcall(&app);
  base.Start();

  EXPECT_THROW(observer.Propose(PayloadEntry("fail")).Get(), DeterministicError);
  WaitForCount(metrics.GetHistogram("base.propose.latency_us"), 1);
  base.Stop();
}

// --- ViewTrackingEngine ---

struct VtServer {
  VtServer(const std::string& id, std::shared_ptr<ISharedLog> log,
           int64_t eject_after_micros = 0, Clock* clock = nullptr) {
    BaseEngineOptions base_options;
    base_options.server_id = id;
    base = std::make_unique<BaseEngine>(std::move(log), &store, base_options);
    ViewTrackingEngine::Options options;
    options.server_id = id;
    options.durable_position = [this] { return base->durable_position(); };
    options.eject_after_micros = eject_after_micros;
    options.clock = clock;
    vt = std::make_unique<ViewTrackingEngine>(options, base.get(), &store);
    vt->RegisterUpcall(&app);
    base->Start();
  }
  ~VtServer() { base->Stop(); }

  LocalStore store;
  CountingApplicator app;
  std::unique_ptr<BaseEngine> base;
  std::unique_ptr<ViewTrackingEngine> vt;
};

TEST(ViewTrackingTest, BuildsViewFromHeaders) {
  auto log = std::make_shared<InMemoryLog>();
  VtServer a("a", log);
  VtServer b("b", log);

  a.vt->Propose(PayloadEntry("w1")).Get();
  b.vt->Propose(PayloadEntry("w2")).Get();
  a.base->Sync().Get();

  const auto view = a.vt->View();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_TRUE(view.count("a"));
  EXPECT_TRUE(view.count("b"));
}

TEST(ViewTrackingTest, TrimFollowsSlowestServer) {
  auto log = std::make_shared<InMemoryLog>();
  VtServer a("a", log);
  VtServer b("b", log);

  // Both servers write and flush so their durable positions advance.
  for (int i = 0; i < 5; ++i) {
    a.vt->Propose(PayloadEntry("a" + std::to_string(i))).Get();
  }
  a.base->FlushNow();
  b.base->Sync().Get();
  b.base->FlushNow();
  // Stamp the durable positions into the log.
  a.vt->Propose(PayloadEntry("stamp-a")).Get();
  b.vt->Propose(PayloadEntry("stamp-b")).Get();
  a.base->Sync().Get();

  const auto view = a.vt->View();
  const LogPos safe = a.vt->SafeTrimPosition();
  EXPECT_GT(safe, 0u);
  for (const auto& [server, pos] : view) {
    EXPECT_LE(safe, pos);
  }
  // The BaseEngine may trim up to the safe position (min over the view).
  a.base->FlushNow();
  a.base->TrimNow();
  EXPECT_EQ(log->trim_prefix(), std::min(safe, a.base->durable_position()));
}

TEST(ViewTrackingTest, EjectsSilentServer) {
  auto log = std::make_shared<InMemoryLog>();
  SimClock clock;
  VtServer a("a", log, /*eject_after_micros=*/100'000, &clock);
  a.vt->Propose(PayloadEntry("a-joins")).Get();
  {
    VtServer b("b", log, 100'000, &clock);
    b.vt->Propose(PayloadEntry("b-was-here")).Get();
    a.base->Sync().Get();
    EXPECT_EQ(a.vt->View().size(), 2u);
  }
  // b is gone; advance time past the ejection threshold and give a a reason
  // to apply entries (its own writes).
  clock.Advance(200'000);
  a.vt->Propose(PayloadEntry("tick1")).Get();
  a.vt->Propose(PayloadEntry("tick2")).Get();  // applies the EJECT proposal
  a.base->Sync().Get();
  // Allow one more round for the ejection command to be applied.
  for (int i = 0; i < 10 && a.vt->View().size() > 1; ++i) {
    a.vt->Propose(PayloadEntry("tick")).Get();
  }
  const auto view = a.vt->View();
  EXPECT_EQ(view.size(), 1u);
  EXPECT_TRUE(view.count("a"));
}

TEST(ViewTrackingTest, EjectedServerRejoinsOnNextAppend) {
  auto log = std::make_shared<InMemoryLog>();
  SimClock clock;
  VtServer a("a", log, 100'000, &clock);
  VtServer b("b", log, 100'000, &clock);
  a.vt->Propose(PayloadEntry("a-joins")).Get();
  b.vt->Propose(PayloadEntry("hello")).Get();
  a.base->Sync().Get();
  ASSERT_EQ(a.vt->View().size(), 2u);

  clock.Advance(200'000);
  for (int i = 0; i < 10 && a.vt->View().size() > 1; ++i) {
    a.vt->Propose(PayloadEntry("tick")).Get();
  }
  ASSERT_EQ(a.vt->View().size(), 1u);

  b.vt->Propose(PayloadEntry("back")).Get();
  a.base->Sync().Get();
  EXPECT_EQ(a.vt->View().size(), 2u);
}

// --- BrainDoctorEngine ---

TEST(BrainDoctorTest, RawWritesApplyOnAllReplicas) {
  auto log = std::make_shared<InMemoryLog>();
  LocalStore store_a;
  LocalStore store_b;
  CountingApplicator app_a;
  CountingApplicator app_b;
  BaseEngineOptions opt_a;
  opt_a.server_id = "a";
  BaseEngineOptions opt_b;
  opt_b.server_id = "b";
  BaseEngine base_a(log, &store_a, opt_a);
  BaseEngine base_b(log, &store_b, opt_b);
  BrainDoctorEngine bd_a(BrainDoctorEngine::Options{}, &base_a, &store_a);
  BrainDoctorEngine bd_b(BrainDoctorEngine::Options{}, &base_b, &store_b);
  bd_a.RegisterUpcall(&app_a);
  bd_b.RegisterUpcall(&app_b);
  base_a.Start();
  base_b.Start();

  // Seed state through the app, then surgically repair a key the app owns.
  bd_a.Propose(PayloadEntry("normal")).Get();
  const auto count =
      std::any_cast<uint64_t>(bd_a.ApplyRawWrites({{"app/count", std::string("fixed")},
                                                   {"app/bogus", std::nullopt}})
                                  .Get());
  EXPECT_EQ(count, 2u);
  base_b.Sync().Get();
  EXPECT_EQ(store_a.Snapshot().Get("app/count").value(), "fixed");
  EXPECT_EQ(store_b.Snapshot().Get("app/count").value(), "fixed");
  EXPECT_EQ(store_a.Checksum(), store_b.Checksum());
  // The control entry never reached the application.
  EXPECT_EQ(app_a.applies(), 1);

  base_a.Stop();
  base_b.Stop();
}

// --- BatchingEngine ---

struct BatchServer {
  explicit BatchServer(std::shared_ptr<ISharedLog> log, size_t max_entries = 8,
                       int64_t max_delay = 2000) {
    base = std::make_unique<BaseEngine>(std::move(log), &store, BaseEngineOptions{});
    BatchingEngine::Options options;
    options.max_batch_entries = max_entries;
    options.max_delay_micros = max_delay;
    batching = std::make_unique<BatchingEngine>(options, base.get(), &store);
    batching->RegisterUpcall(&app);
    base->Start();
  }
  ~BatchServer() { base->Stop(); }

  LocalStore store;
  CountingApplicator app;
  std::unique_ptr<BaseEngine> base;
  std::unique_ptr<BatchingEngine> batching;
};

TEST(BatchingTest, ManyProposalsShareLogEntries) {
  auto log = std::make_shared<InMemoryLog>();
  BatchServer server(log, /*max_entries=*/8, /*max_delay=*/50'000);

  constexpr int kOps = 32;
  std::vector<Future<std::any>> futures;
  futures.reserve(kOps);
  for (int i = 0; i < kOps; ++i) {
    futures.push_back(server.batching->Propose(PayloadEntry("op" + std::to_string(i))));
  }
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(std::any_cast<std::string>(futures[i].Get()), "r:op" + std::to_string(i));
  }
  // 32 ops at batch size 8 -> exactly 4 log entries (all proposals were
  // issued before any flush completed).
  EXPECT_EQ(log->CheckTail().Get(), 5u);
  EXPECT_EQ(server.app.applies(), kOps);
  EXPECT_EQ(server.batching->entries_batched(), static_cast<uint64_t>(kOps));
}

TEST(BatchingTest, DelayTimerFlushesPartialBatch) {
  auto log = std::make_shared<InMemoryLog>();
  BatchServer server(log, /*max_entries=*/100, /*max_delay=*/1000);
  EXPECT_EQ(std::any_cast<std::string>(server.batching->Propose(PayloadEntry("solo")).Get()),
            "r:solo");
  EXPECT_EQ(server.batching->batches_proposed(), 1u);
}

TEST(BatchingTest, ErrorsInsideBatchAreIsolated) {
  auto log = std::make_shared<InMemoryLog>();
  BatchServer server(log, /*max_entries=*/3, /*max_delay=*/50'000);
  Future<std::any> f1 = server.batching->Propose(PayloadEntry("ok1"));
  Future<std::any> f2 = server.batching->Propose(PayloadEntry("fail"));
  Future<std::any> f3 = server.batching->Propose(PayloadEntry("ok2"));
  EXPECT_EQ(std::any_cast<std::string>(f1.Get()), "r:ok1");
  EXPECT_THROW(f2.Get(), DeterministicError);
  EXPECT_EQ(std::any_cast<std::string>(f3.Get()), "r:ok2");
}

TEST(BatchingTest, DisabledBatchingPassesThrough) {
  auto log = std::make_shared<InMemoryLog>();
  BatchServer server(log, /*max_entries=*/8, /*max_delay=*/50'000);
  server.batching->DisableViaLog();
  server.batching->Propose(PayloadEntry("direct")).Get();
  // Disable control entry + the direct entry = 2; no batch wrapping.
  EXPECT_EQ(log->CheckTail().Get(), 3u);
  EXPECT_EQ(server.batching->batches_proposed(), 0u);
}

TEST(BatchingTest, GroupCommitUsesOneTransactionPerBatch) {
  auto log = std::make_shared<InMemoryLog>();
  BatchServer server(log, /*max_entries=*/8, /*max_delay=*/50'000);
  const uint64_t version_before = server.store.committed_version();
  std::vector<Future<std::any>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.batching->Propose(PayloadEntry("op")));
  }
  for (auto& future : futures) {
    future.Get();
  }
  // One LocalStore commit for the whole batch (group commit), not eight.
  EXPECT_EQ(server.store.committed_version(), version_before + 1);
}

}  // namespace
}  // namespace delos
