// FlightRecorder ring semantics, the DebugDump endpoint, and the
// simulator's failure post-mortem: a failing conformance verdict must ship a
// non-empty flight-recorder dump that names the failing trace.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

TEST(FlightRecorderTest, RecordsAndSnapshotsInOrder) {
  FlightRecorder recorder(16);
  recorder.Record(FlightEventKind::kAppend, "first", 7, 1);
  recorder.Record(FlightEventKind::kCommit, "second", 0, 1, 3);
  recorder.Record(FlightEventKind::kLease, "third");

  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kAppend);
  EXPECT_EQ(events[0].detail, "first");
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kCommit);
  EXPECT_EQ(events[1].b, 3u);
  EXPECT_EQ(events[2].detail, "third");
  EXPECT_EQ(recorder.events_recorded(), 3u);
}

TEST(FlightRecorderTest, RingWrapsKeepingTheNewestEvents) {
  FlightRecorder recorder(8);  // rounded to a power of two
  for (int i = 0; i < 100; ++i) {
    recorder.Record(FlightEventKind::kApply, "e" + std::to_string(i), 0,
                    static_cast<uint64_t>(i));
  }
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), recorder.capacity());
  // Oldest first; the ring holds exactly the tail of the stream.
  EXPECT_EQ(events.front().a, 100 - recorder.capacity());
  EXPECT_EQ(events.back().a, 99u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(recorder.events_recorded(), 100u);
}

TEST(FlightRecorderTest, LongDetailIsTruncatedNotCorrupted) {
  FlightRecorder recorder(8);
  const std::string long_detail(200, 'x');
  recorder.Record(FlightEventKind::kFault, long_detail);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail, long_detail.substr(0, FlightRecorder::kDetailWords * 8));
}

// Writers never block and readers discard slots they raced with, so
// concurrent record + snapshot must neither crash nor produce torn events.
TEST(FlightRecorderTest, ConcurrentRecordAndSnapshot) {
  FlightRecorder recorder(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&recorder, &stop, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        recorder.Record(FlightEventKind::kApply, "writer" + std::to_string(w), 0, i++);
      }
    });
  }
  // Wait for the writers to actually start before racing snapshots at them.
  while (recorder.events_recorded() < 64) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 200; ++i) {
    for (const auto& event : recorder.Snapshot()) {
      // Every surviving event must be internally consistent.
      ASSERT_TRUE(event.detail.rfind("writer", 0) == 0) << event.detail;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& writer : writers) {
    writer.join();
  }
  EXPECT_GT(recorder.events_recorded(), 0u);
}

// Seqlock torture: a tiny ring and a writer running flat out, so the writer
// laps the reader's cursor constantly. Every event a Snapshot keeps must be
// internally consistent (payload fields written together stay together) and
// in strict record order — torn slots must be discarded, never surfaced.
// Run under TSan to also prove the fence discipline (scripts/check.sh).
TEST(FlightRecorderTest, LappingWriterNeverTearsSnapshots) {
  FlightRecorder recorder(8);
  std::atomic<bool> stop{false};
  std::thread writer([&recorder, &stop] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // detail, a, and b are all derived from i: any mix of two writes is
      // detectable in the snapshot.
      recorder.Record(FlightEventKind::kApply, "v" + std::to_string(i % 97), 0, i % 97, i);
      ++i;
    }
  });
  while (recorder.events_recorded() < 64) {
    std::this_thread::yield();
  }
  for (int round = 0; round < 2000; ++round) {
    const auto events = recorder.Snapshot();
    for (size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(events[i].detail, "v" + std::to_string(events[i].a))
          << "torn slot: detail/a mismatch at seq " << events[i].seq;
      ASSERT_EQ(events[i].a, events[i].b % 97)
          << "torn slot: a/b mismatch at seq " << events[i].seq;
      if (i > 0) {
        ASSERT_GT(events[i].seq, events[i - 1].seq) << "snapshot out of record order";
      }
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST(FlightRecorderTest, DumpAndDebugDumpCarryEventsAndMetrics) {
  FlightRecorder recorder(16);
  recorder.Record(FlightEventKind::kAppend, "append ok", 42, 7);
  recorder.Record(FlightEventKind::kCrash, "post-commit crash hook");

  const std::string dump = recorder.Dump();
  EXPECT_NE(dump.find("append"), std::string::npos);
  EXPECT_NE(dump.find("trace=42"), std::string::npos);
  EXPECT_NE(dump.find("crash"), std::string::npos);
  EXPECT_NE(dump.find("post-commit crash hook"), std::string::npos);

  MetricsRegistry metrics;
  metrics.GetCounter("widget.count")->Increment(3);
  metrics.GetGauge("widget.depth")->Set(5);
  const std::string debug = DebugDump(&metrics, &recorder);
  EXPECT_NE(debug.find("== metrics =="), std::string::npos);
  EXPECT_NE(debug.find("== flight recorder =="), std::string::npos);
  EXPECT_NE(debug.find("widget_count"), std::string::npos);
  EXPECT_NE(debug.find("widget_depth 5"), std::string::npos);
  EXPECT_NE(debug.find("trace=42"), std::string::npos);
}

// The sim smoke check from the issue: a seeded fault schedule whose verdict
// fails must emit a non-empty flight-recorder dump containing the failing
// trace id.
TEST(SimFlightDump, FailingVerdictShipsDumpNamingTheFailingTrace) {
  sim::SimOptions options;
  options.shape = sim::StackShape::kFullNine;
  options.num_ops = 6;
  options.scratch_dir = "flight_dump_scratch";

  sim::FaultPlan plan;
  plan.seed = 99;
  // kSabotage corrupts one key on server 1 after recovery, guaranteeing the
  // checksum conformance check diverges.
  plan.events.push_back({sim::FaultKind::kSabotage, 1, 0, 0});

  sim::SimCluster cluster(options);
  const sim::RunReport report = cluster.Run(plan);
  ASSERT_FALSE(report.ok()) << "sabotage must fail the conformance check";
  ASSERT_FALSE(report.flight_dump.empty());
  ASSERT_NE(report.failing_trace_id, 0u);
  EXPECT_NE(report.flight_dump.find("trace=" + std::to_string(report.failing_trace_id)),
            std::string::npos)
      << report.flight_dump;
  // Every server's ring is present, and the workload's appends are in it.
  EXPECT_NE(report.flight_dump.find("== server s0 flight recorder =="), std::string::npos);
  EXPECT_NE(report.flight_dump.find("append"), std::string::npos);
  // The verdict itself stays schedule-determined: the dump is not part of it.
  EXPECT_EQ(report.Summary().find("trace="), std::string::npos);
}

TEST(SimFlightDump, CleanRunEmitsNoDump) {
  sim::SimOptions options;
  options.shape = sim::StackShape::kDelosTable;
  options.num_ops = 4;
  options.scratch_dir = "flight_dump_clean_scratch";

  sim::FaultPlan plan;
  plan.seed = 7;
  sim::SimCluster cluster(options);
  const sim::RunReport report = cluster.Run(plan);
  ASSERT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.flight_dump.empty());
  EXPECT_EQ(report.failing_trace_id, 0u);
  EXPECT_NE(report.last_trace_id, 0u);  // tracing itself was live
}

}  // namespace
}  // namespace delos
