// Unit + property tests for the LocalStore: transactions, MVCC snapshots,
// nested sub-transactions, checkpoints, checksums, fault injection.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/random.h"
#include "src/localstore/localstore.h"

namespace delos {
namespace {

TEST(LocalStoreTest, PutGetDelete) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("a", "1");
    txn.Put("b", "2");
    txn.Commit();
  }
  ROTxn snap = store.Snapshot();
  EXPECT_EQ(snap.Get("a").value(), "1");
  EXPECT_EQ(snap.Get("b").value(), "2");
  EXPECT_FALSE(snap.Get("c").has_value());
  {
    RWTxn txn = store.BeginRW();
    txn.Delete("a");
    txn.Commit();
  }
  EXPECT_FALSE(store.Snapshot().Get("a").has_value());
  // The earlier snapshot still sees the old state (MVCC).
  EXPECT_EQ(snap.Get("a").value(), "1");
}

TEST(LocalStoreTest, ReadYourWrites) {
  LocalStore store;
  RWTxn txn = store.BeginRW();
  txn.Put("k", "v1");
  EXPECT_EQ(txn.Get("k").value(), "v1");
  txn.Put("k", "v2");
  EXPECT_EQ(txn.Get("k").value(), "v2");
  txn.Delete("k");
  EXPECT_FALSE(txn.Get("k").has_value());
  txn.Commit();
  EXPECT_FALSE(store.Snapshot().Get("k").has_value());
}

TEST(LocalStoreTest, AbortDiscardsWrites) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("k", "v");
    txn.Abort();
  }
  EXPECT_FALSE(store.Snapshot().Get("k").has_value());
  EXPECT_EQ(store.committed_version(), 0u);
}

TEST(LocalStoreTest, DroppedTxnActsAsAbort) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("k", "v");
  }
  EXPECT_FALSE(store.Snapshot().Get("k").has_value());
  // The writer slot is released; a new transaction can begin.
  RWTxn txn = store.BeginRW();
  txn.Commit();
}

TEST(LocalStoreTest, SavepointRollback) {
  LocalStore store;
  RWTxn txn = store.BeginRW();
  txn.Put("a", "1");
  const Savepoint sp = txn.MakeSavepoint();
  txn.Put("b", "2");
  txn.Put("a", "overwritten");
  txn.RollbackTo(sp);
  EXPECT_EQ(txn.Get("a").value(), "1");
  EXPECT_FALSE(txn.Get("b").has_value());
  txn.Commit();
  EXPECT_EQ(store.Snapshot().Get("a").value(), "1");
  EXPECT_FALSE(store.Snapshot().Get("b").has_value());
}

TEST(LocalStoreTest, NestedSavepoints) {
  LocalStore store;
  RWTxn txn = store.BeginRW();
  txn.Put("l0", "x");
  const Savepoint sp1 = txn.MakeSavepoint();
  txn.Put("l1", "x");
  const Savepoint sp2 = txn.MakeSavepoint();
  txn.Put("l2", "x");
  txn.RollbackTo(sp2);
  EXPECT_TRUE(txn.Get("l1").has_value());
  EXPECT_FALSE(txn.Get("l2").has_value());
  txn.RollbackTo(sp1);
  EXPECT_TRUE(txn.Get("l0").has_value());
  EXPECT_FALSE(txn.Get("l1").has_value());
  txn.Commit();
}

// Group-commit batches lean on rollback being O(rolled-back ops): the
// write-index overlay must restore the *previous* in-transaction version of
// a key, not just drop the op. These cover the overlay bookkeeping.
TEST(LocalStoreTest, RollbackRestoresPriorOverlayVersion) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("k", "committed");
    txn.Commit();
  }
  RWTxn txn = store.BeginRW();
  txn.Put("k", "first");           // in-txn overlay version 1
  const Savepoint sp = txn.MakeSavepoint();
  txn.Put("k", "second");          // overlay version 2
  txn.Delete("k");                 // overlay version 3
  EXPECT_FALSE(txn.Get("k").has_value());
  txn.RollbackTo(sp);
  // Read-your-writes must see the pre-savepoint overlay, not the committed
  // value and not the rolled-back delete.
  EXPECT_EQ(txn.Get("k").value(), "first");
  txn.Commit();
  EXPECT_EQ(store.Snapshot().Get("k").value(), "first");
}

TEST(LocalStoreTest, RollbackOfFirstWriteFallsThroughToCommitted) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("k", "committed");
    txn.Commit();
  }
  RWTxn txn = store.BeginRW();
  const Savepoint sp = txn.MakeSavepoint();
  txn.Put("k", "uncommitted");
  txn.Put("fresh", "uncommitted");
  txn.RollbackTo(sp);
  // Keys first written after the savepoint leave no overlay residue.
  EXPECT_EQ(txn.Get("k").value(), "committed");
  EXPECT_FALSE(txn.Get("fresh").has_value());
  txn.Commit();
  EXPECT_EQ(store.Snapshot().Get("k").value(), "committed");
  EXPECT_FALSE(store.Snapshot().Get("fresh").has_value());
}

TEST(LocalStoreTest, InterleavedSavepointsAcrossManyKeys) {
  // Simulates a group-commit batch: records apply back-to-back in one
  // transaction, each inside its own savepoint, and some roll back.
  LocalStore store;
  RWTxn txn = store.BeginRW();
  for (int record = 0; record < 20; ++record) {
    const Savepoint sp = txn.MakeSavepoint();
    txn.Put("shared", "r" + std::to_string(record));
    txn.Put("own/" + std::to_string(record), "x");
    if (record % 3 == 1) {
      txn.RollbackTo(sp);  // this record's writes vanish
    }
  }
  txn.Commit();
  ROTxn snap = store.Snapshot();
  // Last surviving record was 18 (18 % 3 == 0).
  EXPECT_EQ(snap.Get("shared").value(), "r18");
  for (int record = 0; record < 20; ++record) {
    EXPECT_EQ(snap.Get("own/" + std::to_string(record)).has_value(), record % 3 != 1) << record;
  }
}

TEST(LocalStoreTest, ScanSeesOverlayAfterRollback) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("s/a", "1");
    txn.Commit();
  }
  RWTxn txn = store.BeginRW();
  txn.Put("s/b", "2");
  const Savepoint sp = txn.MakeSavepoint();
  txn.Put("s/c", "3");
  txn.Delete("s/a");
  txn.RollbackTo(sp);
  std::vector<std::string> keys;
  txn.Scan("s/", "s0", [&](std::string_view key, std::string_view) {
    keys.emplace_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"s/a", "s/b"}));
  txn.Commit();
}

TEST(LocalStoreTest, SnapshotIsolation) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("k", "v1");
    txn.Commit();
  }
  ROTxn old_snap = store.Snapshot();
  {
    RWTxn txn = store.BeginRW();
    txn.Put("k", "v2");
    txn.Commit();
  }
  EXPECT_EQ(old_snap.Get("k").value(), "v1");
  EXPECT_EQ(store.Snapshot().Get("k").value(), "v2");
}

TEST(LocalStoreTest, ScanRangeAndPrefix) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("p/a", "1");
    txn.Put("p/b", "2");
    txn.Put("q/c", "3");
    txn.Commit();
  }
  ROTxn snap = store.Snapshot();
  auto pairs = snap.ScanPrefix("p/");
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0].first, "p/a");
  EXPECT_EQ(pairs[1].first, "p/b");

  size_t count = 0;
  snap.Scan("p/a", "q/c", [&](std::string_view, std::string_view) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2u);  // end is exclusive

  // Empty end = unbounded.
  count = 0;
  snap.Scan("p/", "", [&](std::string_view, std::string_view) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 3u);
}

TEST(LocalStoreTest, RWTxnMergedScan) {
  LocalStore store;
  {
    RWTxn txn = store.BeginRW();
    txn.Put("a", "committed");
    txn.Put("b", "committed");
    txn.Commit();
  }
  RWTxn txn = store.BeginRW();
  txn.Put("c", "pending");
  txn.Delete("a");
  txn.Put("b", "overlaid");
  auto pairs = txn.ScanPrefix("");
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"b", "overlaid"}));
  EXPECT_EQ(pairs[1], (std::pair<std::string, std::string>{"c", "pending"}));
  txn.Abort();
}

TEST(LocalStoreTest, ChecksumMatchesAcrossHistories) {
  // Two stores reaching the same live state via different write orders must
  // agree on the checksum (the replica-divergence detector of §6).
  LocalStore a;
  LocalStore b;
  {
    RWTxn txn = a.BeginRW();
    txn.Put("k1", "v1");
    txn.Commit();
  }
  {
    RWTxn txn = a.BeginRW();
    txn.Put("k2", "v2");
    txn.Put("k3", "temp");
    txn.Commit();
  }
  {
    RWTxn txn = a.BeginRW();
    txn.Delete("k3");
    txn.Commit();
  }
  {
    RWTxn txn = b.BeginRW();
    txn.Put("k2", "v2");
    txn.Put("k1", "v1");
    txn.Commit();
  }
  EXPECT_EQ(a.Checksum(), b.Checksum());
  EXPECT_EQ(a.KeyCount(), 2u);
}

TEST(LocalStoreTest, ChecksumDetectsDivergence) {
  LocalStore a;
  LocalStore b;
  {
    RWTxn txn = a.BeginRW();
    txn.Put("k", "v1");
    txn.Commit();
  }
  {
    RWTxn txn = b.BeginRW();
    txn.Put("k", "v2");
    txn.Commit();
  }
  EXPECT_NE(a.Checksum(), b.Checksum());
}

TEST(LocalStoreTest, CheckpointRoundTrip) {
  const std::string path = testing::TempDir() + "/ckpt_roundtrip.ckpt";
  std::filesystem::remove(path);
  {
    auto store = LocalStore::Open({path});
    RWTxn txn = store->BeginRW();
    txn.Put("a", "1");
    txn.Put("b", "2");
    txn.Commit();
    store->Flush();
    EXPECT_EQ(store->flushed_version(), store->committed_version());
  }
  auto restored = LocalStore::Open({path});
  EXPECT_EQ(restored->Snapshot().Get("a").value(), "1");
  EXPECT_EQ(restored->Snapshot().Get("b").value(), "2");
  EXPECT_EQ(restored->KeyCount(), 2u);
  std::filesystem::remove(path);
}

TEST(LocalStoreTest, CheckpointOmitsUnflushedWrites) {
  const std::string path = testing::TempDir() + "/ckpt_unflushed.ckpt";
  std::filesystem::remove(path);
  {
    auto store = LocalStore::Open({path});
    {
      RWTxn txn = store->BeginRW();
      txn.Put("flushed", "yes");
      txn.Commit();
    }
    store->Flush();
    {
      RWTxn txn = store->BeginRW();
      txn.Put("unflushed", "lost");
      txn.Commit();
    }
    // No flush: the second write must not survive the "crash".
  }
  auto restored = LocalStore::Open({path});
  EXPECT_TRUE(restored->Snapshot().Get("flushed").has_value());
  EXPECT_FALSE(restored->Snapshot().Get("unflushed").has_value());
  std::filesystem::remove(path);
}

TEST(LocalStoreTest, CorruptCheckpointRejected) {
  const std::string path = testing::TempDir() + "/ckpt_corrupt.ckpt";
  std::filesystem::remove(path);
  {
    auto store = LocalStore::Open({path});
    RWTxn txn = store->BeginRW();
    txn.Put("a", "1");
    txn.Commit();
    store->Flush();
  }
  // Flip a byte of the stored checksum digest (the file's final bytes).
  {
    const auto size = std::filesystem::file_size(path);
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(size) - 1);
    const char last = static_cast<char>(file.get());
    file.seekp(static_cast<std::streamoff>(size) - 1);
    file.put(static_cast<char>(last ^ 0x7f));
  }
  EXPECT_THROW(LocalStore::Open({path}), StoreError);
  std::filesystem::remove(path);
}

TEST(LocalStoreTest, InjectedCommitFaultThrows) {
  LocalStore store;
  store.InjectCommitFault();
  RWTxn txn = store.BeginRW();
  txn.Put("k", "v");
  EXPECT_THROW(txn.Commit(), StoreError);
  // The failure consumed the injection; the store is usable again.
  RWTxn txn2 = store.BeginRW();
  txn2.Put("k", "v");
  txn2.Commit();
  EXPECT_TRUE(store.Snapshot().Get("k").has_value());
}

TEST(LocalStoreTest, ConcurrentReadersDuringWrites) {
  LocalStore store;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      RWTxn txn = store.BeginRW();
      txn.Put("k" + std::to_string(i % 10), std::to_string(i));
      txn.Commit();
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        ROTxn snap = store.Snapshot();
        snap.ScanPrefix("k");
      }
    });
  }
  writer.join();
  for (auto& reader : readers) {
    reader.join();
  }
  EXPECT_EQ(store.committed_version(), 500u);
}

// Property: a random interleaving of writes with savepoint rollbacks matches
// a model map.
TEST(LocalStoreProperty, RandomOpsMatchModel) {
  Rng rng(2024);
  LocalStore store;
  std::map<std::string, std::string> model;
  for (int round = 0; round < 200; ++round) {
    RWTxn txn = store.BeginRW();
    std::map<std::string, std::string> txn_model = model;
    const int ops = static_cast<int>(rng.Uniform(1, 6));
    for (int i = 0; i < ops; ++i) {
      const std::string key = "k" + std::to_string(rng.Uniform(0, 15));
      if (rng.Bernoulli(0.3)) {
        txn.Delete(key);
        txn_model.erase(key);
      } else {
        const std::string value = rng.String(8);
        txn.Put(key, value);
        txn_model[key] = value;
      }
    }
    if (rng.Bernoulli(0.2)) {
      txn.Abort();
    } else {
      txn.Commit();
      model = std::move(txn_model);
    }
  }
  ROTxn snap = store.Snapshot();
  std::map<std::string, std::string> actual;
  for (const auto& [key, value] : snap.ScanPrefix("")) {
    actual[key] = value;
  }
  EXPECT_EQ(actual, model);
}

TEST(KeyspaceTest, PrefixesKeys) {
  Keyspace space("e/test/");
  EXPECT_EQ(space.Key("flag"), "e/test/flag");
  EXPECT_EQ(space.prefix(), "e/test/");
}

}  // namespace
}  // namespace delos
