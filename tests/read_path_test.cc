// Read-path tests: the per-server ReadCachingLog (single-flight coalescing,
// trim/seal invalidation, write-through fill, eviction), the BaseEngine
// read-ahead prefetcher (sync-vs-prefetch state identity, fatal relay,
// reconfiguration mid-prefetch), QuorumLogletClient tail memoization, and
// the sim conformance sweep proving cache-on/off verdicts are byte-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/base_engine.h"
#include "src/core/cluster.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/sharedlog/quorum_loglet.h"
#include "src/sharedlog/read_cache.h"
#include "src/sharedlog/virtual_log.h"
#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

LogEntry PayloadEntry(std::string payload) {
  LogEntry entry;
  entry.payload = std::move(payload);
  return entry;
}

// Applicator recording applied (pos, payload) pairs into the store and a
// local list; its apply order is what the prefetch/sync identity test diffs.
class RecordingApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override {
    txn.Put("applied/" + std::to_string(pos), entry.payload);
    std::lock_guard<std::mutex> lock(mu_);
    applied_.emplace_back(pos, entry.payload);
    return std::any(entry.payload);
  }
  void PostApply(const LogEntry& entry, LogPos pos) override {}

  std::vector<std::pair<LogPos, std::string>> applied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return applied_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<LogPos, std::string>> applied_;
};

// Backend decorator that counts ReadRange calls and can block them on a
// latch (for the single-flight test).
class GatedLog : public ISharedLog {
 public:
  explicit GatedLog(std::shared_ptr<ISharedLog> inner) : inner_(std::move(inner)) {}

  Future<LogPos> Append(std::string payload) override { return inner_->Append(std::move(payload)); }
  Future<LogPos> CheckTail() override { return inner_->CheckTail(); }
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override {
    reads_.fetch_add(1);
    {
      std::unique_lock<std::mutex> lock(mu_);
      in_read_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return !gated_; });
    }
    return inner_->ReadRange(lo, hi);
  }
  void Trim(LogPos prefix) override { inner_->Trim(prefix); }
  LogPos trim_prefix() const override { return inner_->trim_prefix(); }
  void Seal() override { inner_->Seal(); }

  void Gate() {
    std::lock_guard<std::mutex> lock(mu_);
    gated_ = true;
    in_read_ = false;
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    gated_ = false;
    cv_.notify_all();
  }
  // Blocks until a reader is inside ReadRange (parked on the gate).
  void AwaitReader() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return in_read_; });
  }
  int reads() const { return reads_.load(); }

 private:
  std::shared_ptr<ISharedLog> inner_;
  std::atomic<int> reads_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool gated_ = false;
  bool in_read_ = false;
};

// --- ReadCachingLog ---

TEST(ReadCacheTest, RepeatedReadsHitCacheNotBackend) {
  auto inner = std::make_shared<InMemoryLog>();
  auto gated = std::make_shared<GatedLog>(inner);
  ReadCachingLog cache(gated);
  for (int i = 0; i < 10; ++i) {
    inner->Append("v" + std::to_string(i)).Get();
  }

  auto first = cache.ReadRange(1, 10);
  ASSERT_EQ(first.size(), 10u);
  EXPECT_EQ(gated->reads(), 1);
  EXPECT_EQ(cache.misses(), 10u);

  auto second = cache.ReadRange(1, 10);
  ASSERT_EQ(second.size(), 10u);
  EXPECT_EQ(gated->reads(), 1);  // served entirely from cache
  EXPECT_EQ(cache.hits(), 10u);
  for (size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(second[i].pos, i + 1);
    EXPECT_EQ(second[i].payload, "v" + std::to_string(i));
  }
}

TEST(ReadCacheTest, SingleFlightCoalescesConcurrentReaders) {
  auto inner = std::make_shared<InMemoryLog>();
  auto gated = std::make_shared<GatedLog>(inner);
  auto cache = std::make_shared<ReadCachingLog>(gated);
  for (int i = 0; i < 8; ++i) {
    inner->Append("v" + std::to_string(i)).Get();
  }

  gated->Gate();
  std::thread owner([&] { EXPECT_EQ(cache->ReadRange(1, 8).size(), 8u); });
  gated->AwaitReader();  // the owner's backend fetch is in flight

  std::thread waiter([&] { EXPECT_EQ(cache->ReadRange(1, 8).size(), 8u); });
  // The waiter must coalesce behind the in-flight fetch, not issue its own.
  while (cache->single_flight_waits() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gated->Release();
  owner.join();
  waiter.join();

  EXPECT_EQ(gated->reads(), 1);  // one backend fetch for both readers
  EXPECT_EQ(cache->backend_fetches(), 1u);
  EXPECT_GE(cache->single_flight_waits(), 1u);
}

TEST(ReadCacheTest, TrimInvalidatesCachedPrefixAndFailsFast) {
  auto inner = std::make_shared<InMemoryLog>();
  ReadCachingLog cache(inner);
  for (int i = 0; i < 10; ++i) {
    inner->Append("v" + std::to_string(i)).Get();
  }
  ASSERT_EQ(cache.ReadRange(1, 10).size(), 10u);
  ASSERT_EQ(cache.entries(), 10u);

  cache.Trim(5);
  EXPECT_EQ(cache.entries(), 5u);  // positions 1..5 dropped
  // A read at or below the prefix throws even though the records were
  // cached a moment ago.
  EXPECT_THROW(cache.ReadRange(3, 6), TrimmedError);
  EXPECT_THROW(cache.ReadRange(5, 5), TrimmedError);
  // Above the prefix keeps working.
  auto alive = cache.ReadRange(6, 10);
  ASSERT_EQ(alive.size(), 5u);
  EXPECT_EQ(alive.front().pos, 6u);
}

TEST(ReadCacheTest, LearnsBackendTrimOnFetchFailure) {
  auto inner = std::make_shared<InMemoryLog>();
  ReadCachingLog cache(inner);
  for (int i = 0; i < 10; ++i) {
    inner->Append("v" + std::to_string(i)).Get();
  }
  // Another reader trims the backend directly, bypassing this cache.
  inner->Trim(5);
  EXPECT_THROW(cache.ReadRange(1, 10), TrimmedError);
  // The failed fetch taught the cache the backend's prefix.
  EXPECT_GE(cache.trim_prefix(), 5u);
  EXPECT_THROW(cache.ReadRange(2, 4), TrimmedError);
}

TEST(ReadCacheTest, EvictionBoundsEntries) {
  auto inner = std::make_shared<InMemoryLog>();
  ReadCacheOptions options;
  options.capacity_records = 4;
  ReadCachingLog cache(inner, options);
  for (int i = 0; i < 10; ++i) {
    inner->Append("v" + std::to_string(i)).Get();
  }
  ASSERT_EQ(cache.ReadRange(1, 10).size(), 10u);
  EXPECT_LE(cache.entries(), 4u);
  EXPECT_GE(cache.evictions(), 6u);
  // Evicted positions are refetched correctly.
  auto again = cache.ReadRange(1, 10);
  ASSERT_EQ(again.size(), 10u);
  for (size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].payload, "v" + std::to_string(i));
  }
}

TEST(ReadCacheTest, AboveTailOmittedThenServedAfterAppend) {
  auto inner = std::make_shared<InMemoryLog>();
  ReadCachingLog cache(inner);
  for (int i = 0; i < 3; ++i) {
    inner->Append("v" + std::to_string(i)).Get();
  }
  EXPECT_EQ(cache.ReadRange(1, 5).size(), 3u);  // 4, 5 silently omitted
  inner->Append("v3").Get();
  inner->Append("v4").Get();
  auto full = cache.ReadRange(1, 5);
  ASSERT_EQ(full.size(), 5u);
  // Second read served 1..3 from cache and fetched only the new suffix.
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 5u);
  EXPECT_EQ(full.back().payload, "v4");
}

TEST(ReadCacheTest, SealAndInvalidateAllDropEverything) {
  auto inner = std::make_shared<InMemoryLog>();
  ReadCachingLog cache(inner);
  for (int i = 0; i < 6; ++i) {
    inner->Append("v" + std::to_string(i)).Get();
  }
  ASSERT_EQ(cache.ReadRange(1, 6).size(), 6u);
  ASSERT_GT(cache.entries(), 0u);
  cache.Seal();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_TRUE(inner->sealed());
  // Reads still work on a sealed log (refilled from the backend).
  ASSERT_EQ(cache.ReadRange(1, 6).size(), 6u);
  ASSERT_GT(cache.entries(), 0u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ReadCacheTest, WriteThroughServesOwnAppendsWithoutBackendReads) {
  auto inner = std::make_shared<InMemoryLog>();
  auto gated = std::make_shared<GatedLog>(inner);
  ReadCachingLog cache(gated);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(cache.Append("v" + std::to_string(i)).Get(), static_cast<LogPos>(i + 1));
  }
  auto records = cache.ReadRange(1, 5);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(gated->reads(), 0);  // never touched the backend read path
  EXPECT_EQ(cache.backend_fetches(), 0u);
  EXPECT_EQ(cache.hits(), 5u);
}

// --- BaseEngine prefetch pipeline ---

TEST(PrefetchTest, PrefetchedReplayMatchesSynchronousByteForByte) {
  auto log = std::make_shared<InMemoryLog>();
  constexpr int kRecords = 700;
  for (int i = 0; i < kRecords; ++i) {
    log->Append(PayloadEntry("op" + std::to_string(i)).Serialize()).Get();
  }

  auto replay = [&](int prefetch_batches, RecordingApplicator* app, LocalStore* store) {
    BaseEngineOptions options;
    options.prefetch_batches = prefetch_batches;
    options.play_batch_size = 16;
    BaseEngine engine(log, store, options);
    engine.RegisterUpcall(app);
    engine.Start();
    engine.Sync().Get();
    EXPECT_EQ(engine.applied_position(), static_cast<LogPos>(kRecords));
    engine.Stop();
  };

  RecordingApplicator sync_app;
  LocalStore sync_store;
  replay(0, &sync_app, &sync_store);

  RecordingApplicator prefetch_app;
  LocalStore prefetch_store;
  replay(4, &prefetch_app, &prefetch_store);

  // Same apply order, same records, same resulting store state.
  EXPECT_EQ(sync_app.applied(), prefetch_app.applied());
  EXPECT_EQ(sync_store.Checksum(), prefetch_store.Checksum());
}

TEST(PrefetchTest, TrimmedErrorRelayedThroughQueueIsFatal) {
  auto log = std::make_shared<InMemoryLog>();
  for (int i = 0; i < 10; ++i) {
    log->Append(PayloadEntry("x").Serialize()).Get();
  }
  log->Trim(5);

  std::atomic<bool> fatal{false};
  std::string fatal_message;
  std::mutex fatal_mu;
  BaseEngineOptions options;
  options.prefetch_batches = 2;
  options.fatal_handler = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(fatal_mu);
    fatal_message = message;
    fatal.store(true);
  };
  LocalStore store;
  RecordingApplicator app;
  BaseEngine engine(log, &store, options);
  engine.RegisterUpcall(&app);
  engine.Start();

  // A fresh cursor (0) must replay from position 1, which is trimmed: the
  // prefetcher hits TrimmedError and relays it; the apply thread Fatals with
  // the same message the synchronous path uses.
  auto future = engine.Propose(PayloadEntry("new"));
  while (!fatal.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(fatal_mu);
    EXPECT_EQ(fatal_message, "playback cursor fell below the trim prefix");
  }
  engine.Stop();
  EXPECT_THROW(future.Get(), LogUnavailableError);
}

TEST(PrefetchTest, ReconfigureMidPrefetchAppliesEverything) {
  auto meta = std::make_shared<MetaStore>(
      std::vector<LogletSegment>{{1, std::make_shared<InMemoryLog>(1)}});
  const LogletFactory factory = [](LogPos start, uint64_t) {
    return std::make_shared<InMemoryLog>(start);
  };
  auto vlog = std::make_shared<VirtualLog>(meta, factory);
  auto cache = std::make_shared<ReadCachingLog>(vlog);

  BaseEngineOptions options;
  options.prefetch_batches = 4;
  options.play_batch_size = 8;
  LocalStore store;
  RecordingApplicator app;
  BaseEngine engine(cache, &store, options);
  engine.RegisterUpcall(&app);
  engine.Start();

  constexpr int kOps = 60;
  for (int i = 0; i < kOps; ++i) {
    engine.Propose(PayloadEntry("op" + std::to_string(i))).Get();
    if (i == kOps / 2) {
      // Seal the active loglet and chain a successor while the prefetcher is
      // live; committed positions stay valid, so the cache only needs the
      // conservative reconfiguration invalidation.
      vlog->Reconfigure(factory);
      cache->InvalidateAll();
    }
  }
  engine.Sync().Get();
  EXPECT_EQ(engine.applied_position(), static_cast<LogPos>(kOps));
  EXPECT_EQ(vlog->ChainLength(), 2u);
  const auto applied = app.applied();
  ASSERT_EQ(applied.size(), static_cast<size_t>(kOps));
  for (int i = 0; i < kOps; ++i) {
    EXPECT_EQ(applied[i].first, static_cast<LogPos>(i + 1));
    EXPECT_EQ(applied[i].second, "op" + std::to_string(i));
  }
  engine.Stop();
}

TEST(PrefetchTest, ClusterServerWiresSharedCacheIntoApplyPath) {
  auto log = std::make_shared<InMemoryLog>();
  BaseEngineOptions options;  // defaults: cache + prefetch on
  ClusterServer server("server0", log, std::make_unique<LocalStore>(), options);
  ASSERT_NE(server.read_cache(), nullptr);
  RecordingApplicator app;
  server.top()->RegisterUpcall(&app);
  server.Start();
  for (int i = 0; i < 20; ++i) {
    server.top()->Propose(PayloadEntry("op" + std::to_string(i))).Get();
  }
  // Proposals write through the cache, so the apply loop replays its own
  // appends from memory: hits, no (or few) backend fetches.
  EXPECT_GT(server.read_cache()->hits(), 0u);
  EXPECT_EQ(server.read_cache()->hits() + server.read_cache()->misses(), 20u);
  // The cache metrics surface in the server's registry.
  EXPECT_EQ(server.metrics()->GetCounter("read.cache.hits")->value(),
            server.read_cache()->hits());
  server.Stop();
}

// --- Quorum loglet tail memoization ---

TEST(QuorumTailMemoTest, SkipsTailRpcWhenMemoCoversRange) {
  NetworkConfig net_config;
  net_config.default_one_way_latency_micros = 50;
  SimNetwork network(net_config);
  QuorumLogletConfig config;
  config.num_acceptors = 3;
  QuorumEnsemble ensemble(&network, config);
  QuorumLogletClient client(&network, "client0", config);

  constexpr int kRecords = 20;
  for (int i = 0; i < kRecords; ++i) {
    client.Append("v" + std::to_string(i)).Get();
  }
  // Every committed append advanced the memoized tail.
  EXPECT_EQ(client.observed_tail(), static_cast<LogPos>(kRecords + 1));

  const uint64_t messages_before = network.MessageCount();
  auto records = client.ReadRange(1, kRecords);
  ASSERT_EQ(records.size(), static_cast<size_t>(kRecords));
  EXPECT_EQ(client.tail_checks_skipped(), 1u);
  // One acceptor sweep (request + reply), no q.tail round trip.
  EXPECT_EQ(network.MessageCount() - messages_before, 2u);

  // A range beyond the memoized tail still pays the tail check.
  auto suffix = client.ReadRange(15, kRecords + 10);
  ASSERT_EQ(suffix.size(), static_cast<size_t>(kRecords - 14));
  EXPECT_EQ(client.tail_checks_skipped(), 1u);
}

// Regression: sealing must invalidate the memoized tail. The memo may cover
// positions that were reserved by an in-flight append but never committed
// before the seal — and after reconfiguration those positions belong to the
// successor loglet. A stale memo would let ReadRange skip the q.tail check
// and treat such a position as committed (a phantom read); post-seal reads
// must go back to paying the tail round trip.
TEST(QuorumTailMemoTest, SealClearsTheMemoSoReadsRecheckTail) {
  NetworkConfig net_config;
  net_config.default_one_way_latency_micros = 50;
  SimNetwork network(net_config);
  QuorumLogletConfig config;
  config.num_acceptors = 3;
  QuorumEnsemble ensemble(&network, config);
  QuorumLogletClient client(&network, "client0", config);

  constexpr int kRecords = 8;
  for (int i = 0; i < kRecords; ++i) {
    client.Append("v" + std::to_string(i)).Get();
  }
  ASSERT_EQ(client.observed_tail(), static_cast<LogPos>(kRecords + 1));
  auto records = client.ReadRange(1, kRecords);
  ASSERT_EQ(records.size(), static_cast<size_t>(kRecords));
  ASSERT_EQ(client.tail_checks_skipped(), 1u);

  client.Seal();
  EXPECT_EQ(client.observed_tail(), 0u);

  // Committed entries are still readable on the sealed loglet, but the read
  // pays the tail check again instead of trusting the pre-seal memo.
  auto again = client.ReadRange(1, kRecords);
  ASSERT_EQ(again.size(), static_cast<size_t>(kRecords));
  EXPECT_EQ(client.tail_checks_skipped(), 1u);
}

// --- Sim conformance: cache on/off verdict identity ---

TEST(SimReadPathSweep, CacheOnOffVerdictsByteIdentical) {
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "delos_readpath_sweep").string();
  for (uint64_t seed : {3u, 7u, 19u, 42u, 77u, 101u}) {
    sim::SimOptions with_cache;
    with_cache.shape = sim::StackShape::kDelosTable;
    with_cache.num_ops = 16;
    with_cache.scratch_dir = scratch;
    with_cache.read_cache = true;
    sim::SimOptions without_cache = with_cache;
    without_cache.read_cache = false;

    const sim::RunReport on = sim::SimCluster::RunSeed(seed, with_cache);
    const sim::RunReport off = sim::SimCluster::RunSeed(seed, without_cache);
    // The schedule-determined verdict must be byte-identical with the cache
    // on and off. Absolute checksums are deliberately NOT compared across
    // runs (real-time retry races legitimately vary log content run to run;
    // sim_repro_test makes the same exclusion) — what must hold within each
    // run is that every server matches its own reference replay, and that
    // neither configuration changes which faults fire or the verdict text.
    EXPECT_EQ(on.Summary(), off.Summary()) << "seed " << seed;
    EXPECT_EQ(on.failures, off.failures) << "seed " << seed;
    EXPECT_EQ(on.crashes_fired, off.crashes_fired) << "seed " << seed;
    EXPECT_EQ(on.append_faults_fired, off.append_faults_fired) << "seed " << seed;
    EXPECT_EQ(on.final_tail, off.final_tail) << "seed " << seed;
    EXPECT_EQ(on.plan_bytes, off.plan_bytes) << "seed " << seed;
    EXPECT_TRUE(on.ok()) << "seed " << seed << ": " << on.Summary();
    EXPECT_TRUE(off.ok()) << "seed " << seed << ": " << off.Summary();
    for (uint64_t checksum : on.server_checksums) {
      EXPECT_EQ(checksum, on.reference_checksum) << "seed " << seed;
    }
    for (uint64_t checksum : off.server_checksums) {
      EXPECT_EQ(checksum, off.reference_checksum) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace delos
