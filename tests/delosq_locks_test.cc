// DelosQ (queue service) and DelosLock (lock service) tests — the two
// rapidly built Delos databases from §6.
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/delosq/delosq.h"
#include "src/apps/locks/lock_service.h"
#include "src/core/base_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {
namespace {

// --- DelosQ ---

class DelosQTest : public testing::Test {
 protected:
  DelosQTest() {
    log_ = std::make_shared<InMemoryLog>();
    base_ = std::make_unique<BaseEngine>(log_, &store_, BaseEngineOptions{});
    base_->RegisterUpcall(&applicator_);
    base_->Start();
    client_ = std::make_unique<delosq::QueueClient>(base_.get());
  }
  ~DelosQTest() override { base_->Stop(); }

  std::shared_ptr<InMemoryLog> log_;
  LocalStore store_;
  delosq::QueueApplicator applicator_;
  std::unique_ptr<BaseEngine> base_;
  std::unique_ptr<delosq::QueueClient> client_;
};

TEST_F(DelosQTest, FifoPushPop) {
  client_->CreateQueue("q");
  EXPECT_EQ(client_->Push("q", "a"), 0u);
  EXPECT_EQ(client_->Push("q", "b"), 1u);
  EXPECT_EQ(client_->Size("q"), 2u);
  EXPECT_EQ(client_->Peek("q").value(), "a");
  EXPECT_EQ(client_->Pop("q").value(), "a");
  EXPECT_EQ(client_->Pop("q").value(), "b");
  EXPECT_FALSE(client_->Pop("q").has_value());
  EXPECT_EQ(client_->Size("q"), 0u);
}

TEST_F(DelosQTest, Errors) {
  EXPECT_THROW(client_->Push("nope", "x"), delosq::NoSuchQueueError);
  EXPECT_THROW(client_->Size("nope"), delosq::NoSuchQueueError);
  client_->CreateQueue("q");
  EXPECT_THROW(client_->CreateQueue("q"), delosq::QueueExistsError);
}

TEST_F(DelosQTest, DropQueueDeletesElements) {
  client_->CreateQueue("q");
  client_->Push("q", "a");
  client_->DropQueue("q");
  EXPECT_TRUE(store_.Snapshot().ScanPrefix("q/e/q/").empty());
  EXPECT_THROW(client_->Pop("q"), delosq::NoSuchQueueError);
}

TEST_F(DelosQTest, ListQueues) {
  client_->CreateQueue("alpha");
  client_->CreateQueue("beta");
  EXPECT_EQ(client_->ListQueues(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(DelosQTest, ConcurrentProducersConsumersLoseNothing) {
  client_->CreateQueue("jobs");
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 30;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        client_->Push("jobs", std::to_string(p) + "/" + std::to_string(i));
      }
    });
  }
  std::mutex popped_mu;
  std::set<std::string> popped;
  std::vector<std::thread> consumers;
  std::atomic<int> total_popped{0};
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (total_popped.load() < kProducers * kPerProducer) {
        auto item = client_->Pop("jobs");
        if (item.has_value()) {
          std::lock_guard<std::mutex> lock(popped_mu);
          popped.insert(*item);
          total_popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  for (auto& t : consumers) {
    t.join();
  }
  EXPECT_EQ(popped.size(), static_cast<size_t>(kProducers * kPerProducer));
}

// --- DelosLock ---

class LockTest : public testing::Test {
 protected:
  LockTest() {
    log_ = std::make_shared<InMemoryLog>();
    base_ = std::make_unique<BaseEngine>(log_, &store_, BaseEngineOptions{});
    base_->RegisterUpcall(&applicator_);
    base_->Start();
    client_ = std::make_unique<locks::LockClient>(base_.get(), &applicator_);
  }
  ~LockTest() override { base_->Stop(); }

  std::shared_ptr<InMemoryLog> log_;
  LocalStore store_;
  locks::LockApplicator applicator_;
  std::unique_ptr<BaseEngine> base_;
  std::unique_ptr<locks::LockClient> client_;
};

TEST_F(LockTest, Exclusive) {
  EXPECT_TRUE(client_->Acquire("l", "alice"));
  EXPECT_FALSE(client_->Acquire("l", "bob"));
  EXPECT_EQ(client_->Owner("l"), "alice");
  EXPECT_TRUE(client_->Acquire("l", "alice"));  // reentrant no-op
}

TEST_F(LockTest, ReleaseHandsOffToWaiterFifo) {
  client_->Acquire("l", "alice");
  client_->Acquire("l", "bob");
  client_->Acquire("l", "carol");
  client_->Release("l", "alice");
  EXPECT_EQ(client_->Owner("l"), "bob");
  client_->Release("l", "bob");
  EXPECT_EQ(client_->Owner("l"), "carol");
  client_->Release("l", "carol");
  EXPECT_EQ(client_->Owner("l"), "");
}

TEST_F(LockTest, ReleaseByNonOwnerThrows) {
  client_->Acquire("l", "alice");
  EXPECT_THROW(client_->Release("l", "mallory"), locks::NotLockOwnerError);
}

TEST_F(LockTest, WaiterCanAbandonSlot) {
  client_->Acquire("l", "alice");
  client_->Acquire("l", "bob");
  client_->Release("l", "bob");  // bob abandons its waiter slot
  client_->Release("l", "alice");
  EXPECT_EQ(client_->Owner("l"), "");
}

TEST_F(LockTest, AcquireWaitBlocksUntilGrant) {
  client_->Acquire("l", "alice");
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    granted = client_->AcquireWait("l", "bob", /*timeout_micros=*/2'000'000);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(granted.load());
  client_->Release("l", "alice");
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(client_->Owner("l"), "bob");
}

TEST_F(LockTest, AcquireWaitTimesOut) {
  client_->Acquire("l", "alice");
  EXPECT_FALSE(client_->AcquireWait("l", "bob", /*timeout_micros=*/20'000));
}

TEST_F(LockTest, ManyContendersAllEventuallyHold) {
  constexpr int kContenders = 6;
  std::vector<std::thread> threads;
  std::atomic<int> holds{0};
  for (int i = 0; i < kContenders; ++i) {
    threads.emplace_back([&, i] {
      const std::string owner = "w" + std::to_string(i);
      ASSERT_TRUE(client_->AcquireWait("hot", owner, 5'000'000));
      holds.fetch_add(1);
      client_->Release("hot", owner);
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(holds.load(), kContenders);
  EXPECT_EQ(client_->Owner("hot"), "");
}

}  // namespace
}  // namespace delos
