// Tail-latency attribution tests: the critical-path chain walk, stage
// aggregation, tail-based exemplar capture, the bounded slow-trace store,
// and the simulator's byte-identical-replay contract for the new surfaces.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "src/common/latency.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

TraceSpan Span(uint64_t trace_id, const std::string& name, int64_t start, int64_t end,
               const std::string& server = "s0", bool failed = false) {
  TraceSpan span;
  span.trace_id = trace_id;
  span.name = name;
  span.server = server;
  span.start_micros = start;
  span.end_micros = end;
  span.failed = failed;
  return span;
}

// --- ComputeCriticalPath ---

TEST(CriticalPathTest, ContributionsSumExactlyToEndToEnd) {
  const TraceSpan root = Span(1, "client.propose", 0, 100);
  const std::vector<TraceSpan> spans = {
      Span(1, "batching.queue", 0, 30),
      Span(1, "base.append", 30, 80),
      Span(1, "base.apply", 85, 95),  // 80..85 and 95..100 are gaps
      root,
  };
  const CriticalPath path = LatencyAttributor::ComputeCriticalPath(spans, root);
  EXPECT_EQ(path.total_micros, 100);
  int64_t attributed = 0;
  for (const StageShare& seg : path.segments) {
    attributed += seg.micros;
  }
  EXPECT_EQ(attributed + path.unattributed_micros, path.total_micros);
  EXPECT_EQ(path.unattributed_micros, 10);
  ASSERT_EQ(path.segments.size(), 3u);
  EXPECT_EQ(path.segments[0].stage, "batching.queue");
  EXPECT_EQ(path.segments[0].micros, 30);
  EXPECT_EQ(path.segments[1].stage, "base.append");
  EXPECT_EQ(path.segments[1].micros, 50);
  EXPECT_EQ(path.segments[2].stage, "base.apply");
  EXPECT_EQ(path.segments[2].micros, 10);
}

TEST(CriticalPathTest, OverlapFollowsTheSpanEndingLatest) {
  const TraceSpan root = Span(1, "client.propose", 0, 100);
  // Two overlapping covers of [0, 60): the walk must follow base.append
  // (ends latest), never double-counting the overlap.
  const std::vector<TraceSpan> spans = {
      Span(1, "batching.queue", 0, 40),
      Span(1, "base.append", 0, 60),
      Span(1, "sessionorder.seq", 60, 100),
      root,
  };
  const CriticalPath path = LatencyAttributor::ComputeCriticalPath(spans, root);
  ASSERT_EQ(path.segments.size(), 2u);
  EXPECT_EQ(path.segments[0].stage, "base.append");
  EXPECT_EQ(path.segments[0].micros, 60);
  EXPECT_EQ(path.segments[1].stage, "sessionorder.seq");
  EXPECT_EQ(path.segments[1].micros, 40);
  EXPECT_EQ(path.unattributed_micros, 0);
}

TEST(CriticalPathTest, SpansOutsideTheRootWindowAreClippedOrIgnored) {
  const TraceSpan root = Span(1, "client.propose", 50, 100);
  const std::vector<TraceSpan> spans = {
      Span(1, "warmup", 0, 30),        // entirely before the window: ignored
      Span(1, "base.append", 40, 70),  // straddles the start: only 50..70 counts
      Span(1, "base.apply", 90, 200),  // straddles the end: clipped at 100
      root,
  };
  const CriticalPath path = LatencyAttributor::ComputeCriticalPath(spans, root);
  EXPECT_EQ(path.total_micros, 50);
  int64_t attributed = 0;
  for (const StageShare& seg : path.segments) {
    attributed += seg.micros;
  }
  EXPECT_EQ(attributed + path.unattributed_micros, 50);
  for (const StageShare& seg : path.segments) {
    EXPECT_NE(seg.stage, "warmup");
    if (seg.stage == "base.append") {
      EXPECT_EQ(seg.micros, 20);
    }
    if (seg.stage == "base.apply") {
      EXPECT_EQ(seg.micros, 10);
    }
  }
  EXPECT_EQ(path.unattributed_micros, 20);  // 70..90
}

TEST(CriticalPathTest, MergedStagesAccumulateAcrossRepeatedTouches) {
  const TraceSpan root = Span(1, "client.propose", 0, 100);
  const std::vector<TraceSpan> spans = {
      Span(1, "base.append", 0, 30),
      Span(1, "batching.queue", 30, 50),
      Span(1, "base.append", 50, 100),  // second touch of the same stage
      root,
  };
  const CriticalPath path = LatencyAttributor::ComputeCriticalPath(spans, root);
  ASSERT_EQ(path.segments.size(), 2u);  // merged per stage, first-touch order
  EXPECT_EQ(path.segments[0].stage, "base.append");
  EXPECT_EQ(path.segments[0].micros, 80);
  EXPECT_EQ(path.segments[1].stage, "batching.queue");
  EXPECT_EQ(path.segments[1].micros, 20);
}

TEST(CriticalPathTest, ZeroWidthRootYieldsAnEmptyPath) {
  // The simulator's pinned trace clock: every span is zero-width.
  const TraceSpan root = Span(1, "client.propose", 0, 0);
  const CriticalPath path =
      LatencyAttributor::ComputeCriticalPath({Span(1, "base.append", 0, 0), root}, root);
  EXPECT_EQ(path.total_micros, 0);
  EXPECT_TRUE(path.segments.empty());
  EXPECT_EQ(path.unattributed_micros, 0);
}

// --- SlowTraceStore ---

TEST(SlowTraceStoreTest, FifoEvictionIsDeterministic) {
  SlowTraceStore store(2);
  for (uint64_t id = 1; id <= 5; ++id) {
    SlowTrace trace;
    trace.trace_id = id;
    store.Add(std::move(trace));
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.captured(), 5u);
  EXPECT_EQ(store.evicted(), 3u);
  const std::vector<SlowTrace> kept = store.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].trace_id, 4u);  // oldest evicted first
  EXPECT_EQ(kept[1].trace_id, 5u);
  EXPECT_FALSE(store.Find(1).has_value());
  EXPECT_TRUE(store.Find(5).has_value());
}

// --- LatencyAttributor ---

class AttributorTest : public ::testing::Test {
 protected:
  LatencyAttributor MakeAttributor(uint64_t min_tail_samples = 4,
                                   double tail_quantile = 50.0) {
    LatencyAttributor::Options options;
    options.metrics = &metrics_;
    options.server = "s0";
    options.min_tail_samples = min_tail_samples;
    options.tail_quantile = tail_quantile;
    options.slow_capacity = 8;
    return LatencyAttributor(std::move(options));
  }

  // One complete proposal: stage spans then the root, all on server s0.
  void FeedTrace(LatencyAttributor& attributor, uint64_t id, int64_t e2e,
                 bool failed = false) {
    const int64_t base = static_cast<int64_t>(id) * 1000;
    attributor.OnSpan(Span(id, "batching.queue", base, base + e2e / 2));
    attributor.OnSpan(Span(id, "base.append", base + e2e / 2, base + e2e));
    attributor.OnSpan(Span(id, "client.propose", base, base + e2e, "s0", failed));
  }

  MetricsRegistry metrics_;
};

TEST_F(AttributorTest, AggregatesStageDurationsIntoRegistryHistograms) {
  LatencyAttributor attributor = MakeAttributor();
  for (uint64_t id = 1; id <= 10; ++id) {
    FeedTrace(attributor, id, 100);
  }
  EXPECT_EQ(attributor.traces_completed(), 10u);
  EXPECT_EQ(metrics_.GetHistogram("latency.e2e")->count(), 10u);
  EXPECT_EQ(metrics_.GetHistogram("latency.stage.batching.queue")->count(), 10u);
  EXPECT_EQ(metrics_.GetHistogram("latency.stage.base.append")->count(), 10u);
  EXPECT_EQ(metrics_.GetCounter("latency.traces.completed")->value(), 10u);
  const std::string table = attributor.RenderLatency();
  EXPECT_NE(table.find("e2e"), std::string::npos);
  EXPECT_NE(table.find("base.append"), std::string::npos);
  EXPECT_NE(table.find("100.0% of end-to-end"), std::string::npos);
}

TEST_F(AttributorTest, IgnoresSpansFromOtherServers) {
  LatencyAttributor attributor = MakeAttributor();
  attributor.OnSpan(Span(1, "base.apply", 0, 10, "s1"));
  attributor.OnSpan(Span(1, "client.propose", 0, 10, "ref"));
  EXPECT_EQ(attributor.traces_completed(), 0u);
  EXPECT_EQ(metrics_.GetHistogram("latency.e2e")->count(), 0u);
}

TEST_F(AttributorTest, TailSamplingCapturesOnlyAboveTheRollingQuantile) {
  LatencyAttributor attributor = MakeAttributor(/*min_tail_samples=*/4,
                                                /*tail_quantile=*/50.0);
  // Below min_tail_samples nothing is captured, however slow.
  FeedTrace(attributor, 1, 1'000'000);
  EXPECT_EQ(attributor.slow_traces().captured(), 0u);
  EXPECT_EQ(attributor.SlowThresholdMicros(), std::numeric_limits<int64_t>::max());
  // Warm the estimator with fast proposals.
  for (uint64_t id = 2; id <= 8; ++id) {
    FeedTrace(attributor, id, 100);
  }
  const int64_t threshold = attributor.SlowThresholdMicros();
  EXPECT_LT(threshold, 1'000'000);
  // At or below the threshold: not captured (strictly-greater rule).
  FeedTrace(attributor, 9, 50);
  EXPECT_EQ(attributor.slow_traces().captured(), 0u);
  // Above it: captured with its critical path.
  FeedTrace(attributor, 10, 500'000);
  EXPECT_EQ(attributor.slow_traces().captured(), 1u);
  const std::vector<SlowTrace> slow = attributor.slow_traces().Snapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].trace_id, 10u);
  EXPECT_FALSE(slow[0].errored);
  EXPECT_EQ(slow[0].e2e_micros, 500'000);
  ASSERT_FALSE(slow[0].critical_path.segments.empty());
  EXPECT_EQ(metrics_.GetCounter("latency.slow.captured")->value(), 1u);
}

TEST_F(AttributorTest, ErroredProposalsAreCapturedRegardlessOfLatency) {
  LatencyAttributor attributor = MakeAttributor();
  FeedTrace(attributor, 1, 10, /*failed=*/true);  // fast but errored
  EXPECT_EQ(attributor.slow_traces().captured(), 1u);
  const std::vector<SlowTrace> slow = attributor.slow_traces().Snapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_TRUE(slow[0].errored);
  const auto detail = attributor.RenderSlowDetail(1);
  ASSERT_TRUE(detail.has_value());
  EXPECT_NE(detail->find("errored=1"), std::string::npos);
  EXPECT_NE(detail->find("FAILED"), std::string::npos);
  EXPECT_FALSE(attributor.RenderSlowDetail(42).has_value());
}

TEST_F(AttributorTest, ApplyOnlyTrafficNeverOpensTraceBuffers) {
  LatencyAttributor attributor = MakeAttributor();
  // Replay traffic: apply spans with no propose pending. Histograms record,
  // but completing an unrelated trace later must not see these spans.
  for (uint64_t id = 100; id < 200; ++id) {
    attributor.OnSpan(Span(id, "base.apply", 0, 5));
  }
  EXPECT_EQ(metrics_.GetHistogram("latency.stage.base.apply")->count(), 100u);
  // A root for one of those ids completes with no buffered spans.
  attributor.OnSpan(Span(150, "client.propose", 0, 10, "s0", true));
  const std::vector<SlowTrace> slow = attributor.slow_traces().Snapshot();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].spans.size(), 1u);  // just the root
}

TEST_F(AttributorTest, CustomStageBucketBoundsReachTheRegistry) {
  LatencyAttributor::Options options;
  options.metrics = &metrics_;
  options.server = "s0";
  options.stage_bucket_bounds = {100, 1000, 10'000};
  LatencyAttributor attributor(std::move(options));
  attributor.OnSpan(Span(1, "base.append", 0, 500));
  EXPECT_EQ(metrics_.GetHistogram("latency.e2e")->bucket_bounds(),
            (std::vector<int64_t>{100, 1000, 10'000}));
  EXPECT_EQ(metrics_.GetHistogram("latency.stage.base.append")->Percentile(50), 1000);
}

TEST_F(AttributorTest, ObserverWiringDeliversTracerSpans) {
  Tracer tracer;
  LatencyAttributor attributor = MakeAttributor();
  const uint64_t observer = tracer.AddObserver(
      [&attributor](const TraceSpan& span) { attributor.OnSpan(span); });
  const uint64_t id = tracer.NextTraceId();
  tracer.RecordSpan(id, "base.append", "s0", 0, 40);
  tracer.RecordSpan(id, "client.propose", "s0", 0, 50);
  EXPECT_EQ(attributor.traces_completed(), 1u);
  EXPECT_EQ(metrics_.GetHistogram("latency.stage.base.append")->count(), 1u);
  tracer.RemoveObserver(observer);
  tracer.RecordSpan(id, "client.propose", "s0", 0, 50);
  EXPECT_EQ(attributor.traces_completed(), 1u);  // removed: no more deliveries
}

// --- simulator byte-identity ---

// Two replays of one fault-sweep seed must produce byte-identical latency
// summaries and slow-trace exemplar sets: with the sim trace clock pinned,
// stage durations are all zero and exemplar capture reduces to errored
// proposals, a pure function of the schedule.
TEST(SimLatencyReplay, LatencySummariesAreByteIdenticalAcrossReplays) {
  sim::SimOptions options;
  options.shape = sim::StackShape::kZelos;
  options.num_ops = 24;
  options.plan.max_crashes = 1;
  options.plan.max_append_faults = 4;

  options.scratch_dir = "latency_replay_a";
  const sim::RunReport a = sim::SimCluster::RunSeed(20260808, options);
  options.scratch_dir = "latency_replay_b";
  const sim::RunReport b = sim::SimCluster::RunSeed(20260808, options);

  ASSERT_TRUE(a.ok()) << a.Summary();
  ASSERT_TRUE(b.ok()) << b.Summary();
  ASSERT_FALSE(a.latency_summary.empty());
  ASSERT_FALSE(a.slow_exemplars.empty());
  EXPECT_EQ(a.latency_summary, b.latency_summary)
      << "latency summary diverged:\n=== run A ===\n"
      << a.latency_summary << "=== run B ===\n"
      << b.latency_summary;
  EXPECT_EQ(a.slow_exemplars, b.slow_exemplars)
      << "slow exemplars diverged:\n=== run A ===\n"
      << a.slow_exemplars << "=== run B ===\n"
      << b.slow_exemplars;
  // Every server section renders, and the summary carries the stage table.
  EXPECT_NE(a.latency_summary.find("== server s0 latency =="), std::string::npos);
  EXPECT_NE(a.latency_summary.find("latency attribution: server s0"), std::string::npos);
  EXPECT_NE(a.slow_exemplars.find("== server s0 slow traces =="), std::string::npos);
}

}  // namespace
}  // namespace delos
