// Linearizability checker unit suite: the sequential models, the Wing&Gong
// search (concurrency, indeterminate ops, memo budget), P-compositionality,
// violation shrinking, and history-capture determinism. Histories here are
// hand-built so every edge of the search is pinned without a cluster.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/verify/checker.h"
#include "src/verify/history.h"

namespace delos::verify {
namespace {

const std::string kSep(1, kFieldSep);

// Hand-built op. Determinate unless `rt` is kTickInfinity.
HistOp Op(uint64_t id, const std::string& model, const std::string& key,
          const std::string& name, const std::string& input, const std::string& output,
          uint64_t it, uint64_t rt, OpStatus status = OpStatus::kOk) {
  HistOp op;
  op.id = id;
  op.client = static_cast<uint32_t>(id % 3);
  op.model = model;
  op.key = key;
  op.name = name;
  op.input = input;
  op.output = output;
  op.status = rt == kTickInfinity ? OpStatus::kIndeterminate : status;
  op.invoke_tick = it;
  op.response_tick = rt;
  return op;
}

bool Check(const std::vector<HistOp>& ops, const std::string& model_tag) {
  const auto model = MakeModel(model_tag);
  bool exhausted = false;
  const bool ok = CheckSubHistory(ops, *model, 1'000'000, &exhausted);
  EXPECT_FALSE(exhausted);
  return ok;
}

// --- Sequential models ---

TEST(SequentialModels, RegisterSteps) {
  const auto reg = MakeModel("reg");
  ASSERT_NE(reg, nullptr);
  std::string state = reg->InitialState();
  auto next = reg->Step(state, Op(1, "reg", "k", "read", "", "absent", 1, 2), true);
  ASSERT_TRUE(next.has_value());
  next = reg->Step(state, Op(1, "reg", "k", "read", "", "v:x", 1, 2), true);
  EXPECT_FALSE(next.has_value());  // read of a never-written value
  next = reg->Step(state, Op(1, "reg", "k", "write", "a", "ok", 1, 2), true);
  ASSERT_TRUE(next.has_value());
  state = *next;
  EXPECT_TRUE(reg->Step(state, Op(2, "reg", "k", "read", "", "v:a", 3, 4), true).has_value());
  // CAS matching / mismatching / on an absent row.
  EXPECT_TRUE(
      reg->Step(state, Op(3, "reg", "k", "cas", "a" + kSep + "b", "ok", 5, 6), true)
          .has_value());
  EXPECT_TRUE(
      reg->Step(state, Op(3, "reg", "k", "cas", "x" + kSep + "b", "err:cond", 5, 6), true)
          .has_value());
  EXPECT_FALSE(
      reg->Step(state, Op(3, "reg", "k", "cas", "x" + kSep + "b", "ok", 5, 6), true)
          .has_value());
  EXPECT_TRUE(reg->Step(reg->InitialState(),
                        Op(3, "reg", "k", "cas", "a" + kSep + "b", "err:nf", 5, 6), true)
                  .has_value());
}

TEST(SequentialModels, ZnodeVersionsPinWriteOrder) {
  std::vector<HistOp> ops = {
      Op(1, "znode", "/n", "create", "d0", "ok", 1, 2),
      Op(2, "znode", "/n", "setdata", "d1", "v:1", 3, 4),
      Op(3, "znode", "/n", "getdata", "", "v:1" + kSep + "d1", 5, 6),
      Op(4, "znode", "/n", "delete", "", "ok", 7, 8),
      Op(5, "znode", "/n", "getdata", "", "absent", 9, 10),
      Op(6, "znode", "/n", "create", "d2", "ok", 11, 12),
      Op(7, "znode", "/n", "getdata", "", "v:0" + kSep + "d2", 13, 14),
  };
  EXPECT_TRUE(Check(ops, "znode"));
  // A read observing version 1 after version 2 was returned has no witness.
  std::vector<HistOp> stale = {
      Op(1, "znode", "/n", "create", "d0", "ok", 1, 2),
      Op(2, "znode", "/n", "setdata", "d1", "v:1", 3, 4),
      Op(3, "znode", "/n", "setdata", "d2", "v:2", 5, 6),
      Op(4, "znode", "/n", "getdata", "", "v:1" + kSep + "d1", 7, 8),
  };
  EXPECT_FALSE(Check(stale, "znode"));
}

TEST(SequentialModels, QueueFifoAndViolations) {
  std::vector<HistOp> fifo = {
      Op(1, "queue", "q", "push", "a", "seq:0", 1, 2),
      Op(2, "queue", "q", "push", "b", "seq:1", 3, 4),
      Op(3, "queue", "q", "pop", "", "v:a", 5, 6),
      Op(4, "queue", "q", "pop", "", "v:b", 7, 8),
      Op(5, "queue", "q", "pop", "", "empty", 9, 10),
  };
  EXPECT_TRUE(Check(fifo, "queue"));
  // Double dequeue of one payload.
  std::vector<HistOp> twice = {
      Op(1, "queue", "q", "push", "a", "seq:0", 1, 2),
      Op(2, "queue", "q", "push", "b", "seq:1", 3, 4),
      Op(3, "queue", "q", "pop", "", "v:a", 5, 6),
      Op(4, "queue", "q", "pop", "", "v:a", 7, 8),
  };
  EXPECT_FALSE(Check(twice, "queue"));
  // Out-of-order dequeue.
  std::vector<HistOp> skip = {
      Op(1, "queue", "q", "push", "a", "seq:0", 1, 2),
      Op(2, "queue", "q", "push", "b", "seq:1", 3, 4),
      Op(3, "queue", "q", "pop", "", "v:b", 5, 6),
  };
  EXPECT_FALSE(Check(skip, "queue"));
}

TEST(SequentialModels, LockMutualExclusionAndHandoff) {
  std::vector<HistOp> handoff = {
      Op(1, "lock", "l", "acquire", "c1", "granted", 1, 2),
      Op(2, "lock", "l", "acquire", "c2", "queued", 3, 4),
      Op(3, "lock", "l", "acquire", "c2", "queued", 5, 6),  // idempotent re-queue
      Op(4, "lock", "l", "release", "c1", "ok", 7, 8),      // hands off to c2
      Op(5, "lock", "l", "owner", "", "o:c2", 9, 10),
      Op(6, "lock", "l", "release", "c2", "ok", 11, 12),
      Op(7, "lock", "l", "owner", "", "o:", 13, 14),
      Op(8, "lock", "l", "release", "c1", "err:notowner", 15, 16, OpStatus::kError),
  };
  EXPECT_TRUE(Check(handoff, "lock"));
  // Two grants with no release in between: mutual exclusion broken.
  std::vector<HistOp> two_owners = {
      Op(1, "lock", "l", "acquire", "c1", "granted", 1, 2),
      Op(2, "lock", "l", "acquire", "c2", "granted", 3, 4),
  };
  EXPECT_FALSE(Check(two_owners, "lock"));
  // A waiter abandoning its slot is a valid release.
  std::vector<HistOp> abandon = {
      Op(1, "lock", "l", "acquire", "c1", "granted", 1, 2),
      Op(2, "lock", "l", "acquire", "c2", "queued", 3, 4),
      Op(3, "lock", "l", "release", "c2", "ok", 5, 6),
      Op(4, "lock", "l", "release", "c1", "ok", 7, 8),
      Op(5, "lock", "l", "owner", "", "o:", 9, 10),
  };
  EXPECT_TRUE(Check(abandon, "lock"));
}

TEST(SequentialModels, UnknownTagRejected) {
  EXPECT_EQ(MakeModel("nope"), nullptr);
}

// --- The search ---

TEST(Checker, ConcurrentOpsMayLinearizeInEitherOrder) {
  // The read overlaps the write and may land on either side of it.
  std::vector<HistOp> sees_it = {
      Op(1, "reg", "k", "write", "a", "ok", 1, 4),
      Op(2, "reg", "k", "read", "", "v:a", 2, 3),
  };
  EXPECT_TRUE(Check(sees_it, "reg"));
  std::vector<HistOp> misses_it = {
      Op(1, "reg", "k", "write", "a", "ok", 1, 4),
      Op(2, "reg", "k", "read", "", "absent", 2, 3),
  };
  EXPECT_TRUE(Check(misses_it, "reg"));
  // But a non-overlapping (sequential) read must observe the write.
  std::vector<HistOp> stale = {
      Op(1, "reg", "k", "write", "a", "ok", 1, 2),
      Op(2, "reg", "k", "read", "", "absent", 3, 4),
  };
  EXPECT_FALSE(Check(stale, "reg"));
}

TEST(Checker, IndeterminateOpsMayApplyOrVanish) {
  // The ambiguous write may have committed: a later read of it is fine...
  std::vector<HistOp> applied = {
      Op(1, "reg", "k", "write", "a", "", 1, kTickInfinity),
      Op(2, "reg", "k", "read", "", "v:a", 2, 3),
  };
  EXPECT_TRUE(Check(applied, "reg"));
  // ...and so is never observing it.
  std::vector<HistOp> vanished = {
      Op(1, "reg", "k", "write", "a", "", 1, kTickInfinity),
      Op(2, "reg", "k", "read", "", "absent", 2, 3),
  };
  EXPECT_TRUE(Check(vanished, "reg"));
  // An indeterminate op cannot linearize before its invocation: the read
  // completed before the ambiguous write was even issued.
  std::vector<HistOp> too_early = {
      Op(1, "reg", "k", "read", "", "v:a", 1, 2),
      Op(2, "reg", "k", "write", "a", "", 3, kTickInfinity),
  };
  EXPECT_FALSE(Check(too_early, "reg"));
  // Ambiguous pop: the retried attempt observing the *second* element is
  // only explainable if the first attempt dequeued — the searcher must
  // choose the effect-applied branch.
  std::vector<HistOp> ambiguous_pop = {
      Op(1, "queue", "q", "push", "a", "seq:0", 1, 2),
      Op(2, "queue", "q", "push", "b", "seq:1", 3, 4),
      Op(3, "queue", "q", "pop", "", "", 5, kTickInfinity),
      Op(4, "queue", "q", "pop", "", "v:b", 6, 7),
  };
  EXPECT_TRUE(Check(ambiguous_pop, "queue"));
}

TEST(Checker, BudgetExhaustionIsReportedNotAVerdict) {
  std::vector<HistOp> ops;
  // Sixteen fully concurrent writes: factorial search space, tiny budget.
  for (uint64_t i = 1; i <= 16; ++i) {
    ops.push_back(Op(i, "reg", "k", "write", "w" + std::to_string(i), "ok", i, 100 + i));
  }
  const auto model = MakeModel("reg");
  bool exhausted = false;
  CheckSubHistory(ops, *model, 8, &exhausted);
  EXPECT_TRUE(exhausted);

  CheckResult result = CheckLinearizability(ops, {.max_states = 8});
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_TRUE(result.violations.empty());  // never misreported as a violation
}

// --- CheckLinearizability: partitioning, violations, shrinking, metrics ---

TEST(Checker, PartitionsByModelAndKey) {
  // Interleaved ops on two keys + one queue; each partition is fine even
  // though the combined tick sequence mixes them.
  std::vector<HistOp> ops = {
      Op(1, "reg", "a", "write", "x", "ok", 1, 2),
      Op(2, "reg", "b", "read", "", "absent", 3, 4),
      Op(3, "queue", "q", "push", "p", "seq:0", 5, 6),
      Op(4, "reg", "a", "read", "", "v:x", 7, 8),
      Op(5, "queue", "q", "pop", "", "v:p", 9, 10),
      Op(6, "reg", "b", "write", "y", "ok", 11, 12),
  };
  const CheckResult result = CheckLinearizability(ops);
  EXPECT_TRUE(result.linearizable);
  EXPECT_EQ(result.keys_checked, 3u);
  EXPECT_EQ(result.ops_checked, 6u);

  // Corrupt exactly one partition; the violation names it.
  ops.push_back(Op(7, "reg", "b", "read", "", "absent", 13, 14));
  const CheckResult bad = CheckLinearizability(ops);
  EXPECT_FALSE(bad.linearizable);
  ASSERT_EQ(bad.violations.size(), 1u);
  EXPECT_EQ(bad.violations[0].model, "reg");
  EXPECT_EQ(bad.violations[0].key, "b");
}

// Asserts the minimality invariant: removing any single op from the
// reported sub-history makes the remainder linearizable.
void ExpectMinimal(const Violation& violation, const std::string& model_tag) {
  const auto model = MakeModel(model_tag);
  for (size_t skip = 0; skip < violation.minimal.size(); ++skip) {
    std::vector<HistOp> reduced;
    for (size_t i = 0; i < violation.minimal.size(); ++i) {
      if (i != skip) {
        reduced.push_back(violation.minimal[i]);
      }
    }
    bool exhausted = false;
    EXPECT_TRUE(CheckSubHistory(reduced, *model, 1'000'000, &exhausted))
        << "sub-history still non-linearizable after removing op #"
        << violation.minimal[skip].id << " — not minimal";
  }
}

TEST(Checker, ShrinksToAMinimalSubHistory) {
  // Two sequential grants with no release: each acquire alone is fine (a
  // free lock grants), together they have no witness — the minimal
  // certificate is exactly this pair. The leading owner query is benign in
  // every subset, so shrink must drop it.
  std::vector<HistOp> ops = {
      Op(1, "lock", "l", "owner", "", "o:", 1, 2),
      Op(2, "lock", "l", "acquire", "c1", "granted", 3, 4),
      Op(3, "lock", "l", "acquire", "c2", "granted", 5, 6),
  };
  const CheckResult result = CheckLinearizability(ops);
  ASSERT_FALSE(result.linearizable);
  ASSERT_EQ(result.violations.size(), 1u);
  const Violation& violation = result.violations[0];
  EXPECT_EQ(violation.minimal.size(), 2u);
  ExpectMinimal(violation, "lock");
  EXPECT_FALSE(violation.Render().empty());
}

TEST(Checker, ShrinkStopsAtSingleImpossibleOps) {
  // A push whose sequence number pins absent prior state shrinks all the
  // way to itself — a one-op certificate is still a certificate.
  std::vector<HistOp> ops = {
      Op(1, "queue", "q", "push", "a", "seq:0", 1, 2),
      Op(2, "queue", "q", "pop", "", "v:a", 3, 4),
      Op(3, "queue", "q", "push", "b", "seq:1", 5, 6),
      Op(4, "queue", "q", "pop", "", "empty", 7, 8),
  };
  const CheckResult result = CheckLinearizability(ops);
  ASSERT_FALSE(result.linearizable);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_LT(result.violations[0].minimal.size(), ops.size());
  ExpectMinimal(result.violations[0], "queue");
}

TEST(Checker, ViolationCarriesTraceIds) {
  std::vector<HistOp> ops = {
      Op(1, "queue", "q", "push", "a", "seq:0", 1, 2),
      Op(2, "queue", "q", "pop", "", "empty", 3, 4),
  };
  ops[0].trace_id = 77;
  ops[1].trace_id = 42;
  const CheckResult result = CheckLinearizability(ops);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_EQ(result.violations[0].trace_ids, (std::vector<uint64_t>{42, 77}));
  EXPECT_NE(result.violations[0].Render().find("trace-ids: 42 77"), std::string::npos);
}

TEST(Checker, RecordsMetrics) {
  MetricsRegistry metrics;
  std::vector<HistOp> ops = {
      Op(1, "queue", "q", "push", "a", "seq:0", 1, 2),
      Op(2, "queue", "q", "pop", "", "empty", 3, 4),
  };
  CheckerOptions options;
  options.metrics = &metrics;
  CheckLinearizability(ops, options);
  EXPECT_EQ(metrics.GetCounter("verify.ops")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("verify.violations")->value(), 1u);
}

// --- History capture ---

TEST(History, TicksGiveRealTimeOrderAndRenderIsDeterministic) {
  HistoryRecorder recorder(16);
  const uint64_t a = recorder.Invoke(0, "reg", "k", "write", "a");
  recorder.Response(a, OpStatus::kOk, "ok");
  const uint64_t b = recorder.Invoke(1, "reg", "k", "read", "");
  recorder.Response(b, OpStatus::kOk, "v:a");
  const auto ops = recorder.Snapshot();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_LT(ops[0].response_tick, ops[1].invoke_tick);  // sequential => ordered
  EXPECT_EQ(HistoryRecorder::Render(ops), HistoryRecorder::Render(recorder.Snapshot()));
  EXPECT_NE(HistoryRecorder::Render(ops).find("#1 c0 reg/k write(a) -> ok:ok"),
            std::string::npos);
}

TEST(History, OpenOpsSnapshotAsIndeterminate) {
  HistoryRecorder recorder(16);
  recorder.Invoke(0, "reg", "k", "write", "a");  // never responded
  const auto ops = recorder.Snapshot();
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_TRUE(ops[0].indeterminate());
  EXPECT_EQ(ops[0].response_tick, kTickInfinity);
}

TEST(History, OverflowDropsInsteadOfBlocking) {
  HistoryRecorder recorder(2);
  EXPECT_NE(recorder.Invoke(0, "reg", "k", "write", "a"), 0u);
  EXPECT_NE(recorder.Invoke(0, "reg", "k", "write", "b"), 0u);
  EXPECT_EQ(recorder.Invoke(0, "reg", "k", "write", "c"), 0u);
  recorder.Response(0, OpStatus::kOk, "ok");  // dropped id: must be a no-op
  EXPECT_EQ(recorder.dropped(), 1u);
  EXPECT_EQ(recorder.Snapshot().size(), 2u);
}

TEST(History, ConcurrentRecordingIsLossless) {
  HistoryRecorder recorder(4096);
  std::vector<std::thread> threads;
  for (uint32_t c = 0; c < 8; ++c) {
    threads.emplace_back([&recorder, c] {
      for (int i = 0; i < 128; ++i) {
        const uint64_t id =
            recorder.Invoke(c, "reg", "k" + std::to_string(c), "write", std::to_string(i));
        recorder.Response(id, OpStatus::kOk, "ok");
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto ops = recorder.Snapshot();
  ASSERT_EQ(ops.size(), 8u * 128u);
  EXPECT_EQ(recorder.dropped(), 0u);
  // Every op got distinct ticks and a response after its invoke.
  for (const HistOp& op : ops) {
    EXPECT_LT(op.invoke_tick, op.response_tick);
  }
  // And the per-thread (sequential) histories all linearize trivially.
  EXPECT_TRUE(CheckLinearizability(ops).linearizable);
}

}  // namespace
}  // namespace delos::verify
