// Linearizability verification, part 4: end-to-end audits.
//
//  * Fault sweep: SimCluster runs seed-derived mixed workloads (table rows,
//    znodes, queues, locks) through the recording clients concurrently with
//    randomized crash / timeout / duplicate / reorder schedules, and the
//    checker must pass every seed. DELOS_VERIFY_SCHEDULES scales the sweep;
//    a failing seed writes its plan, history, violations, and flight dump to
//    DELOS_VERIFY_ARTIFACT_DIR for CI to upload.
//  * Replay determinism: the same seed renders a byte-identical history.
//  * Mutation self-test: a BaseEngine with a build-time-injected consistency
//    bug (double-apply one entry / re-apply a stale entry) must be flagged
//    by the checker on EVERY seed, with a minimal sub-history — the checker
//    checking itself.
//  * Reconfiguration: live VirtualLog loglet swaps under concurrent recorded
//    traffic stay linearizable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/delosq/delosq.h"
#include "src/apps/delostable/table_db.h"
#include "src/common/clock.h"
#include "src/core/cluster.h"
#include "src/engines/stacks.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/sim/sim_cluster.h"
#include "src/verify/checker.h"
#include "src/verify/history.h"
#include "src/verify/recording_client.h"

namespace delos {
namespace {

using sim::RunReport;
using sim::SimCluster;
using sim::SimOptions;
using sim::WorkloadKind;
using sim::WorkloadKindName;

int EnvInt(const char* name, int fallback, int floor) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  const int parsed = std::atoi(value);
  return parsed < floor ? floor : parsed;
}

std::filesystem::path ArtifactDir() {
  const char* dir = std::getenv("DELOS_VERIFY_ARTIFACT_DIR");
  return (dir != nullptr && *dir != '\0') ? std::filesystem::path(dir)
                                          : std::filesystem::path("verify_artifacts");
}

// Writes everything needed to chase a failing seed offline: the fault plan,
// the failure strings, the full history, every violation's minimal
// sub-history, and the flight-recorder dump. ci.yml uploads this directory
// when the verify suite fails.
void DumpArtifacts(const RunReport& report, WorkloadKind kind) {
  const std::filesystem::path dir = ArtifactDir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string prefix =
      "seed_" + std::to_string(report.seed) + "_" + WorkloadKindName(kind);
  {
    std::ofstream out(dir / (prefix + "_plan.txt"));
    out << report.Summary() << "\n\nfault plan:\n" << report.plan_text << "\nfailures:\n";
    for (const std::string& failure : report.failures) {
      out << "  " << failure << "\n";
    }
  }
  std::ofstream(dir / (prefix + "_history.txt")) << report.history_text;
  std::ofstream(dir / (prefix + "_violations.txt")) << report.violation_text;
  std::ofstream(dir / (prefix + "_flight.txt")) << report.flight_dump;
}

SimOptions SweepOptions(WorkloadKind kind, const std::filesystem::path& scratch) {
  SimOptions options;
  options.workload = kind;
  options.num_servers = 3;
  options.num_ops = 30;
  options.plan.num_ops = 30;
  options.scratch_dir = scratch.string();
  return options;
}

// The sweep: DELOS_VERIFY_SCHEDULES seeds (default 24, so each of the four
// models gets six), each a full SimCluster run with crashes, torn flushes,
// and append faults (timeout / drop / duplicate / reorder) active. Every
// seed must hold both the replica-checksum verdict and the linearizability
// verdict.
TEST(VerifySweep, FaultSweepIsLinearizableForAllModels) {
  const int seeds = EnvInt("DELOS_VERIFY_SCHEDULES", 24, 4);
  const WorkloadKind kinds[] = {WorkloadKind::kVerifyTable, WorkloadKind::kVerifyZelos,
                                WorkloadKind::kVerifyQueue, WorkloadKind::kVerifyLock};
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "delos_verify_sweep";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  for (int seed = 1; seed <= seeds; ++seed) {
    const WorkloadKind kind = kinds[seed % 4];
    SCOPED_TRACE("seed " + std::to_string(seed) + " workload " + WorkloadKindName(kind));
    const SimOptions options = SweepOptions(kind, scratch / ("s" + std::to_string(seed)));
    const RunReport report = SimCluster::RunSeed(static_cast<uint64_t>(seed), options);
    if (!report.ok()) {
      DumpArtifacts(report, kind);
    }
    EXPECT_TRUE(report.ok()) << report.Summary() << "\n" << report.plan_text;
    EXPECT_TRUE(report.verify_ran);
    EXPECT_TRUE(report.linearizable) << report.violation_text;
    EXPECT_GT(report.verify_ops, 0u);
    EXPECT_NE(report.Summary().find("linearizable=yes"), std::string::npos)
        << report.Summary();
  }
  std::filesystem::remove_all(scratch);
}

// The tentpole's replay contract: histories render byte-identically across
// runs of the same seed — same ops, same ticks, same injected-clock stamps,
// same trace ids — so a failing seed's history artifact is reproducible.
TEST(VerifySweep, HistoryRendersByteIdenticallyAcrossReplays) {
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "delos_verify_replay";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  for (const WorkloadKind kind :
       {WorkloadKind::kVerifyTable, WorkloadKind::kVerifyQueue}) {
    SCOPED_TRACE(WorkloadKindName(kind));
    const SimOptions options = SweepOptions(kind, scratch / WorkloadKindName(kind));
    const RunReport first = SimCluster::RunSeed(11, options);
    const RunReport second = SimCluster::RunSeed(11, options);
    ASSERT_TRUE(first.ok()) << first.Summary();
    ASSERT_TRUE(second.ok()) << second.Summary();
    EXPECT_FALSE(first.history_text.empty());
    EXPECT_EQ(first.history_text, second.history_text);
    EXPECT_EQ(first.Summary(), second.Summary());
  }
  std::filesystem::remove_all(scratch);
}

// Legacy workloads keep their old report shape: the linearizability column
// reads "n/a" and no history is captured.
TEST(VerifySweep, LegacyWorkloadReportsNoVerdict) {
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "delos_verify_legacy";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  SimOptions options = SweepOptions(WorkloadKind::kLegacy, scratch);
  options.num_ops = 12;
  options.plan.num_ops = 12;
  const RunReport report = SimCluster::RunSeed(2, options);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.verify_ran);
  EXPECT_TRUE(report.history_text.empty());
  EXPECT_NE(report.Summary().find("linearizable=n/a"), std::string::npos);
  std::filesystem::remove_all(scratch);
}

#ifdef DELOS_MUTATIONS

// Mutation self-test: prove the checker actually catches consistency bugs by
// compiling one into the BaseEngine. Each run builds a bare single-server
// rig (no middle engines — a SessionOrderEngine would mask exactly the bugs
// we inject) with a seed-parametrized mutation trigger, scripts a workload
// guaranteed to expose it, and requires a violation with a minimal
// sub-history on EVERY seed.
class MutationSelfTest : public ::testing::Test {
 protected:
  BaseEngineOptions BaseOptions(uint64_t double_apply_at, uint64_t reorder_at) {
    BaseEngineOptions options;
    options.server_id = "mut";
    options.play_batch_size = 4;
    options.flush_interval_micros = 1'000'000'000;
    options.trim_interval_micros = 1'000'000'000;
    options.mutate_double_apply_at = double_apply_at;
    options.mutate_reorder_at = reorder_at;
    options.fatal_handler = [this](const std::string& message) {
      fatals_.push_back(message);
    };
    return options;
  }

  // Re-apply-previous-entry mutation against the "reg" model. Applied log
  // records on the bare stack: create-table = 1, E warmup writes = 2..E+1
  // (E = seed % 4), write(k,"a") = E+2, write(k,"b") = E+3 — the trigger:
  // right after applying "b" the engine re-applies the stale "a", so the
  // recorded read sees "a" after an acknowledged write of "b".
  verify::CheckResult RunReorder(uint64_t seed, std::string* violation_render) {
    const uint64_t warmups = seed % 4;
    auto log = std::make_shared<InMemoryLog>();
    ClusterServer server("mut", log, LocalStore::Open(LocalStore::Options{}),
                         BaseOptions(0, warmups + 3));
    table::TableApplicator app;
    server.top()->RegisterUpcall(&app);
    server.Start();
    table::TableClient client(server.top());
    table::TableSchema schema;
    schema.name = "t";
    schema.columns = {{"k", table::ValueType::kString}, {"v", table::ValueType::kString}};
    schema.primary_key = "k";
    client.CreateTable(schema);  // untracked setup

    SimClock clock;  // never advanced: deterministic display stamps
    verify::HistoryRecorder recorder(64, &clock);
    verify::RecordingTableClient recording(&client, "t", &recorder, 0);
    for (uint64_t i = 0; i < warmups; ++i) {
      recording.Write("warm" + std::to_string(i), "w");
    }
    recording.Write("k", "a");
    recording.Write("k", "b");
    recording.Read("k");
    server.Stop();

    const verify::CheckResult result = verify::CheckLinearizability(recorder.Snapshot());
    RenderViolations(result, violation_render);
    return result;
  }

  // Double-apply mutation against the "queue" model. Applied records:
  // create-queue = 1, P pushes = 2..P+1 (P = 3 + seed % 4), first pop = P+2
  // — the trigger: the pop applies twice, silently consuming two elements,
  // so the recorded pop sequence skips one payload.
  verify::CheckResult RunDoubleApply(uint64_t seed, std::string* violation_render) {
    const uint64_t pushes = 3 + seed % 4;
    auto log = std::make_shared<InMemoryLog>();
    ClusterServer server("mut", log, LocalStore::Open(LocalStore::Options{}),
                         BaseOptions(pushes + 2, 0));
    delosq::QueueApplicator app;
    server.top()->RegisterUpcall(&app);
    server.Start();
    delosq::QueueClient client(server.top());
    client.CreateQueue("q");  // untracked setup

    SimClock clock;
    verify::HistoryRecorder recorder(64, &clock);
    verify::RecordingQueueClient recording(&client, &recorder, 0);
    for (uint64_t i = 1; i <= pushes; ++i) {
      recording.Push("q", "p" + std::to_string(i));
    }
    for (uint64_t i = 1; i <= pushes; ++i) {
      recording.Pop("q");
    }
    server.Stop();

    const verify::CheckResult result = verify::CheckLinearizability(recorder.Snapshot());
    RenderViolations(result, violation_render);
    return result;
  }

  static void RenderViolations(const verify::CheckResult& result, std::string* render) {
    render->clear();
    for (const verify::Violation& violation : result.violations) {
      *render += violation.Render();
    }
  }

  std::vector<std::string> fatals_;
};

TEST_F(MutationSelfTest, ReorderMutationIsFlaggedOnEverySeed) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::string render;
    const verify::CheckResult result = RunReorder(seed, &render);
    EXPECT_FALSE(result.budget_exhausted);
    ASSERT_FALSE(result.linearizable) << "seeded stale re-apply went undetected";
    ASSERT_FALSE(result.violations.empty());
    EXPECT_FALSE(result.violations[0].minimal.empty());
    EXPECT_FALSE(render.empty());
    EXPECT_TRUE(fatals_.empty());
  }
}

TEST_F(MutationSelfTest, DoubleApplyMutationIsFlaggedOnEverySeed) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    std::string render;
    const verify::CheckResult result = RunDoubleApply(seed, &render);
    EXPECT_FALSE(result.budget_exhausted);
    ASSERT_FALSE(result.linearizable) << "seeded double-apply went undetected";
    ASSERT_FALSE(result.violations.empty());
    EXPECT_FALSE(result.violations[0].minimal.empty());
    EXPECT_FALSE(render.empty());
    EXPECT_TRUE(fatals_.empty());
  }
}

// The violation report itself is deterministic: two identical runs produce
// byte-identical minimal sub-history renders (the repro contract extends to
// the checker's output, not just the history).
TEST_F(MutationSelfTest, ViolationReportIsDeterministic) {
  std::string first;
  std::string second;
  RunReorder(3, &first);
  RunReorder(3, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  RunDoubleApply(5, &first);
  RunDoubleApply(5, &second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

#endif  // DELOS_MUTATIONS

// Live log reconfiguration under recorded concurrent traffic: three client
// threads mix writes, reads, and CAS through recording clients while the
// VirtualLog seals its active loglet and chains fresh ones, twice. The
// merged history must be linearizable — reconfiguration may slow ops, never
// tear them.
TEST(VerifyReconfigure, CheckerIsCleanAcrossLogReconfiguration) {
  Cluster::Options options;
  options.num_servers = 3;
  options.log_kind = Cluster::LogKind::kVirtual;
  std::map<std::string, std::unique_ptr<table::TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    BuildStack(server, DelosTableStackConfig(nullptr));
    auto app = std::make_unique<table::TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  table::TableClient setup(cluster.server(0).top());
  table::TableSchema schema;
  schema.name = "t";
  schema.columns = {{"k", table::ValueType::kString}, {"v", table::ValueType::kString}};
  schema.primary_key = "k";
  setup.CreateTable(schema);

  verify::HistoryRecorder recorder(1024);
  std::atomic<int> completed{0};
  std::vector<std::thread> workers;
  for (uint32_t c = 0; c < 3; ++c) {
    workers.emplace_back([&, c] {
      table::TableClient client(cluster.server(static_cast<int>(c)).top());
      verify::RecordingTableClient recording(&client, "t", &recorder, c);
      for (int i = 0; i < 25; ++i) {
        const std::string key = "k" + std::to_string((c + i) % 4);
        try {
          switch (i % 3) {
            case 0:
              recording.Write(key, "c" + std::to_string(c) + "i" + std::to_string(i));
              break;
            case 1:
              recording.Read(key);
              break;
            default:
              recording.Cas(key, "never", "x");
              break;
          }
        } catch (const std::exception&) {
          // Indeterminate attempt (already journaled as such); keep going.
        }
        completed.fetch_add(1);
      }
    });
  }
  while (completed.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.ReconfigureLog();
  while (completed.load() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.ReconfigureLog();
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(cluster.LogChainLength(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const verify::CheckResult result = verify::CheckLinearizability(recorder.Snapshot());
  EXPECT_FALSE(result.budget_exhausted);
  std::string violations;
  for (const verify::Violation& violation : result.violations) {
    violations += violation.Render();
  }
  EXPECT_TRUE(result.linearizable) << violations;
  EXPECT_EQ(result.ops_checked, 75u);
}

}  // namespace
}  // namespace delos
