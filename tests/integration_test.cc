// End-to-end integration tests: production-shaped stacks on multi-server
// clusters over the quorum-replicated log — convergence, crash/restart
// recovery from checkpoints, the two-phase rolling-upgrade protocol for
// inserting an engine, passive followers, and a randomized determinism
// property (every replica's LocalStore is the same function of the log).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "src/apps/delostable/table_db.h"
#include "src/apps/zelos/zelos.h"
#include "src/common/random.h"
#include "src/core/cluster.h"
#include "src/engines/stacks.h"

namespace delos {
namespace {

using table::Row;
using table::TableApplicator;
using table::TableClient;
using table::TableSchema;
using table::Value;
using table::ValueType;

TableSchema UsersSchema() {
  TableSchema schema;
  schema.name = "users";
  schema.columns = {{"id", ValueType::kInt64},
                    {"name", ValueType::kString},
                    {"city", ValueType::kString}};
  schema.primary_key = "id";
  schema.secondary_indexes = {"city"};
  return schema;
}

Row User(int64_t id, const std::string& name, const std::string& city) {
  return Row{{"id", Value{id}}, {"name", Value{name}}, {"city", Value{city}}};
}

class DelosTableClusterTest : public testing::Test {
 protected:
  void StartCluster(int num_servers, Cluster::LogKind log_kind, std::string checkpoint_dir = "") {
    Cluster::Options options;
    options.num_servers = num_servers;
    options.log_kind = log_kind;
    options.net_config.default_one_way_latency_micros = 30;
    options.net_config.call_timeout_micros = 500'000;
    options.loglet_config.num_acceptors = 3;
    options.checkpoint_dir = std::move(checkpoint_dir);
    cluster_ = std::make_unique<Cluster>(options, [this](ClusterServer& server) {
      BuildStack(server, DelosTableStackConfig(&backup_));
      auto app = std::make_unique<TableApplicator>();
      server.top()->RegisterUpcall(app.get());
      applicators_[server.id()] = std::move(app);
    });
  }

  TableClient ClientFor(int index) { return TableClient(cluster_->server(index).top()); }

  InMemoryBackupStore backup_;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(DelosTableClusterTest, FiveServersOverQuorumLogConverge) {
  StartCluster(5, Cluster::LogKind::kQuorum);
  TableClient writer = ClientFor(0);
  writer.CreateTable(UsersSchema());
  for (int i = 0; i < 20; ++i) {
    writer.Insert("users", User(i, "user" + std::to_string(i), i % 2 == 0 ? "nyc" : "sfo"));
  }
  // Every server serves strongly consistent reads.
  for (int s = 0; s < 5; ++s) {
    TableClient reader = ClientFor(s);
    EXPECT_EQ(reader.Scan("users", std::nullopt, std::nullopt).size(), 20u);
    EXPECT_EQ(reader.IndexLookup("users", "city", Value{std::string("nyc")}).size(), 10u);
  }
  // Replicas agree bit-for-bit.
  const uint64_t checksum = cluster_->server(0).store()->Checksum();
  for (int s = 1; s < 5; ++s) {
    cluster_->server(s).top()->Sync().Get();
    EXPECT_EQ(cluster_->server(s).store()->Checksum(), checksum) << "server " << s;
  }
}

// The on-demand debug endpoint must be callable from a second thread while
// the apply pipeline is under load: DebugDump reads the metrics registry and
// the flight-recorder ring concurrently with the writers mutating both.
TEST_F(DelosTableClusterTest, DebugDumpIsSafeDuringApplyStorm) {
  StartCluster(3, Cluster::LogKind::kInMemory);
  TableClient writer = ClientFor(0);
  writer.CreateTable(UsersSchema());
  std::atomic<bool> stop{false};
  std::thread dumper([this, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      for (int s = 0; s < 3; ++s) {
        const std::string dump = cluster_->server(s).DebugDump();
        EXPECT_NE(dump.find("== metrics =="), std::string::npos);
        EXPECT_NE(dump.find("== flight recorder =="), std::string::npos);
      }
    }
  });
  for (int i = 0; i < 200; ++i) {
    writer.Insert("users", User(i, "user" + std::to_string(i), i % 2 == 0 ? "nyc" : "sfo"));
  }
  stop.store(true, std::memory_order_release);
  dumper.join();
  EXPECT_EQ(ClientFor(2).Scan("users", std::nullopt, std::nullopt).size(), 200u);
}

TEST_F(DelosTableClusterTest, WritesFromEveryServerInterleave) {
  StartCluster(3, Cluster::LogKind::kQuorum);
  ClientFor(0).CreateTable(UsersSchema());
  std::vector<std::thread> threads;
  for (int s = 0; s < 3; ++s) {
    threads.emplace_back([this, s] {
      TableClient client = ClientFor(s);
      for (int i = 0; i < 10; ++i) {
        client.Insert("users", User(s * 100 + i, "u", "c"));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ClientFor(1).Scan("users", std::nullopt, std::nullopt).size(), 30u);
}

TEST_F(DelosTableClusterTest, CrashedServerRecoversFromCheckpointAndLog) {
  const std::string dir = testing::TempDir() + "/delos_recovery_cluster";
  std::filesystem::remove_all(dir);
  StartCluster(3, Cluster::LogKind::kInMemory, dir);
  TableClient writer = ClientFor(0);
  writer.CreateTable(UsersSchema());
  for (int i = 0; i < 10; ++i) {
    writer.Insert("users", User(i, "u" + std::to_string(i), "x"));
  }
  // Server 2 applies + checkpoints part of the history, then crashes.
  cluster_->server(2).top()->Sync().Get();
  cluster_->server(2).base()->FlushNow();
  for (int i = 10; i < 20; ++i) {
    writer.Insert("users", User(i, "u" + std::to_string(i), "x"));
  }
  cluster_->StopServer(2);
  for (int i = 20; i < 30; ++i) {
    writer.Insert("users", User(i, "u" + std::to_string(i), "x"));
  }
  cluster_->RestartServer(2);
  TableClient reader = ClientFor(2);
  EXPECT_EQ(reader.Scan("users", std::nullopt, std::nullopt).size(), 30u);
  cluster_->server(0).top()->Sync().Get();
  EXPECT_EQ(cluster_->server(2).store()->Checksum(), cluster_->server(0).store()->Checksum());
  std::filesystem::remove_all(dir);
}

// The two-phase dynamic-update protocol (§3.4) as a rolling upgrade: every
// server restarts with the new engine present-but-disabled, then one enable
// command through the log activates it fleet-wide at a single log position.
TEST_F(DelosTableClusterTest, RollingUpgradeInsertsSessionOrderEngine) {
  const std::string dir = testing::TempDir() + "/delos_rolling_upgrade";
  std::filesystem::remove_all(dir);
  StartCluster(3, Cluster::LogKind::kInMemory, dir);
  TableClient writer = ClientFor(0);
  writer.CreateTable(UsersSchema());
  writer.Insert("users", User(1, "before", "x"));

  // Phase 1: rolling binary upgrade — new stack includes SessionOrder,
  // deployed disabled.
  Cluster::StackBuilder upgraded = [this](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(&backup_);
    BuildStack(server, config);
    SessionOrderEngine::Options so_options;
    so_options.server_id = server.id();
    so_options.start_enabled = false;
    server.AddEngine<SessionOrderEngine>(so_options);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators_[server.id()] = std::move(app);
  };
  for (int s = 0; s < 3; ++s) {
    // Keep quorum: flush others so the restarted server's writes survive.
    cluster_->server(s).top()->Sync().Get();
    cluster_->server(s).base()->FlushNow();
    cluster_->RestartServer(s, upgraded);
    // The cluster remains available throughout the rolling upgrade.
    TableClient survivor = ClientFor((s + 1) % 3);
    survivor.Insert("users", User(100 + s, "during", "x"));
  }

  // Phase 2: enable via the log.
  auto* so = dynamic_cast<SessionOrderEngine*>(cluster_->server(0).FindEngine("sessionorder"));
  ASSERT_NE(so, nullptr);
  EXPECT_FALSE(so->enabled());
  so->EnableViaLog();
  for (int s = 0; s < 3; ++s) {
    cluster_->server(s).top()->Sync().Get();
    auto* engine = cluster_->server(s).FindEngine("sessionorder");
    ASSERT_NE(engine, nullptr);
    EXPECT_TRUE(engine->enabled()) << "server " << s;
  }
  // Traffic flows through the new engine; replicas stay identical.
  TableClient after = ClientFor(1);
  after.Insert("users", User(200, "after", "x"));
  for (int s = 0; s < 3; ++s) {
    cluster_->server(s).top()->Sync().Get();
  }
  EXPECT_EQ(cluster_->server(0).store()->Checksum(), cluster_->server(1).store()->Checksum());
  EXPECT_EQ(cluster_->server(1).store()->Checksum(), cluster_->server(2).store()->Checksum());
  std::filesystem::remove_all(dir);
}

// Passive (non-voting follower) stacks (§4.3, Figure 6): a follower with a
// stripped-down stack plays the update stream but, lacking the
// ViewTrackingEngine, is never counted in the durable view that gates
// trimming.
TEST(PassiveFollowerTest, FollowerPlaysStreamWithoutBlockingTrim) {
  Cluster::Options options;
  options.num_servers = 2;  // two voting servers
  options.log_kind = Cluster::LogKind::kInMemory;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    BuildStack(server, DelosTableStackConfig(nullptr));
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  // A passive follower on the same log with the stripped stack.
  auto follower_store = LocalStore::Open({});
  BaseEngineOptions follower_base_options;
  follower_base_options.server_id = "follower";
  auto follower = std::make_unique<ClusterServer>(
      "follower",
      std::shared_ptr<ISharedLog>(cluster.server(0).log(), [](ISharedLog*) {}),
      std::move(follower_store), follower_base_options);
  BuildStack(*follower, PassiveFollowerStackConfig());
  TableApplicator follower_app;
  follower->top()->RegisterUpcall(&follower_app);
  follower->Start();

  TableClient writer(cluster.server(0).top());
  writer.CreateTable(UsersSchema());
  for (int i = 0; i < 8; ++i) {
    writer.Insert("users", User(i, "u", "c"));
  }
  // Follower streams the same totally ordered updates.
  follower->top()->Sync().Get();
  TableClient follower_reader(follower->top());
  EXPECT_EQ(follower_reader.Scan("users", std::nullopt, std::nullopt).size(), 8u);

  // The durable view contains only the two voting servers — the follower
  // can lag or die without ever blocking trimming.
  auto* vt = dynamic_cast<ViewTrackingEngine*>(cluster.server(0).FindEngine("viewtracking"));
  ASSERT_NE(vt, nullptr);
  cluster.server(0).top()->Sync().Get();
  const auto view = vt->View();
  EXPECT_EQ(view.count("follower"), 0u);
  follower->Stop();
}

// Determinism property: random multi-server traffic (including failed ops)
// leaves every replica with an identical store checksum.
TEST(DeterminismProperty, RandomTrafficLeavesIdenticalReplicas) {
  Cluster::Options options;
  options.num_servers = 3;
  options.log_kind = Cluster::LogKind::kInMemory;
  std::map<std::string, std::unique_ptr<zelos::ZelosApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config;  // ViewTracking + BrainDoctor
    config.session_order = true;
    config.batching = true;
    config.batch_max_entries = 4;
    config.batch_max_delay_micros = 200;
    BuildStack(server, config);
    auto app = std::make_unique<zelos::ZelosApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  std::vector<std::thread> threads;
  for (int s = 0; s < 3; ++s) {
    threads.emplace_back([&, s] {
      zelos::ZelosClient client(cluster.server(s).top(),
                                applicators["server" + std::to_string(s)].get());
      Rng rng(1000 + s);
      const zelos::SessionId session = client.CreateSession();
      client.Create(session, "/s" + std::to_string(s), "");
      for (int i = 0; i < 40; ++i) {
        const std::string path =
            "/s" + std::to_string(rng.Uniform(0, 2)) + "/n" + std::to_string(rng.Uniform(0, 9));
        try {
          switch (rng.Uniform(0, 3)) {
            case 0:
              client.Create(session, path, rng.String(8));
              break;
            case 1:
              client.SetData(path, rng.String(8));
              break;
            case 2:
              client.Delete(path);
              break;
            default:
              client.GetData(path);
              break;
          }
        } catch (const DeterministicError&) {
          // Expected: NoNode / NodeExists / NotEmpty races are part of the
          // workload.
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int s = 0; s < 3; ++s) {
    cluster.server(s).top()->Sync().Get();
  }
  EXPECT_EQ(cluster.server(0).store()->Checksum(), cluster.server(1).store()->Checksum());
  EXPECT_EQ(cluster.server(1).store()->Checksum(), cluster.server(2).store()->Checksum());
  EXPECT_GT(cluster.server(0).store()->KeyCount(), 3u);
}

}  // namespace
}  // namespace delos

namespace delos {
namespace {

// Virtual Consensus: the shared log is reconfigured (active loglet sealed, a
// fresh loglet chained at its tail) twice while client traffic flows. No op
// is lost, positions stay contiguous across the seams, and replicas agree —
// the substrate-level story the paper's BaseEngine sits on (§4, [9]).
TEST(VirtualLogClusterTest, ReconfigurationUnderTraffic) {
  Cluster::Options options;
  options.num_servers = 3;
  options.log_kind = Cluster::LogKind::kVirtual;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    BuildStack(server, DelosTableStackConfig(nullptr));
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  TableClient setup(cluster.server(0).top());
  setup.CreateTable(UsersSchema());

  std::atomic<bool> stop{false};
  std::atomic<int> written{0};
  std::vector<std::thread> writers;
  for (int s = 0; s < 3; ++s) {
    writers.emplace_back([&, s] {
      TableClient client(cluster.server(s).top());
      for (int i = 0; i < 40 && !stop.load(); ++i) {
        client.Insert("users", User(s * 1000 + i, "u", "c"));
        written.fetch_add(1);
      }
    });
  }
  // Two live reconfigurations while the writers run.
  while (written.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.ReconfigureLog();
  while (written.load() < 70) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.ReconfigureLog();
  for (auto& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(cluster.LogChainLength(), 3u);

  // Nothing lost; everyone agrees.
  TableClient reader(cluster.server(1).top());
  EXPECT_EQ(reader.Scan("users", std::nullopt, std::nullopt).size(), 120u);
  for (int s = 0; s < 3; ++s) {
    cluster.server(s).top()->Sync().Get();
  }
  EXPECT_EQ(cluster.server(0).store()->Checksum(), cluster.server(1).store()->Checksum());
  EXPECT_EQ(cluster.server(1).store()->Checksum(), cluster.server(2).store()->Checksum());
}

}  // namespace
}  // namespace delos
