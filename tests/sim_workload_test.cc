// The workload-attribution determinism contract: attribution is fed from the
// apply path, apply is log-driven, and the sample decision is a pure function
// of the apply ordinal — so two replays of one fault schedule must produce
// byte-identical per-server workload summaries, and the tables must name the
// planted hot key and top client even while crashes and append faults churn
// the schedule.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "src/sim/sim_cluster.h"

namespace delos {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::RunReport;
using sim::SimCluster;
using sim::SimOptions;
using sim::StackShape;

std::string ScratchDir(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / ("delos_sim_workload_" + leaf)).string();
}

// One znode and one logical client concentrate the whole verify workload, so
// the planted offenders are unambiguous: every sampled record lands on
// "zelos/v0" and client "0" owns 100% of the client table.
SimOptions SingleOffenderOptions(const std::string& leaf) {
  SimOptions options;
  options.shape = StackShape::kZelos;
  options.workload = sim::WorkloadKind::kVerifyZelos;
  options.verify_keys = 1;
  options.verify_clients = 1;
  options.num_ops = 48;
  options.scratch_dir = ScratchDir(leaf);
  // Freeze background checkpoint flushes: their wall-clock cadence decides
  // how deep a crashed server's recovery replay is, which would make the
  // crashed server's applied-record counts race the schedule. With no
  // checkpoint ever written, a crashed server cold-starts from the log and
  // re-applies everything — so its tables must come out identical to the
  // servers that never crashed, and the whole summary is replay-stable.
  options.flush_interval_micros = 3'600'000'000;
  return options;
}

TEST(SimWorkloadTest, SummaryIsByteIdenticalAcrossReplaysUnderFaults) {
  SimOptions options = SingleOffenderOptions("byte_identity");

  FaultPlan plan;
  plan.seed = 2026;
  plan.events = {
      {FaultKind::kAppendTimeout, 0, 2, 0},
      {FaultKind::kCrash, 1, 9, 0},
      {FaultKind::kAppendTimeout, 2, 5, 0},
      {FaultKind::kCrash, 2, 21, 1 + 6},
  };

  SimCluster cluster_a(options);
  const RunReport first = cluster_a.Run(plan);
  SimCluster cluster_b(options);
  const RunReport second = cluster_b.Run(plan);

  ASSERT_TRUE(first.ok()) << first.Summary();
  ASSERT_TRUE(second.ok()) << second.Summary();
  ASSERT_FALSE(first.workload_summary.empty());
  EXPECT_EQ(first.workload_summary, second.workload_summary);

  // The planted hot key appears by name in the top-keys table...
  EXPECT_NE(first.workload_summary.find("zelos/v0"), std::string::npos)
      << first.workload_summary;
  // ...and the planted client owns the whole client table on every server
  // (the row renders as "... 100.0%  0").
  EXPECT_NE(first.workload_summary.find("100.0%  0"), std::string::npos)
      << first.workload_summary;
  // All three servers reported (the summary concatenates per-server blocks).
  for (const char* header : {"== server s0 workload ==", "== server s1 workload ==",
                             "== server s2 workload =="}) {
    EXPECT_NE(first.workload_summary.find(header), std::string::npos) << header;
  }
}

// Seeded sweep: randomized crash + append-fault schedules, each replayed
// twice. The attribution plane must never perturb the verdict, and the
// summary must stay byte-identical per seed.
TEST(SimWorkloadTest, SeededFaultSweepKeepsSummariesReplayIdentical) {
  for (uint64_t seed : {3u, 404u, 9177u}) {
    SimOptions options = SingleOffenderOptions("sweep");
    options.num_ops = 32;
    const RunReport first = SimCluster::RunSeed(seed, options);
    const RunReport second = SimCluster::RunSeed(seed, options);
    ASSERT_TRUE(first.ok()) << "seed " << seed << "\n" << first.Summary();
    EXPECT_EQ(first.plan_bytes, second.plan_bytes) << "seed " << seed;
    ASSERT_FALSE(first.workload_summary.empty()) << "seed " << seed;
    EXPECT_EQ(first.workload_summary, second.workload_summary) << "seed " << seed;
    EXPECT_NE(first.workload_summary.find("zelos/v0"), std::string::npos)
        << "seed " << seed << "\n" << first.workload_summary;
  }
}

}  // namespace
}  // namespace delos
