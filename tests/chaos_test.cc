// Fault-injection tests: the quorum log under lossy networks and acceptor
// crashes, and end-to-end trim coordination with every trim constraint
// engaged at once (ViewTracking + LogBackup + snapshot manager + app).
#include <gtest/gtest.h>

#include <thread>

#include "src/apps/delostable/table_db.h"
#include "src/backup/restore.h"
#include "src/core/cluster.h"
#include "src/engines/stacks.h"

namespace delos {
namespace {

using table::Row;
using table::TableApplicator;
using table::TableClient;
using table::TableSchema;
using table::Value;
using table::ValueType;

TableSchema KvSchema() {
  TableSchema schema;
  schema.name = "kv";
  schema.columns = {{"k", ValueType::kInt64}, {"v", ValueType::kString}};
  schema.primary_key = "k";
  return schema;
}

// Parameterized over packet-drop probability: the quorum log's retries and
// the engine stack must mask the loss entirely.
class LossyNetworkSweep : public testing::TestWithParam<double> {};

TEST_P(LossyNetworkSweep, ClusterStaysCorrectUnderPacketLoss) {
  Cluster::Options options;
  options.num_servers = 3;
  options.log_kind = Cluster::LogKind::kQuorum;
  options.net_config.default_one_way_latency_micros = 20;
  options.net_config.drop_probability = GetParam();
  options.net_config.call_timeout_micros = 30'000;  // fast retries
  options.loglet_config.num_acceptors = 3;
  options.loglet_config.read_attempts = 16;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(nullptr);
    // Every server heartbeats its durable position into the view; without
    // this, servers that never propose are invisible to ViewTracking, the
    // log gets trimmed to the writer's durable position alone, and lagging
    // followers are stranded below the trim (they would need a restore).
    config.view_heartbeat_micros = 50'000;
    BuildStack(server, config);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });

  TableClient client(cluster.server(0).top());
  for (int attempt = 0;; ++attempt) {
    try {
      client.CreateTable(KvSchema());
      break;
    } catch (const LogUnavailableError&) {
      ASSERT_LT(attempt, 50);
    } catch (const table::DuplicateTableError&) {
      break;  // A lost reply, but the command committed.
    }
  }
  // Individual proposes may time out when the drop hits the append path;
  // clients retry, and exactly-once is NOT expected at this layer (the
  // paper's answer is the SessionOrderEngine) — so use upserts, which are
  // idempotent.
  int committed = 0;
  for (int i = 0; i < 30; ++i) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      try {
        client.Upsert("kv", {{"k", Value{int64_t{i}}}, {"v", Value{std::string("v")}}});
        ++committed;
        break;
      } catch (const LogUnavailableError&) {
        // Dropped somewhere; retry.
      }
    }
  }
  EXPECT_EQ(committed, 30);

  // All replicas converge despite the lossy fabric.
  for (int attempt = 0; attempt < 50; ++attempt) {
    try {
      TableClient reader(cluster.server(1).top());
      if (reader.Scan("kv", std::nullopt, std::nullopt).size() == 30) {
        break;
      }
    } catch (const LogUnavailableError&) {
    }
  }
  TableClient reader(cluster.server(2).top());
  std::vector<Row> rows;
  for (int attempt = 0; attempt < 50 && rows.size() != 30; ++attempt) {
    try {
      rows = reader.Scan("kv", std::nullopt, std::nullopt);
    } catch (const LogUnavailableError&) {
    }
  }
  EXPECT_EQ(rows.size(), 30u);
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossyNetworkSweep, testing::Values(0.0, 0.02, 0.08),
                         [](const testing::TestParamInfo<double>& info) {
                           return "drop" + std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(AcceptorChurnTest, CrashAndRecoveryDuringTraffic) {
  Cluster::Options options;
  options.num_servers = 2;
  options.log_kind = Cluster::LogKind::kQuorum;
  options.net_config.default_one_way_latency_micros = 20;
  options.net_config.call_timeout_micros = 100'000;
  options.loglet_config.num_acceptors = 3;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(nullptr);
    config.view_heartbeat_micros = 50'000;  // keep the idle reader in the view
    BuildStack(server, config);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });
  TableClient client(cluster.server(0).top());
  client.CreateTable(KvSchema());

  // One acceptor down: majority still commits.
  cluster.ensemble()->SetAcceptorUp(0, false);
  for (int i = 0; i < 10; ++i) {
    client.Upsert("kv", {{"k", Value{int64_t{i}}}, {"v", Value{std::string("during")}}});
  }
  cluster.ensemble()->SetAcceptorUp(0, true);
  for (int i = 10; i < 20; ++i) {
    client.Upsert("kv", {{"k", Value{int64_t{i}}}, {"v", Value{std::string("after")}}});
  }
  TableClient reader(cluster.server(1).top());
  EXPECT_EQ(reader.Scan("kv", std::nullopt, std::nullopt).size(), 20u);
  cluster.server(0).top()->Sync().Get();
  EXPECT_EQ(cluster.server(0).store()->Checksum(), cluster.server(1).store()->Checksum());
}

// End-to-end trim: every party with an opinion participates — ViewTracking
// (all replicas durable), LogBackup (segments uploaded), the snapshot
// manager (snapshot covers prefix) — and the log only shrinks to the
// minimum of them all.
TEST(TrimPipelineTest, AllConstraintsGateTrimming) {
  const std::string ckpt_dir = testing::TempDir() + "/trim_pipeline";
  std::filesystem::remove_all(ckpt_dir);
  InMemoryBackupStore backup;
  std::map<std::string, std::unique_ptr<TableApplicator>> applicators;
  Cluster::Options options;
  options.num_servers = 2;
  options.checkpoint_dir = ckpt_dir;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = DelosTableStackConfig(&backup);
    config.backup_segment_size = 8;
    BuildStack(server, config);
    auto app = std::make_unique<TableApplicator>();
    server.top()->RegisterUpcall(app.get());
    applicators[server.id()] = std::move(app);
  });
  TableClient client(cluster.server(0).top());
  client.CreateTable(KvSchema());
  for (int i = 0; i < 40; ++i) {
    client.Upsert("kv", {{"k", Value{int64_t{i}}}, {"v", Value{std::string(64, 'v')}}});
  }
  // Both servers play and persist.
  cluster.server(1).top()->Sync().Get();
  cluster.server(0).base()->FlushNow();
  cluster.server(1).base()->FlushNow();
  // Publish both durable positions into the view.
  client.Upsert("kv", {{"k", Value{int64_t{0}}}, {"v", Value{std::string("stampA")}}});
  TableClient client_b(cluster.server(1).top());
  client_b.Upsert("kv", {{"k", Value{int64_t{1}}}, {"v", Value{std::string("stampB")}}});
  cluster.server(0).top()->Sync().Get();

  // Wait for log backup to cover a prefix.
  auto* lb = dynamic_cast<LogBackupEngine*>(cluster.server(0).FindEngine("logbackup"));
  ASSERT_NE(lb, nullptr);
  const int64_t deadline = RealClock::Instance()->NowMicros() + 5'000'000;
  while (lb->BackedUpPrefix() < 16 && RealClock::Instance()->NowMicros() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(lb->BackedUpPrefix(), 16u);

  // Snapshot manager releases the app-side constraint.
  SnapshotBackupManager manager(&backup, ckpt_dir + "/server0.ckpt",
                                cluster.server(0).top());
  const LogPos snapshot_pos = manager.BackupNow(cluster.server(0).base());
  EXPECT_GT(snapshot_pos, 0u);

  cluster.server(0).base()->FlushNow();
  cluster.server(0).base()->TrimNow();
  const LogPos trimmed = cluster.server(0).log()->trim_prefix();
  // Trimmed a real prefix...
  EXPECT_GT(trimmed, 0u);
  // ...but never beyond any constraint.
  auto* vt = dynamic_cast<ViewTrackingEngine*>(cluster.server(0).FindEngine("viewtracking"));
  ASSERT_NE(vt, nullptr);
  EXPECT_LE(trimmed, vt->SafeTrimPosition());
  EXPECT_LE(trimmed, lb->BackedUpPrefix());
  EXPECT_LE(trimmed, snapshot_pos);
  EXPECT_LE(trimmed, cluster.server(0).base()->durable_position());

  // The cluster keeps operating on the trimmed log.
  client.Upsert("kv", {{"k", Value{int64_t{100}}}, {"v", Value{std::string("post-trim")}}});
  EXPECT_TRUE(client.Get("kv", Value{int64_t{100}}).has_value());
  std::filesystem::remove_all(ckpt_dir);
}

}  // namespace
}  // namespace delos
