// Point-in-Time restore (§4.2): reconstruct any intermediate state of a
// Delos database from a snapshot backup plus the backed-up log played
// forward to a chosen position.
//
// Restore builds a fresh server: an InMemoryLog refilled (at the original
// positions) from the LogBackupEngine's segment objects, a LocalStore
// (optionally seeded from a snapshot object), and whatever stack/application
// the caller's builder attaches — then syncs to the target position.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "src/backup/backup_store.h"
#include "src/core/cluster.h"

namespace delos {

// Uploads LocalStore snapshots to the backup store and releases the
// corresponding log prefix for trimming (the "snapshot backup manager
// attached to the LocalStore" of §4.2).
class SnapshotBackupManager {
 public:
  SnapshotBackupManager(BackupStore* backup_store, std::string checkpoint_path,
                        IEngine* stack_top)
      : backup_store_(backup_store),
        checkpoint_path_(std::move(checkpoint_path)),
        stack_top_(stack_top) {}

  // Flushes the store through `base`, uploads the checkpoint file as
  // "snapshot/<durable position>", and relays the trim allowance to the top
  // of the stack. Returns the snapshot's position.
  LogPos BackupNow(BaseEngine* base);

  static std::string SnapshotObjectName(LogPos pos);
  static constexpr char kSnapshotPrefix[] = "snapshot/";

 private:
  BackupStore* backup_store_;
  std::string checkpoint_path_;
  IEngine* stack_top_;
};

struct RestoreOptions {
  // Restore state as of this log position (inclusive); kNoTrimConstraint
  // (default) restores to the latest backed-up entry.
  LogPos target_pos = kNoTrimConstraint;
  // When true, start from the newest snapshot object at or below target_pos
  // and replay only the suffix; otherwise replay the whole log backup.
  bool use_snapshot = false;
  // Scratch path for materializing the snapshot checkpoint.
  std::string scratch_checkpoint_path = "/tmp/delos_restore.ckpt";
};

// The restored server: inspect `server->store()` or attach a client to
// `server->top()`.
struct RestoreResult {
  std::unique_ptr<ClusterServer> server;
  LogPos restored_to = 0;
};

// `builder` attaches the same middle engines / application the original
// deployment ran (minus coordination-only engines if desired).
RestoreResult RestoreFromBackup(const BackupStore& backup, const RestoreOptions& options,
                                const Cluster::StackBuilder& builder);

}  // namespace delos
