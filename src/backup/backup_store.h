// BackupStore: the external blob store that log segments and LocalStore
// snapshots are uploaded to (the paper's backup service for Point-in-Time
// restore, §4.2). Two implementations: filesystem-backed for durability and
// in-memory for tests.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace delos {

class BackupStore {
 public:
  virtual ~BackupStore() = default;

  virtual void PutObject(const std::string& name, const std::string& bytes) = 0;
  virtual std::optional<std::string> GetObject(const std::string& name) const = 0;
  virtual std::vector<std::string> ListObjects(const std::string& prefix) const = 0;
};

class InMemoryBackupStore : public BackupStore {
 public:
  void PutObject(const std::string& name, const std::string& bytes) override;
  std::optional<std::string> GetObject(const std::string& name) const override;
  std::vector<std::string> ListObjects(const std::string& prefix) const override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> objects_;
};

class FileBackupStore : public BackupStore {
 public:
  explicit FileBackupStore(std::string directory);

  void PutObject(const std::string& name, const std::string& bytes) override;
  std::optional<std::string> GetObject(const std::string& name) const override;
  std::vector<std::string> ListObjects(const std::string& prefix) const override;

 private:
  // Object names may contain '/'; they are escaped into flat file names.
  static std::string EscapeName(const std::string& name);
  static std::string UnescapeName(const std::string& file);

  std::string directory_;
};

}  // namespace delos
