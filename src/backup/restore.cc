#include "src/backup/restore.h"

#include <cstdio>
#include <fstream>
#include <map>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/engines/log_backup_engine.h"
#include "src/sharedlog/inmemory_log.h"

namespace delos {

std::string SnapshotBackupManager::SnapshotObjectName(LogPos pos) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%s%020llu", kSnapshotPrefix,
                static_cast<unsigned long long>(pos));
  return buffer;
}

LogPos SnapshotBackupManager::BackupNow(BaseEngine* base) {
  base->FlushNow();
  const LogPos pos = base->durable_position();
  std::ifstream in(checkpoint_path_, std::ios::binary);
  if (!in) {
    throw StoreError("snapshot backup: cannot read checkpoint " + checkpoint_path_);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  backup_store_->PutObject(SnapshotObjectName(pos), bytes);
  // The log below this position is recoverable from the snapshot.
  stack_top_->SetTrimPrefix(pos);
  return pos;
}

RestoreResult RestoreFromBackup(const BackupStore& backup, const RestoreOptions& options,
                                const Cluster::StackBuilder& builder) {
  // Collect backed-up entries up to the target position.
  std::map<LogPos, std::string> entries;
  for (const std::string& object : backup.ListObjects(LogBackupEngine::kSegmentPrefix)) {
    auto bytes = backup.GetObject(object);
    if (!bytes.has_value()) {
      continue;
    }
    Deserializer de(*bytes);
    const uint64_t count = de.ReadVarint();
    for (uint64_t i = 0; i < count; ++i) {
      const LogPos pos = de.ReadVarint();
      std::string payload = de.ReadString();
      if (pos <= options.target_pos) {
        entries.emplace(pos, std::move(payload));
      }
    }
  }

  // Optionally seed the LocalStore from the newest eligible snapshot.
  LocalStore::Options store_options;
  if (options.use_snapshot) {
    std::string best;
    LogPos best_pos = 0;
    for (const std::string& object :
         backup.ListObjects(SnapshotBackupManager::kSnapshotPrefix)) {
      const LogPos pos = std::stoull(
          object.substr(std::string(SnapshotBackupManager::kSnapshotPrefix).size()));
      if (pos <= options.target_pos && pos >= best_pos) {
        best = object;
        best_pos = pos;
      }
    }
    if (!best.empty()) {
      auto bytes = backup.GetObject(best);
      std::ofstream out(options.scratch_checkpoint_path, std::ios::binary | std::ios::trunc);
      out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
      if (!out) {
        throw StoreError("restore: cannot materialize snapshot checkpoint");
      }
      out.close();
      store_options.checkpoint_path = options.scratch_checkpoint_path;
      LOG_INFO << "restore: starting from snapshot at position " << best_pos;
    }
  }

  // Refill an in-memory log with the contiguous backed-up run at the
  // original positions.
  LogPos start_pos = entries.empty() ? 1 : entries.begin()->first;
  auto log = std::make_shared<InMemoryLog>(start_pos);
  LogPos last_pos = start_pos - 1;
  for (const auto& [pos, payload] : entries) {
    if (pos != last_pos + 1) {
      LOG_WARNING << "restore: gap in log backup at position " << pos << "; stopping replay";
      break;
    }
    log->Append(payload);
    last_pos = pos;
  }

  auto store = LocalStore::Open(store_options);
  RestoreResult result;
  result.server = std::make_unique<ClusterServer>("restore", std::move(log), std::move(store),
                                                  BaseEngineOptions{});
  if (builder != nullptr) {
    builder(*result.server);
  }
  result.server->Start();
  if (last_pos >= start_pos) {
    result.server->top()->Sync().Get();
  }
  result.restored_to = result.server->base()->applied_position();
  return result;
}

}  // namespace delos
