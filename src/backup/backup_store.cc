#include "src/backup/backup_store.h"

#include <filesystem>
#include <algorithm>
#include <fstream>

#include "src/common/errors.h"

namespace delos {

void InMemoryBackupStore::PutObject(const std::string& name, const std::string& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  objects_[name] = bytes;
}

std::optional<std::string> InMemoryBackupStore::GetObject(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::string> InMemoryBackupStore::ListObjects(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) {
      break;
    }
    names.push_back(it->first);
  }
  return names;
}

FileBackupStore::FileBackupStore(std::string directory) : directory_(std::move(directory)) {
  std::filesystem::create_directories(directory_);
}

std::string FileBackupStore::EscapeName(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (c == '/') {
      out += "%2F";
    } else if (c == '%') {
      out += "%25";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FileBackupStore::UnescapeName(const std::string& file) {
  std::string out;
  for (size_t i = 0; i < file.size(); ++i) {
    if (file[i] == '%' && i + 2 < file.size()) {
      if (file.compare(i, 3, "%2F") == 0) {
        out.push_back('/');
        i += 2;
        continue;
      }
      if (file.compare(i, 3, "%25") == 0) {
        out.push_back('%');
        i += 2;
        continue;
      }
    }
    out.push_back(file[i]);
  }
  return out;
}

void FileBackupStore::PutObject(const std::string& name, const std::string& bytes) {
  const std::string path = directory_ + "/" + EscapeName(name);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw StoreError("backup store: cannot open " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      throw StoreError("backup store: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw StoreError("backup store: rename failed: " + ec.message());
  }
}

std::optional<std::string> FileBackupStore::GetObject(const std::string& name) const {
  const std::string path = directory_ + "/" + EscapeName(name);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

std::vector<std::string> FileBackupStore::ListObjects(const std::string& prefix) const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& dir_entry : std::filesystem::directory_iterator(directory_, ec)) {
    if (!dir_entry.is_regular_file()) {
      continue;
    }
    const std::string name = UnescapeName(dir_entry.path().filename().string());
    if (name.size() >= 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      continue;
    }
    if (name.compare(0, prefix.size(), prefix) == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace delos
