// FaultPlan: the deterministic schedule of faults a simulation run injects.
//
// A plan is a list of events, each keyed to a counter rather than a clock or
// a coin flip:
//  * append faults (timeout / drop / duplicate / reorder) trigger on the
//    n-th append issued through the victim server's log, counted
//    cumulatively across crashes of that server;
//  * crashes trigger when the victim's replay reaches an absolute log
//    position — the FaultyLog wedges there and the SimCluster driver
//    performs the kill (losing unflushed LocalStore state) and the restart
//    (checkpoint + log replay);
//  * a torn-flush flag on a crash additionally truncates the victim's
//    checkpoint file, exercising tolerant checkpoint recovery.
//
// FaultPlan::Random(seed, options) is a pure function of its arguments and
// Serialize() is byte-stable, so a failing schedule is fully identified by
// its seed: re-running the seed regenerates the identical plan (sim_repro_test
// holds this down). kSabotage exists for exactly that test — it deliberately
// diverges one replica after recovery so the checksum diff must fire, proving
// a failing seed reports the same failure on every run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace delos::sim {

enum class FaultKind : uint8_t {
  kAppendTimeout = 0,   // entry commits, ack lost (ambiguous timeout)
  kDroppedAppend = 1,   // entry lost before the log (partitioned node)
  kDuplicateAppend = 2, // entry committed twice
  kReorderAppend = 3,   // entry swapped with the following append
  kCrash = 4,           // kill mid-replay at an absolute log position
  kSabotage = 5,        // test-only: corrupt one key after recovery
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kAppendTimeout;
  uint32_t server = 0;
  // Append faults: 1-based cumulative append index on the victim's log.
  // kCrash: absolute log position at which replay wedges.
  // kSabotage: unused.
  uint64_t trigger = 0;
  // kCrash: 0 = clean crash; otherwise 1 + the number of checkpoint bytes
  // the torn flush leaves behind.
  uint64_t param = 0;

  bool operator==(const FaultEvent&) const = default;
};

struct FaultPlanOptions {
  int num_servers = 3;
  // Number of application ops the workload will issue (bounds the range of
  // meaningful trigger counters).
  int num_ops = 40;
  int max_crashes = 2;
  int max_append_faults = 6;
  bool allow_torn_flush = true;
};

struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultEvent> events;

  // Deterministic: the same (seed, options) always yields the same plan.
  static FaultPlan Random(uint64_t seed, const FaultPlanOptions& options);

  // Byte-stable serialization (the repro contract) and its inverse.
  std::string Serialize() const;
  static FaultPlan Parse(std::string_view bytes);

  // Human-readable, one event per line; printed when a schedule fails.
  std::string Describe() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace delos::sim
