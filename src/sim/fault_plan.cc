#include "src/sim/fault_plan.h"

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/common/serde.h"

namespace delos::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAppendTimeout:
      return "append-timeout";
    case FaultKind::kDroppedAppend:
      return "dropped-append";
    case FaultKind::kDuplicateAppend:
      return "duplicate-append";
    case FaultKind::kReorderAppend:
      return "reorder-append";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kSabotage:
      return "sabotage";
  }
  return "unknown";
}

FaultPlan FaultPlan::Random(uint64_t seed, const FaultPlanOptions& options) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);

  const int num_servers = std::max(1, options.num_servers);
  const int num_ops = std::max(4, options.num_ops);

  // Crashes: absolute log positions, strictly increasing per server so a
  // later crash always lies ahead of the cursor the previous restart
  // recovered to. Positions stay within [2, num_ops]: the workload retries
  // every op until it commits, so the log is guaranteed to grow past
  // num_ops and every crash position is guaranteed to be replayed through.
  const int num_crashes = static_cast<int>(rng.Uniform(1, std::max(1, options.max_crashes)));
  std::vector<std::set<uint64_t>> crash_positions(num_servers);
  for (int i = 0; i < num_crashes; ++i) {
    const auto server = static_cast<uint32_t>(rng.Uniform(0, num_servers - 1));
    const auto pos = static_cast<uint64_t>(rng.Uniform(2, num_ops));
    crash_positions[server].insert(pos);
  }
  for (uint32_t server = 0; server < static_cast<uint32_t>(num_servers); ++server) {
    for (uint64_t pos : crash_positions[server]) {  // std::set: ascending
      uint64_t param = 0;
      if (options.allow_torn_flush && rng.Bernoulli(0.5)) {
        // 1 + bytes kept: enough to keep the magic (forcing a mid-decode
        // failure) but rarely the whole file.
        param = 1 + static_cast<uint64_t>(rng.Uniform(0, 64));
      }
      plan.events.push_back(FaultEvent{FaultKind::kCrash, server, pos, param});
    }
  }

  // Append faults: cumulative append indices per server. The workload routes
  // op i to server i % num_servers, so each server sees roughly
  // num_ops / num_servers appends plus retries; indices are drawn from that
  // range (an index never reached simply does not fire — harmless).
  const int appends_per_server = std::max(2, num_ops / num_servers);
  const int num_append_faults =
      static_cast<int>(rng.Uniform(0, std::max(0, options.max_append_faults)));
  std::vector<std::set<uint64_t>> used_indices(num_servers);
  for (int i = 0; i < num_append_faults; ++i) {
    const auto server = static_cast<uint32_t>(rng.Uniform(0, num_servers - 1));
    const auto index = static_cast<uint64_t>(rng.Uniform(1, appends_per_server));
    if (!used_indices[server].insert(index).second) {
      continue;  // At most one fault per (server, append index).
    }
    const auto kind = static_cast<FaultKind>(rng.Uniform(0, 3));
    plan.events.push_back(FaultEvent{kind, server, index, 0});
  }

  return plan;
}

std::string FaultPlan::Serialize() const {
  Serializer ser;
  ser.WriteFixed64(seed);
  ser.WriteVarint(events.size());
  for (const FaultEvent& event : events) {
    ser.WriteVarint(static_cast<uint64_t>(event.kind));
    ser.WriteVarint(event.server);
    ser.WriteVarint(event.trigger);
    ser.WriteVarint(event.param);
  }
  return ser.Release();
}

FaultPlan FaultPlan::Parse(std::string_view bytes) {
  Deserializer de(bytes);
  FaultPlan plan;
  plan.seed = de.ReadFixed64();
  const uint64_t count = de.ReadVarint();
  plan.events.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FaultEvent event;
    event.kind = static_cast<FaultKind>(de.ReadVarint());
    event.server = static_cast<uint32_t>(de.ReadVarint());
    event.trigger = de.ReadVarint();
    event.param = de.ReadVarint();
    plan.events.push_back(event);
  }
  return plan;
}

std::string FaultPlan::Describe() const {
  std::string out = "FaultPlan seed=" + std::to_string(seed) + " events=" +
                    std::to_string(events.size()) + "\n";
  for (const FaultEvent& event : events) {
    out += "  " + std::string(FaultKindName(event.kind)) + " server=" +
           std::to_string(event.server);
    if (event.kind == FaultKind::kCrash) {
      out += " at-log-pos=" + std::to_string(event.trigger);
      if (event.param != 0) {
        out += " torn-flush-keep-bytes=" + std::to_string(event.param - 1);
      }
    } else if (event.kind != FaultKind::kSabotage) {
      out += " at-append-index=" + std::to_string(event.trigger);
    }
    out += "\n";
  }
  return out;
}

}  // namespace delos::sim
