#include "src/sim/sim_cluster.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <thread>

#include "src/apps/delosq/delosq.h"
#include "src/apps/delostable/table_db.h"
#include "src/apps/locks/lock_service.h"
#include "src/apps/zelos/zelos.h"
#include "src/backup/backup_store.h"
#include "src/core/cluster.h"
#include "src/engines/compression_engine.h"
#include "src/engines/stacks.h"
#include "src/sharedlog/chaos_log.h"
#include "src/sharedlog/inmemory_log.h"
#include "src/verify/checker.h"
#include "src/verify/recording_client.h"

namespace delos::sim {

namespace {

// An op is retried through injected append faults and crash/restart cycles;
// a plan carries at most a handful of faults per server, so this bound is
// only ever hit when recovery is genuinely broken.
constexpr int kMaxAttemptsPerOp = 16;

}  // namespace

const char* StackShapeName(StackShape shape) {
  switch (shape) {
    case StackShape::kDelosTable:
      return "delostable";
    case StackShape::kZelos:
      return "zelos";
    case StackShape::kFullNine:
      return "full-nine";
  }
  return "unknown";
}

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kLegacy:
      return "legacy";
    case WorkloadKind::kVerifyTable:
      return "verify-table";
    case WorkloadKind::kVerifyZelos:
      return "verify-zelos";
    case WorkloadKind::kVerifyQueue:
      return "verify-queue";
    case WorkloadKind::kVerifyLock:
      return "verify-lock";
  }
  return "unknown";
}

std::string RunReport::Summary() const {
  std::string out = "sim seed=" + std::to_string(seed) +
                    " final-tail=" + std::to_string(final_tail) +
                    " crashes=" + std::to_string(crashes_fired) +
                    " append-faults=" + std::to_string(append_faults_fired) +
                    " linearizable=" +
                    (verify_ran ? (linearizable ? "yes" : "no") : "n/a") +
                    (failures.empty() ? " OK" : " FAILED") + "\n";
  if (!failures.empty()) {
    out += plan_text;
    for (const std::string& failure : failures) {
      out += "  failure: " + failure + "\n";
    }
  }
  return out;
}

// One server's slot in the cluster: identity and fault state that survive
// crashes, plus the live incarnation (log wrapper, store+engines, app).
struct SimCluster::Rig {
  struct PendingCrash {
    uint64_t pos = 0;
    uint64_t param = 0;  // 0 = clean; else 1 + checkpoint bytes kept
  };

  uint32_t index = 0;
  std::string id;
  std::string checkpoint_path;
  // Survives crashes: append faults key off the cumulative append index.
  std::shared_ptr<std::atomic<uint64_t>> append_counter;
  FaultyLog::Faults append_faults;  // crash_at_pos filled per incarnation
  std::deque<PendingCrash> pending_crashes;
  bool sabotage = false;
  uint64_t faults_fired_accum = 0;

  // Survives crashes like the append counter: a restarted incarnation keeps
  // writing into the same ring, so a post-mortem dump spans the crash.
  std::shared_ptr<FlightRecorder> recorder;

  // Live incarnation.
  std::shared_ptr<FaultyLog> log;
  std::unique_ptr<IApplicator> app;
  zelos::ZelosApplicator* zelos_app = nullptr;
  locks::LockApplicator* lock_app = nullptr;
  // One long-lived client per incarnation (kVerifyLock): the grant callback
  // registration lives exactly as long as the applicator it points into.
  std::unique_ptr<locks::LockClient> lock_client;
  std::unique_ptr<ClusterServer> server;
  bool stopped = false;
};

class SimCluster::Impl {
 public:
  explicit Impl(SimOptions options) : options_(std::move(options)) {
    if (options_.scratch_dir.empty()) {
      options_.scratch_dir = "sim_scratch";
    }
  }

  RunReport Run(const FaultPlan& plan) {
    RunReport report;
    report.seed = plan.seed;
    report.plan_bytes = plan.Serialize();
    report.plan_text = plan.Describe();
    {
      std::lock_guard<std::mutex> lock(fatal_mu_);
      fatal_messages_.clear();
    }

    run_dir_ = options_.scratch_dir + "/run" + std::to_string(run_counter_++);
    std::error_code ec;
    std::filesystem::remove_all(run_dir_, ec);
    std::filesystem::create_directories(run_dir_, ec);

    inner_log_ = std::make_shared<InMemoryLog>();
    // One Tracer per run, shared by every server; its clock (and the
    // recorders') is a SimClock pinned at zero, so a captured trace carries
    // no wall time and renders byte-identically across replays of a seed.
    Tracer::Options tracer_options;
    tracer_options.clock = &trace_clock_;
    tracer_ = std::make_unique<Tracer>(tracer_options);
    current_seed_ = plan.seed;
    history_.reset();
    if (options_.workload != WorkloadKind::kLegacy) {
      // The recorder shares the pinned SimClock, so the rendered history
      // carries logical ticks and zero micros only — byte-identical across
      // replays of a schedule.
      history_ = std::make_unique<verify::HistoryRecorder>(options_.verify_history_capacity,
                                                           &trace_clock_);
    }
    rigs_.clear();
    rigs_.resize(static_cast<size_t>(std::max(1, options_.num_servers)));
    for (size_t i = 0; i < rigs_.size(); ++i) {
      Rig& rig = rigs_[i];
      rig.index = static_cast<uint32_t>(i);
      rig.id = "s" + std::to_string(i);
      rig.checkpoint_path = run_dir_ + "/server" + std::to_string(i) + ".ckpt";
      rig.append_counter = std::make_shared<std::atomic<uint64_t>>(0);
      rig.recorder = std::make_shared<FlightRecorder>(4096, &trace_clock_);
    }
    for (const FaultEvent& event : plan.events) {
      if (event.server >= rigs_.size()) {
        continue;  // tolerate hand-written plans sized for another cluster
      }
      Rig& rig = rigs_[event.server];
      switch (event.kind) {
        case FaultKind::kAppendTimeout:
          rig.append_faults.timeout_appends.insert(event.trigger);
          break;
        case FaultKind::kDroppedAppend:
          rig.append_faults.dropped_appends.insert(event.trigger);
          break;
        case FaultKind::kDuplicateAppend:
          rig.append_faults.duplicated_appends.insert(event.trigger);
          break;
        case FaultKind::kReorderAppend:
          rig.append_faults.reordered_appends.insert(event.trigger);
          break;
        case FaultKind::kCrash:
          rig.pending_crashes.push_back({event.trigger, event.param});
          break;
        case FaultKind::kSabotage:
          rig.sabotage = true;
          break;
      }
    }
    for (Rig& rig : rigs_) {
      std::sort(rig.pending_crashes.begin(), rig.pending_crashes.end(),
                [](const Rig::PendingCrash& a, const Rig::PendingCrash& b) {
                  return a.pos < b.pos;
                });
      BuildRig(rig, inner_log_);
    }

    // Op 0 creates the table / session; the rest are writes.
    const int total_ops = options_.num_ops + 1;
    for (int op = 0; op < total_ops; ++op) {
      if (!ExecuteOp(op, report)) {
        break;
      }
    }
    DrainFatals(report);

    if (report.ok()) {
      // Let trailing batch flushes and reorder-hold releases land; every op
      // already completed, so no new appends originate after this.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      RestartCrashed(report);
      LogPos tail = inner_log_->CheckTail().Get() - 1;
      report.final_tail = tail;
      FinalSync(report, tail);
      DrainFatals(report);
      if (report.ok()) {
        Sabotage();
        // Two beacon rounds AFTER the sabotage: the online detector must
        // convict the same corruption the offline reference diff below
        // catches. Beacons extend the log, so the capture tail moves.
        tail = DriveBeacons(report, tail);
        report.final_tail = tail;
        CaptureAndCompare(report, tail);
      }
    }
    if (history_ != nullptr) {
      CheckHistory(report);
    }

    // Teardown.
    for (Rig& rig : rigs_) {
      if (rig.server != nullptr) {
        rig.server->Stop();
      }
      if (rig.log != nullptr) {
        rig.faults_fired_accum += rig.log->faults_fired();
      }
      report.append_faults_fired += rig.faults_fired_accum;
    }
    DrainFatals(report);
    report.last_trace_id = tracer_->last_trace_id();
    if (report.last_trace_id != 0) {
      report.last_trace = tracer_->Render(report.last_trace_id);
    }
    if (!report.ok()) {
      // Failure post-mortem: concatenate every server's ring (servers are
      // stopped, so the rings are quiescent) and name the newest traced
      // apply — the proposal in flight when things went wrong.
      for (Rig& rig : rigs_) {
        if (rig.recorder == nullptr) {
          continue;
        }
        for (const FlightRecorder::Event& event : rig.recorder->Snapshot()) {
          report.failing_trace_id = std::max(report.failing_trace_id, event.trace_id);
        }
        report.flight_dump +=
            "== server " + rig.id + " flight recorder ==\n" + rig.recorder->Dump();
      }
    }
    // Latency attribution snapshot from each surviving rig (a rebuilt server
    // carries only its final incarnation's view — rebuilds are themselves
    // schedule-determined, so the text stays byte-identical per seed).
    for (Rig& rig : rigs_) {
      if (rig.server == nullptr || rig.server->latency() == nullptr) {
        continue;
      }
      report.latency_summary += "== server " + rig.id + " latency ==\n" +
                                rig.server->latency()->RenderLatency();
      report.slow_exemplars += "== server " + rig.id + " slow traces ==\n" +
                               rig.server->latency()->RenderSlowList();
    }
    // Workload attribution snapshot (same per-seed determinism argument as
    // the latency summary above): full accounting plus the heavy-hitter
    // tables, so a report names the run's hot key and top client outright.
    for (Rig& rig : rigs_) {
      if (rig.server == nullptr || rig.server->workload() == nullptr) {
        continue;
      }
      report.workload_summary += "== server " + rig.id + " workload ==\n" +
                                 rig.server->workload()->RenderWorkload() +
                                 rig.server->workload()->RenderTopKeys() +
                                 rig.server->workload()->RenderTopClients();
    }
    // Digest-beacon divergence verdicts. The summary carries only schedule-
    // determined fields — conviction windows, proposer ids, counters; never
    // absolute digest values, which fold per-incarnation engine instance ids
    // and legitimately vary across runs — so a convicting seed's summary is
    // byte-identical across replays (checkpoint flushes pinned off, as with
    // the workload suite). The artifact is the full conviction report
    // (digest pair + flight excerpt) for CI upload only.
    if (options_.digest_beacon_every > 0) {
      for (Rig& rig : rigs_) {
        if (rig.server == nullptr) {
          continue;
        }
        auto* digest = dynamic_cast<DigestEngine*>(rig.server->FindEngine("digest"));
        if (digest == nullptr) {
          continue;
        }
        const DivergenceTracker* tracker = digest->tracker();
        if (tracker->convicted()) {
          report.divergence_convicted = true;
        }
        report.divergence_mismatches += tracker->mismatches();
        const std::string reason = tracker->HealthReason();
        report.divergence_summary +=
            "server " + rig.id + ": " + (reason.empty() ? "no divergence" : reason) +
            "; beacons_checked=" + std::to_string(tracker->beacons_checked()) +
            " mismatches=" + std::to_string(tracker->mismatches()) +
            " last_verified_pos=" + std::to_string(tracker->last_verified_pos()) + "\n";
        report.divergence_artifact += "== server " + rig.id + " divergence ==\n" +
                                      tracker->Render(/*include_digests=*/true);
      }
    }
    rigs_.clear();
    inner_log_.reset();
    std::filesystem::remove_all(run_dir_, ec);
    return report;
  }

 private:
  using SteadyClock = std::chrono::steady_clock;

  void BuildShape(ClusterServer& server) {
    // Verify workloads always run the production-shaped ordering layers:
    // session order + batching. Without SessionOrder, a duplicated append is
    // legitimately applied twice — a real non-linearizability the stack is
    // supposed to (and does) prevent, so auditing a stack without it would
    // fail every duplicate-fault seed by design.
    if (options_.workload != WorkloadKind::kLegacy) {
      StackConfig config = (options_.workload == WorkloadKind::kVerifyZelos)
                               ? ZelosStackConfig(&backup_)
                               : DelosTableStackConfig(&backup_);
      config.backup_segment_size = 1'000'000;
      config.session_order = true;
      config.batching = true;
      // Beacon cadence from SimOptions (default 0 = off): existing schedules
      // must keep producing byte-identical logs, so the production default of
      // the StackConfig never leaks into a sim run. No heartbeat: an idle-
      // timer beacon would propose at schedule-independent times.
      config.digest_beacon_every = options_.digest_beacon_every;
      config.digest_beacon_interval_micros = 0;
      BuildStack(server, config);
      return;
    }
    StackConfig config = (options_.shape == StackShape::kZelos)
                             ? ZelosStackConfig(&backup_)
                             : DelosTableStackConfig(&backup_);
    // Keep the upload worker passive: a mid-run backup bid would propose at
    // schedule-independent times and break run determinism.
    config.backup_segment_size = 1'000'000;
    // Same determinism rule as the verify branch: sim cadence only, no
    // heartbeat.
    config.digest_beacon_every = options_.digest_beacon_every;
    config.digest_beacon_interval_micros = 0;
    if (options_.shape == StackShape::kFullNine) {
      config.session_order = true;
      config.batching = true;
      config.time = true;
      config.lease = true;
      // No lease is ever acquired, so the renew loop never proposes; the
      // long TTL keeps even a stray acquisition from expiring mid-run.
      config.lease_ttl_micros = 600'000'000;
      config.observers = true;
    }
    BuildStack(server, config);
    if (options_.shape == StackShape::kFullNine) {
      CompressionEngine::Options copt;
      copt.profiler = server.profiler();
      copt.metrics = server.metrics();
      server.AddEngine<CompressionEngine>(copt);
    }
  }

  void BuildRig(Rig& rig, std::shared_ptr<ISharedLog> base_log) {
    FaultyLog::Faults faults = rig.append_faults;
    faults.crash_at_pos = rig.pending_crashes.empty() ? 0 : rig.pending_crashes.front().pos;
    rig.log = std::make_shared<FaultyLog>(std::move(base_log), std::move(faults),
                                          rig.append_counter);
    rig.log->set_flight_recorder(rig.recorder.get());
    LocalStore::Options store_options;
    store_options.checkpoint_path = rig.checkpoint_path;
    store_options.tolerate_torn_checkpoint = true;
    auto store = LocalStore::Open(store_options);
    BaseEngineOptions base_options;
    base_options.server_id = rig.id;
    base_options.play_batch_size = 8;
    base_options.flush_interval_micros = 2'000;
    // Trimming would let a torn-checkpoint cold start find a trimmed prefix;
    // the sim guarantees the log retains everything (see LocalStore::Options).
    base_options.trim_interval_micros = 3'600'000'000;
    base_options.fatal_handler = [this, id = rig.id](const std::string& message) {
      std::lock_guard<std::mutex> lock(fatal_mu_);
      fatal_messages_.push_back("server " + id + " fatal: " + message);
    };
    base_options.tracer = tracer_.get();
    base_options.recorder = rig.recorder.get();  // null for the ref rig
    // Determinism: reads stay synchronous events on the apply thread (no
    // prefetch races against the schedule), and the read cache — exercised
    // by default so sim coverage matches production — never write-through
    // fills, so every replayed position flows through the FaultyLog read
    // path where the crash wedge lives. Verdicts are byte-identical with
    // the cache on or off; sim_read_path coverage pins that down.
    base_options.prefetch_batches = 0;
    base_options.read_cache_capacity = options_.read_cache ? 65536 : 0;
    base_options.read_cache_write_through = false;
    // Pin the workload sketch hash family: together with the sorted renders
    // this makes report.workload_summary a pure function of the schedule.
    base_options.workload_hash_seed = 0x5eed0fde;
    if (options_.flush_interval_micros > 0) {
      base_options.flush_interval_micros = options_.flush_interval_micros;
    }
    rig.server = std::make_unique<ClusterServer>(rig.id, rig.log, std::move(store),
                                                 std::move(base_options));
    BuildShape(*rig.server);
    rig.zelos_app = nullptr;
    rig.lock_app = nullptr;
    const bool zelos_app = options_.workload == WorkloadKind::kLegacy
                               ? options_.shape == StackShape::kZelos
                               : options_.workload == WorkloadKind::kVerifyZelos;
    if (zelos_app) {
      auto app = std::make_unique<zelos::ZelosApplicator>();
      app->set_metrics(rig.server->metrics());
      rig.zelos_app = app.get();
      rig.server->RegisterApplicator(app.get(), zelos::ZelosKeyExtractor::Instance());
      rig.app = std::move(app);
    } else if (options_.workload == WorkloadKind::kVerifyQueue) {
      auto app = std::make_unique<delosq::QueueApplicator>();
      rig.server->RegisterApplicator(app.get(), delosq::QueueKeyExtractor::Instance());
      rig.app = std::move(app);
    } else if (options_.workload == WorkloadKind::kVerifyLock) {
      auto app = std::make_unique<locks::LockApplicator>();
      rig.lock_app = app.get();
      rig.server->RegisterApplicator(app.get(), locks::LockKeyExtractor::Instance());
      rig.app = std::move(app);
      rig.lock_client =
          std::make_unique<locks::LockClient>(rig.server->top(), rig.lock_app);
    } else {
      auto app = std::make_unique<table::TableApplicator>();
      rig.server->RegisterApplicator(app.get(), table::TableKeyExtractor::Instance());
      rig.app = std::move(app);
    }
    rig.stopped = false;
    rig.server->Start();
  }

  // Stops (but does not tear down) every rig whose replay wedged — failing
  // its pending promises so a worker blocked inside it unwinds.
  void StopCrashed() {
    for (Rig& rig : rigs_) {
      if (rig.log != nullptr && rig.log->crashed() && !rig.stopped) {
        rig.server->Stop();
        rig.stopped = true;
      }
    }
  }

  // Performs the kill + restart for every wedged rig. Must only run when no
  // worker thread can be inside the victim (stop first, join the worker).
  void RestartCrashed(RunReport& report) {
    for (Rig& rig : rigs_) {
      if (rig.log == nullptr || !rig.log->crashed()) {
        continue;
      }
      report.crashes_fired++;
      rig.server->Stop();
      rig.faults_fired_accum += rig.log->faults_fired();
      // The kill: engines, volatile state, and the in-memory LocalStore die
      // with the server; only the checkpoint file survives.
      rig.server.reset();
      rig.lock_client.reset();  // before its applicator
      rig.app.reset();
      rig.zelos_app = nullptr;
      rig.lock_app = nullptr;
      rig.log.reset();
      Rig::PendingCrash crash = rig.pending_crashes.front();
      rig.pending_crashes.pop_front();
      if (crash.param != 0) {
        TearCheckpoint(rig.checkpoint_path, crash.param - 1);
      }
      BuildRig(rig, inner_log_);
    }
  }

  static void TearCheckpoint(const std::string& path, uint64_t keep_bytes) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) {
      return;  // no flush happened before the crash: nothing to tear
    }
    std::filesystem::resize_file(path, std::min<uint64_t>(size, keep_bytes), ec);
  }

  // The workload body for one op, executed on a worker thread. Throws; the
  // caller classifies the exception. Legacy calls are idempotent under
  // retry; verify calls record each attempt into the history instead (an
  // attempt cut down by a fault is journaled as indeterminate before the
  // exception reaches the retry loop).
  void DoOp(Rig& rig, int op) {
    switch (options_.workload) {
      case WorkloadKind::kLegacy:
        return DoLegacyOp(rig, op);
      case WorkloadKind::kVerifyTable:
        return DoVerifyTableOp(rig, op);
      case WorkloadKind::kVerifyZelos:
        return DoVerifyZelosOp(rig, op);
      case WorkloadKind::kVerifyQueue:
        return DoVerifyQueueOp(rig, op);
      case WorkloadKind::kVerifyLock:
        return DoVerifyLockOp(rig, op);
    }
  }

  // SplitMix64 of (seed, op): every op's key and kind are a pure function of
  // the schedule, never of timing.
  uint64_t OpRand(int op) const {
    uint64_t x = current_seed_ * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(op) + 1;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  uint32_t ClientOf(int op) const {
    return static_cast<uint32_t>(op % std::max(1, options_.verify_clients));
  }

  uint64_t KeyOf(uint64_t r) const {
    return r % static_cast<uint64_t>(std::max(1, options_.verify_keys));
  }

  verify::RecordingClientBase::TraceIdSource TraceSource() {
    return [this] { return tracer_->last_trace_id(); };
  }

  // Mixed read/write/CAS over rows of an untracked "verify" table.
  void DoVerifyTableOp(Rig& rig, int op) {
    table::TableClient client(rig.server->top());
    // Logical client identity, stamped on every proposal so the workload
    // attribution plane names the same top clients on every replay.
    client.set_client_id(ClientOf(op));
    if (op == 0) {
      table::TableSchema schema;
      schema.name = "verify";
      schema.columns = {{"k", table::ValueType::kString}, {"v", table::ValueType::kString}};
      schema.primary_key = "k";
      try {
        client.CreateTable(schema);
      } catch (const table::DuplicateTableError&) {
        // A retried create whose first attempt committed.
      }
      return;
    }
    const uint64_t r = OpRand(op);
    const std::string key = "k" + std::to_string(KeyOf(r));
    verify::RecordingTableClient recording(&client, "verify", history_.get(), ClientOf(op),
                                           TraceSource());
    const uint64_t kind = (r >> 8) % 10;
    if (kind < 4) {
      recording.Write(key, "v" + std::to_string(op));
    } else if (kind < 8) {
      recording.Read(key);
    } else {
      // Expected = some plausible earlier value, so both CAS outcomes occur.
      recording.Cas(key, "v" + std::to_string((r >> 16) % static_cast<uint64_t>(op)),
                    "v" + std::to_string(op) + "c");
    }
  }

  // Mixed create/setdata/getdata/delete over a handful of znodes; versions
  // returned by setdata pin the write order the checker validates.
  void DoVerifyZelosOp(Rig& rig, int op) {
    zelos::ZelosClient client(rig.server->top(), rig.zelos_app);
    client.set_client_id(ClientOf(op));
    if (op == 0) {
      zelos_session_ = client.CreateSession(600'000'000);
      return;
    }
    const uint64_t r = OpRand(op);
    const std::string path = "/v" + std::to_string(KeyOf(r));
    verify::RecordingZelosClient recording(&client, zelos_session_, history_.get(),
                                           ClientOf(op), TraceSource());
    const uint64_t kind = (r >> 8) % 10;
    if (kind < 3) {
      recording.Create(path, "d" + std::to_string(op));
    } else if (kind < 6) {
      recording.SetData(path, "d" + std::to_string(op));
    } else if (kind < 9) {
      recording.GetData(path);
    } else {
      recording.Delete(path);
    }
  }

  // Push/pop over untracked-created queues; every payload is unique, so a
  // double-applied or skipped dequeue has no sequential witness.
  void DoVerifyQueueOp(Rig& rig, int op) {
    delosq::QueueClient client(rig.server->top());
    client.set_client_id(ClientOf(op));
    if (op == 0) {
      for (int k = 0; k < std::max(1, options_.verify_keys); ++k) {
        try {
          client.CreateQueue("q" + std::to_string(k));
        } catch (const delosq::QueueExistsError&) {
        }
      }
      return;
    }
    const uint64_t r = OpRand(op);
    const std::string queue = "q" + std::to_string(KeyOf(r));
    verify::RecordingQueueClient recording(&client, history_.get(), ClientOf(op),
                                           TraceSource());
    if ((r >> 8) % 10 < 6) {
      recording.Push(queue, "p" + std::to_string(op));
    } else {
      recording.Pop(queue);
    }
  }

  // Acquire/release/owner over a handful of locks; owners are the logical
  // client names, so mutual exclusion shows up as output mismatches.
  void DoVerifyLockOp(Rig& rig, int op) {
    if (op == 0) {
      return;  // locks materialize on first acquire
    }
    locks::LockClient& client = *rig.lock_client;
    client.set_client_id(ClientOf(op));
    const uint64_t r = OpRand(op);
    const std::string lock = "l" + std::to_string(KeyOf(r));
    const std::string owner = "c" + std::to_string(ClientOf(op));
    verify::RecordingLockClient recording(&client, history_.get(), ClientOf(op),
                                          TraceSource());
    const uint64_t kind = (r >> 8) % 10;
    if (kind < 4) {
      recording.Acquire(lock, owner);
    } else if (kind < 8) {
      recording.Release(lock, owner);
    } else {
      recording.Owner(lock);
    }
  }

  // Verification phase: snapshot the history, run the checker, fold the
  // verdict into the report. Runs even when an earlier phase already failed
  // (a consistency verdict on a crashed run is still evidence).
  void CheckHistory(RunReport& report) {
    report.verify_ran = true;
    const std::vector<verify::HistOp> history = history_->Snapshot();
    report.verify_ops = history.size();
    report.history_text = verify::HistoryRecorder::Render(history);
    if (history_->dropped() != 0) {
      RecordFailure(report, "verify: history journal overflowed (" +
                                std::to_string(history_->dropped()) + " ops dropped)");
    }
    verify::CheckerOptions checker_options;
    if (!rigs_.empty() && rigs_[0].server != nullptr) {
      checker_options.metrics = rigs_[0].server->metrics();
    }
    const verify::CheckResult result = verify::CheckLinearizability(history, checker_options);
    report.linearizable = result.linearizable;
    report.checker_micros = result.checker_micros;
    for (const verify::Violation& violation : result.violations) {
      report.violation_text += violation.Render();
    }
    if (result.budget_exhausted) {
      RecordFailure(report, "verify: checker state budget exhausted before a verdict");
    }
    if (!result.linearizable) {
      RecordFailure(report, "verify: history is not linearizable (" +
                                std::to_string(result.violations.size()) + " violation(s))");
    }
  }

  void DoLegacyOp(Rig& rig, int op) {
    if (options_.shape == StackShape::kZelos) {
      zelos::ZelosClient client(rig.server->top(), rig.zelos_app);
      client.set_client_id(ClientOf(op));
      if (op == 0) {
        zelos_session_ = client.CreateSession(600'000'000);
        return;
      }
      const std::string path = "/n" + std::to_string(op % 8);
      const std::string data =
          "v-" + std::to_string(op) + "-" + std::string(72, 'z');
      try {
        client.SetData(path, data);
      } catch (const zelos::NoNodeError&) {
        try {
          client.Create(zelos_session_, path, data);
        } catch (const zelos::NodeExistsError&) {
          client.SetData(path, data);
        }
      }
      return;
    }
    table::TableClient client(rig.server->top());
    client.set_client_id(ClientOf(op));
    if (op == 0) {
      table::TableSchema schema;
      schema.name = "sim";
      schema.columns = {{"id", table::ValueType::kInt64},
                        {"name", table::ValueType::kString},
                        {"city", table::ValueType::kString}};
      schema.primary_key = "id";
      schema.secondary_indexes = {"city"};
      try {
        client.CreateTable(schema);
      } catch (const table::DuplicateTableError&) {
        // A retried create whose first attempt committed.
      }
      return;
    }
    table::Row row;
    row["id"] = static_cast<int64_t>(op % 10);
    // Long enough to clear CompressionEngine's min_payload_bytes on the
    // full-nine stack.
    row["name"] = "row-" + std::to_string(op) + "-" + std::string(72, 'x');
    row["city"] = std::string((op % 2) != 0 ? "nyc" : "sfo");
    client.Upsert("sim", row);
  }

  // Runs op `op` against server op % n, retrying through injected faults and
  // crash/restart cycles. Returns false when the run cannot make progress.
  bool ExecuteOp(int op, RunReport& report) {
    Rig& rig = rigs_[static_cast<size_t>(op) % rigs_.size()];
    for (int attempt = 0; attempt < kMaxAttemptsPerOp; ++attempt) {
      RestartCrashed(report);
      // 0 = running, 1 = ok, 2 = retryable, 3 = hard failure.
      auto done = std::make_shared<std::atomic<int>>(0);
      auto error = std::make_shared<std::string>();
      std::thread worker([this, &rig, op, done, error] {
        try {
          DoOp(rig, op);
          done->store(1, std::memory_order_release);
        } catch (const LogUnavailableError&) {
          done->store(2, std::memory_order_release);
        } catch (const SealedError&) {
          done->store(2, std::memory_order_release);
        } catch (const DeterministicError&) {
          // A retry colliding with its own committed first attempt (e.g. a
          // bad-version on a znode we just wrote): the op is applied.
          done->store(1, std::memory_order_release);
        } catch (const std::exception& e) {
          *error = e.what();
          done->store(3, std::memory_order_release);
        }
      });
      const auto deadline =
          SteadyClock::now() + std::chrono::microseconds(options_.op_timeout_micros);
      bool stuck = false;
      while (done->load(std::memory_order_acquire) == 0) {
        if (SteadyClock::now() >= deadline) {
          stuck = true;
          // Force the worker out: Stop fails every pending promise.
          if (!rig.stopped) {
            rig.server->Stop();
            rig.stopped = true;
          }
          break;
        }
        // A wedged replay leaves the worker blocked on its propose; stopping
        // the victim unblocks it. The kill/restart happens after the join.
        StopCrashed();
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      worker.join();
      RestartCrashed(report);
      if (stuck) {
        RecordFailure(report, "op " + std::to_string(op) +
                                  " made no progress within the op timeout");
        if (rig.stopped && rig.log != nullptr && !rig.log->crashed()) {
          // Force-stopped without a planned crash: rebuild so teardown and
          // later phases see a live server.
          rig.server.reset();
          rig.lock_client.reset();  // before its applicator
          rig.app.reset();
          rig.zelos_app = nullptr;
          rig.lock_app = nullptr;
          rig.faults_fired_accum += rig.log->faults_fired();
          rig.log.reset();
          BuildRig(rig, inner_log_);
        }
        return false;
      }
      switch (done->load(std::memory_order_acquire)) {
        case 1:
          return true;
        case 2:
          continue;  // retry
        default:
          RecordFailure(report,
                        "op " + std::to_string(op) + " failed: " + *error);
          return false;
      }
    }
    RecordFailure(report, "op " + std::to_string(op) + " exhausted its retries");
    return false;
  }

  // Drives every server's replay to the final tail, restarting any that
  // crash on the way (pending crash positions not reached by the workload
  // fire here).
  void FinalSync(RunReport& report, LogPos tail) {
    const auto deadline = SteadyClock::now() + std::chrono::seconds(30);
    std::vector<std::shared_ptr<std::atomic<bool>>> outstanding(rigs_.size());
    while (SteadyClock::now() < deadline) {
      StopCrashed();
      RestartCrashed(report);
      bool all_caught_up = true;
      for (size_t i = 0; i < rigs_.size(); ++i) {
        Rig& rig = rigs_[i];
        if (rig.server->base()->applied_position() >= tail) {
          continue;
        }
        all_caught_up = false;
        if (outstanding[i] == nullptr || !outstanding[i]->load(std::memory_order_acquire)) {
          auto flag = std::make_shared<std::atomic<bool>>(true);
          outstanding[i] = flag;
          rig.server->top()->Sync().Then([flag](Result<ROTxn> result) {
            (void)result;  // a failed sync (crash) just clears the flag
            flag->store(false, std::memory_order_release);
          });
        }
      }
      if (all_caught_up) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    RecordFailure(report, "final sync: a server failed to reach the final tail");
  }

  // Test-only divergence (kSabotage): directly corrupts a recovered store so
  // the checksum diff below must fire. The apply thread is idle here (every
  // server is at the tail and the workload has stopped).
  void Sabotage() {
    for (Rig& rig : rigs_) {
      if (!rig.sabotage) {
        continue;
      }
      auto txn = rig.server->store()->BeginRW();
      txn.Put("sim/sabotage", "divergent");
      txn.Commit();
    }
  }

  // Two deterministic digest-beacon rounds (digest_beacon_every > 0 only):
  // every server proposes a standalone beacon in index order, then everyone
  // syncs to the new tail. Round 1 publishes each replica's digest at a
  // fresh position — a sabotaged store diverges there; round 2 carries those
  // samples inside beacons so every replica cross-checks them and the
  // divergent one is convicted on all replicas. Random plans exhaust their
  // crash positions during the workload (triggers sit in [2, num_ops]), but
  // a hand-written plan may leave one armed past the old tail — the retry
  // loop restarts a wedged rig and proposes again, all schedule-determined.
  LogPos DriveBeacons(RunReport& report, LogPos tail) {
    if (options_.digest_beacon_every == 0) {
      return tail;
    }
    for (int round = 0; round < 2 && report.ok(); ++round) {
      for (Rig& rig : rigs_) {
        bool proposed = false;
        for (int attempt = 0; attempt < 4 && !proposed; ++attempt) {
          StopCrashed();
          RestartCrashed(report);
          auto* digest = dynamic_cast<DigestEngine*>(rig.server->FindEngine("digest"));
          if (digest == nullptr) {
            return tail;  // a shape without the digest layer: nothing to drive
          }
          proposed = digest->ProposeBeaconNow(options_.op_timeout_micros);
        }
        if (!proposed) {
          RecordFailure(report, "server " + rig.id + " failed to apply its digest beacon");
          return inner_log_->CheckTail().Get() - 1;
        }
      }
      tail = inner_log_->CheckTail().Get() - 1;
      FinalSync(report, tail);
      DrainFatals(report);
    }
    return tail;
  }

  // Replays the run's final log bytes through a fresh fault-free stack and
  // diffs every recovered server against it.
  void CaptureAndCompare(RunReport& report, LogPos tail) {
    auto ref_log = std::make_shared<InMemoryLog>();
    if (tail > 0) {
      for (LogRecord& record : inner_log_->ReadRange(1, tail)) {
        ref_log->Append(std::move(record.payload)).Get();
      }
    }
    Rig ref;
    ref.index = static_cast<uint32_t>(rigs_.size());
    ref.id = "ref";
    ref.append_counter = std::make_shared<std::atomic<uint64_t>>(0);
    BuildRig(ref, ref_log);
    bool ref_ok = true;
    try {
      auto snapshot = ref.server->top()->Sync().GetFor(std::chrono::microseconds(
          static_cast<int64_t>(30) * 1'000'000));
      if (!snapshot.has_value() || ref.server->base()->applied_position() < tail) {
        ref_ok = false;
      }
    } catch (const std::exception&) {
      ref_ok = false;
    }
    if (!ref_ok) {
      RecordFailure(report, "reference replay failed to reach the final tail");
    } else {
      report.reference_checksum = ref.server->store()->Checksum();
      report.reference_key_count = ref.server->store()->KeyCount();
    }
    ref.server->Stop();
    ref.server.reset();
    ref.lock_client.reset();  // before its applicator
    ref.app.reset();
    ref.log.reset();
    if (!ref_ok) {
      return;
    }

    for (Rig& rig : rigs_) {
      const uint64_t checksum = rig.server->store()->Checksum();
      report.server_checksums.push_back(checksum);
      if (rig.server->base()->applied_position() != tail) {
        RecordFailure(report, "server " + rig.id +
                                  ": applied cursor stopped short of the final tail");
      }
      if (checksum != report.reference_checksum) {
        RecordFailure(report,
                      "server " + rig.id +
                          ": recovered LocalStore diverges from the fault-free "
                          "reference replay (checksum mismatch)");
      } else if (rig.server->store()->KeyCount() != report.reference_key_count) {
        RecordFailure(report, "server " + rig.id +
                                  ": key count diverges from the reference replay");
      }
    }
  }

  void RecordFailure(RunReport& report, std::string message) {
    report.failures.push_back(std::move(message));
  }

  void DrainFatals(RunReport& report) {
    std::lock_guard<std::mutex> lock(fatal_mu_);
    for (std::string& message : fatal_messages_) {
      report.failures.push_back(std::move(message));
    }
    fatal_messages_.clear();
  }

  SimOptions options_;
  InMemoryBackupStore backup_;
  SimClock trace_clock_;  // pinned at zero: logical time for trace artifacts
  std::unique_ptr<Tracer> tracer_;
  uint64_t run_counter_ = 0;
  std::string run_dir_;
  std::shared_ptr<InMemoryLog> inner_log_;
  std::vector<Rig> rigs_;
  zelos::SessionId zelos_session_ = 0;
  uint64_t current_seed_ = 0;
  std::unique_ptr<verify::HistoryRecorder> history_;  // verify workloads only
  std::mutex fatal_mu_;
  std::vector<std::string> fatal_messages_;
};

SimCluster::SimCluster(SimOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

SimCluster::~SimCluster() = default;

RunReport SimCluster::Run(const FaultPlan& plan) { return impl_->Run(plan); }

RunReport SimCluster::RunSeed(uint64_t seed, const SimOptions& options) {
  SimOptions effective = options;
  effective.plan.num_servers = effective.num_servers;
  effective.plan.num_ops = effective.num_ops;
  SimCluster cluster(effective);
  return cluster.Run(FaultPlan::Random(seed, effective.plan));
}

}  // namespace delos::sim
