// SimCluster: the deterministic crash-recovery simulation driver.
//
// One run = one fault schedule against a multi-server Delos stack over a
// shared in-memory log, each server's view of the log wrapped in a FaultyLog
// carrying its slice of the plan. The driver:
//
//  1. issues a deterministic application workload (DelosTable upserts or
//     Zelos znode writes, routed round-robin), retrying idempotently through
//     injected append timeouts, drops, duplicates, and reorders;
//  2. watches for wedged replays (FaultyLog::crashed()) and performs each
//     kill: Stop + destroy the server (volatile state and LocalStore gone),
//     optionally tear the checkpoint file, then rebuild the server from
//     checkpoint + log replay;
//  3. after the workload quiesces, syncs every server to the final log tail
//     (restarting any server that crashes during its own final replay);
//  4. replays the *same final log bytes* through a fresh fault-free stack —
//     the reference run — and diffs every recovered server against it:
//     identical LocalStore checksum, identical key count, applied cursor at
//     the tail.
//
// The reference is a replay of the same log rather than a separate fault-free
// workload execution because faults legitimately change log *content*
// (duplicated entries, retried proposals); what must be invariant is that
// every replica is the same pure function of whatever log the run produced
// (paper §3.4, §6). Reports carry only schedule-determined text so a failing
// seed prints the same failure on every run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/fault_plan.h"

namespace delos::sim {

enum class StackShape {
  kDelosTable,  // Base | LogBackup | BrainDoctor | ViewTracking + DelosTable
  kZelos,       // ... | SessionOrder | Batching + Zelos
  kFullNine,    // all nine engine types (incl. Time, Lease, Observer,
                // Compression) + DelosTable
};

const char* StackShapeName(StackShape shape);

// What the workload thread drives — and whether the run doubles as a
// linearizability audit.
//
//  * kLegacy: the original deterministic DelosTable/Zelos write workload;
//    verdicts are the replica-vs-reference diffs only.
//  * kVerify*: a seed-derived mixed workload (reads, writes, CAS, queue
//    push/pop, lock acquire/release) issued through verify::Recording*
//    clients into a HistoryRecorder, concurrent with the fault plan. After
//    the run the history is checked for linearizability and the RunReport
//    gains a linearizable verdict next to the checksum verdict. Verify
//    workloads run on a session-ordered + batching stack (like production):
//    on a bare stack a duplicated append legitimately applies twice, which
//    is a real non-linearizability the paper's stack exists to prevent.
//
// The workload thread issues one op at a time (the sim's schedule-
// determinism requirement), so history concurrency comes from indeterminate
// attempts: an op cut down by a crash or an append timeout stays open
// (response tick = infinity) and overlaps everything after it, which is
// exactly the search space a fault sweep needs covered.
enum class WorkloadKind {
  kLegacy,
  kVerifyTable,  // "reg" model: per-row read / write / CAS
  kVerifyZelos,  // "znode" model: create / setdata / getdata / delete
  kVerifyQueue,  // "queue" model: push / pop
  kVerifyLock,   // "lock" model: acquire / release / owner
};

const char* WorkloadKindName(WorkloadKind kind);

struct SimOptions {
  StackShape shape = StackShape::kFullNine;
  int num_servers = 3;
  int num_ops = 40;
  // Checkpoint files live here; each run creates a unique subdirectory.
  std::string scratch_dir;
  // How long one workload op may stay unresolved before the run is declared
  // stuck (generous: a crash + restart + replay must fit comfortably).
  int64_t op_timeout_micros = 10'000'000;
  // Per-server shared-log read cache (write-through fill always disabled in
  // the sim; see BuildRig). Verdicts must be byte-identical either way —
  // the read-path conformance sweep flips this flag to prove it.
  bool read_cache = true;
  // BaseEngine checkpoint-flush cadence override (0 = engine default). The
  // background flush runs on wall time, so WHICH positions a crashed
  // server's checkpoint covers — and hence how deep its recovery replay is —
  // races the schedule. Sweeps that assert byte-identical replay artifacts
  // (the workload-attribution suite) set this very high: no checkpoint is
  // ever written, a crashed server cold-starts from the log (a supported
  // recovery path), and every applied-record count becomes a pure function
  // of the schedule. Verdict-only sweeps leave it at 0; verdicts are
  // flush-timing independent by design.
  int64_t flush_interval_micros = 0;
  // Digest-beacon cadence for the stack's DigestEngine (0 = beacons off).
  // Off by default so every pre-existing schedule's log bytes — and hence
  // every byte-identity assertion over old reports — stay untouched. When
  // >0, proposals are stamped with beacon headers at this cadence and,
  // after the workload quiesces, the driver runs two deterministic beacon
  // rounds (every server proposes a standalone beacon in index order, then
  // everyone syncs) so post-quiesce state — including a kSabotage
  // corruption — is cross-checked before capture.
  uint64_t digest_beacon_every = 0;
  FaultPlanOptions plan;  // used by RunSeed

  // Verification workload knobs (ignored for kLegacy).
  WorkloadKind workload = WorkloadKind::kLegacy;
  // Logical client ids in the history (op i issues as client i % clients and
  // routes to server i % num_servers, so clients hop servers).
  int verify_clients = 3;
  // Distinct keys / paths / queues / locks the mixed workload spreads over
  // (P-compositionality keeps each per-key search small).
  int verify_keys = 4;
  // HistoryRecorder capacity; sized so retries never overflow it.
  size_t verify_history_capacity = 4096;
};

struct RunReport {
  uint64_t seed = 0;
  std::string plan_bytes;  // FaultPlan::Serialize() of the executed plan
  std::string plan_text;   // FaultPlan::Describe()
  uint64_t final_tail = 0;
  uint64_t reference_checksum = 0;
  uint64_t reference_key_count = 0;
  std::vector<uint64_t> server_checksums;
  uint64_t crashes_fired = 0;
  uint64_t append_faults_fired = 0;
  // Empty = every invariant held. Strings are schedule-determined (no
  // timestamps, no absolute checksums) so a failing seed reproduces the
  // identical report.
  std::vector<std::string> failures;

  // Post-mortem observability. Deliberately excluded from Summary() and the
  // failure strings: the verdict stays schedule-determined while these carry
  // the full diagnostic state.
  uint64_t last_trace_id = 0;     // most recent trace id the run assigned
  std::string last_trace;         // Tracer::Render of that trace
  uint64_t failing_trace_id = 0;  // newest traced apply anywhere, failures only
  std::string flight_dump;        // per-server ring dumps, failures only

  // Latency attribution (schedule-determined: the sim trace clock is pinned,
  // so every duration is 0 and exemplar capture reduces to errored proposals
  // — two replays of one seed must produce byte-identical text here). Like
  // last_trace, excluded from Summary().
  std::string latency_summary;  // per-server RenderLatency()
  std::string slow_exemplars;   // per-server RenderSlowList()

  // Workload attribution (schedule-determined: the hash-family seed is
  // pinned, sketch updates are commutative counter sums, and renders sort —
  // two replays of one seed must produce byte-identical text, and the
  // planted hot key / top client appear by name). Excluded from Summary().
  std::string workload_summary;  // per-server RenderWorkload() + top tables

  // Digest-beacon divergence verdicts (digest_beacon_every > 0 only).
  // divergence_summary carries only schedule-determined fields — per-server
  // conviction windows, proposer ids, and beacon counters; NO absolute
  // digest values, which fold per-incarnation engine instance ids and so
  // legitimately vary across runs — making a convicting seed's summary
  // byte-identical across replays. divergence_artifact is the full-fidelity
  // conviction report (digest pair + flight excerpt + trace ids) for CI
  // upload, excluded from byte-identity comparisons. A conviction does NOT
  // append a failure string by itself: the sabotage sweep asserts convicted
  // runs, the fault-free sweep asserts clean ones.
  bool divergence_convicted = false;
  uint64_t divergence_mismatches = 0;
  std::string divergence_summary;
  std::string divergence_artifact;

  // Linearizability audit (verify workloads only; verify_ran stays false for
  // kLegacy and the verdict renders as "n/a"). A non-linearizable history or
  // an exhausted search budget also appends a failure string, so ok() covers
  // the consistency verdict.
  bool verify_ran = false;
  bool linearizable = true;
  uint64_t verify_ops = 0;        // history ops fed to the checker
  int64_t checker_micros = 0;
  std::string history_text;       // HistoryRecorder::Render of the history
  std::string violation_text;     // Violation::Render per violation, else empty

  bool ok() const { return failures.empty(); }
  std::string Summary() const;
};

class SimCluster {
 public:
  explicit SimCluster(SimOptions options);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  // Executes one schedule. The cluster tears all servers down at the end;
  // Run may be called again with a fresh plan.
  RunReport Run(const FaultPlan& plan);

  // Convenience: FaultPlan::Random(seed, options.plan) + Run.
  static RunReport RunSeed(uint64_t seed, const SimOptions& options);

 private:
  struct Rig;
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace delos::sim
