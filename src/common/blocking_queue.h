// Unbounded MPMC blocking queue with shutdown, used by apply/flush/trim
// worker threads and the simulated network's delivery thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace delos {

template <typename T>
class BlockingQueue {
 public:
  // Enqueues an item. Returns false if the queue is closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed-and-drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Wakes all waiters; subsequent pushes fail and pops drain then return
  // nullopt.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace delos
