// Counters and latency histograms.
//
// The ObserverEngine (§4.1) measures per-layer propose/sync latency into
// named histograms; the Figure 8/10/11 benches query percentiles from them.
// Histograms are log-bucketed (≈7% relative error), lock-free on the record
// path, and mergeable so fleet-style benches can aggregate across clusters.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace delos {

class TimeSeriesStore;

// Prometheus exposition helpers (shared by RenderPrometheus, the health
// plane's labeled samples, and the exposition lint test).
//
// Maps an internal dotted name onto the exposition grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*: invalid characters become '_' and a leading
// digit is prefixed with '_'.
std::string PrometheusName(const std::string& name);
// Escapes a label value per the exposition format: backslash, double quote,
// and newline become \\, \", and \n.
std::string PrometheusLabelValue(const std::string& value);

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A live signed value (queue depth, cursor lag, open sessions, held leases)
// — unlike a Counter it moves both ways. Set for sampled values, Add for
// up/down tracking; Merge sums, so fleet aggregation of per-server gauges
// reports the fleet-wide total.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  void Merge(const Gauge& other) { Add(other.value()); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-bucketed histogram for microsecond latencies (covers 1 µs .. ~17 min).
//
// By default the bucket layout is the fixed linear+log scheme below; a
// histogram can instead be registered with explicit bucket upper bounds
// (sorted, strictly increasing) when a stage needs finer multi-ms
// resolution than the ~6%-error default provides. Values above the last
// explicit bound land in an implicit overflow bucket whose reported upper
// bound saturates at the last explicit bound (Max() keeps the exact value).
class Histogram {
 public:
  Histogram();
  // Custom layout: bucket i covers (bounds[i-1], bounds[i]]; one implicit
  // overflow bucket is appended. Bounds must be sorted and strictly
  // increasing; invalid bounds fall back to the default layout.
  explicit Histogram(std::vector<int64_t> bucket_bounds);

  void Record(int64_t value_micros);

  uint64_t count() const;
  double Mean() const;
  // Returns an approximate value at percentile p in [0, 100].
  int64_t Percentile(double p) const;
  int64_t Max() const { return max_seen_.load(std::memory_order_relaxed); }

  void Reset();
  // Adds other's samples into this histogram.
  void Merge(const Histogram& other);

  // Cumulative reading for windowed time-series snapshots (metrics_ts):
  // the full bucket vector plus count/sum, so per-window percentiles can be
  // computed from bucket deltas.
  struct CumulativeSnapshot {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    int64_t sum = 0;
  };
  CumulativeSnapshot Snapshot() const;

  // Explicit bucket bounds, empty for the default layout. Windowed
  // time-series snapshots carry this alongside the bucket vector so
  // per-window percentiles use the right layout.
  const std::vector<int64_t>& bucket_bounds() const { return custom_bounds_; }

  // Approximate percentile over a raw bucket-count vector (e.g. the delta
  // between two CumulativeSnapshots). Returns 0 for an empty vector. The
  // two-argument forms assume the default layout; pass the histogram's
  // bucket_bounds() for custom layouts (empty = default).
  static int64_t PercentileOfBuckets(const std::vector<uint64_t>& buckets, double p);
  static int64_t PercentileOfBuckets(const std::vector<uint64_t>& buckets, double p,
                                     const std::vector<int64_t>& bounds);
  // Upper bound of the highest non-empty bucket (a window's max estimate).
  static int64_t MaxOfBuckets(const std::vector<uint64_t>& buckets);
  static int64_t MaxOfBuckets(const std::vector<uint64_t>& buckets,
                              const std::vector<int64_t>& bounds);

 private:
  // 32 linear buckets + 16 sub-buckets per power of two up to 2^31 µs
  // (~36 minutes).
  static constexpr int kBuckets = 32 + 26 * 16;
  static int BucketFor(int64_t value);
  static int64_t BucketUpperBound(int index);

  int BucketIndex(int64_t value) const;
  int64_t UpperBound(int index) const;
  int bucket_count() const { return static_cast<int>(buckets_.size()); }

  std::vector<int64_t> custom_bounds_;  // empty = default layout
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> total_count_{0};
  std::atomic<int64_t> total_sum_{0};
  std::atomic<int64_t> max_seen_{0};
};

// Named metric registry. One per server (or per bench); engines receive a
// pointer and create metrics lazily by name.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  // Registers `name` with explicit bucket bounds (see Histogram). If the
  // histogram already exists, the existing instance wins and the bounds are
  // ignored — first registration fixes the layout.
  Histogram* GetHistogram(const std::string& name, const std::vector<int64_t>& bucket_bounds);
  Gauge* GetGauge(const std::string& name);

  // Snapshot of all metric names currently registered.
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;
  std::vector<std::string> GaugeNames() const;

  // Renders "name count=.. p50=.. p99=.." lines (dashboard-style output used
  // by the Figure 11 bench).
  std::string Render() const;

  // Machine-readable exposition for `delosctl --json`:
  // {"counters":{..},"gauges":{..},"histograms":{name:{count,mean,p50,p99,
  // p999,max}}}.
  std::string RenderJson() const;

  // Prometheus-style text exposition: one "# TYPE" comment per metric,
  // counters/gauges as bare samples, histograms as summaries (quantile
  // series plus _sum/_count). Metric names are sanitized via
  // PrometheusName and label values escaped via PrometheusLabelValue.
  std::string RenderPrometheus() const;

  // Closes one time-series window: reads every registered metric's current
  // cumulative value and commits the delta since the previous snapshot into
  // `store` (see metrics_ts.h). `now_micros` comes from the caller's
  // (injected) clock so the series is deterministic under the simulator.
  void SnapshotInto(TimeSeriesStore& store, int64_t now_micros) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

// RAII latency timer recording into a histogram on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram);
  ~ScopedLatencyTimer();

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_micros_;
};

}  // namespace delos
