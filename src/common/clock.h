// Clock abstraction.
//
// Engines that reason about time (TimeEngine timers, LeaseEngine validity,
// ViewTrackingEngine failure detection) take a Clock* so tests and benches
// can drive them with a simulated, skewable clock. The LeaseEngine safety
// property test relies on SimClock's per-replica skew injection.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace delos {

// Monotonic-ish microsecond clock.
class Clock {
 public:
  virtual ~Clock() = default;

  // Current time in microseconds. Only differences are meaningful.
  virtual int64_t NowMicros() const = 0;

  // Blocks (really or virtually) for the given duration.
  virtual void SleepMicros(int64_t micros) = 0;
};

// Wall-clock implementation backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepMicros(int64_t micros) override;

  // Shared process-wide instance.
  static RealClock* Instance();
};

// Manually advanced clock for deterministic tests. Thread-safe. Sleepers are
// woken when Advance moves time past their deadline.
class SimClock : public Clock {
 public:
  explicit SimClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_.load(std::memory_order_acquire); }
  void SleepMicros(int64_t micros) override;

  // Moves time forward and wakes sleepers whose deadline passed.
  void Advance(int64_t micros);

 private:
  std::atomic<int64_t> now_;
  std::mutex mu_;
  std::condition_variable cv_;
};

// A view of an underlying clock offset by a fixed skew. Models imperfectly
// synchronized replica clocks; used by lease-safety tests.
class SkewedClock : public Clock {
 public:
  SkewedClock(Clock* base, int64_t skew_micros) : base_(base), skew_micros_(skew_micros) {}

  int64_t NowMicros() const override { return base_->NowMicros() + skew_micros_; }
  void SleepMicros(int64_t micros) override { base_->SleepMicros(micros); }

  void set_skew_micros(int64_t skew) { skew_micros_ = skew; }
  int64_t skew_micros() const { return skew_micros_; }

 private:
  Clock* base_;
  std::atomic<int64_t> skew_micros_;
};

}  // namespace delos
