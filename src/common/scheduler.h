// Single-threaded deadline scheduler: run a callback after a delay.
// Used by the chaos/delay log wrappers and engine background timers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/clock.h"

namespace delos {

class TimerScheduler {
 public:
  TimerScheduler() : thread_([this] { Loop(); }) {}

  ~TimerScheduler() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  TimerScheduler(const TimerScheduler&) = delete;
  TimerScheduler& operator=(const TimerScheduler&) = delete;

  // Runs fn on the scheduler thread after delay_micros. Callbacks must not
  // block for long; they share one thread.
  void Schedule(int64_t delay_micros, std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_) {
        return;
      }
      tasks_.push(Task{RealClock::Instance()->NowMicros() + delay_micros, next_seq_++,
                       std::move(fn)});
    }
    cv_.notify_all();
  }

 private:
  struct Task {
    int64_t due_micros;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Task& other) const {
      return std::tie(due_micros, seq) > std::tie(other.due_micros, other.seq);
    }
  };

  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      if (shutdown_) {
        return;
      }
      if (tasks_.empty()) {
        cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
        continue;
      }
      const int64_t now = RealClock::Instance()->NowMicros();
      if (tasks_.top().due_micros > now) {
        cv_.wait_for(lock, std::chrono::microseconds(tasks_.top().due_micros - now));
        continue;
      }
      auto fn = std::move(const_cast<Task&>(tasks_.top()).fn);
      tasks_.pop();
      lock.unlock();
      fn();
      lock.lock();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Task, std::vector<Task>, std::greater<Task>> tasks_;
  uint64_t next_seq_ = 0;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace delos
