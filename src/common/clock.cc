#include "src/common/clock.h"

#include <thread>

namespace delos {

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

RealClock* RealClock::Instance() {
  static RealClock clock;
  return &clock;
}

void SimClock::SleepMicros(int64_t micros) {
  if (micros <= 0) {
    return;
  }
  const int64_t deadline = NowMicros() + micros;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return NowMicros() >= deadline; });
}

void SimClock::Advance(int64_t micros) {
  now_.fetch_add(micros, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

}  // namespace delos
