// Minimal leveled logging for the Delos reproduction.
//
// Engines and substrates log through LOG(level) streams; tests can raise the
// global threshold to keep output quiet. This intentionally stays tiny: the
// paper's observability story is the ObserverEngine + metrics, not logs.
#pragma once

#include <chrono>
#include <mutex>
#include <sstream>
#include <string>

namespace delos {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns the mutable global log threshold. Messages below it are dropped.
LogLevel& GlobalLogThreshold();

namespace internal {

// One log statement. Accumulates a message and emits it (with a timestamp and
// level tag) on destruction. FATAL messages abort the process: the paper
// prescribes crashing on non-deterministic failures (§3.4), and callers use
// LOG(kFatal) for exactly that.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Cheap guard so disabled levels don't evaluate stream arguments eagerly via
// the short-circuit in the LOG macro below.
inline bool LogEnabled(LogLevel level) { return level >= GlobalLogThreshold(); }

}  // namespace internal

}  // namespace delos

#define DELOS_LOG(level)                                      \
  if (!::delos::internal::LogEnabled(::delos::LogLevel::level)) { \
  } else                                                      \
    ::delos::internal::LogMessage(::delos::LogLevel::level, __FILE__, __LINE__)

#define LOG_DEBUG DELOS_LOG(kDebug)
#define LOG_INFO DELOS_LOG(kInfo)
#define LOG_WARNING DELOS_LOG(kWarning)
#define LOG_ERROR DELOS_LOG(kError)
#define LOG_FATAL ::delos::internal::LogMessage(::delos::LogLevel::kFatal, __FILE__, __LINE__)
