#include "src/common/latency.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <tuple>

#include "src/common/metrics.h"

namespace delos {

namespace {

constexpr const char* kRootSpanName = "client.propose";

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void SortSpans(std::vector<TraceSpan>& spans) {
  std::sort(spans.begin(), spans.end(), [](const TraceSpan& x, const TraceSpan& y) {
    return std::tie(x.start_micros, x.end_micros, x.server, x.name) <
           std::tie(y.start_micros, y.end_micros, y.server, y.name);
  });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// The stage with the largest critical-path share (first-touch order breaks
// ties), or "-" for an empty path.
std::string DominantStage(const CriticalPath& path) {
  const StageShare* best = nullptr;
  for (const StageShare& seg : path.segments) {
    if (best == nullptr || seg.micros > best->micros) {
      best = &seg;
    }
  }
  return best == nullptr ? "-" : best->stage;
}

double ShareOf(int64_t part, int64_t total) {
  if (total <= 0) {
    return 0.0;
  }
  return 100.0 * static_cast<double>(part) / static_cast<double>(total);
}

}  // namespace

// --- SlowTraceStore ---

SlowTraceStore::SlowTraceStore(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

void SlowTraceStore::Add(SlowTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ++captured_;
  traces_.push_back(std::move(trace));
  while (traces_.size() > capacity_) {
    traces_.pop_front();
    ++evicted_;
  }
}

std::vector<SlowTrace> SlowTraceStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowTrace>(traces_.begin(), traces_.end());
}

std::optional<SlowTrace> SlowTraceStore::Find(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = traces_.rbegin(); it != traces_.rend(); ++it) {
    if (it->trace_id == trace_id) {
      return *it;
    }
  }
  return std::nullopt;
}

size_t SlowTraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

uint64_t SlowTraceStore::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

uint64_t SlowTraceStore::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

// --- LatencyAttributor ---

LatencyAttributor::LatencyAttributor(Options options)
    : options_(std::move(options)), slow_(options_.slow_capacity) {
  if (options_.max_open_traces == 0) {
    options_.max_open_traces = 1;
  }
  if (options_.max_spans_per_trace == 0) {
    options_.max_spans_per_trace = 1;
  }
  e2e_hist_ = options_.stage_bucket_bounds.empty()
                  ? options_.metrics->GetHistogram("latency.e2e")
                  : options_.metrics->GetHistogram("latency.e2e", options_.stage_bucket_bounds);
}

Histogram* LatencyAttributor::StageHistogramLocked(const std::string& stage) {
  auto it = stage_hists_.find(stage);
  if (it == stage_hists_.end()) {
    const std::string name = "latency.stage." + stage;
    Histogram* hist = options_.stage_bucket_bounds.empty()
                          ? options_.metrics->GetHistogram(name)
                          : options_.metrics->GetHistogram(name, options_.stage_bucket_bounds);
    it = stage_hists_.emplace(stage, hist).first;
  }
  // Publish the node for the lock-free cache; the map is insert-only and
  // node-based, so the pointee never moves or dies before the attributor.
  last_stage_entry_.store(&*it, std::memory_order_release);
  return it->second;
}

void LatencyAttributor::OnSpan(const TraceSpan& span) {
  if (span.server != options_.server) {
    return;
  }
  const int64_t duration = std::max<int64_t>(0, span.end_micros - span.start_micros);
  if (span.name == kRootSpanName) {
    e2e_hist_->Record(duration);
    CompleteTrace(span);
    return;
  }
  const bool is_apply = EndsWith(span.name, ".apply");
  // Stage aggregation. Histogram::Record is lock-free, and a replica's
  // apply loop records the same stage name back-to-back, so the one-entry
  // cache makes the common case a single string compare — no mutex.
  const auto* cached = last_stage_entry_.load(std::memory_order_acquire);
  if (cached != nullptr && cached->first == span.name) {
    cached->second->Record(duration);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    StageHistogramLocked(span.name)->Record(duration);
  }
  // Span-tree buffering. Propose-path spans open a trace buffer; apply
  // spans join one only if the trace is already open locally. A trace whose
  // propose is not pending on this server (a remote replica's apply
  // traffic, or a log replay) never opens a buffer, so the hot apply path
  // never takes mu_ while nothing is open anywhere.
  if (is_apply && open_count_.load(std::memory_order_relaxed) == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_.find(span.trace_id);
  if (it == open_.end()) {
    if (is_apply) {
      return;
    }
    while (open_.size() >= options_.max_open_traces) {
      // FIFO-evict the oldest still-open buffer; order entries for traces
      // already completed are skipped lazily.
      if (open_order_.empty()) {
        open_.clear();
        break;
      }
      const uint64_t victim = open_order_.front();
      open_order_.pop_front();
      open_.erase(victim);
    }
    it = open_.emplace(span.trace_id, OpenTrace{}).first;
    open_order_.push_back(span.trace_id);
  }
  open_count_.store(open_.size(), std::memory_order_relaxed);
  if (it->second.spans.size() < options_.max_spans_per_trace) {
    it->second.spans.push_back(span);
  }
}

void LatencyAttributor::CompleteTrace(const TraceSpan& root) {
  const int64_t e2e = std::max<int64_t>(0, root.end_micros - root.start_micros);
  std::vector<TraceSpan> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++traces_completed_;
    auto it = open_.find(root.trace_id);
    if (it != open_.end()) {
      spans = std::move(it->second.spans);
      open_.erase(it);
      open_count_.store(open_.size(), std::memory_order_relaxed);
    }
  }
  spans.push_back(root);
  SortSpans(spans);
  const CriticalPath path = ComputeCriticalPath(spans, root);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const StageShare& seg : path.segments) {
      auto& slot = dominance_[seg.stage];
      slot.first += seg.micros;
      ++slot.second;
    }
    unattributed_total_ += path.unattributed_micros;
    e2e_total_ += path.total_micros;
  }
  options_.metrics->GetCounter("latency.traces.completed")->Increment();

  // Tail-based sampling. Strictly-greater keeps the simulator deterministic:
  // with the sim trace clock pinned, every e2e is 0 and only errored
  // proposals — a pure function of the schedule — are captured.
  const int64_t threshold = SlowThresholdMicros();
  if (!root.failed && e2e <= threshold) {
    return;
  }
  SlowTrace slow;
  slow.trace_id = root.trace_id;
  slow.start_micros = root.start_micros;
  slow.end_micros = root.end_micros;
  slow.e2e_micros = e2e;
  slow.errored = root.failed;
  slow.spans = std::move(spans);
  slow.critical_path = path;
  if (options_.recorder != nullptr) {
    const int64_t lo = root.start_micros - options_.flight_excerpt_margin_micros;
    const int64_t hi = root.end_micros + options_.flight_excerpt_margin_micros;
    std::vector<FlightRecorder::Event> window;
    for (const FlightRecorder::Event& event : options_.recorder->Snapshot()) {
      if (event.trace_id == root.trace_id || (event.micros >= lo && event.micros <= hi)) {
        window.push_back(event);
      }
    }
    if (window.size() > options_.flight_excerpt_events) {
      window.erase(window.begin(),
                   window.end() - static_cast<ptrdiff_t>(options_.flight_excerpt_events));
    }
    std::ostringstream out;
    for (const FlightRecorder::Event& event : window) {
      out << "  #" << event.seq << " [" << event.micros << "us] "
          << FlightEventKindName(event.kind);
      if (event.trace_id != 0) {
        out << " trace=" << event.trace_id;
      }
      if (event.a != 0 || event.b != 0) {
        out << " a=" << event.a << " b=" << event.b;
      }
      if (!event.detail.empty()) {
        out << " " << event.detail;
      }
      out << "\n";
    }
    slow.flight_excerpt = out.str();
  }
  slow_.Add(std::move(slow));
  options_.metrics->GetCounter("latency.slow.captured")->Increment();
}

CriticalPath LatencyAttributor::ComputeCriticalPath(const std::vector<TraceSpan>& spans,
                                                    const TraceSpan& root) {
  CriticalPath path;
  path.total_micros = std::max<int64_t>(0, root.end_micros - root.start_micros);
  if (path.total_micros == 0) {
    return path;
  }
  // Candidates, content-sorted so the walk is independent of arrival order.
  std::vector<TraceSpan> cands;
  cands.reserve(spans.size());
  for (const TraceSpan& span : spans) {
    if (span.name != kRootSpanName && span.end_micros > span.start_micros) {
      cands.push_back(span);
    }
  }
  SortSpans(cands);

  std::map<std::string, size_t> index;
  auto attribute = [&](const std::string& stage, int64_t micros) {
    auto [it, inserted] = index.emplace(stage, path.segments.size());
    if (inserted) {
      path.segments.push_back(StageShare{stage, 0});
    }
    path.segments[it->second].micros += micros;
  };

  // Greedy chain walk: at each moment follow the covering span that ends
  // latest; when nothing covers the moment, the gap is unattributed. The
  // walk partitions [root.start, root.end], so contributions sum exactly to
  // the end-to-end latency.
  int64_t cursor = root.start_micros;
  const int64_t end = root.end_micros;
  while (cursor < end) {
    const TraceSpan* best = nullptr;
    int64_t next_start = std::numeric_limits<int64_t>::max();
    for (const TraceSpan& c : cands) {
      if (c.start_micros > cursor) {
        next_start = std::min(next_start, c.start_micros);
        break;  // sorted by start: everything after starts even later
      }
      if (c.end_micros > cursor && (best == nullptr || c.end_micros > best->end_micros)) {
        best = &c;
      }
    }
    if (best != nullptr) {
      const int64_t to = std::min(best->end_micros, end);
      attribute(best->name, to - cursor);
      cursor = to;
    } else if (next_start < end) {
      path.unattributed_micros += next_start - cursor;
      cursor = next_start;
    } else {
      path.unattributed_micros += end - cursor;
      cursor = end;
    }
  }
  return path;
}

int64_t LatencyAttributor::SlowThresholdMicros() const {
  if (e2e_hist_->count() < options_.min_tail_samples) {
    return std::numeric_limits<int64_t>::max();
  }
  return e2e_hist_->Percentile(options_.tail_quantile);
}

uint64_t LatencyAttributor::traces_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_completed_;
}

std::string LatencyAttributor::RenderLatency() const {
  std::vector<std::pair<std::string, Histogram*>> stages;
  std::map<std::string, std::pair<int64_t, uint64_t>> dominance;
  uint64_t completed;
  int64_t unattributed;
  int64_t e2e_total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stages.assign(stage_hists_.begin(), stage_hists_.end());
    dominance = dominance_;
    completed = traces_completed_;
    unattributed = unattributed_total_;
    e2e_total = e2e_total_;
  }
  std::sort(stages.begin(), stages.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  std::ostringstream out;
  out << "latency attribution: server " << options_.server << "\n";
  out << "traces completed: " << completed << ", slow captured: " << slow_.captured()
      << " (evicted " << slow_.evicted() << ", capacity " << slow_.capacity() << ")\n";
  const int64_t threshold = SlowThresholdMicros();
  if (threshold == std::numeric_limits<int64_t>::max()) {
    out << "tail threshold: warming up (" << e2e_hist_->count() << "/"
        << options_.min_tail_samples << " samples)\n";
  } else {
    out << "tail threshold: " << threshold << "us (p" << options_.tail_quantile
        << " of e2e)\n";
  }
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %8s %8s %8s %8s %8s %12s %8s\n", "stage", "count",
                "p50", "p99", "p999", "max", "cp_total_us", "cp_share");
  out << line;
  auto stage_row = [&](const std::string& label, const Histogram* hist, int64_t cp_micros) {
    std::snprintf(line, sizeof(line),
                  "%-28s %8llu %8lld %8lld %8lld %8lld %12lld %7.1f%%\n", label.c_str(),
                  hist != nullptr ? (unsigned long long)hist->count() : 0ull,
                  hist != nullptr ? (long long)hist->Percentile(50) : 0ll,
                  hist != nullptr ? (long long)hist->Percentile(99) : 0ll,
                  hist != nullptr ? (long long)hist->Percentile(99.9) : 0ll,
                  hist != nullptr ? (long long)hist->Max() : 0ll, (long long)cp_micros,
                  ShareOf(cp_micros, e2e_total));
    out << line;
  };
  stage_row("e2e", e2e_hist_, 0);
  int64_t attributed_sum = 0;
  for (const auto& [stage, hist] : stages) {
    const auto it = dominance.find(stage);
    const int64_t cp = it == dominance.end() ? 0 : it->second.first;
    attributed_sum += cp;
    stage_row(stage, hist, cp);
  }
  // Stages on the critical path with no histogram yet (possible only if the
  // stage histogram registration raced the walk; keep them visible anyway).
  for (const auto& [stage, share] : dominance) {
    bool rendered = false;
    for (const auto& [name, _] : stages) {
      if (name == stage) {
        rendered = true;
        break;
      }
    }
    if (!rendered) {
      attributed_sum += share.first;
      stage_row(stage, nullptr, share.first);
    }
  }
  stage_row("unattributed", nullptr, unattributed);
  std::snprintf(line, sizeof(line),
                "critical path: %lld us attributed + %lld us unattributed = %lld us e2e "
                "(%.1f%% of end-to-end)\n",
                (long long)attributed_sum, (long long)unattributed, (long long)e2e_total,
                ShareOf(attributed_sum + unattributed, e2e_total));
  out << line;
  return out.str();
}

std::string LatencyAttributor::RenderLatencyJson() const {
  std::vector<std::pair<std::string, Histogram*>> stages;
  std::map<std::string, std::pair<int64_t, uint64_t>> dominance;
  uint64_t completed;
  int64_t unattributed;
  int64_t e2e_total;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stages.assign(stage_hists_.begin(), stage_hists_.end());
    dominance = dominance_;
    completed = traces_completed_;
    unattributed = unattributed_total_;
    e2e_total = e2e_total_;
  }
  std::sort(stages.begin(), stages.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  const int64_t threshold = SlowThresholdMicros();
  std::ostringstream out;
  out << "{\"server\":\"" << JsonEscape(options_.server) << "\",\"traces_completed\":"
      << completed << ",\"slow_captured\":" << slow_.captured() << ",\"slow_evicted\":"
      << slow_.evicted() << ",\"tail_threshold_us\":"
      << (threshold == std::numeric_limits<int64_t>::max() ? -1 : threshold)
      << ",\"e2e\":{\"count\":" << e2e_hist_->count() << ",\"p50\":" << e2e_hist_->Percentile(50)
      << ",\"p99\":" << e2e_hist_->Percentile(99) << ",\"p999\":" << e2e_hist_->Percentile(99.9)
      << ",\"max\":" << e2e_hist_->Max() << ",\"total_us\":" << e2e_total
      << ",\"unattributed_us\":" << unattributed << "},\"stages\":[";
  bool first = true;
  for (const auto& [stage, hist] : stages) {
    const auto it = dominance.find(stage);
    const int64_t cp = it == dominance.end() ? 0 : it->second.first;
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"stage\":\"" << JsonEscape(stage) << "\",\"count\":" << hist->count()
        << ",\"p50\":" << hist->Percentile(50) << ",\"p99\":" << hist->Percentile(99)
        << ",\"p999\":" << hist->Percentile(99.9) << ",\"max\":" << hist->Max()
        << ",\"cp_total_us\":" << cp << "}";
  }
  out << "]}";
  return out.str();
}

std::string LatencyAttributor::RenderSlowList() const {
  const std::vector<SlowTrace> traces = slow_.Snapshot();
  std::ostringstream out;
  out << "slow traces: " << traces.size() << " retained, " << slow_.captured()
      << " captured, " << slow_.evicted() << " evicted (capacity " << slow_.capacity()
      << ")\n";
  for (const SlowTrace& trace : traces) {
    out << "trace " << trace.trace_id << " e2e=" << trace.e2e_micros << "us errored="
        << (trace.errored ? 1 : 0) << " dominant=" << DominantStage(trace.critical_path)
        << " spans=" << trace.spans.size() << "\n";
  }
  return out.str();
}

std::string LatencyAttributor::RenderSlowListJson() const {
  const std::vector<SlowTrace> traces = slow_.Snapshot();
  std::ostringstream out;
  out << "{\"captured\":" << slow_.captured() << ",\"evicted\":" << slow_.evicted()
      << ",\"capacity\":" << slow_.capacity() << ",\"traces\":[";
  bool first = true;
  for (const SlowTrace& trace : traces) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"trace_id\":" << trace.trace_id << ",\"e2e_us\":" << trace.e2e_micros
        << ",\"errored\":" << (trace.errored ? "true" : "false") << ",\"dominant\":\""
        << JsonEscape(DominantStage(trace.critical_path)) << "\",\"spans\":"
        << trace.spans.size() << "}";
  }
  out << "]}";
  return out.str();
}

std::optional<std::string> LatencyAttributor::RenderSlowDetail(uint64_t trace_id) const {
  const std::optional<SlowTrace> trace = slow_.Find(trace_id);
  if (!trace.has_value()) {
    return std::nullopt;
  }
  std::ostringstream out;
  out << "slow trace " << trace->trace_id << ": e2e=" << trace->e2e_micros << "us errored="
      << (trace->errored ? 1 : 0) << " [" << trace->start_micros << ".." << trace->end_micros
      << "us]\n";
  out << "critical path:\n";
  for (const StageShare& seg : trace->critical_path.segments) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-28s %10lld us %6.1f%%\n", seg.stage.c_str(),
                  (long long)seg.micros,
                  ShareOf(seg.micros, trace->critical_path.total_micros));
    out << line;
  }
  if (trace->critical_path.unattributed_micros > 0) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-28s %10lld us %6.1f%%\n", "unattributed",
                  (long long)trace->critical_path.unattributed_micros,
                  ShareOf(trace->critical_path.unattributed_micros,
                          trace->critical_path.total_micros));
    out << line;
  }
  out << "spans:\n";
  for (const TraceSpan& span : trace->spans) {
    out << "  [" << span.start_micros << ".." << span.end_micros << "us] "
        << (span.server.empty() ? "client" : span.server) << " " << span.name
        << (span.failed ? " FAILED" : "") << "\n";
  }
  out << "flight excerpt:\n";
  out << (trace->flight_excerpt.empty() ? "  (none)\n" : trace->flight_excerpt);
  return out.str();
}

std::optional<std::string> LatencyAttributor::RenderSlowDetailJson(uint64_t trace_id) const {
  const std::optional<SlowTrace> trace = slow_.Find(trace_id);
  if (!trace.has_value()) {
    return std::nullopt;
  }
  std::ostringstream out;
  out << "{\"trace_id\":" << trace->trace_id << ",\"e2e_us\":" << trace->e2e_micros
      << ",\"errored\":" << (trace->errored ? "true" : "false") << ",\"start_us\":"
      << trace->start_micros << ",\"end_us\":" << trace->end_micros << ",\"critical_path\":[";
  bool first = true;
  for (const StageShare& seg : trace->critical_path.segments) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"stage\":\"" << JsonEscape(seg.stage) << "\",\"micros\":" << seg.micros << "}";
  }
  out << "],\"unattributed_us\":" << trace->critical_path.unattributed_micros
      << ",\"spans\":[";
  first = true;
  for (const TraceSpan& span : trace->spans) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"" << JsonEscape(span.name) << "\",\"server\":\""
        << JsonEscape(span.server) << "\",\"start_us\":" << span.start_micros
        << ",\"end_us\":" << span.end_micros << ",\"failed\":"
        << (span.failed ? "true" : "false") << "}";
  }
  out << "],\"flight_excerpt\":\"" << JsonEscape(trace->flight_excerpt) << "\"}";
  return out.str();
}

}  // namespace delos
