// A small Future/Promise with continuations.
//
// The IEngine API (paper Figure 2) returns Future<ReturnType> from propose
// and Future<ROTx> from sync. std::future lacks continuations, which the
// BaseEngine needs (e.g. "when this append completes, schedule playback to
// its position"), so we provide a minimal shared-state future:
//   * Future<T> is copyable (shared-future semantics); Get() blocks and
//     rethrows a stored exception.
//   * Then(fn) runs fn(Result<T>) immediately if ready, else from the thread
//     that fulfills the promise.
//   * A Promise destroyed without fulfillment delivers BrokenPromiseError.
#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/errors.h"

namespace delos {

// Result<T>: value or exception. What continuations receive.
template <typename T>
class Result {
 public:
  static Result Ok(T value) {
    Result r;
    r.value_ = std::move(value);
    return r;
  }
  static Result Err(std::exception_ptr error) {
    Result r;
    r.error_ = std::move(error);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }
  const std::exception_ptr& error() const { return error_; }

  // Returns the value or rethrows the stored exception.
  T Unwrap() && {
    if (error_) {
      std::rethrow_exception(error_);
    }
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  std::exception_ptr error_;
};

struct Unit {};

namespace internal {

template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
  std::exception_ptr error;
  bool ready = false;
  std::vector<std::function<void(Result<T>)>> callbacks;

  Result<T> MakeResult() {
    if (error) {
      return Result<T>::Err(error);
    }
    return Result<T>::Ok(*value);
  }
};

}  // namespace internal

template <typename T>
class Future {
 public:
  Future() = default;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state) : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  bool IsReady() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->ready;
  }

  // Blocks until the promise is fulfilled; rethrows a stored exception.
  T Get() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->ready; });
    if (state_->error) {
      std::rethrow_exception(state_->error);
    }
    return *state_->value;
  }

  // Blocks up to the timeout. Returns nullopt on timeout; rethrows on error.
  std::optional<T> GetFor(std::chrono::microseconds timeout) const {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!state_->cv.wait_for(lock, timeout, [&] { return state_->ready; })) {
      return std::nullopt;
    }
    if (state_->error) {
      std::rethrow_exception(state_->error);
    }
    return *state_->value;
  }

  // Registers a continuation. Runs inline if already ready, else on the
  // fulfilling thread. Continuations must not block on the same future.
  void Then(std::function<void(Result<T>)> fn) const {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->ready) {
        state_->callbacks.push_back(std::move(fn));
        return;
      }
    }
    fn(state_->MakeResult());
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}
  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&&) noexcept = default;
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  ~Promise() {
    if (state_ != nullptr && !fulfilled_) {
      SetException(std::make_exception_ptr(BrokenPromiseError("promise dropped unfulfilled")));
    }
  }

  Future<T> GetFuture() const { return Future<T>(state_); }

  void SetValue(T value) {
    Fulfill([&](internal::FutureState<T>& s) { s.value = std::move(value); });
  }

  void SetException(std::exception_ptr error) {
    Fulfill([&](internal::FutureState<T>& s) { s.error = std::move(error); });
  }

 private:
  template <typename Setter>
  void Fulfill(Setter setter) {
    std::vector<std::function<void(Result<T>)>> callbacks;
    Result<T> result = Result<T>::Err(nullptr);
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->ready) {
        return;  // First fulfillment wins; duplicates are ignored.
      }
      setter(*state_);
      state_->ready = true;
      callbacks.swap(state_->callbacks);
      result = state_->MakeResult();
      state_->cv.notify_all();
    }
    fulfilled_ = true;
    for (auto& cb : callbacks) {
      cb(result);
    }
  }

  std::shared_ptr<internal::FutureState<T>> state_;
  bool fulfilled_ = false;
};

// Convenience: an already-fulfilled future.
template <typename T>
Future<T> MakeReadyFuture(T value) {
  Promise<T> promise;
  promise.SetValue(std::move(value));
  return promise.GetFuture();
}

template <typename T>
Future<T> MakeErrorFuture(std::exception_ptr error) {
  Promise<T> promise;
  promise.SetException(std::move(error));
  return promise.GetFuture();
}

}  // namespace delos
