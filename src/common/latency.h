// Tail-latency attribution: per-stage aggregation, critical-path analysis,
// and tail-based exemplar capture.
//
// A proposal in a layered Delos stack crosses many engines (client →
// batching → sessionorder → base.append → per-layer apply); PR 3's Tracer
// records one span per hop, but only renders them per trace id. The
// production question — "p99 propose is 8 ms, *which layer* is it spent in"
// — needs aggregation across proposals. The LatencyAttributor subscribes to
// the cluster Tracer as a span observer and, per server:
//
//  * aggregates every stage's duration into `latency.stage.<name>`
//    histograms in the server's MetricsRegistry (p50/p99/p999/max, fed into
//    the TimeSeriesStore windows by the existing watchdog cadence), plus
//    `latency.e2e` for the client-visible root span;
//
//  * computes each completed proposal's critical path: a greedy chain walk
//    over [root.start, root.end] that always follows the overlapping span
//    ending latest, attributing every microsecond to exactly one stage (or
//    to "unattributed" when no span covers the moment). Batching merges
//    union trace ids onto the batch entry, so a merged proposal's chain
//    walks through the shared batch spans naturally. Because the walk
//    partitions the root window, per-stage contributions plus unattributed
//    time sum *exactly* to end-to-end latency — the stage-dominance
//    breakdown ("base.append contributes 61%") is conservation-checked by
//    construction;
//
//  * runs tail-based sampling (the LogPlayer lesson: keep full detail only
//    for the anomalous few): a full span tree is retained in the bounded
//    SlowTraceStore only when end-to-end latency strictly exceeds a rolling
//    quantile threshold of `latency.e2e`, or the proposal errored. Each
//    exemplar carries the trace id, critical-path breakdown, and a
//    FlightRecorder excerpt around the slow window.
//
// Determinism: all timestamps come from the Tracer's injected clock. Under
// the simulator the trace clock is pinned, every duration is 0, and the
// strictly-greater threshold test never fires — so exemplar selection
// reduces to "errored proposals", a pure function of the schedule, and two
// replays of one seed produce byte-identical stage breakdowns and exemplar
// sets (flight excerpts, like flight dumps elsewhere, are excluded from the
// determinism-checked renderings).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/trace.h"

namespace delos {

class MetricsRegistry;
class Histogram;

// One stage's share of a proposal's critical path.
struct StageShare {
  std::string stage;
  int64_t micros = 0;
};

// Result of the critical-path chain walk over one proposal's span tree.
struct CriticalPath {
  std::vector<StageShare> segments;  // first-touch order, merged per stage
  int64_t unattributed_micros = 0;   // moments no span covered
  int64_t total_micros = 0;          // root end - start; == sum(segments) + unattributed
};

// A retained slow-proposal exemplar.
struct SlowTrace {
  uint64_t trace_id = 0;
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  int64_t e2e_micros = 0;
  bool errored = false;
  std::vector<TraceSpan> spans;  // full tree, content-ordered
  CriticalPath critical_path;
  std::string flight_excerpt;  // FlightRecorder events around the slow window
};

// Bounded FIFO store of slow-proposal exemplars: oldest evicted first, so
// retention is a pure function of the capture sequence (deterministic under
// the simulator).
class SlowTraceStore {
 public:
  explicit SlowTraceStore(size_t capacity);

  void Add(SlowTrace trace);
  std::vector<SlowTrace> Snapshot() const;
  std::optional<SlowTrace> Find(uint64_t trace_id) const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t captured() const;
  uint64_t evicted() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t captured_ = 0;
  uint64_t evicted_ = 0;
  std::deque<SlowTrace> traces_;
};

class LatencyAttributor {
 public:
  struct Options {
    MetricsRegistry* metrics = nullptr;  // required
    // Only spans carrying this server label are consumed: each server's
    // attributor answers for its own proposals, and the sim's reference rig
    // (which shares the cluster Tracer) never pollutes a real server's view.
    std::string server;
    FlightRecorder* recorder = nullptr;  // optional exemplar excerpt source
    // Rolling tail threshold: capture when e2e strictly exceeds this
    // percentile of `latency.e2e`, once min_tail_samples have been seen.
    double tail_quantile = 99.0;
    uint64_t min_tail_samples = 64;
    size_t slow_capacity = 32;
    // Bound on concurrently-open per-trace span buffers (FIFO evicted).
    size_t max_open_traces = 4096;
    size_t max_spans_per_trace = 128;
    size_t flight_excerpt_events = 16;
    int64_t flight_excerpt_margin_micros = 1000;
    // Optional explicit bucket bounds for the latency.stage.* / latency.e2e
    // histograms (empty = the registry default layout).
    std::vector<int64_t> stage_bucket_bounds;
  };

  explicit LatencyAttributor(Options options);

  // Span feed (wired as a Tracer observer). Thread-safe; cheap for spans
  // that are not part of a locally-rooted open trace.
  void OnSpan(const TraceSpan& span);

  // The greedy interval-chain walk (exposed for tests and the simulator).
  // `spans` need not be sorted; the walk is order-independent.
  static CriticalPath ComputeCriticalPath(const std::vector<TraceSpan>& spans,
                                          const TraceSpan& root);

  // Current capture threshold in micros (INT64_MAX until min_tail_samples).
  int64_t SlowThresholdMicros() const;

  uint64_t traces_completed() const;

  const SlowTraceStore& slow_traces() const { return slow_; }

  // Deterministic renderings for /latency and /slow (and `delosctl`):
  // stage table + dominance breakdown, exemplar list, one exemplar's detail
  // (the only place the flight excerpt appears). The *Json variants back
  // `--json`.
  std::string RenderLatency() const;
  std::string RenderLatencyJson() const;
  std::string RenderSlowList() const;
  std::string RenderSlowListJson() const;
  std::optional<std::string> RenderSlowDetail(uint64_t trace_id) const;
  std::optional<std::string> RenderSlowDetailJson(uint64_t trace_id) const;

 private:
  struct OpenTrace {
    std::vector<TraceSpan> spans;
  };

  Histogram* StageHistogramLocked(const std::string& stage);
  void CompleteTrace(const TraceSpan& root);

  Options options_;
  Histogram* e2e_hist_ = nullptr;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Histogram*> stage_hists_;
  // Lock-free one-entry cache of the last stage-histogram lookup. It points
  // at a node of stage_hists_, which is insert-only and node-based, so the
  // pointee is stable for the attributor's lifetime; a replica's apply loop
  // records the same stage back-to-back and skips mu_ entirely.
  std::atomic<const std::pair<const std::string, Histogram*>*> last_stage_entry_{nullptr};
  // Mirrors open_.size() so apply spans can skip mu_ while nothing is open.
  std::atomic<size_t> open_count_{0};
  std::unordered_map<uint64_t, OpenTrace> open_;
  std::deque<uint64_t> open_order_;  // FIFO eviction of open trace buffers
  uint64_t traces_completed_ = 0;
  // Dominance accumulators: critical-path micros (and touch count) per
  // stage, plus the unattributed remainder, summed over completed traces.
  std::map<std::string, std::pair<int64_t, uint64_t>> dominance_;
  int64_t unattributed_total_ = 0;
  int64_t e2e_total_ = 0;

  SlowTraceStore slow_;
};

}  // namespace delos
