// Compact binary serialization (the reproduction's stand-in for Thrift).
//
// Log entries, engine headers, and application ops are all encoded with this
// format: varint integers (zigzag for signed), length-prefixed strings, and
// composable helpers for optionals / vectors / maps. Decoding failures throw
// SerdeError, which is deterministic (every replica sees the same bytes).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/errors.h"

namespace delos {

// Appends values to an owned byte buffer.
class Serializer {
 public:
  Serializer() = default;
  // Size-hinted constructor: pre-reserves the buffer so hot-path encoders
  // (e.g. Propose serializing a LogEntry of known size) avoid reallocation.
  explicit Serializer(size_t size_hint) { buffer_.reserve(size_hint); }

  void Reserve(size_t additional) { buffer_.reserve(buffer_.size() + additional); }

  // Encoded size of a varint, for exact size precomputation.
  static size_t VarintSize(uint64_t value) {
    size_t size = 1;
    while (value >= 0x80) {
      ++size;
      value >>= 7;
    }
    return size;
  }

  // Encoded size of a length-prefixed string.
  static size_t StringSize(std::string_view value) {
    return VarintSize(value.size()) + value.size();
  }

  void WriteVarint(uint64_t value) {
    while (value >= 0x80) {
      buffer_.push_back(static_cast<char>((value & 0x7f) | 0x80));
      value >>= 7;
    }
    buffer_.push_back(static_cast<char>(value));
  }

  void WriteSigned(int64_t value) {
    // Zigzag encoding.
    WriteVarint((static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63));
  }

  void WriteBool(bool value) { buffer_.push_back(value ? 1 : 0); }

  void WriteDouble(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    WriteFixed64(bits);
  }

  void WriteFixed64(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<char>(value >> (8 * i)));
    }
  }

  void WriteString(std::string_view value) {
    WriteVarint(value.size());
    buffer_.append(value.data(), value.size());
  }

  template <typename T, typename WriteFn>
  void WriteOptional(const std::optional<T>& value, WriteFn write_fn) {
    WriteBool(value.has_value());
    if (value.has_value()) {
      write_fn(*this, *value);
    }
  }

  template <typename T, typename WriteFn>
  void WriteVector(const std::vector<T>& values, WriteFn write_fn) {
    WriteVarint(values.size());
    for (const T& v : values) {
      write_fn(*this, v);
    }
  }

  template <typename K, typename V, typename Comp, typename WriteKey, typename WriteVal>
  void WriteMap(const std::map<K, V, Comp>& values, WriteKey write_key, WriteVal write_val) {
    WriteVarint(values.size());
    for (const auto& [k, v] : values) {
      write_key(*this, k);
      write_val(*this, v);
    }
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Reads values back out of a byte view. Throws SerdeError on truncation or
// malformed varints.
class Deserializer {
 public:
  explicit Deserializer(std::string_view data) : data_(data) {}

  uint64_t ReadVarint() {
    uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) {
        throw SerdeError("truncated varint");
      }
      const auto byte = static_cast<unsigned char>(data_[pos_++]);
      if (shift >= 64) {
        throw SerdeError("varint too long");
      }
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        return value;
      }
      shift += 7;
    }
  }

  int64_t ReadSigned() {
    const uint64_t z = ReadVarint();
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  bool ReadBool() {
    if (pos_ >= data_.size()) {
      throw SerdeError("truncated bool");
    }
    return data_[pos_++] != 0;
  }

  double ReadDouble() {
    const uint64_t bits = ReadFixed64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  uint64_t ReadFixed64() {
    // Compare against the remaining bytes: `pos_ + 8 > data_.size()` would
    // wrap around for pos_ near SIZE_MAX and let the check pass.
    if (data_.size() - pos_ < 8) {
      throw SerdeError("truncated fixed64");
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  std::string ReadString() { return std::string(ReadStringView()); }

  // Zero-copy read: the returned view borrows from the deserializer's input
  // and is valid only while that buffer lives. The bounds check compares the
  // claimed size against the remaining bytes — an adversarial varint size
  // near UINT64_MAX would make `pos_ + size` wrap and slip past a
  // `pos_ + size > data_.size()` formulation.
  std::string_view ReadStringView() {
    const uint64_t size = ReadVarint();
    if (size > data_.size() - pos_) {
      throw SerdeError("truncated string");
    }
    std::string_view out = data_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  template <typename T, typename ReadFn>
  std::optional<T> ReadOptional(ReadFn read_fn) {
    if (!ReadBool()) {
      return std::nullopt;
    }
    return read_fn(*this);
  }

  template <typename T, typename ReadFn>
  std::vector<T> ReadVector(ReadFn read_fn) {
    const uint64_t size = ReadVarint();
    std::vector<T> out;
    out.reserve(size);
    for (uint64_t i = 0; i < size; ++i) {
      out.push_back(read_fn(*this));
    }
    return out;
  }

  template <typename K, typename V, typename ReadKey, typename ReadVal>
  std::map<K, V> ReadMap(ReadKey read_key, ReadVal read_val) {
    const uint64_t size = ReadVarint();
    std::map<K, V> out;
    for (uint64_t i = 0; i < size; ++i) {
      K key = read_key(*this);
      V value = read_val(*this);
      out.emplace(std::move(key), std::move(value));
    }
    return out;
  }

  uint8_t ReadFixed8() {
    if (pos_ >= data_.size()) {
      throw SerdeError("truncated byte");
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace delos
