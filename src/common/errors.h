// Exception taxonomy for the Delos reproduction.
//
// The paper (§3.4) makes exceptions part of the protocol contract:
//  * A *deterministic* exception thrown inside an engine's or application's
//    apply upcall rolls back that layer's nested sub-transaction and is
//    relayed, RPC-style, to the waiting propose call. The system keeps
//    processing subsequent log entries (consistency is preserved because
//    every replica throws identically).
//  * A *non-deterministic* exception (e.g. local-store I/O failure) may
//    diverge across replicas; the only safe response is to crash the server.
//
// We encode that split in the type system: everything derived from
// DeterministicError is benign-by-contract; NonDeterministicError subtypes
// cause the apply loop to abort the server.
#pragma once

#include <stdexcept>
#include <string>

namespace delos {

// Root of all Delos exceptions.
class DelosError : public std::runtime_error {
 public:
  explicit DelosError(const std::string& what) : std::runtime_error(what) {}
};

// Deterministic errors: same inputs throw identically on every replica.
// Applications throw these freely from apply (e.g. row_not_found).
class DeterministicError : public DelosError {
 public:
  explicit DeterministicError(const std::string& what) : DelosError(what) {}
};

// Non-deterministic errors: replica-local failures. The apply loop treats
// these (and any exception not derived from DeterministicError) as fatal.
class NonDeterministicError : public DelosError {
 public:
  explicit NonDeterministicError(const std::string& what) : DelosError(what) {}
};

// Malformed bytes during deserialization. Deterministic: every replica sees
// the same log entry bytes.
class SerdeError : public DeterministicError {
 public:
  explicit SerdeError(const std::string& what) : DeterministicError(what) {}
};

// LocalStore failures that may not reproduce across replicas (out of space,
// checkpoint I/O, corruption detected by checksum).
class StoreError : public NonDeterministicError {
 public:
  explicit StoreError(const std::string& what) : NonDeterministicError(what) {}
};

// A log position below the trim prefix was read.
class TrimmedError : public DelosError {
 public:
  explicit TrimmedError(const std::string& what) : DelosError(what) {}
};

// A shared-log operation could not complete (no quorum, sealed loglet, ...).
class LogUnavailableError : public DelosError {
 public:
  explicit LogUnavailableError(const std::string& what) : DelosError(what) {}
};

// An operation raced with a loglet seal during reconfiguration; retried
// internally by the VirtualLog, surfaced only if retries are exhausted.
class SealedError : public DelosError {
 public:
  explicit SealedError(const std::string& what) : DelosError(what) {}
};

// Propose was refused by a protocol engine (e.g. the BlockingEngine example
// from Figure 4, or a non-leaseholder write while a lease is active).
class ProposeRejectedError : public DeterministicError {
 public:
  explicit ProposeRejectedError(const std::string& what) : DeterministicError(what) {}
};

// Future/Promise misuse or a promise dropped without fulfillment.
class BrokenPromiseError : public DelosError {
 public:
  explicit BrokenPromiseError(const std::string& what) : DelosError(what) {}
};

}  // namespace delos
