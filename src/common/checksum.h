// Hashing and incremental content checksums.
//
// The paper (§6) reports that Delos guards against replica divergence with
// incremental checksums of the LocalStore. We reproduce that: the store keeps
// a rolling checksum that is a function only of its live (key, value) set, so
// two replicas that applied the same log prefix must agree on it regardless
// of write order or compaction history.
#pragma once

#include <cstdint>
#include <string_view>

namespace delos {

// 64-bit FNV-1a. Stable across platforms; used for checksum building blocks
// and for deterministic hashing needs (e.g. LogBackup segment naming).
uint64_t Fnv1a64(std::string_view data, uint64_t seed = 14695981039346656037ULL);

// Order-independent incremental checksum over a set of (key, value) pairs.
//
// The digest is the XOR of a per-pair hash, so inserting and then removing a
// pair restores the previous digest. XOR makes updates O(1):
//   Add(k, v)    when a pair becomes live,
//   Remove(k, v) when it stops being live (overwritten or deleted).
class IncrementalChecksum {
 public:
  void Add(std::string_view key, std::string_view value) { digest_ ^= PairHash(key, value); }
  void Remove(std::string_view key, std::string_view value) { digest_ ^= PairHash(key, value); }

  uint64_t digest() const { return digest_; }
  void Reset() { digest_ = 0; }

  static uint64_t PairHash(std::string_view key, std::string_view value);

 private:
  uint64_t digest_ = 0;
};

}  // namespace delos
