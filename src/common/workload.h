// Workload attribution: streaming sketches answering *who* and *which keys*
// drive the shared log.
//
// PRs 3, 4 and 7 answer "where does time go" (spans, health, critical
// paths); the multi-tenant production story of the paper needs "who is
// spending it" — one misbehaving client or one hot key can starve the apply
// loop for every application multiplexed onto the log, and the ROADMAP's
// next steps (sharding, admission control, quotas) are blind without
// per-tenant accounting. The WorkloadAttributor keeps three classic
// streaming sketches, all O(1)-ish per update and hard-bounded in memory:
//
//  * SpaceSaving — top-K heavy hitters (hot keys, top clients). Exact while
//    distinct keys <= K; past saturation the minimum-count entry is evicted
//    and the newcomer inherits its count as `error`, so every reported count
//    is an overestimate by at most `error` and true heavy hitters are never
//    dropped (the Metwally et al. guarantee).
//
//  * CountMinSketch — per-key op and byte rates. A depth x width grid of
//    counters; Estimate returns the minimum over the key's d cells, an
//    overestimate by at most eps * total with probability 1 - delta.
//
//  * HyperLogLog — distinct clients / distinct keys per window, within a
//    few percent at 2^p registers.
//
// Two taps feed the attributor:
//
//  * propose path — every layer an entry descends through charges the
//    proposing client ids (piggybacked in a reserved entry header, exactly
//    like trace ids; see core/entry.h) with the entry's bytes, yielding the
//    per-layer resource table in /workload. Batching merges union client
//    ids onto the batch entry, so the shared downstream append attributes
//    to every constituent client.
//
//  * apply path — each app engine extracts a semantic key from the op
//    payload via an IKeyExtractor, so replayed bytes attribute to the same
//    keys on every replica (the extractor is a pure function of the
//    payload bytes).
//
// Determinism: updates use a seeded hash family (the seed is an Option —
// sims pin it), window rollover happens only at explicit CloseWindow calls
// with caller-supplied timestamps, and every render iterates in sorted
// (count desc, key asc) order — so under the simulator the rendered
// workload summary is a pure function of the schedule, byte-identical
// across replays.
//
// This header lives in src/common and knows nothing about LogEntry; the
// client-id <-> header-map plumbing is in src/core/entry.h and the apply
// tap decorator in src/core/cluster.cc.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace delos {

class MetricsRegistry;
class FlightRecorder;
class Counter;
class Gauge;

// Seeded 64-bit hash (8-byte-chunk multiply-xor core with a splitmix64
// finalizer — one multiply per word, since this runs once per applied
// record). The same
// (data, seed) pair hashes identically on every replica and every replay;
// different seeds give effectively independent hash functions, which is all
// Count-Min's independence argument needs in practice.
uint64_t WorkloadHash(std::string_view data, uint64_t seed);

// Derives a secondary hash from an already-computed WorkloadHash (splitmix64
// over value + salt * golden-ratio). The apply tap hashes each key's bytes
// exactly once and every downstream consumer — Count-Min rows, HLL
// registers — re-mixes that one hash instead of re-walking the bytes; the
// same derivation is used for integer client ids so the hot path never
// renders them to decimal.
inline uint64_t MixHash(uint64_t value, uint64_t salt) {
  uint64_t h = value + salt * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

// Space-Saving heavy hitters (Metwally, Agrawal, El Abbadi 2005).
//
// Holds at most `capacity` keys. While distinct keys fit, counts are exact
// (error == 0). Once saturated, an unseen key replaces the entry with the
// minimum count — ties broken by evicting the lexicographically smallest
// key, so eviction is deterministic — and starts at min_count + weight with
// error = min_count. Reported counts therefore never underestimate, and any
// key whose true count exceeds total/capacity is guaranteed present.
//
// Entries are indexed by the key's 64-bit WorkloadHash (a collision folds
// two keys into one slot — at <= capacity tracked keys against a 64-bit
// space the probability is negligible, and the failure mode is a slightly
// inflated count, never a crash). The hashed-index makes the hot-path find
// an integer probe, and lets the attributor pass a precomputed hash via
// AddHashed. All rendered/serialized orders are sorted, so iteration order
// of the underlying table never leaks into output.
class SpaceSaving {
 public:
  struct HeavyHitter {
    std::string key;
    uint64_t count = 0;  // overestimate: true count is in [count-error, count]
    uint64_t error = 0;
  };

  explicit SpaceSaving(size_t capacity, uint64_t seed = 0);

  void Add(std::string_view key, uint64_t weight = 1);
  // Hot-path variant: `hash` must be WorkloadHash(key, seed()) — the
  // attributor computes it once per op and fans it out to every sketch.
  void AddHashed(uint64_t hash, std::string_view key, uint64_t weight = 1);

  // Entries sorted by (count desc, key asc) — a deterministic render order.
  std::vector<HeavyHitter> TopK() const;
  // The single heaviest entry by (count desc, key asc) without building the
  // sorted table — the throttled hot-spot check runs this, so it must not
  // copy every tracked key. nullopt when empty.
  std::optional<HeavyHitter> Peak() const;
  // Estimated count for one key (0 when untracked).
  uint64_t EstimateOf(std::string_view key) const;

  uint64_t total_weight() const { return total_weight_; }
  size_t size() const { return slots_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t seed() const { return seed_; }
  // Live footprint: tracked key bytes plus per-entry bookkeeping.
  size_t MemoryBytes() const;

  // Folds other's entries in (Add per entry with its count, in sorted key
  // order so saturation-time evictions are deterministic; errors are summed
  // into the surviving entry's error so the overestimate bound still holds
  // after a merge). Throws DelosError when seeds differ.
  void Merge(const SpaceSaving& other);

  std::string Serialize() const;
  // Throws SerdeError on malformed input.
  static SpaceSaving Parse(std::string_view blob);

  void Clear();

 private:
  struct Slot {
    uint64_t hash = 0;  // WorkloadHash(key, seed_)
    std::string key;
    uint64_t count = 0;
    uint64_t error = 0;
  };

  // Sorted (key asc) snapshot of the slots — every deterministic cold path
  // (TopK, Serialize, Merge) starts from this.
  std::vector<const Slot*> SortedSlots() const;

  // Open-addressed index over slots_: the hot-path find is a masked probe
  // into a power-of-two table (no division, no node chase — measurably
  // cheaper than std::unordered_map on the per-record apply tap). Kept at
  // <= 25% load; eviction rebuilds it (eviction already pays an O(K) min
  // scan, so the rebuild doesn't change its complexity).
  Slot* Find(uint64_t hash);
  const Slot* Find(uint64_t hash) const;
  void IndexInsert(uint64_t hash, uint32_t slot);
  void RebuildIndex();

  size_t capacity_;
  uint64_t seed_;
  uint64_t total_weight_ = 0;
  size_t key_bytes_ = 0;
  std::vector<Slot> slots_;       // dense, at most capacity_ entries
  std::vector<uint32_t> index_;   // slot ordinal + 1; 0 = empty
  uint64_t index_mask_ = 0;
};

// Count-Min sketch (Cormode, Muthukrishnan 2005): depth rows of width
// counters; the key is hashed once (WorkloadHash with the family seed) and
// each row's cell index is an independent MixHash derivation of that one
// hash. Estimate = min over the key's cells (an overestimate).
class CountMinSketch {
 public:
  CountMinSketch(size_t depth, size_t width, uint64_t seed);

  void Add(std::string_view key, uint64_t weight = 1);
  uint64_t Estimate(std::string_view key) const;
  // Hot-path variants: `hash` must be WorkloadHash(key, seed()).
  void AddHashed(uint64_t hash, uint64_t weight = 1);
  uint64_t EstimateHashed(uint64_t hash) const;
  uint64_t seed() const { return seed_; }

  uint64_t total_weight() const { return total_weight_; }
  size_t depth() const { return depth_; }
  size_t width() const { return width_; }
  size_t MemoryBytes() const { return cells_.size() * sizeof(uint64_t); }

  // Cell-wise sum. Throws DelosError when dimensions or seed differ.
  void Merge(const CountMinSketch& other);

  std::string Serialize() const;
  static CountMinSketch Parse(std::string_view blob);

  void Clear();

 private:
  size_t CellIndex(size_t row, uint64_t hash) const;

  size_t depth_;
  size_t width_;
  uint64_t seed_;
  uint64_t total_weight_ = 0;
  std::vector<uint64_t> cells_;  // row-major depth_ x width_
};

// HyperLogLog (Flajolet et al. 2007) with the standard small-range
// correction. precision p in [4, 16] gives m = 2^p one-byte registers and
// ~1.04/sqrt(m) relative error.
class HyperLogLog {
 public:
  HyperLogLog(int precision, uint64_t seed);

  void Add(std::string_view key);
  // Hot-path variant: `hash` must be WorkloadHash(key, seed()).
  void AddHashed(uint64_t hash);
  uint64_t seed() const { return seed_; }
  // Estimated cardinality, rounded to the nearest integer (deterministic:
  // pure function of the registers).
  uint64_t Estimate() const;

  int precision() const { return precision_; }
  size_t MemoryBytes() const { return registers_.size(); }

  // Register-wise max. Throws DelosError when precision or seed differ.
  void Merge(const HyperLogLog& other);

  std::string Serialize() const;
  static HyperLogLog Parse(std::string_view blob);

  void Clear();

 private:
  int precision_;
  uint64_t seed_;
  std::vector<uint8_t> registers_;
};

// Extracts the semantic key an application op targets from its serialized
// payload (the varint-opcode envelope every app client writes). A pure
// function of the bytes — replicas replaying the same log attribute
// identically. Implementations must not throw: malformed or unrecognized
// payloads return "" (charged to the per-engine catch-all).
class IKeyExtractor {
 public:
  virtual ~IKeyExtractor() = default;
  virtual std::string KeyOf(std::string_view payload) const = 0;
};

// The per-server attribution plane. Thread-safe; one instance per
// ClusterServer, fed by the propose tap (StackableEngine / BaseEngine) and
// the apply tap (the WorkloadTapApplicator wrapping each app applicator).
class WorkloadAttributor {
 public:
  struct Options {
    MetricsRegistry* metrics = nullptr;  // required
    std::string server;                  // label in renders
    FlightRecorder* recorder = nullptr;  // optional kWorkload event sink
    // Hash-family seed. The simulator pins it (together with its injected
    // clock windows) so sketch state is a pure function of the schedule.
    uint64_t hash_seed = 0x5eed0fde;
    size_t topk_keys = 64;
    size_t topk_clients = 64;
    // Depth 4 x width 1024 bounds per-estimate error at e/1024 (~0.27%) of
    // total weight with failure probability e^-4 — and keeps both rate
    // sketches at 32 KiB so the apply thread's cache isn't evicted from
    // under it.
    size_t cm_depth = 4;
    size_t cm_width = 1024;
    int hll_precision = 12;
    // The apply tap samples every N-th applied op: unsampled ops cost two
    // relaxed atomic adds (op and byte totals stay exact), sampled ops run
    // the full pipeline — key extraction, client-id parse, and every sketch
    // update with an N-fold compensating weight. Counts are unbiased for
    // any key or client hot enough to matter (the plane's whole purpose);
    // distinct-key/client estimates cover what the sampled subset observed,
    // so a key or client with a handful of ops in a window can be missed.
    // Rounded down to a power of two; 1 = sample everything (exact per-op
    // attribution at ~8x the default tap cost). Deterministic: the sample
    // decision is a pure function of the applied-op ordinal, identical on
    // every replica.
    size_t rate_sample_every = 8;
    // Hard per-server byte budget across every sketch the attributor owns.
    // The constructor shrinks (in order) cm_width, hll_precision, then the
    // top-K capacities until the worst-case footprint fits; the live
    // footprint is exported as the `workload.sketch.bytes` gauge.
    size_t sketch_byte_budget = 512 * 1024;
    // A key (or client) holding strictly more than this share of applied
    // ops — once at least hot_min_ops have been seen — is flagged: one
    // kWorkload flight event per distinct offender, and HealthCheck stall
    // reasons gain a "hot key: ..." attribution.
    double hot_share_threshold_pct = 25.0;
    uint64_t hot_min_ops = 64;
  };

  // Keys longer than this are truncated before sketching, so tracked-key
  // memory is hard-bounded no matter what an application writes.
  static constexpr size_t kMaxTrackedKeyBytes = 96;

  explicit WorkloadAttributor(Options options);

  WorkloadAttributor(const WorkloadAttributor&) = delete;
  WorkloadAttributor& operator=(const WorkloadAttributor&) = delete;

  // Propose-path tap: `layer` (e.g. "batching", "base.append") handled an
  // entry of `bytes` on behalf of `client_ids` (empty = unattributed).
  void ChargePropose(std::string_view layer, std::span<const uint64_t> client_ids, size_t bytes);

  // Apply-path tap, split so the caller can skip key extraction and
  // client-id parsing entirely for unsampled ops:
  //
  //   if (attributor->BeginApply(bytes)) {
  //     attributor->ChargeApplySampled(extract(key), parse(ids), bytes);
  //   }
  //
  // BeginApply counts the op (two relaxed atomic adds, no lock) and reports
  // whether it falls in the 1-in-rate_sample_every sampled subset.
  // ChargeApplySampled runs every sketch update with the compensating
  // weight. ChargeApply is the convenience composition (tests and cold
  // callers).
  bool BeginApply(size_t bytes);
  void ChargeApplySampled(std::string_view key, std::span<const uint64_t> client_ids,
                          size_t bytes);
  void ChargeApply(std::string_view key, std::span<const uint64_t> client_ids, size_t bytes);

  // Closes one accounting window (driven by the watchdog cadence with its
  // injected clock): publishes the window's distinct-key/client estimates
  // as gauges — picked up by the MetricsRegistry snapshot that follows —
  // then resets the window HLLs.
  void CloseWindow(int64_t now_micros);

  struct HotSpot {
    std::string name;   // key, or decimal client id
    uint64_t ops = 0;
    double share_pct = 0.0;
  };
  // The hottest key / client iff it exceeds the configured share threshold
  // (and hot_min_ops); nullopt otherwise. HealthCheck appends these to
  // stall reasons.
  std::optional<HotSpot> HottestKey() const;
  std::optional<HotSpot> HottestClient() const;

  // Current live sketch footprint in bytes (also kept in the
  // workload.sketch.bytes gauge).
  size_t SketchBytes() const;
  size_t sketch_byte_budget() const { return options_.sketch_byte_budget; }

  uint64_t apply_ops() const;

  // Deterministic renders for /workload, /top/keys, /top/clients and
  // `delosctl workload` / `delosctl top keys|clients`. The *Json variants
  // back `?format=json` / `--json`.
  std::string RenderWorkload() const;
  std::string RenderWorkloadJson() const;
  std::string RenderTopKeys() const;
  std::string RenderTopKeysJson() const;
  std::string RenderTopClients() const;
  std::string RenderTopClientsJson() const;

  const Options& options() const { return options_; }

 private:
  struct LayerUsage {
    uint64_t ops = 0;
    uint64_t bytes = 0;
    Counter* ops_counter = nullptr;
    Counter* bytes_counter = nullptr;
  };

  struct CachedClient {
    uint64_t id = 0;
    bool used = false;
    std::string name;    // decimal rendering of the id
    uint64_t hash = 0;   // WorkloadHash(name, client sketch seed)
  };

  void ChargeClientsLocked(std::span<const uint64_t> client_ids, size_t bytes);
  const CachedClient& ClientSlotLocked(uint64_t id);
  void FlushCountersLocked();
  void MaybeFlagHotLocked();
  std::optional<HotSpot> HottestOfLocked(const SpaceSaving& sketch, uint64_t total) const;
  void UpdateSketchBytesLocked();
  std::vector<SpaceSaving::HeavyHitter> TopKeysLocked() const;
  std::vector<SpaceSaving::HeavyHitter> TopClientsLocked() const;

  Options options_;

  Counter* apply_ops_counter_ = nullptr;
  Counter* apply_bytes_counter_ = nullptr;
  Counter* hot_events_counter_ = nullptr;
  Gauge* sketch_bytes_gauge_ = nullptr;
  Gauge* window_keys_gauge_ = nullptr;
  Gauge* window_clients_gauge_ = nullptr;
  Gauge* distinct_keys_gauge_ = nullptr;
  Gauge* distinct_clients_gauge_ = nullptr;

  mutable std::mutex mu_;
  SpaceSaving top_keys_;
  SpaceSaving top_clients_;
  CountMinSketch key_ops_;
  CountMinSketch key_bytes_;
  HyperLogLog keys_seen_;
  HyperLogLog clients_seen_;
  HyperLogLog window_keys_;
  HyperLogLog window_clients_;
  std::map<std::string, LayerUsage, std::less<>> layers_;
  // id -> (decimal string, hash): avoids a to_string + byte hash per op.
  // Open-addressed (masked linear probe, like SpaceSaving's index) so the
  // per-op lookup does no division and no node chase. Purely a performance
  // cache — entries are recomputed identically after the (deterministic)
  // clear at kClientCacheCap live entries, so results never depend on cache
  // state.
  static constexpr size_t kClientCacheCap = 1024;
  std::vector<CachedClient> client_cache_;  // 2 * cap slots, <= 50% load
  size_t client_cache_used_ = 0;
  uint64_t rate_sample_mask_ = 3;  // rate_sample_every - 1 (power of two)
  // Exact totals, updated outside the lock by BeginApply (the only per-op
  // cost for unsampled ops).
  std::atomic<uint64_t> apply_ops_total_{0};
  std::atomic<uint64_t> apply_bytes_total_{0};
  uint64_t sampled_ops_ = 0;  // maintenance cadence (every 16th sampled op)
  // Totals already flushed into the metric counters (flushed on the
  // maintenance cadence and at window close, so the per-op path does no
  // extra atomic RMWs).
  uint64_t counter_flushed_ops_ = 0;
  uint64_t counter_flushed_bytes_ = 0;
  uint64_t windows_closed_ = 0;
  std::string last_hot_key_;     // last offender flagged to the recorder
  std::string last_hot_client_;  // (one kWorkload event per distinct spot)
};

}  // namespace delos
