// Earliest-divergence attribution for the digest-beacon plane.
//
// The DigestEngine (src/engines) appends digest beacons through the shared
// log and, applying each one, compares the proposer's state digests against
// its own at the same log positions. This tracker is where the verdicts
// land. It turns a stream of per-position match/mismatch observations into
// the thing an operator actually needs: the EARLIEST beacon interval
// (window_lo, window_hi] inside which the replicas' applied states first
// disagreed — every position at or below window_lo is known-verified, the
// digest at window_hi is known-wrong, so whatever corrupted this replica
// (bad apply, torn checkpoint, non-deterministic engine) happened in
// between.
//
// A conviction latches: later, wider mismatches never overwrite the first
// narrow one, and a conviction is never un-convicted (a divergent replica
// that drifts back into agreement by luck is still a divergent replica).
// At conviction time the tracker captures a flight-recorder excerpt and the
// last trace ids near the window, records a kDivergence event, and flips
// its health verdict to UNHEALTHY with the position range in the detail —
// the watchdog and /divergence take it from there.
//
// Lives in src/common: the tracker knows digests, positions, and the
// observability primitives (metrics / flight recorder / health strings) —
// nothing about engines or the log.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace delos {

class MetricsRegistry;
class FlightRecorder;
class Counter;
class Gauge;

struct DivergenceOptions {
  // Replica id, used to label the report and the flight event.
  std::string server;
  // Exports digest.{beacons_appended,beacons_checked,mismatches,
  // last_verified_pos} when non-null.
  MetricsRegistry* metrics = nullptr;
  // kDivergence event sink + source of the conviction-time flight excerpt.
  FlightRecorder* recorder = nullptr;
  // Flight events / trace ids captured into the conviction report.
  size_t excerpt_events = 16;
  size_t excerpt_trace_ids = 8;
};

class DivergenceTracker {
 public:
  explicit DivergenceTracker(DivergenceOptions options);

  // Proposer side: a beacon header/record left this replica.
  void OnBeaconAppended();

  // Apply side: a beacon proposed by `proposer` was applied at `pos` and
  // this replica computed its own digest there (even if the beacon carried
  // no overlapping samples to compare yet).
  void OnBeaconChecked(uint64_t pos, std::string_view proposer);

  // One overlapping sample agreed: position `pos` is verified.
  void OnSampleMatch(uint64_t pos);

  // One overlapping sample disagreed. `window_lo` is the greatest position
  // the caller knows to be verified below `pos` (0 if none). The first
  // mismatch convicts and latches; later calls only bump the counter.
  void OnSampleMismatch(uint64_t window_lo, uint64_t pos, uint64_t local_digest,
                        uint64_t remote_digest, std::string_view proposer, uint64_t trace_id);

  bool convicted() const;
  uint64_t window_lo() const;
  uint64_t window_hi() const;
  uint64_t last_verified_pos() const;
  uint64_t beacons_appended() const;
  uint64_t beacons_checked() const;
  uint64_t mismatches() const;

  // Health verdict: empty reason while clean; "digest divergence convicted
  // in (lo, hi] vs <proposer>" once convicted. The DigestEngine wraps this
  // in a HealthReport.
  std::string HealthReason() const;

  // Human-readable conviction report: the window, the digest pair, the
  // proposer, the captured trace ids, and the flight excerpt.
  // `include_digests=false` drops the absolute digest values and the
  // excerpt timestamps' host-variant parts — digests fold per-incarnation
  // engine instance ids, so the schedule-determined variant is what the
  // simulator compares byte-for-byte across replays.
  std::string Render(bool include_digests = true) const;
  std::string RenderJson() const;

 private:
  void CaptureConvictionLocked(uint64_t window_lo, uint64_t pos, uint64_t local_digest,
                               uint64_t remote_digest, std::string_view proposer,
                               uint64_t trace_id);

  DivergenceOptions options_;

  mutable std::mutex mu_;
  bool convicted_ = false;
  uint64_t window_lo_ = 0;
  uint64_t window_hi_ = 0;
  uint64_t local_digest_ = 0;
  uint64_t remote_digest_ = 0;
  std::string proposer_;
  uint64_t trace_id_ = 0;
  std::vector<uint64_t> window_trace_ids_;
  std::string flight_excerpt_;
  uint64_t last_verified_pos_ = 0;
  uint64_t beacons_appended_ = 0;
  uint64_t beacons_checked_ = 0;
  uint64_t mismatches_ = 0;
  std::string last_proposer_;

  // Owned by the registry; null when no registry was injected.
  Counter* appended_counter_ = nullptr;
  Counter* checked_counter_ = nullptr;
  Counter* mismatch_counter_ = nullptr;
  Gauge* verified_gauge_ = nullptr;
};

}  // namespace delos
