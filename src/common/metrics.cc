#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/clock.h"
#include "src/common/metrics_ts.h"

namespace delos {

namespace {

// Bucket layout: 32 linear buckets for [0, 32), then 16 sub-buckets per
// power of two. Gives <= ~6% relative error across the range.
constexpr int kLinearBuckets = 32;
constexpr int kSubBuckets = 16;

}  // namespace

namespace {

bool ValidBounds(const std::vector<int64_t>& bounds) {
  if (bounds.empty()) {
    return false;
  }
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (bounds[i] < 0 || (i > 0 && bounds[i] <= bounds[i - 1])) {
      return false;
    }
  }
  return true;
}

}  // namespace

Histogram::Histogram() : buckets_(kBuckets) {}

Histogram::Histogram(std::vector<int64_t> bucket_bounds) {
  if (ValidBounds(bucket_bounds)) {
    custom_bounds_ = std::move(bucket_bounds);
    // One bucket per bound plus the implicit overflow bucket.
    buckets_ = std::vector<std::atomic<uint64_t>>(custom_bounds_.size() + 1);
  } else {
    buckets_ = std::vector<std::atomic<uint64_t>>(kBuckets);
  }
}

int Histogram::BucketIndex(int64_t value) const {
  if (custom_bounds_.empty()) {
    return BucketFor(value);
  }
  const auto it = std::lower_bound(custom_bounds_.begin(), custom_bounds_.end(),
                                   value < 0 ? 0 : value);
  return static_cast<int>(it - custom_bounds_.begin());  // == size() → overflow bucket
}

int64_t Histogram::UpperBound(int index) const {
  if (custom_bounds_.empty()) {
    return BucketUpperBound(index);
  }
  if (index >= static_cast<int>(custom_bounds_.size())) {
    return custom_bounds_.back();  // overflow saturates at the last bound
  }
  return custom_bounds_[index];
}

int Histogram::BucketFor(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  if (value < kLinearBuckets) {
    return static_cast<int>(value);
  }
  // Position of the highest set bit.
  const int log2 = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int base_log = 5;  // log2(kLinearBuckets)
  const int sub = static_cast<int>((value >> (log2 - 4)) & (kSubBuckets - 1));
  const int index = kLinearBuckets + (log2 - base_log) * kSubBuckets + sub;
  return std::min(index, kBuckets - 1);
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index < kLinearBuckets) {
    return index;
  }
  const int base_log = 5;
  const int tier = (index - kLinearBuckets) / kSubBuckets;
  const int sub = (index - kLinearBuckets) % kSubBuckets;
  const int log2 = base_log + tier;
  const int64_t base = int64_t{1} << log2;
  const int64_t step = base / kSubBuckets;
  return base + step * (sub + 1) - 1;
}

void Histogram::Record(int64_t value_micros) {
  buckets_[BucketIndex(value_micros)].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  total_sum_.fetch_add(value_micros < 0 ? 0 : value_micros, std::memory_order_relaxed);
  int64_t prev = max_seen_.load(std::memory_order_relaxed);
  while (value_micros > prev &&
         !max_seen_.compare_exchange_weak(prev, value_micros, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::count() const { return total_count_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const uint64_t n = count();
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(total_sum_.load(std::memory_order_relaxed)) / static_cast<double>(n);
}

int64_t Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  uint64_t seen = 0;
  for (int i = 0; i < bucket_count(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target && seen > 0) {
      return UpperBound(i);
    }
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  total_count_.store(0, std::memory_order_relaxed);
  total_sum_.store(0, std::memory_order_relaxed);
  max_seen_.store(0, std::memory_order_relaxed);
}

Histogram::CumulativeSnapshot Histogram::Snapshot() const {
  CumulativeSnapshot snapshot;
  snapshot.buckets.resize(buckets_.size());
  for (int i = 0; i < bucket_count(); ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snapshot.count = total_count_.load(std::memory_order_relaxed);
  snapshot.sum = total_sum_.load(std::memory_order_relaxed);
  return snapshot;
}

namespace {

// Upper bound of bucket `i` under either layout: explicit bounds when
// provided (overflow saturates at the last bound), the default log-bucketed
// layout otherwise.
int64_t BoundsUpperBound(const std::vector<int64_t>& bounds, int index,
                         int64_t (*default_bound)(int)) {
  if (bounds.empty()) {
    return default_bound(index);
  }
  if (index >= static_cast<int>(bounds.size())) {
    return bounds.back();
  }
  return bounds[index];
}

}  // namespace

int64_t Histogram::PercentileOfBuckets(const std::vector<uint64_t>& buckets, double p) {
  return PercentileOfBuckets(buckets, p, {});
}

int64_t Histogram::PercentileOfBuckets(const std::vector<uint64_t>& buckets, double p,
                                       const std::vector<int64_t>& bounds) {
  uint64_t total = 0;
  for (const uint64_t b : buckets) {
    total += b;
  }
  if (total == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(total)));
  uint64_t seen = 0;
  const size_t cap = bounds.empty() ? static_cast<size_t>(kBuckets) : bounds.size() + 1;
  const int n = static_cast<int>(std::min(buckets.size(), cap));
  for (int i = 0; i < n; ++i) {
    seen += buckets[i];
    if (seen >= target && seen > 0) {
      return BoundsUpperBound(bounds, i, &Histogram::BucketUpperBound);
    }
  }
  return BoundsUpperBound(bounds, n - 1, &Histogram::BucketUpperBound);
}

int64_t Histogram::MaxOfBuckets(const std::vector<uint64_t>& buckets) {
  return MaxOfBuckets(buckets, {});
}

int64_t Histogram::MaxOfBuckets(const std::vector<uint64_t>& buckets,
                                const std::vector<int64_t>& bounds) {
  const size_t cap = bounds.empty() ? static_cast<size_t>(kBuckets) : bounds.size() + 1;
  const int n = static_cast<int>(std::min(buckets.size(), cap));
  for (int i = n - 1; i >= 0; --i) {
    if (buckets[i] != 0) {
      return BoundsUpperBound(bounds, i, &Histogram::BucketUpperBound);
    }
  }
  return 0;
}

void Histogram::Merge(const Histogram& other) {
  if (custom_bounds_ == other.custom_bounds_) {
    for (int i = 0; i < bucket_count(); ++i) {
      buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
  } else {
    // Layout mismatch: re-bucket the other histogram's samples at each
    // source bucket's upper bound (approximate, like the percentiles).
    for (int i = 0; i < other.bucket_count(); ++i) {
      const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) {
        buckets_[BucketIndex(other.UpperBound(i))].fetch_add(n, std::memory_order_relaxed);
      }
    }
  }
  total_count_.fetch_add(other.total_count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  total_sum_.fetch_add(other.total_sum_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  int64_t other_max = other.Max();
  int64_t prev = max_seen_.load(std::memory_order_relaxed);
  while (other_max > prev &&
         !max_seen_.compare_exchange_weak(prev, other_max, std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<int64_t>& bucket_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(bucket_bounds);
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, _] : histograms_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::GaugeNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, _] : gauges_) {
    names.push_back(name);
  }
  return names;
}

std::string MetricsRegistry::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " value=" << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " gauge=" << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << name << " count=" << histogram->count() << " mean=" << histogram->Mean()
        << " p50=" << histogram->Percentile(50) << " p99=" << histogram->Percentile(99)
        << " p999=" << histogram->Percentile(99.9) << " max=" << histogram->Max() << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << PrometheusLabelValue(name) << "\":" << counter->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << PrometheusLabelValue(name) << "\":" << gauge->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << PrometheusLabelValue(name) << "\":{\"count\":" << histogram->count()
        << ",\"mean\":" << histogram->Mean() << ",\"p50\":" << histogram->Percentile(50)
        << ",\"p99\":" << histogram->Percentile(99)
        << ",\"p999\":" << histogram->Percentile(99.9) << ",\"max\":" << histogram->Max()
        << "}";
  }
  out << "}}";
  return out.str();
}

std::string PrometheusName(const std::string& name) {
  std::string sanitized = name;
  for (char& c : sanitized) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  // The grammar's first character excludes digits ([a-zA-Z_:][a-zA-Z0-9_:]*).
  if (sanitized.empty() || (sanitized[0] >= '0' && sanitized[0] <= '9')) {
    sanitized.insert(sanitized.begin(), '_');
  }
  return sanitized;
}

std::string PrometheusLabelValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string pname = PrometheusName(name);
    out << "# TYPE " << pname << " summary\n";
    out << pname << "{quantile=\"0.5\"} " << histogram->Percentile(50) << "\n";
    out << pname << "{quantile=\"0.99\"} " << histogram->Percentile(99) << "\n";
    out << pname << "{quantile=\"0.999\"} " << histogram->Percentile(99.9) << "\n";
    out << pname << "_sum " << static_cast<int64_t>(histogram->Mean() *
                                                    static_cast<double>(histogram->count()))
        << "\n";
    out << pname << "_count " << histogram->count() << "\n";
  }
  return out.str();
}

void MetricsRegistry::SnapshotInto(TimeSeriesStore& store, int64_t now_micros) const {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, TimeSeriesStore::Cumulative::Hist> histograms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      counters[name] = counter->value();
    }
    for (const auto& [name, gauge] : gauges_) {
      gauges[name] = gauge->value();
    }
    for (const auto& [name, histogram] : histograms_) {
      Histogram::CumulativeSnapshot snapshot = histogram->Snapshot();
      TimeSeriesStore::Cumulative::Hist hist;
      hist.buckets = std::move(snapshot.buckets);
      hist.bounds = histogram->bucket_bounds();
      hist.count = snapshot.count;
      hist.sum = snapshot.sum;
      histograms[name] = std::move(hist);
    }
  }
  store.Commit(now_micros, std::move(counters), std::move(gauges), std::move(histograms));
}

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* histogram)
    : histogram_(histogram), start_micros_(RealClock::Instance()->NowMicros()) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  histogram_->Record(RealClock::Instance()->NowMicros() - start_micros_);
}

}  // namespace delos
