#include "src/common/metrics_ts.h"

#include <algorithm>
#include <sstream>

#include "src/common/metrics.h"

namespace delos {

namespace {

// Minimal JSON string escaper (RenderJson emits metric names, which are
// developer-chosen but must not be able to break the document).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

void TimeSeriesStore::Commit(int64_t now_micros, std::map<std::string, uint64_t> counters,
                             std::map<std::string, int64_t> gauges,
                             std::map<std::string, Cumulative::Hist> histograms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_baseline_) {
    // First snapshot only establishes the baseline; there is no window to
    // close because we don't know when these cumulative values accrued.
    have_baseline_ = true;
    last_snapshot_micros_ = now_micros;
    prev_.counters = std::move(counters);
    prev_.histograms = std::move(histograms);
    return;
  }

  MetricWindow window;
  window.index = next_index_++;
  window.start_micros = last_snapshot_micros_;
  // A backward clock jump (NTP step, sim clock reuse) must not produce a
  // negative-width window: clamp the close to the open. Rates over the
  // zero-width window read 0 (RatePerSecond guards span <= 0).
  window.end_micros = std::max(now_micros, window.start_micros);

  for (const auto& [name, value] : counters) {
    uint64_t delta = value;
    auto it = prev_.counters.find(name);
    // Counter::Reset() can move a cumulative value backward; clamp to 0
    // rather than report a huge unsigned wraparound rate.
    if (it != prev_.counters.end()) {
      delta = value >= it->second ? value - it->second : 0;
    }
    window.counter_deltas[name] = delta;
  }
  window.gauges = std::move(gauges);

  for (const auto& [name, hist] : histograms) {
    MetricWindow::HistogramDelta delta;
    std::vector<uint64_t> bucket_delta = hist.buckets;
    auto it = prev_.histograms.find(name);
    if (it != prev_.histograms.end()) {
      const Cumulative::Hist& old = it->second;
      const size_t n = std::min(bucket_delta.size(), old.buckets.size());
      bool reset = false;
      for (size_t i = 0; i < n; ++i) {
        if (bucket_delta[i] < old.buckets[i]) {
          reset = true;  // Histogram::Reset() mid-window: treat as fresh
          break;
        }
        bucket_delta[i] -= old.buckets[i];
      }
      if (reset) {
        bucket_delta = hist.buckets;
        delta.count = hist.count;
        delta.sum = hist.sum;
      } else {
        delta.count = hist.count >= old.count ? hist.count - old.count : hist.count;
        delta.sum = hist.sum - old.sum;
      }
    } else {
      delta.count = hist.count;
      delta.sum = hist.sum;
    }
    delta.p50 = Histogram::PercentileOfBuckets(bucket_delta, 50, hist.bounds);
    delta.p99 = Histogram::PercentileOfBuckets(bucket_delta, 99, hist.bounds);
    delta.p999 = Histogram::PercentileOfBuckets(bucket_delta, 99.9, hist.bounds);
    delta.max = Histogram::MaxOfBuckets(bucket_delta, hist.bounds);
    window.histograms[name] = delta;
  }

  const int64_t window_end = window.end_micros;
  windows_.push_back(std::move(window));
  while (windows_.size() > capacity_) {
    windows_.pop_front();
  }
  // Track the clamped close, not the raw timestamp, so a backward jump does
  // not drag subsequent window opens backward in time.
  last_snapshot_micros_ = window_end;
  prev_.counters = std::move(counters);
  prev_.histograms = std::move(histograms);
}

std::vector<MetricWindow> TimeSeriesStore::Windows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<MetricWindow>(windows_.begin(), windows_.end());
}

std::optional<MetricWindow> TimeSeriesStore::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (windows_.empty()) {
    return std::nullopt;
  }
  return windows_.back();
}

size_t TimeSeriesStore::window_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_.size();
}

uint64_t TimeSeriesStore::windows_committed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_index_;
}

double TimeSeriesStore::RatePerSecond(const std::string& counter, size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (windows_.empty() || last_n == 0) {
    return 0.0;
  }
  const size_t n = std::min(last_n, windows_.size());
  uint64_t total = 0;
  int64_t span_micros = 0;
  for (size_t i = windows_.size() - n; i < windows_.size(); ++i) {
    const MetricWindow& w = windows_[i];
    auto it = w.counter_deltas.find(counter);
    if (it != w.counter_deltas.end()) {
      total += it->second;
    }
    span_micros += w.width_micros();
  }
  if (span_micros <= 0) {
    return 0.0;
  }
  return static_cast<double>(total) / (static_cast<double>(span_micros) / 1e6);
}

std::optional<int64_t> TimeSeriesStore::LatestGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
    auto g = it->gauges.find(name);
    if (g != it->gauges.end()) {
      return g->second;
    }
  }
  return std::nullopt;
}

std::string TimeSeriesStore::RenderJson(size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = (last_n == 0) ? windows_.size() : std::min(last_n, windows_.size());
  std::ostringstream out;
  out << "{\"capacity\":" << capacity_ << ",\"windows_committed\":" << next_index_
      << ",\"windows\":[";
  bool first_window = true;
  for (size_t i = windows_.size() - n; i < windows_.size(); ++i) {
    const MetricWindow& w = windows_[i];
    if (!first_window) {
      out << ",";
    }
    first_window = false;
    out << "{\"index\":" << w.index << ",\"start_micros\":" << w.start_micros
        << ",\"end_micros\":" << w.end_micros << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, delta] : w.counter_deltas) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(name) << "\":" << delta;
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : w.gauges) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(name) << "\":" << value;
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : w.histograms) {
      if (!first) out << ",";
      first = false;
      out << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
          << ",\"p50\":" << h.p50 << ",\"p99\":" << h.p99 << ",\"p999\":" << h.p999
          << ",\"max\":" << h.max << "}";
    }
    out << "}}";
  }
  out << "]}";
  return out.str();
}

std::string TimeSeriesStore::RenderTable(size_t last_n) const {
  // Collect the union of metric names over the tail, then one row per metric.
  std::vector<MetricWindow> tail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = std::min(last_n == 0 ? windows_.size() : last_n, windows_.size());
    tail.assign(windows_.end() - static_cast<ptrdiff_t>(n), windows_.end());
  }
  std::ostringstream out;
  if (tail.empty()) {
    out << "(no closed windows yet)\n";
    return out.str();
  }
  int64_t span_micros = 0;
  std::map<std::string, uint64_t> counter_totals;
  std::map<std::string, int64_t> gauge_latest;
  std::map<std::string, MetricWindow::HistogramDelta> hist_latest;
  for (const MetricWindow& w : tail) {
    span_micros += w.width_micros();
    for (const auto& [name, delta] : w.counter_deltas) {
      counter_totals[name] += delta;
    }
    for (const auto& [name, value] : w.gauges) {
      gauge_latest[name] = value;  // later windows overwrite: last-value
    }
    for (const auto& [name, h] : w.histograms) {
      if (h.count > 0) {
        hist_latest[name] = h;
      }
    }
  }
  const double span_sec = static_cast<double>(span_micros) / 1e6;
  char line[256];
  std::snprintf(line, sizeof(line), "%-44s %14s  (over %zu windows, %.1fs)\n", "counter",
                "rate/s", tail.size(), span_sec);
  out << line;
  for (const auto& [name, total] : counter_totals) {
    const double rate = span_sec > 0 ? static_cast<double>(total) / span_sec : 0.0;
    std::snprintf(line, sizeof(line), "%-44s %14.1f\n", name.c_str(), rate);
    out << line;
  }
  std::snprintf(line, sizeof(line), "%-44s %14s\n", "gauge", "value");
  out << line;
  for (const auto& [name, value] : gauge_latest) {
    std::snprintf(line, sizeof(line), "%-44s %14lld\n", name.c_str(), (long long)value);
    out << line;
  }
  std::snprintf(line, sizeof(line), "%-44s %8s %8s %8s %8s %8s\n", "histogram (latest window)",
                "count", "p50", "p99", "p999", "max");
  out << line;
  for (const auto& [name, h] : hist_latest) {
    std::snprintf(line, sizeof(line), "%-44s %8llu %8lld %8lld %8lld %8lld\n", name.c_str(),
                  (unsigned long long)h.count, (long long)h.p50, (long long)h.p99,
                  (long long)h.p999, (long long)h.max);
    out << line;
  }
  return out.str();
}

void TimeSeriesStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  windows_.clear();
  next_index_ = 0;
  have_baseline_ = false;
  last_snapshot_micros_ = 0;
  prev_ = Cumulative{};
}

}  // namespace delos
