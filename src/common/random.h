// Deterministic pseudo-random helpers for tests, property sweeps, and
// workload generators. Everything is seeded explicitly so runs reproduce.
#pragma once

#include <cstdint>
#include <random>
#include <string>

namespace delos {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Exponentially distributed value with the given mean (inter-arrival gaps
  // for open-loop workload generators).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Random printable ASCII string of exactly n bytes.
  std::string String(size_t n) {
    static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(kAlphabet[Uniform(0, sizeof(kAlphabet) - 2)]);
    }
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace delos
