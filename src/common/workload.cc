#include "src/common/workload.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <algorithm>

#include "src/common/errors.h"
#include "src/common/metrics.h"
#include "src/common/serde.h"
#include "src/common/trace.h"

namespace delos {

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t WorkloadHash(std::string_view data, uint64_t seed) {
  // 8-byte-chunk multiply-xor core (one multiply per word instead of one
  // per byte — this runs once per applied record) with the seed folded into
  // the offset basis and a splitmix64 finalizer for avalanche. Chunks are
  // read little-endian via memcpy; every platform we target is
  // little-endian, and determinism across replicas/replays only requires a
  // stable value per platform run.
  uint64_t h = 14695981039346656037ULL ^ (seed * 0x9E3779B97F4A7C15ULL);
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = (h ^ chunk) * 0x2545F4914F6CDD1DULL;
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  if (n > 0) {
    std::memcpy(&tail, p, n);
  }
  // + n keeps "a" and "a\0" (and the empty string) distinct.
  h = (h ^ (tail + n)) * 0x2545F4914F6CDD1DULL;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

// ---------------------------------------------------------------------------
// SpaceSaving

namespace {

size_t IndexSizeFor(size_t capacity) {
  // <= 25% load keeps linear probes short.
  size_t size = 16;
  while (size < capacity * 4) {
    size *= 2;
  }
  return size;
}

}  // namespace

SpaceSaving::SpaceSaving(size_t capacity, uint64_t seed)
    : capacity_(std::max<size_t>(capacity, 1)),
      seed_(seed),
      index_(IndexSizeFor(capacity_), 0),
      index_mask_(index_.size() - 1) {
  slots_.reserve(capacity_);
}

SpaceSaving::Slot* SpaceSaving::Find(uint64_t hash) {
  // WorkloadHash output is already well mixed, so the masked probe start
  // needs no re-hash.
  for (size_t i = hash & index_mask_;; i = (i + 1) & index_mask_) {
    const uint32_t ordinal = index_[i];
    if (ordinal == 0) {
      return nullptr;
    }
    Slot* slot = &slots_[ordinal - 1];
    if (slot->hash == hash) {
      return slot;
    }
  }
}

const SpaceSaving::Slot* SpaceSaving::Find(uint64_t hash) const {
  return const_cast<SpaceSaving*>(this)->Find(hash);
}

void SpaceSaving::IndexInsert(uint64_t hash, uint32_t slot) {
  size_t i = hash & index_mask_;
  while (index_[i] != 0) {
    i = (i + 1) & index_mask_;
  }
  index_[i] = slot + 1;
}

void SpaceSaving::RebuildIndex() {
  std::fill(index_.begin(), index_.end(), 0);
  for (size_t s = 0; s < slots_.size(); ++s) {
    IndexInsert(slots_[s].hash, static_cast<uint32_t>(s));
  }
}

void SpaceSaving::Add(std::string_view key, uint64_t weight) {
  AddHashed(WorkloadHash(key, seed_), key, weight);
}

void SpaceSaving::AddHashed(uint64_t hash, std::string_view key, uint64_t weight) {
  total_weight_ += weight;
  if (Slot* slot = Find(hash); slot != nullptr) {
    slot->count += weight;
    return;
  }
  if (slots_.size() < capacity_) {
    slots_.push_back(Slot{hash, std::string(key), weight, 0});
    IndexInsert(hash, static_cast<uint32_t>(slots_.size() - 1));
    key_bytes_ += key.size();
    return;
  }
  // Saturated: evict the strict minimum by (count, key) — a deterministic
  // choice no matter what order the slots sit in.
  Slot* victim = &slots_[0];
  for (Slot& cand : slots_) {
    if (cand.count < victim->count ||
        (cand.count == victim->count && cand.key < victim->key)) {
      victim = &cand;
    }
  }
  const uint64_t floor = victim->count;
  key_bytes_ -= victim->key.size();
  key_bytes_ += key.size();
  *victim = Slot{hash, std::string(key), floor + weight, floor};
  RebuildIndex();
}

std::vector<const SpaceSaving::Slot*> SpaceSaving::SortedSlots() const {
  std::vector<const Slot*> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back(&slot);
  }
  std::sort(out.begin(), out.end(), [](const Slot* a, const Slot* b) { return a->key < b->key; });
  return out;
}

std::vector<SpaceSaving::HeavyHitter> SpaceSaving::TopK() const {
  std::vector<HeavyHitter> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back(HeavyHitter{slot.key, slot.count, slot.error});
  }
  std::sort(out.begin(), out.end(), [](const HeavyHitter& a, const HeavyHitter& b) {
    if (a.count != b.count) {
      return a.count > b.count;
    }
    return a.key < b.key;
  });
  return out;
}

std::optional<SpaceSaving::HeavyHitter> SpaceSaving::Peak() const {
  const Slot* best = nullptr;
  for (const Slot& slot : slots_) {
    if (best == nullptr || slot.count > best->count ||
        (slot.count == best->count && slot.key < best->key)) {
      best = &slot;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return HeavyHitter{best->key, best->count, best->error};
}

uint64_t SpaceSaving::EstimateOf(std::string_view key) const {
  const Slot* slot = Find(WorkloadHash(key, seed_));
  return slot == nullptr ? 0 : slot->count;
}

size_t SpaceSaving::MemoryBytes() const {
  return key_bytes_ + slots_.size() * sizeof(Slot) + index_.size() * sizeof(uint32_t);
}

void SpaceSaving::Merge(const SpaceSaving& other) {
  if (other.seed_ != seed_) {
    throw DelosError("space-saving merge seed mismatch");
  }
  for (const Slot* slot : other.SortedSlots()) {
    if (Slot* mine = Find(slot->hash); mine != nullptr) {
      mine->count += slot->count;
      mine->error += slot->error;
      total_weight_ += slot->count;
      continue;
    }
    // Reuse the eviction path for the count, then fold in the incoming
    // error so the overestimate bound survives the merge.
    AddHashed(slot->hash, slot->key, slot->count);
    if (Slot* inserted = Find(slot->hash); inserted != nullptr) {
      inserted->error += slot->error;
    }
  }
}

std::string SpaceSaving::Serialize() const {
  Serializer ser;
  ser.WriteVarint(capacity_);
  ser.WriteFixed64(seed_);
  ser.WriteVarint(total_weight_);
  ser.WriteVarint(slots_.size());
  for (const Slot* slot : SortedSlots()) {
    ser.WriteString(slot->key);
    ser.WriteVarint(slot->count);
    ser.WriteVarint(slot->error);
  }
  return ser.Release();
}

SpaceSaving SpaceSaving::Parse(std::string_view blob) {
  Deserializer de(blob);
  const uint64_t capacity = de.ReadVarint();
  SpaceSaving out(capacity, de.ReadFixed64());
  const uint64_t total = de.ReadVarint();
  const uint64_t count = de.ReadVarint();
  for (uint64_t i = 0; i < count; ++i) {
    std::string key = de.ReadString();
    const uint64_t c = de.ReadVarint();
    const uint64_t e = de.ReadVarint();
    out.Add(key, c);
    if (Slot* slot = out.Find(WorkloadHash(key, out.seed_)); slot != nullptr) {
      slot->error += e;
    }
  }
  out.total_weight_ = total;
  return out;
}

void SpaceSaving::Clear() {
  slots_.clear();
  std::fill(index_.begin(), index_.end(), 0);
  total_weight_ = 0;
  key_bytes_ = 0;
}

// ---------------------------------------------------------------------------
// CountMinSketch

CountMinSketch::CountMinSketch(size_t depth, size_t width, uint64_t seed)
    : depth_(std::max<size_t>(depth, 1)),
      width_(std::max<size_t>(width, 16)),
      seed_(seed),
      cells_(depth_ * width_, 0) {}

size_t CountMinSketch::CellIndex(size_t row, uint64_t hash) const {
  return row * width_ + static_cast<size_t>(MixHash(hash, row + 1) % width_);
}

void CountMinSketch::Add(std::string_view key, uint64_t weight) {
  AddHashed(WorkloadHash(key, seed_), weight);
}

void CountMinSketch::AddHashed(uint64_t hash, uint64_t weight) {
  total_weight_ += weight;
  for (size_t row = 0; row < depth_; ++row) {
    cells_[CellIndex(row, hash)] += weight;
  }
}

uint64_t CountMinSketch::Estimate(std::string_view key) const {
  return EstimateHashed(WorkloadHash(key, seed_));
}

uint64_t CountMinSketch::EstimateHashed(uint64_t hash) const {
  uint64_t best = UINT64_MAX;
  for (size_t row = 0; row < depth_; ++row) {
    best = std::min(best, cells_[CellIndex(row, hash)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  if (other.depth_ != depth_ || other.width_ != width_ || other.seed_ != seed_) {
    throw DelosError("count-min merge shape/seed mismatch");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
  total_weight_ += other.total_weight_;
}

std::string CountMinSketch::Serialize() const {
  Serializer ser;
  ser.WriteVarint(depth_);
  ser.WriteVarint(width_);
  ser.WriteFixed64(seed_);
  ser.WriteVarint(total_weight_);
  for (const uint64_t cell : cells_) {
    ser.WriteVarint(cell);
  }
  return ser.Release();
}

CountMinSketch CountMinSketch::Parse(std::string_view blob) {
  Deserializer de(blob);
  const uint64_t depth = de.ReadVarint();
  const uint64_t width = de.ReadVarint();
  if (depth == 0 || depth > 16 || width == 0 || width > (1u << 24)) {
    throw SerdeError("count-min shape out of range");
  }
  CountMinSketch out(depth, width, de.ReadFixed64());
  out.total_weight_ = de.ReadVarint();
  for (size_t i = 0; i < out.cells_.size(); ++i) {
    out.cells_[i] = de.ReadVarint();
  }
  return out;
}

void CountMinSketch::Clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
  total_weight_ = 0;
}

// ---------------------------------------------------------------------------
// HyperLogLog

HyperLogLog::HyperLogLog(int precision, uint64_t seed)
    : precision_(std::min(std::max(precision, 4), 16)),
      seed_(seed),
      registers_(size_t{1} << precision_, 0) {}

void HyperLogLog::Add(std::string_view key) { AddHashed(WorkloadHash(key, seed_)); }

void HyperLogLog::AddHashed(uint64_t h) {
  const size_t idx = static_cast<size_t>(h >> (64 - precision_));
  const uint64_t rest = h << precision_;
  const int max_rank = 64 - precision_ + 1;
  const int rank = rest == 0 ? max_rank : std::min(max_rank, __builtin_clzll(rest) + 1);
  if (registers_[idx] < rank) {
    registers_[idx] = static_cast<uint8_t>(rank);
  }
}

uint64_t HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double sum = 0.0;
  size_t zeros = 0;
  for (const uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) {
      ++zeros;
    }
  }
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting over the empty registers.
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<uint64_t>(std::llround(estimate));
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_ || other.seed_ != seed_) {
    throw DelosError("hyperloglog merge precision/seed mismatch");
  }
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

std::string HyperLogLog::Serialize() const {
  Serializer ser;
  ser.WriteVarint(static_cast<uint64_t>(precision_));
  ser.WriteFixed64(seed_);
  ser.WriteString(std::string_view(reinterpret_cast<const char*>(registers_.data()),
                                   registers_.size()));
  return ser.Release();
}

HyperLogLog HyperLogLog::Parse(std::string_view blob) {
  Deserializer de(blob);
  const uint64_t precision = de.ReadVarint();
  if (precision < 4 || precision > 16) {
    throw SerdeError("hyperloglog precision out of range");
  }
  HyperLogLog out(static_cast<int>(precision), de.ReadFixed64());
  const std::string_view regs = de.ReadStringView();
  if (regs.size() != out.registers_.size()) {
    throw SerdeError("hyperloglog register count mismatch");
  }
  for (size_t i = 0; i < regs.size(); ++i) {
    out.registers_[i] = static_cast<uint8_t>(regs[i]);
  }
  return out;
}

void HyperLogLog::Clear() {
  std::fill(registers_.begin(), registers_.end(), 0);
}

// ---------------------------------------------------------------------------
// WorkloadAttributor

namespace {

// Worst-case footprint for the budget clamp: every top-K slot holding a
// maximum-length key, both Count-Min grids, and the four HLL register sets.
// The per-entry constant covers the slot bookkeeping (hash/count/error +
// string header) plus the 4x open-addressed index ordinals.
size_t WorstCaseSketchBytes(const WorkloadAttributor::Options& o) {
  const size_t slot_overhead = sizeof(uint64_t) * 3 + 32 + 4 * sizeof(uint32_t);
  const size_t topk_entry = WorkloadAttributor::kMaxTrackedKeyBytes + slot_overhead;
  const size_t client_entry = 20 + slot_overhead;
  return o.topk_keys * topk_entry + o.topk_clients * client_entry +
         2 * o.cm_depth * o.cm_width * sizeof(uint64_t) + 4 * (size_t{1} << o.hll_precision);
}

WorkloadAttributor::Options ClampToBudget(WorkloadAttributor::Options o) {
  o.topk_keys = std::max<size_t>(o.topk_keys, 1);
  o.topk_clients = std::max<size_t>(o.topk_clients, 1);
  o.cm_depth = std::min(std::max<size_t>(o.cm_depth, 1), size_t{16});
  o.cm_width = std::max<size_t>(o.cm_width, 16);
  o.hll_precision = std::min(std::max(o.hll_precision, 4), 16);
  // Shrink, cheapest-to-lose first, until the worst case fits the budget
  // (or the floor configuration is reached): halve the Count-Min width,
  // then drop HLL precision, then halve the top-K capacities.
  while (WorstCaseSketchBytes(o) > o.sketch_byte_budget) {
    if (o.cm_width > 64) {
      o.cm_width /= 2;
    } else if (o.hll_precision > 4) {
      o.hll_precision -= 1;
    } else if (o.topk_keys > 8 || o.topk_clients > 8) {
      o.topk_keys = std::max<size_t>(o.topk_keys / 2, 8);
      o.topk_clients = std::max<size_t>(o.topk_clients / 2, 8);
    } else {
      break;
    }
  }
  return o;
}

std::string_view TruncateKey(std::string_view key) {
  if (key.empty()) {
    return "(unattributed)";
  }
  return key.substr(0, WorkloadAttributor::kMaxTrackedKeyBytes);
}

}  // namespace

// Every key-facing sketch shares the family seed and every client-facing
// sketch shares its salted variant, so the apply tap hashes the key bytes
// exactly once (and each client id once, cached) and fans the hash out.
// Count-Min row independence comes from MixHash inside the sketch, not from
// per-sketch seeds.
constexpr uint64_t kClientSeedSalt = 0xc11e17;

WorkloadAttributor::WorkloadAttributor(Options options)
    : options_(ClampToBudget(std::move(options))),
      top_keys_(options_.topk_keys, options_.hash_seed),
      top_clients_(options_.topk_clients, options_.hash_seed ^ kClientSeedSalt),
      key_ops_(options_.cm_depth, options_.cm_width, options_.hash_seed),
      key_bytes_(options_.cm_depth, options_.cm_width, options_.hash_seed),
      keys_seen_(options_.hll_precision, options_.hash_seed),
      clients_seen_(options_.hll_precision, options_.hash_seed ^ kClientSeedSalt),
      window_keys_(options_.hll_precision, options_.hash_seed),
      window_clients_(options_.hll_precision, options_.hash_seed ^ kClientSeedSalt) {
  // Round the sampling interval down to a power of two so the hot path's
  // sample check is a mask, not a division.
  size_t every = std::max<size_t>(options_.rate_sample_every, 1);
  while ((every & (every - 1)) != 0) {
    every &= every - 1;
  }
  options_.rate_sample_every = every;
  rate_sample_mask_ = every - 1;
  client_cache_.resize(2 * kClientCacheCap);
  if (options_.metrics != nullptr) {
    apply_ops_counter_ = options_.metrics->GetCounter("workload.apply.ops");
    apply_bytes_counter_ = options_.metrics->GetCounter("workload.apply.bytes");
    hot_events_counter_ = options_.metrics->GetCounter("workload.hot.events");
    sketch_bytes_gauge_ = options_.metrics->GetGauge("workload.sketch.bytes");
    window_keys_gauge_ = options_.metrics->GetGauge("workload.window.distinct.keys");
    window_clients_gauge_ = options_.metrics->GetGauge("workload.window.distinct.clients");
    distinct_keys_gauge_ = options_.metrics->GetGauge("workload.distinct.keys");
    distinct_clients_gauge_ = options_.metrics->GetGauge("workload.distinct.clients");
  }
  std::lock_guard<std::mutex> lock(mu_);
  UpdateSketchBytesLocked();
}

void WorkloadAttributor::ChargePropose(std::string_view layer,
                                       std::span<const uint64_t> client_ids, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = layers_.find(layer);
  if (it == layers_.end()) {
    LayerUsage usage;
    if (options_.metrics != nullptr) {
      const std::string prefix = "workload.layer." + std::string(layer);
      usage.ops_counter = options_.metrics->GetCounter(prefix + ".ops");
      usage.bytes_counter = options_.metrics->GetCounter(prefix + ".bytes");
    }
    it = layers_.emplace(std::string(layer), usage).first;
  }
  it->second.ops += 1;
  it->second.bytes += bytes;
  if (it->second.ops_counter != nullptr) {
    it->second.ops_counter->Increment();
    it->second.bytes_counter->Increment(bytes);
  }
  // Distinct-client tracking sees proposers too (HLLs dedup, so feeding
  // both taps never double-counts); ranked client *counts* come from the
  // apply tap alone, where every replica sees identical traffic.
  for (const uint64_t id : client_ids) {
    const CachedClient& client = ClientSlotLocked(id);
    clients_seen_.AddHashed(client.hash);
    window_clients_.AddHashed(client.hash);
  }
}

bool WorkloadAttributor::BeginApply(size_t bytes) {
  const uint64_t before = apply_ops_total_.fetch_add(1, std::memory_order_relaxed);
  apply_bytes_total_.fetch_add(bytes, std::memory_order_relaxed);
  return (before & rate_sample_mask_) == 0;
}

void WorkloadAttributor::ChargeApplySampled(std::string_view key,
                                            std::span<const uint64_t> client_ids, size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string_view k = TruncateKey(key);
  // One pass over the key bytes; every sketch gets the same hash (they all
  // share the family seed — see the constructor).
  const uint64_t khash = WorkloadHash(k, options_.hash_seed);
  const uint64_t weight = options_.rate_sample_every;
  top_keys_.AddHashed(khash, k, weight);
  key_ops_.AddHashed(khash, weight);
  key_bytes_.AddHashed(khash, bytes * weight);
  keys_seen_.AddHashed(khash);
  window_keys_.AddHashed(khash);
  ChargeClientsLocked(client_ids, bytes);
  sampled_ops_ += 1;
  // Hot-spot detection, the footprint gauge refresh, and the metric-counter
  // flush are throttled to every 16th sampled op (every 64th applied op at
  // the default sampling rate): the scans are O(K), and the cadence is a
  // deterministic function of the sampled-op count. CloseWindow flushes
  // too, so scrapes after a window close are exact.
  if (sampled_ops_ % 16 == 0) {
    FlushCountersLocked();
    MaybeFlagHotLocked();
    UpdateSketchBytesLocked();
  }
}

void WorkloadAttributor::ChargeApply(std::string_view key, std::span<const uint64_t> client_ids,
                                     size_t bytes) {
  if (BeginApply(bytes)) {
    ChargeApplySampled(key, client_ids, bytes);
  }
}

void WorkloadAttributor::FlushCountersLocked() {
  const uint64_t ops = apply_ops_total_.load(std::memory_order_relaxed);
  const uint64_t bytes = apply_bytes_total_.load(std::memory_order_relaxed);
  if (apply_ops_counter_ != nullptr) {
    apply_ops_counter_->Increment(ops - counter_flushed_ops_);
    apply_bytes_counter_->Increment(bytes - counter_flushed_bytes_);
  }
  counter_flushed_ops_ = ops;
  counter_flushed_bytes_ = bytes;
}

void WorkloadAttributor::ChargeClientsLocked(std::span<const uint64_t> client_ids, size_t bytes) {
  (void)bytes;
  for (const uint64_t id : client_ids) {
    const CachedClient& client = ClientSlotLocked(id);
    top_clients_.AddHashed(client.hash, client.name, options_.rate_sample_every);
    clients_seen_.AddHashed(client.hash);
    window_clients_.AddHashed(client.hash);
  }
}

const WorkloadAttributor::CachedClient& WorkloadAttributor::ClientSlotLocked(uint64_t id) {
  const uint64_t mask = client_cache_.size() - 1;
  size_t i = MixHash(id, 1) & mask;
  while (true) {
    const CachedClient& slot = client_cache_[i];
    if (slot.used && slot.id == id) {
      return slot;
    }
    if (!slot.used) {
      break;
    }
    i = (i + 1) & mask;
  }
  if (client_cache_used_ >= kClientCacheCap) {
    for (CachedClient& slot : client_cache_) {
      slot = CachedClient{};
    }
    client_cache_used_ = 0;
    i = MixHash(id, 1) & mask;  // the probe start is empty in a cleared table
  }
  CachedClient& slot = client_cache_[i];
  slot.used = true;
  slot.id = id;
  slot.name = std::to_string(id);
  slot.hash = WorkloadHash(slot.name, options_.hash_seed ^ kClientSeedSalt);
  client_cache_used_ += 1;
  return slot;
}

void WorkloadAttributor::CloseWindow(int64_t now_micros) {
  (void)now_micros;  // windows are positioned by the caller's snapshot
  std::lock_guard<std::mutex> lock(mu_);
  if (window_keys_gauge_ != nullptr) {
    window_keys_gauge_->Set(static_cast<int64_t>(window_keys_.Estimate()));
    window_clients_gauge_->Set(static_cast<int64_t>(window_clients_.Estimate()));
    distinct_keys_gauge_->Set(static_cast<int64_t>(keys_seen_.Estimate()));
    distinct_clients_gauge_->Set(static_cast<int64_t>(clients_seen_.Estimate()));
  }
  window_keys_.Clear();
  window_clients_.Clear();
  windows_closed_ += 1;
  FlushCountersLocked();
  UpdateSketchBytesLocked();
}

std::optional<WorkloadAttributor::HotSpot> WorkloadAttributor::HottestOfLocked(
    const SpaceSaving& sketch, uint64_t total) const {
  if (total < options_.hot_min_ops || sketch.size() == 0) {
    return std::nullopt;
  }
  const std::optional<SpaceSaving::HeavyHitter> head = sketch.Peak();
  if (!head.has_value()) {
    return std::nullopt;
  }
  const double share = 100.0 * static_cast<double>(head->count) / static_cast<double>(total);
  if (share <= options_.hot_share_threshold_pct) {
    return std::nullopt;
  }
  return HotSpot{head->key, head->count, share};
}

void WorkloadAttributor::MaybeFlagHotLocked() {
  const auto hot_key = HottestOfLocked(top_keys_, top_keys_.total_weight());
  if (hot_key.has_value()) {
    if (hot_key->name != last_hot_key_) {
      last_hot_key_ = hot_key->name;
      if (hot_events_counter_ != nullptr) {
        hot_events_counter_->Increment();
      }
      if (options_.recorder != nullptr) {
        options_.recorder->Record(FlightEventKind::kWorkload, "hot key: " + hot_key->name, 0,
                                  hot_key->ops,
                                  static_cast<uint64_t>(std::llround(hot_key->share_pct)));
      }
    }
  } else {
    last_hot_key_.clear();  // re-arm: crossing the threshold again re-fires
  }
  const auto hot_client = HottestOfLocked(top_clients_, top_clients_.total_weight());
  if (hot_client.has_value()) {
    if (hot_client->name != last_hot_client_) {
      last_hot_client_ = hot_client->name;
      if (hot_events_counter_ != nullptr) {
        hot_events_counter_->Increment();
      }
      if (options_.recorder != nullptr) {
        options_.recorder->Record(FlightEventKind::kWorkload,
                                  "hot client: " + hot_client->name, 0, hot_client->ops,
                                  static_cast<uint64_t>(std::llround(hot_client->share_pct)));
      }
    }
  } else {
    last_hot_client_.clear();
  }
}

std::optional<WorkloadAttributor::HotSpot> WorkloadAttributor::HottestKey() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HottestOfLocked(top_keys_, top_keys_.total_weight());
}

std::optional<WorkloadAttributor::HotSpot> WorkloadAttributor::HottestClient() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HottestOfLocked(top_clients_, top_clients_.total_weight());
}

void WorkloadAttributor::UpdateSketchBytesLocked() {
  size_t bytes = top_keys_.MemoryBytes() + top_clients_.MemoryBytes() +
                 key_ops_.MemoryBytes() + key_bytes_.MemoryBytes() + keys_seen_.MemoryBytes() +
                 clients_seen_.MemoryBytes() + window_keys_.MemoryBytes() +
                 window_clients_.MemoryBytes();
  for (const auto& [name, usage] : layers_) {
    bytes += name.size() + sizeof(LayerUsage);
  }
  if (sketch_bytes_gauge_ != nullptr) {
    sketch_bytes_gauge_->Set(static_cast<int64_t>(bytes));
  }
}

size_t WorkloadAttributor::SketchBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = top_keys_.MemoryBytes() + top_clients_.MemoryBytes() +
                 key_ops_.MemoryBytes() + key_bytes_.MemoryBytes() + keys_seen_.MemoryBytes() +
                 clients_seen_.MemoryBytes() + window_keys_.MemoryBytes() +
                 window_clients_.MemoryBytes();
  for (const auto& [name, usage] : layers_) {
    bytes += name.size() + sizeof(LayerUsage);
  }
  return bytes;
}

uint64_t WorkloadAttributor::apply_ops() const {
  return apply_ops_total_.load(std::memory_order_relaxed);
}

std::vector<SpaceSaving::HeavyHitter> WorkloadAttributor::TopKeysLocked() const {
  return top_keys_.TopK();
}

std::vector<SpaceSaving::HeavyHitter> WorkloadAttributor::TopClientsLocked() const {
  return top_clients_.TopK();
}

std::string WorkloadAttributor::RenderWorkload() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "== workload (server " + options_.server + ") ==\n";
  AppendF(&out, "applied ops: %llu  bytes: %llu\n",
          static_cast<unsigned long long>(apply_ops_total_),
          static_cast<unsigned long long>(apply_bytes_total_));
  AppendF(&out, "distinct keys: ~%llu (open window ~%llu)\n",
          static_cast<unsigned long long>(keys_seen_.Estimate()),
          static_cast<unsigned long long>(window_keys_.Estimate()));
  AppendF(&out, "distinct clients: ~%llu (open window ~%llu)\n",
          static_cast<unsigned long long>(clients_seen_.Estimate()),
          static_cast<unsigned long long>(window_clients_.Estimate()));
  AppendF(&out, "windows closed: %llu\n", static_cast<unsigned long long>(windows_closed_));
  size_t sketch_bytes = top_keys_.MemoryBytes() + top_clients_.MemoryBytes() +
                        key_ops_.MemoryBytes() + key_bytes_.MemoryBytes() +
                        keys_seen_.MemoryBytes() + clients_seen_.MemoryBytes() +
                        window_keys_.MemoryBytes() + window_clients_.MemoryBytes();
  for (const auto& [name, usage] : layers_) {
    sketch_bytes += name.size() + sizeof(LayerUsage);
  }
  AppendF(&out, "sketch bytes: %llu / budget %llu\n",
          static_cast<unsigned long long>(sketch_bytes),
          static_cast<unsigned long long>(options_.sketch_byte_budget));
  AppendF(&out, "hot threshold: >%.1f%% share after %llu ops\n",
          options_.hot_share_threshold_pct,
          static_cast<unsigned long long>(options_.hot_min_ops));
  const auto hot_key = HottestOfLocked(top_keys_, top_keys_.total_weight());
  if (hot_key.has_value()) {
    AppendF(&out, "hot key: %s (%llu ops, %.1f%%)\n", hot_key->name.c_str(),
            static_cast<unsigned long long>(hot_key->ops), hot_key->share_pct);
  } else {
    out += "hot key: none\n";
  }
  const auto hot_client = HottestOfLocked(top_clients_, top_clients_.total_weight());
  if (hot_client.has_value()) {
    AppendF(&out, "hot client: %s (%llu ops, %.1f%%)\n", hot_client->name.c_str(),
            static_cast<unsigned long long>(hot_client->ops), hot_client->share_pct);
  } else {
    out += "hot client: none\n";
  }
  out += "-- per-layer propose usage --\n";
  AppendF(&out, "%-28s %12s %14s\n", "layer", "ops", "bytes");
  for (const auto& [name, usage] : layers_) {
    AppendF(&out, "%-28s %12llu %14llu\n", name.c_str(),
            static_cast<unsigned long long>(usage.ops),
            static_cast<unsigned long long>(usage.bytes));
  }
  return out;
}

std::string WorkloadAttributor::RenderWorkloadJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"server\":\"" + JsonEscape(options_.server) + "\"";
  AppendF(&out, ",\"apply_ops\":%llu,\"apply_bytes\":%llu",
          static_cast<unsigned long long>(apply_ops_total_),
          static_cast<unsigned long long>(apply_bytes_total_));
  AppendF(&out, ",\"distinct_keys\":%llu,\"distinct_clients\":%llu",
          static_cast<unsigned long long>(keys_seen_.Estimate()),
          static_cast<unsigned long long>(clients_seen_.Estimate()));
  AppendF(&out, ",\"window_distinct_keys\":%llu,\"window_distinct_clients\":%llu",
          static_cast<unsigned long long>(window_keys_.Estimate()),
          static_cast<unsigned long long>(window_clients_.Estimate()));
  AppendF(&out, ",\"windows_closed\":%llu", static_cast<unsigned long long>(windows_closed_));
  size_t sketch_bytes = top_keys_.MemoryBytes() + top_clients_.MemoryBytes() +
                        key_ops_.MemoryBytes() + key_bytes_.MemoryBytes() +
                        keys_seen_.MemoryBytes() + clients_seen_.MemoryBytes() +
                        window_keys_.MemoryBytes() + window_clients_.MemoryBytes();
  AppendF(&out, ",\"sketch_bytes\":%llu,\"sketch_byte_budget\":%llu",
          static_cast<unsigned long long>(sketch_bytes),
          static_cast<unsigned long long>(options_.sketch_byte_budget));
  const auto hot_key = HottestOfLocked(top_keys_, top_keys_.total_weight());
  if (hot_key.has_value()) {
    AppendF(&out, ",\"hot_key\":{\"key\":\"%s\",\"ops\":%llu,\"share_pct\":%.1f}",
            JsonEscape(hot_key->name).c_str(), static_cast<unsigned long long>(hot_key->ops),
            hot_key->share_pct);
  } else {
    out += ",\"hot_key\":null";
  }
  const auto hot_client = HottestOfLocked(top_clients_, top_clients_.total_weight());
  if (hot_client.has_value()) {
    AppendF(&out, ",\"hot_client\":{\"client\":\"%s\",\"ops\":%llu,\"share_pct\":%.1f}",
            JsonEscape(hot_client->name).c_str(),
            static_cast<unsigned long long>(hot_client->ops), hot_client->share_pct);
  } else {
    out += ",\"hot_client\":null";
  }
  out += ",\"layers\":[";
  bool first = true;
  for (const auto& [name, usage] : layers_) {
    if (!first) {
      out += ",";
    }
    first = false;
    AppendF(&out, "{\"layer\":\"%s\",\"ops\":%llu,\"bytes\":%llu}", JsonEscape(name).c_str(),
            static_cast<unsigned long long>(usage.ops),
            static_cast<unsigned long long>(usage.bytes));
  }
  out += "]}";
  return out;
}

std::string WorkloadAttributor::RenderTopKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "== top keys (server " + options_.server + ") ==\n";
  const uint64_t total = top_keys_.total_weight();
  AppendF(&out, "total ops: %llu\n", static_cast<unsigned long long>(total));
  AppendF(&out, "%4s %10s %9s %12s %7s  %s\n", "rank", "ops", "err", "bytes~", "share%",
          "key");
  const auto top = TopKeysLocked();
  for (size_t i = 0; i < top.size(); ++i) {
    const double share =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(top[i].count) / total;
    AppendF(&out, "%4zu %10llu %9llu %12llu %6.1f%%  %s\n", i + 1,
            static_cast<unsigned long long>(top[i].count),
            static_cast<unsigned long long>(top[i].error),
            static_cast<unsigned long long>(key_bytes_.Estimate(top[i].key)), share,
            top[i].key.c_str());
  }
  return out;
}

std::string WorkloadAttributor::RenderTopKeysJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t total = top_keys_.total_weight();
  std::string out = "{\"server\":\"" + JsonEscape(options_.server) + "\"";
  AppendF(&out, ",\"total_ops\":%llu,\"keys\":[", static_cast<unsigned long long>(total));
  const auto top = TopKeysLocked();
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    const double share =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(top[i].count) / total;
    AppendF(&out, "{\"key\":\"%s\",\"ops\":%llu,\"err\":%llu,\"bytes\":%llu,\"share_pct\":%.1f}",
            JsonEscape(top[i].key).c_str(), static_cast<unsigned long long>(top[i].count),
            static_cast<unsigned long long>(top[i].error),
            static_cast<unsigned long long>(key_bytes_.Estimate(top[i].key)), share);
  }
  out += "]}";
  return out;
}

std::string WorkloadAttributor::RenderTopClients() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "== top clients (server " + options_.server + ") ==\n";
  const uint64_t total = top_clients_.total_weight();
  AppendF(&out, "total ops: %llu\n", static_cast<unsigned long long>(total));
  AppendF(&out, "%4s %10s %9s %7s  %s\n", "rank", "ops", "err", "share%", "client");
  const auto top = TopClientsLocked();
  for (size_t i = 0; i < top.size(); ++i) {
    const double share =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(top[i].count) / total;
    AppendF(&out, "%4zu %10llu %9llu %6.1f%%  %s\n", i + 1,
            static_cast<unsigned long long>(top[i].count),
            static_cast<unsigned long long>(top[i].error), share, top[i].key.c_str());
  }
  return out;
}

std::string WorkloadAttributor::RenderTopClientsJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t total = top_clients_.total_weight();
  std::string out = "{\"server\":\"" + JsonEscape(options_.server) + "\"";
  AppendF(&out, ",\"total_ops\":%llu,\"clients\":[", static_cast<unsigned long long>(total));
  const auto top = TopClientsLocked();
  for (size_t i = 0; i < top.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    const double share =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(top[i].count) / total;
    AppendF(&out, "{\"client\":\"%s\",\"ops\":%llu,\"err\":%llu,\"share_pct\":%.1f}",
            JsonEscape(top[i].key).c_str(), static_cast<unsigned long long>(top[i].count),
            static_cast<unsigned long long>(top[i].error), share);
  }
  out += "]}";
  return out;
}

}  // namespace delos
