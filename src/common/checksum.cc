#include "src/common/checksum.h"

namespace delos {

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t IncrementalChecksum::PairHash(std::string_view key, std::string_view value) {
  // Domain-separate key and value (a length prefix baked into the seed chain)
  // so that ("ab","c") and ("a","bc") hash differently.
  uint64_t h = Fnv1a64(key);
  h = Fnv1a64("\x1f", h);  // separator
  h = Fnv1a64(value, h);
  // Avalanche (splitmix64 finalizer) so XOR-combining pair hashes does not
  // cancel structure shared between related pairs.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace delos
