#include "src/common/checksum.h"

namespace delos {

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

namespace {

// Little-endian assembly of the next n (1..8) bytes, written out explicitly
// so the digest is identical on any platform; compilers fold the chain into
// a single load on little-endian targets.
inline uint64_t LoadLE(const char* data, size_t n) {
  uint64_t word = 0;
  for (size_t i = 0; i < n; ++i) {
    word |= static_cast<uint64_t>(static_cast<unsigned char>(data[i])) << (8 * i);
  }
  return word;
}

// FNV-style mixing over 8-byte words instead of bytes: one multiply per word
// is ~8x the throughput of the classic byte loop. The input length is folded
// in at the end so a short chunk and the same chunk zero-padded cannot
// collide (the word loop cannot tell "a" from "a\0" by itself). Only
// PairHash uses this — it sits on the store-checksum hot path (every commit,
// every digest-beacon fold); Fnv1a64 stays byte-wise for callers that want
// the classic digest.
inline uint64_t FnvWords(std::string_view data, uint64_t hash) {
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    hash = (hash ^ LoadLE(p, 8)) * 1099511628211ULL;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    hash = (hash ^ LoadLE(p, n)) * 1099511628211ULL;
  }
  return (hash ^ data.size()) * 1099511628211ULL;
}

}  // namespace

uint64_t IncrementalChecksum::PairHash(std::string_view key, std::string_view value) {
  // Domain-separate key and value (each chunk folds its own length into the
  // chain) so that ("ab","c") and ("a","bc") hash differently.
  uint64_t h = FnvWords(key, 14695981039346656037ULL);
  h = (h ^ 0x1f) * 1099511628211ULL;  // separator
  h = FnvWords(value, h);
  // Avalanche (splitmix64 finalizer) so XOR-combining pair hashes does not
  // cancel structure shared between related pairs.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace delos
