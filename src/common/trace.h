// Per-proposal tracing and the always-on flight recorder.
//
// The per-layer aggregates driving Figures 7/8/11 answer "where does the
// stack spend time on average"; what production debugging actually chases is
// per-proposal causality — where did *this* propose go as it flowed down
// through the header map, into the shared log, and back up through apply on
// every replica. Two complementary mechanisms:
//
//  * Tracer — assigns each propose a trace id (carried Delos-style as one
//    more piggybacked header; see core/entry.h) and collects named spans
//    from every hop: the client-visible propose, each engine's down-path
//    hand-off, the quorum append, and the per-replica apply of every layer.
//    Ids come from a plain counter and timestamps from an injected Clock, so
//    a trace captured under the simulator is byte-identical across replays
//    of the same schedule. One Tracer is shared by every server of a cluster
//    (it is the cross-replica aggregation point), so Render(id) reconstructs
//    the full lifecycle of one proposal across the fleet.
//
//  * FlightRecorder — a fixed-size lock-free ring of recent structured
//    events (appends, batch commits, view changes, lease transitions, fault
//    injections, crashes). It is always on: recording is a handful of
//    relaxed atomic stores with no allocation, so servers keep it running in
//    production and dump the ring only when something goes wrong — on crash,
//    on demand via DebugDump(), or automatically by the simulator when a
//    conformance verdict fails. Readers use a per-slot version (seqlock
//    style) to discard events they raced with; writers never wait.
//
// This header lives in src/common and knows nothing about LogEntry; the
// trace-id <-> header-map plumbing is in src/core/entry.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/clock.h"

namespace delos {

class MetricsRegistry;

// One hop of one proposal's lifecycle. `server` is empty for client-side
// spans recorded before the entry reaches a particular replica's stack.
struct TraceSpan {
  uint64_t trace_id = 0;
  std::string name;    // e.g. "batching.queue", "base.append", "lease.apply"
  std::string server;  // replica that recorded the span
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  // True when the operation the span covers ended in error. Only root
  // ("client.propose") spans set this today; the latency attributor uses it
  // to force-capture failed proposals as slow-trace exemplars.
  bool failed = false;
};

// Collects spans for all proposals of one cluster. Record is cheap (one
// mutex push per span — tracing is opt-in, unlike the flight recorder) and
// bounded: the oldest spans fall off once max_spans is reached.
class Tracer {
 public:
  struct Options {
    Clock* clock = nullptr;  // defaults to RealClock; sims inject a SimClock
    size_t max_spans = 1 << 16;
  };

  Tracer();
  explicit Tracer(Options options);

  // Fresh trace id for a proposal entering the stack. Ids are sequential
  // starting at 1, so under a deterministic schedule proposal k always gets
  // id k — the property the sim's replay-identical-trace check leans on.
  uint64_t NextTraceId();
  // The most recently assigned id (0 if none): "the trace of the propose I
  // just did" for benches and smoke tests.
  uint64_t last_trace_id() const;

  int64_t NowMicros() const;

  void RecordSpan(uint64_t trace_id, std::string_view name, std::string_view server,
                  int64_t start_micros, int64_t end_micros, bool failed = false);

  // Span observers (the latency attributor's feed). Each completed span is
  // delivered synchronously on the recording thread, under the same mutex
  // that guards the span ring — dispatch adds zero extra synchronization to
  // the record path, and with no observers the loop body never runs.
  // AddObserver returns a registration id; observers MUST be removed before
  // their owner dies — sim servers are torn down and rebuilt mid-run while
  // the cluster-wide Tracer lives on. Observers must not call back into the
  // Tracer (Collect/Render/RecordSpan) or they would self-deadlock.
  using SpanObserver = std::function<void(const TraceSpan&)>;
  uint64_t AddObserver(SpanObserver observer);
  void RemoveObserver(uint64_t id);

  // All spans recorded for `trace_id`, deterministically ordered by
  // (start, end, server, name) — thread arrival order never shows through.
  std::vector<TraceSpan> Collect(uint64_t trace_id) const;

  // Human-readable rendering of one trace, byte-identical for identical
  // span sets.
  std::string Render(uint64_t trace_id) const;

  size_t span_count() const;
  void Clear();

 private:
  Options options_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<TraceSpan> spans_;
  uint64_t next_observer_id_ = 1;
  std::vector<std::pair<uint64_t, SpanObserver>> observers_;
};

// Event kinds the flight recorder knows about. Fixed small enum so a dump
// stays greppable; free-form context goes in the (truncated) detail field.
enum class FlightEventKind : uint8_t {
  kAppend = 0,      // shared-log append completed (a = pos, 0 on failure)
  kApply = 1,       // a traced record applied locally (a = pos)
  kCommit = 2,      // group-commit batch committed (a = first pos, b = last)
  kViewChange = 3,  // membership changed (join/eject)
  kLease = 4,       // lease acquired/renewed/expired
  kFault = 5,       // injected fault fired (sim)
  kCrash = 6,       // server crashed / fatal error / crash hook fired
  kControl = 7,     // engine control command (enable/disable, ...)
  kFlush = 8,       // LocalStore checkpoint flushed (a = durable pos)
  kTrim = 9,        // log trimmed (a = new trim prefix)
  kNet = 10,        // network-level event (drop, partition)
  kHealth = 11,     // watchdog health transition (a = new state, b = value)
  kWorkload = 12,   // hot key/client crossed the share threshold (a = ops, b = share %)
  kDivergence = 13, // digest beacon mismatch convicted divergence (a = window lo, b = window hi)
  kSeal = 14,       // loglet sealed (a = cached records invalidated by the seal)
};

const char* FlightEventKindName(FlightEventKind kind);

// Always-on bounded ring of recent events. Writers are lock-free: one
// fetch_add to claim a slot plus relaxed stores into it, bracketed by a
// per-slot version (odd = write in progress). Readers snapshot the ring and
// drop any slot whose version changed under them, so a dump taken during a
// crash is best-effort-consistent without ever stalling the hot path.
class FlightRecorder {
 public:
  static constexpr size_t kDetailWords = 6;  // 48 bytes of detail text

  struct Event {
    uint64_t seq = 0;  // global record order (monotonic)
    int64_t micros = 0;
    uint64_t trace_id = 0;
    uint64_t a = 0;
    uint64_t b = 0;
    FlightEventKind kind = FlightEventKind::kAppend;
    std::string detail;
  };

  // Capacity is rounded up to a power of two. The clock defaults to
  // RealClock; the simulator injects its own so dumps replay identically.
  explicit FlightRecorder(size_t capacity = 4096, Clock* clock = nullptr);

  void Record(FlightEventKind kind, std::string_view detail, uint64_t trace_id = 0,
              uint64_t a = 0, uint64_t b = 0);

  // Events currently in the ring, oldest first. Slots being overwritten
  // concurrently are skipped.
  std::vector<Event> Snapshot() const;

  // Text dump of Snapshot(), one line per event.
  std::string Dump() const;

  uint64_t events_recorded() const { return next_.load(std::memory_order_relaxed); }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    // 0 = never written; odd = write in progress; even = 2 * (seq + 1).
    std::atomic<uint64_t> version{0};
    std::atomic<int64_t> micros{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> kind_len{0};  // kind | (detail length << 8)
    std::atomic<uint64_t> detail[kDetailWords] = {};
  };

  Clock* clock_;
  std::vector<Slot> slots_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
};

// The on-demand debug endpoint: Prometheus-style exposition of every
// counter / histogram / gauge in `metrics`, followed by the flight-recorder
// ring. Either argument may be null.
std::string DebugDump(const MetricsRegistry* metrics, const FlightRecorder* recorder);

}  // namespace delos
