#include "src/common/trace.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <tuple>

#include "src/common/metrics.h"

namespace delos {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(Options options) : options_(options) {
  if (options_.clock == nullptr) {
    options_.clock = RealClock::Instance();
  }
  if (options_.max_spans == 0) {
    options_.max_spans = 1;
  }
}

uint64_t Tracer::NextTraceId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

uint64_t Tracer::last_trace_id() const {
  return next_id_.load(std::memory_order_relaxed) - 1;
}

int64_t Tracer::NowMicros() const { return options_.clock->NowMicros(); }

void Tracer::RecordSpan(uint64_t trace_id, std::string_view name, std::string_view server,
                        int64_t start_micros, int64_t end_micros, bool failed) {
  TraceSpan span;
  span.trace_id = trace_id;
  span.name = std::string(name);
  span.server = std::string(server);
  span.start_micros = start_micros;
  span.end_micros = end_micros;
  span.failed = failed;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [_, observer] : observers_) {
    observer(span);
  }
  spans_.push_back(std::move(span));
  while (spans_.size() > options_.max_spans) {
    spans_.pop_front();
  }
}

uint64_t Tracer::AddObserver(SpanObserver observer) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_observer_id_++;
  observers_.emplace_back(id, std::move(observer));
  return id;
}

void Tracer::RemoveObserver(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == id) {
      observers_.erase(it);
      break;
    }
  }
}

std::vector<TraceSpan> Tracer::Collect(uint64_t trace_id) const {
  std::vector<TraceSpan> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TraceSpan& span : spans_) {
      if (span.trace_id == trace_id) {
        spans.push_back(span);
      }
    }
  }
  // Deterministic order: spans arrive from many threads (every replica's
  // apply thread plus the proposer), so sort by content, not arrival.
  std::sort(spans.begin(), spans.end(), [](const TraceSpan& x, const TraceSpan& y) {
    return std::tie(x.start_micros, x.end_micros, x.server, x.name) <
           std::tie(y.start_micros, y.end_micros, y.server, y.name);
  });
  return spans;
}

std::string Tracer::Render(uint64_t trace_id) const {
  const std::vector<TraceSpan> spans = Collect(trace_id);
  std::ostringstream out;
  out << "trace " << trace_id << " (" << spans.size() << " spans)\n";
  for (const TraceSpan& span : spans) {
    out << "  [" << span.start_micros << ".." << span.end_micros << "us] "
        << (span.server.empty() ? "client" : span.server) << " " << span.name
        << (span.failed ? " FAILED" : "") << "\n";
  }
  return out.str();
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAppend:
      return "append";
    case FlightEventKind::kApply:
      return "apply";
    case FlightEventKind::kCommit:
      return "commit";
    case FlightEventKind::kViewChange:
      return "view";
    case FlightEventKind::kLease:
      return "lease";
    case FlightEventKind::kFault:
      return "fault";
    case FlightEventKind::kCrash:
      return "crash";
    case FlightEventKind::kControl:
      return "control";
    case FlightEventKind::kFlush:
      return "flush";
    case FlightEventKind::kTrim:
      return "trim";
    case FlightEventKind::kNet:
      return "net";
    case FlightEventKind::kHealth:
      return "health";
    case FlightEventKind::kWorkload:
      return "workload";
    case FlightEventKind::kDivergence:
      return "divergence";
    case FlightEventKind::kSeal:
      return "seal";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity, Clock* clock)
    : clock_(clock != nullptr ? clock : RealClock::Instance()),
      slots_(RoundUpPow2(std::max<size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

void FlightRecorder::Record(FlightEventKind kind, std::string_view detail, uint64_t trace_id,
                            uint64_t a, uint64_t b) {
  const int64_t now = clock_->NowMicros();
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Claim the slot by CAS-ing its version to our odd (mid-write) value. Two
  // writers can hold sequence numbers that map to the same slot when the
  // ring wraps within the duration of one Record; without the claim, the
  // slower writer's stores could interleave with the faster one's and then
  // publish an even version over the torn payload — a tear the reader's
  // version check cannot detect. The claim makes ownership exclusive: if the
  // slot is mid-write (odd) or already carries a claim/publish newer than
  // ours, we are the lapped writer and drop the event (writers never wait;
  // losing an event when the ring wraps faster than one store sequence is
  // the documented best-effort contract).
  const uint64_t claim = 2 * seq + 1;
  uint64_t expected = slot.version.load(std::memory_order_relaxed);
  do {
    if ((expected & 1) != 0 || expected > claim) {
      return;
    }
  } while (!slot.version.compare_exchange_weak(expected, claim, std::memory_order_acq_rel,
                                               std::memory_order_relaxed));
  // Seqlock write side: the release fence orders the odd claim before the
  // payload stores, so a reader that observes any of our payload observes
  // the odd version on its re-check.
  std::atomic_thread_fence(std::memory_order_release);
  slot.micros.store(now, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  const size_t len = std::min(detail.size(), kDetailWords * sizeof(uint64_t));
  slot.kind_len.store(static_cast<uint64_t>(kind) | (static_cast<uint64_t>(len) << 8),
                      std::memory_order_relaxed);
  for (size_t w = 0; w < kDetailWords; ++w) {
    uint64_t word = 0;
    const size_t off = w * sizeof(uint64_t);
    if (off < len) {
      std::memcpy(&word, detail.data() + off, std::min(sizeof(uint64_t), len - off));
    }
    slot.detail[w].store(word, std::memory_order_relaxed);
  }
  slot.version.store(2 * (seq + 1), std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  std::vector<Event> events;
  events.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) {
      continue;  // never written, or a write is in progress
    }
    Event event;
    event.seq = v1 / 2 - 1;
    event.micros = slot.micros.load(std::memory_order_relaxed);
    event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    event.a = slot.a.load(std::memory_order_relaxed);
    event.b = slot.b.load(std::memory_order_relaxed);
    const uint64_t kind_len = slot.kind_len.load(std::memory_order_relaxed);
    event.kind = static_cast<FlightEventKind>(kind_len & 0xff);
    const size_t len = std::min<size_t>(kind_len >> 8, kDetailWords * sizeof(uint64_t));
    char buffer[kDetailWords * sizeof(uint64_t)];
    for (size_t w = 0; w < kDetailWords; ++w) {
      const uint64_t word = slot.detail[w].load(std::memory_order_relaxed);
      std::memcpy(buffer + w * sizeof(uint64_t), &word, sizeof(uint64_t));
    }
    event.detail.assign(buffer, len);
    // Seqlock read side: the acquire fence orders the payload loads above
    // before the version re-read, closing the window where a torn payload
    // could pass a reordered version check.
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t v2 = slot.version.load(std::memory_order_relaxed);
    if (v1 != v2) {
      continue;  // overwritten while we read it
    }
    events.push_back(std::move(event));
  }
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  return events;
}

std::string FlightRecorder::Dump() const {
  const std::vector<Event> events = Snapshot();
  std::ostringstream out;
  out << "flight recorder: " << events_recorded() << " events recorded, " << events.size()
      << " in ring (capacity " << capacity() << ")\n";
  for (const Event& event : events) {
    out << "  #" << event.seq << " [" << event.micros << "us] "
        << FlightEventKindName(event.kind);
    if (event.trace_id != 0) {
      out << " trace=" << event.trace_id;
    }
    if (event.a != 0 || event.b != 0) {
      out << " a=" << event.a << " b=" << event.b;
    }
    if (!event.detail.empty()) {
      out << " " << event.detail;
    }
    out << "\n";
  }
  return out.str();
}

std::string DebugDump(const MetricsRegistry* metrics, const FlightRecorder* recorder) {
  std::ostringstream out;
  out << "== metrics ==\n";
  if (metrics != nullptr) {
    out << metrics->RenderPrometheus();
  }
  out << "== flight recorder ==\n";
  if (recorder != nullptr) {
    out << recorder->Dump();
  }
  return out.str();
}

}  // namespace delos
