// Windowed time-series metrics: history for every registered metric.
//
// A point-in-time scrape (RenderPrometheus) answers "what are the counters
// now"; operators need "how fast is the apply pipeline moving" and "when did
// the queue start growing" — rates and trends. TimeSeriesStore keeps a
// fixed-capacity ring of closed windows. Each window holds, for every metric
// registered at snapshot time:
//   * counters:   the delta accumulated during the window (delta / width is
//                 the rate the dashboard plots);
//   * gauges:     the value at window close (last-value semantics);
//   * histograms: the samples recorded during the window — count/sum deltas
//                 plus p50/p99/max computed from the per-window bucket delta,
//                 so a latency spike is visible in its window instead of
//                 being averaged into the lifetime distribution.
//
// Windows are closed by MetricsRegistry::SnapshotInto(store, now_micros):
// the caller (normally the health Watchdog's cadence) supplies timestamps
// from its injected Clock, so under the simulator the series is a pure
// function of the schedule. The store itself owns no thread and no clock.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace delos {

class MetricsRegistry;

// One closed window of metric activity.
struct MetricWindow {
  struct HistogramDelta {
    uint64_t count = 0;
    int64_t sum = 0;
    int64_t p50 = 0;
    int64_t p99 = 0;
    int64_t p999 = 0;
    int64_t max = 0;  // max of the window's samples (bucket upper bound)
  };

  uint64_t index = 0;  // 0-based window number since the store was created
  int64_t start_micros = 0;
  int64_t end_micros = 0;
  std::map<std::string, uint64_t> counter_deltas;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramDelta> histograms;

  int64_t width_micros() const { return end_micros - start_micros; }
};

class TimeSeriesStore {
 public:
  // Capacity is the number of closed windows retained (the ring).
  explicit TimeSeriesStore(size_t capacity = 120);

  // Ring contents, oldest first.
  std::vector<MetricWindow> Windows() const;
  std::optional<MetricWindow> Latest() const;
  size_t window_count() const;
  uint64_t windows_committed() const;
  size_t capacity() const { return capacity_; }

  // Per-second rate of `counter` over the most recent `last_n` windows
  // (0 when the counter or the windows are absent, or time stood still).
  double RatePerSecond(const std::string& counter, size_t last_n = 1) const;
  // Gauge value at the latest window close (nullopt if never captured).
  std::optional<int64_t> LatestGauge(const std::string& name) const;

  // JSON for the admin endpoint: {"windows":[{...}]}, oldest first.
  std::string RenderJson(size_t last_n = 0) const;
  // Human-readable per-metric table over the last `last_n` windows (the
  // `delosctl top` body): one row per counter (rate/s) and gauge (value).
  std::string RenderTable(size_t last_n = 10) const;

  void Clear();

 private:
  friend class MetricsRegistry;

  // Cumulative readings at the previous snapshot; deltas are computed
  // against these. Histograms keep their full bucket vectors so per-window
  // percentiles come from bucket deltas.
  struct Cumulative {
    std::map<std::string, uint64_t> counters;
    struct Hist {
      std::vector<uint64_t> buckets;
      std::vector<int64_t> bounds;  // explicit bucket bounds, empty = default
      uint64_t count = 0;
      int64_t sum = 0;
    };
    std::map<std::string, Hist> histograms;
  };

  // Called (only) by MetricsRegistry::SnapshotInto with the registry's
  // current cumulative readings. Closes one window.
  void Commit(int64_t now_micros, std::map<std::string, uint64_t> counters,
              std::map<std::string, int64_t> gauges,
              std::map<std::string, Cumulative::Hist> histograms);

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t next_index_ = 0;
  bool have_baseline_ = false;
  int64_t last_snapshot_micros_ = 0;
  Cumulative prev_;
  std::deque<MetricWindow> windows_;
};

}  // namespace delos
