#include "src/common/divergence.h"

#include <algorithm>
#include <sstream>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace delos {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

DivergenceTracker::DivergenceTracker(DivergenceOptions options) : options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    appended_counter_ = options_.metrics->GetCounter("digest.beacons_appended");
    checked_counter_ = options_.metrics->GetCounter("digest.beacons_checked");
    mismatch_counter_ = options_.metrics->GetCounter("digest.mismatches");
    verified_gauge_ = options_.metrics->GetGauge("digest.last_verified_pos");
  }
}

void DivergenceTracker::OnBeaconAppended() {
  std::lock_guard<std::mutex> lock(mu_);
  ++beacons_appended_;
  if (appended_counter_ != nullptr) {
    appended_counter_->Increment();
  }
}

void DivergenceTracker::OnBeaconChecked(uint64_t pos, std::string_view proposer) {
  std::lock_guard<std::mutex> lock(mu_);
  ++beacons_checked_;
  last_proposer_.assign(proposer);
  if (checked_counter_ != nullptr) {
    checked_counter_->Increment();
  }
  (void)pos;
}

void DivergenceTracker::OnSampleMatch(uint64_t pos) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pos > last_verified_pos_) {
    last_verified_pos_ = pos;
    if (verified_gauge_ != nullptr) {
      verified_gauge_->Set(static_cast<int64_t>(pos));
    }
  }
}

void DivergenceTracker::OnSampleMismatch(uint64_t window_lo, uint64_t pos, uint64_t local_digest,
                                         uint64_t remote_digest, std::string_view proposer,
                                         uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++mismatches_;
  if (mismatch_counter_ != nullptr) {
    mismatch_counter_->Increment();
  }
  if (!convicted_) {
    CaptureConvictionLocked(window_lo, pos, local_digest, remote_digest, proposer, trace_id);
  }
}

void DivergenceTracker::CaptureConvictionLocked(uint64_t window_lo, uint64_t pos,
                                                uint64_t local_digest, uint64_t remote_digest,
                                                std::string_view proposer, uint64_t trace_id) {
  convicted_ = true;
  window_lo_ = window_lo;
  window_hi_ = pos;
  local_digest_ = local_digest;
  remote_digest_ = remote_digest;
  proposer_.assign(proposer);
  trace_id_ = trace_id;
  // Snapshot the flight ring BEFORE recording the kDivergence event, so the
  // excerpt shows what led up to the conviction, not the conviction itself.
  if (options_.recorder != nullptr) {
    std::vector<FlightRecorder::Event> window = options_.recorder->Snapshot();
    if (window.size() > options_.excerpt_events) {
      window.erase(window.begin(), window.end() - static_cast<ptrdiff_t>(options_.excerpt_events));
    }
    std::ostringstream out;
    for (const FlightRecorder::Event& event : window) {
      out << "  #" << event.seq << " [" << event.micros << "us] "
          << FlightEventKindName(event.kind);
      if (event.trace_id != 0) {
        out << " trace=" << event.trace_id;
        if (window_trace_ids_.size() < options_.excerpt_trace_ids &&
            std::find(window_trace_ids_.begin(), window_trace_ids_.end(), event.trace_id) ==
                window_trace_ids_.end()) {
          window_trace_ids_.push_back(event.trace_id);
        }
      }
      if (event.a != 0 || event.b != 0) {
        out << " a=" << event.a << " b=" << event.b;
      }
      if (!event.detail.empty()) {
        out << " " << event.detail;
      }
      out << "\n";
    }
    flight_excerpt_ = out.str();
    options_.recorder->Record(FlightEventKind::kDivergence,
                              "digest mismatch vs " + proposer_, trace_id, window_lo_, window_hi_);
  }
}

bool DivergenceTracker::convicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return convicted_;
}

uint64_t DivergenceTracker::window_lo() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_lo_;
}

uint64_t DivergenceTracker::window_hi() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_hi_;
}

uint64_t DivergenceTracker::last_verified_pos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_verified_pos_;
}

uint64_t DivergenceTracker::beacons_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return beacons_appended_;
}

uint64_t DivergenceTracker::beacons_checked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return beacons_checked_;
}

uint64_t DivergenceTracker::mismatches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mismatches_;
}

std::string DivergenceTracker::HealthReason() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!convicted_) {
    return "";
  }
  std::ostringstream out;
  out << "digest divergence convicted in (" << window_lo_ << ", " << window_hi_ << "] vs "
      << proposer_;
  return out.str();
}

std::string DivergenceTracker::Render(bool include_digests) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "divergence report for " << options_.server << "\n";
  out << "  beacons appended: " << beacons_appended_ << "\n";
  out << "  beacons checked: " << beacons_checked_ << "\n";
  out << "  mismatches: " << mismatches_ << "\n";
  out << "  last verified pos: " << last_verified_pos_ << "\n";
  if (!convicted_) {
    out << "  verdict: no divergence\n";
    return out.str();
  }
  out << "  verdict: DIVERGED in (" << window_lo_ << ", " << window_hi_ << "] vs " << proposer_
      << "\n";
  if (include_digests) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  digest pair: local=%016llx remote=%016llx\n",
                  static_cast<unsigned long long>(local_digest_),
                  static_cast<unsigned long long>(remote_digest_));
    out << buf;
  }
  if (trace_id_ != 0) {
    out << "  beacon trace: " << trace_id_ << "\n";
  }
  if (!window_trace_ids_.empty()) {
    out << "  last traces in window:";
    for (const uint64_t id : window_trace_ids_) {
      out << " " << id;
    }
    out << "\n";
  }
  if (include_digests && !flight_excerpt_.empty()) {
    out << "  flight excerpt:\n" << flight_excerpt_;
  }
  return out.str();
}

std::string DivergenceTracker::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\"server\":\"" << JsonEscape(options_.server) << "\",\"convicted\":"
      << (convicted_ ? "true" : "false") << ",\"beacons_appended\":" << beacons_appended_
      << ",\"beacons_checked\":" << beacons_checked_ << ",\"mismatches\":" << mismatches_
      << ",\"last_verified_pos\":" << last_verified_pos_;
  if (convicted_) {
    out << ",\"window_lo\":" << window_lo_ << ",\"window_hi\":" << window_hi_
        << ",\"local_digest\":" << local_digest_ << ",\"remote_digest\":" << remote_digest_
        << ",\"proposer\":\"" << JsonEscape(proposer_) << "\",\"beacon_trace\":" << trace_id_
        << ",\"window_traces\":[";
    for (size_t i = 0; i < window_trace_ids_.size(); ++i) {
      if (i != 0) {
        out << ",";
      }
      out << window_trace_ids_[i];
    }
    out << "],\"flight_excerpt\":\"" << JsonEscape(flight_excerpt_) << "\"";
  }
  out << "}";
  return out.str();
}

}  // namespace delos
