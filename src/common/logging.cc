#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace delos {

LogLevel& GlobalLogThreshold() {
  static LogLevel threshold = LogLevel::kWarning;
  return threshold;
}

namespace internal {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

std::mutex& EmitMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base != nullptr ? base + 1 : file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  const std::string message = stream_.str();
  {
    std::lock_guard<std::mutex> lock(EmitMutex());
    std::fprintf(stderr, "%s\n", message.c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace delos
