// A small LZ77-family codec (LZ4-style token stream) used by the
// CompressionEngine. No entropy stage: the goal is cheap, dependency-free
// compression of log-entry payloads, which in replicated databases are often
// highly repetitive (serialized rows, paths, padding).
//
// Format: a varint of the uncompressed size, then a sequence of tokens:
//   varint literal_len, <literal bytes>,
//   varint match_len (0 terminates), varint match_offset (1-based, back
//   from the current output position).
#pragma once

#include <string>
#include <string_view>

namespace delos {

std::string Compress(std::string_view input);

// Throws SerdeError on malformed input.
std::string Decompress(std::string_view compressed);

}  // namespace delos
