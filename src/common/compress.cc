#include "src/common/compress.h"

#include <cstring>
#include <vector>

#include "src/common/serde.h"

namespace delos {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 1 << 16;
constexpr size_t kHashSize = 1 << 13;

uint32_t HashAt(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - 13);
}

}  // namespace

std::string Compress(std::string_view input) {
  Serializer out;
  out.WriteVarint(input.size());
  if (input.size() < kMinMatch) {
    out.WriteVarint(input.size());
    std::string result = out.Release();
    result.append(input);
    Serializer tail;
    tail.WriteVarint(0);  // terminating match
    result += tail.buffer();
    return result;
  }

  // Hash chain of most recent position per 4-byte prefix hash.
  std::vector<size_t> table(kHashSize, SIZE_MAX);
  const char* data = input.data();
  const size_t size = input.size();
  size_t pos = 0;
  size_t literal_start = 0;
  std::string result = out.Release();

  const auto emit = [&](size_t literal_end, size_t match_len, size_t match_offset) {
    Serializer token;
    token.WriteVarint(literal_end - literal_start);
    result += token.buffer();
    result.append(data + literal_start, literal_end - literal_start);
    Serializer match;
    match.WriteVarint(match_len);
    if (match_len > 0) {
      match.WriteVarint(match_offset);
    }
    result += match.buffer();
  };

  while (pos + kMinMatch <= size) {
    const uint32_t hash = HashAt(data + pos);
    const size_t candidate = table[hash];
    table[hash] = pos;
    if (candidate != SIZE_MAX && pos - candidate <= kMaxOffset &&
        std::memcmp(data + candidate, data + pos, kMinMatch) == 0) {
      // Extend the match.
      size_t len = kMinMatch;
      while (pos + len < size && data[candidate + len] == data[pos + len]) {
        ++len;
      }
      emit(pos, len, pos - candidate);
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  // Trailing literals + terminator.
  emit(size, 0, 0);
  return result;
}

std::string Decompress(std::string_view compressed) {
  Deserializer de(compressed);
  const uint64_t original_size = de.ReadVarint();
  std::string out;
  out.reserve(original_size);
  while (true) {
    const uint64_t literal_len = de.ReadVarint();
    if (literal_len > de.remaining()) {
      throw SerdeError("compress: truncated literal run");
    }
    for (uint64_t i = 0; i < literal_len; ++i) {
      // Bulk-append via ReadString is unavailable (no length prefix), so
      // copy through the deserializer's fixed-width reader.
      out.push_back(static_cast<char>(de.ReadFixed8()));
    }
    const uint64_t match_len = de.ReadVarint();
    if (match_len == 0) {
      break;
    }
    const uint64_t offset = de.ReadVarint();
    if (offset == 0 || offset > out.size()) {
      throw SerdeError("compress: bad match offset");
    }
    // Byte-by-byte copy: matches may overlap themselves (run-length case).
    size_t from = out.size() - offset;
    for (uint64_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + i]);
    }
  }
  if (out.size() != original_size) {
    throw SerdeError("compress: size mismatch after decompression");
  }
  return out;
}

}  // namespace delos
