#include "src/engines/compression_engine.h"

#include "src/common/compress.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "compression";

StackableEngineOptions MakeStackOptions(const CompressionEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

}  // namespace

CompressionEngine::CompressionEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(options) {}

void CompressionEngine::OnPropose(LogEntry* entry) {
  if (!enabled() || entry->payload.size() < options_.min_payload_bytes) {
    entry->SetHeader(name(), EngineHeader{kMsgTypeApp, "0"});
    return;
  }
  std::string compressed = Compress(entry->payload);
  bytes_in_.fetch_add(entry->payload.size(), std::memory_order_relaxed);
  if (compressed.size() >= entry->payload.size()) {
    // Incompressible: ship the original (still counts toward the ratio).
    bytes_out_.fetch_add(entry->payload.size(), std::memory_order_relaxed);
    entry->SetHeader(name(), EngineHeader{kMsgTypeApp, "0"});
    return;
  }
  bytes_out_.fetch_add(compressed.size(), std::memory_order_relaxed);
  entry->payload = std::move(compressed);
  entry->SetHeader(name(), EngineHeader{kMsgTypeApp, "1"});
}

std::any CompressionEngine::ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  const std::optional<EngineHeaderView>& header = apply_header();
  if (!header.has_value() || header->blob != "1") {
    decompressed_carry_.Push(pos, std::nullopt);
    return CallUpstream(txn, entry, pos);
  }
  // Restore the payload; the layers above see the original entry.
  LogEntry decompressed = entry;
  decompressed.payload = Decompress(entry.payload);
  std::any result = CallUpstream(txn, decompressed, pos);
  decompressed_carry_.Push(pos, std::move(decompressed));
  return result;
}

void CompressionEngine::PostApplyData(const LogEntry& entry, LogPos pos) {
  std::optional<LogEntry> decompressed = decompressed_carry_.Take(pos).value_or(std::nullopt);
  if (decompressed.has_value()) {
    ForwardPostApply(*decompressed, pos);
  } else {
    ForwardPostApply(entry, pos);
  }
}

}  // namespace delos
