#include "src/engines/log_backup_engine.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/serde.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "logbackup";

StackableEngineOptions MakeStackOptions(const LogBackupEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

// Zero-padded so segment keys sort numerically.
std::string SegmentKeySuffix(uint64_t segment) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "bid/%012llu", static_cast<unsigned long long>(segment));
  return buffer;
}

std::string EncodeBidState(const std::string& bidder, bool done) {
  Serializer ser;
  ser.WriteString(bidder);
  ser.WriteBool(done);
  return ser.Release();
}

std::pair<std::string, bool> DecodeBidState(std::string_view bytes) {
  Deserializer de(bytes);
  std::string bidder = de.ReadString();
  const bool done = de.ReadBool();
  return {std::move(bidder), done};
}

std::string EncodeSegmentMsg(uint64_t segment, const std::string& server) {
  Serializer ser;
  ser.WriteVarint(segment);
  ser.WriteString(server);
  return ser.Release();
}

std::pair<uint64_t, std::string> DecodeSegmentMsg(const std::string& blob) {
  Deserializer de(blob);
  const uint64_t segment = de.ReadVarint();
  std::string server = de.ReadString();
  return {segment, std::move(server)};
}

}  // namespace

LogBackupEngine::LogBackupEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(std::move(options)) {
  upload_worker_ = std::thread([this] { UploadWorkerMain(); });
}

LogBackupEngine::~LogBackupEngine() {
  upload_queue_.Close();
  if (upload_worker_.joinable()) {
    upload_worker_.join();
  }
}

std::string LogBackupEngine::SegmentObjectName(uint64_t segment) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%s%012llu", kSegmentPrefix,
                static_cast<unsigned long long>(segment));
  return buffer;
}

LogPos LogBackupEngine::BackedUpPrefix() const {
  return backed_prefix_.load(std::memory_order_acquire);
}

std::any LogBackupEngine::ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  return CallUpstream(txn, entry, pos);
}

std::any LogBackupEngine::ApplyControl(RWTxn& txn, const EngineHeader& header,
                                       const LogEntry& entry, LogPos pos) {
  if (header.msgtype == kMsgTypeBid) {
    auto [segment, bidder] = DecodeSegmentMsg(header.blob);
    const std::string key = space().Key(SegmentKeySuffix(segment));
    uint64_t won = kNoSegment;
    if (!txn.Get(key).has_value()) {
      // First bid in the log wins.
      txn.Put(key, EncodeBidState(bidder, /*done=*/false));
      if (bidder == options_.server_id) {
        won = segment;
      }
    }
    won_segment_carry_.Push(pos, won);
    return std::any(Unit{});
  }
  if (header.msgtype == kMsgTypeComplete) {
    auto [segment, uploader] = DecodeSegmentMsg(header.blob);
    const std::string key = space().Key(SegmentKeySuffix(segment));
    auto state = txn.Get(key);
    if (state.has_value()) {
      auto [bidder, done] = DecodeBidState(*state);
      if (!done) {
        txn.Put(key, EncodeBidState(bidder, /*done=*/true));
      }
    }
    RecomputeBackedPrefix(txn);
    return std::any(Unit{});
  }
  return std::any(Unit{});
}

void LogBackupEngine::RecomputeBackedPrefix(RWTxn& txn) {
  // Walk contiguous completed segments from 0.
  uint64_t next_segment = 0;
  txn.Scan(space().Key("bid/"), space().Key("bid0"),
           [&](std::string_view key, std::string_view value) {
             // Key suffix is the zero-padded segment number.
             const std::string_view digits = key.substr(key.size() - 12);
             const uint64_t segment = std::stoull(std::string(digits));
             auto [bidder, done] = DecodeBidState(value);
             if (segment != next_segment || !done) {
               return false;
             }
             ++next_segment;
             return true;
           });
  backed_prefix_.store(next_segment * options_.segment_size, std::memory_order_release);
}

void LogBackupEngine::PostApplyData(const LogEntry& entry, LogPos pos) {
  MaybeBid(pos);
  ForwardPostApply(entry, pos);
}

void LogBackupEngine::PostApplyControl(const EngineHeader& header, const LogEntry& entry,
                                       LogPos pos) {
  if (header.msgtype == kMsgTypeBid) {
    const uint64_t won = won_segment_carry_.Take(pos).value_or(kNoSegment);
    if (won != kNoSegment) {
      upload_queue_.Push(won);
    }
  }
  if (header.msgtype == kMsgTypeComplete) {
    const LogPos prefix = backed_prefix_.load(std::memory_order_acquire);
    if (prefix > 0) {
      SetOwnTrimOpinion(prefix);
    }
  }
  MaybeBid(pos);
}

void LogBackupEngine::MaybeBid(LogPos pos) {
  // All segments fully below `pos` should have bids. Every server proposes;
  // the first bid in the log wins, so duplicates are harmless.
  const uint64_t complete_segments = pos / options_.segment_size;
  if (complete_segments <= next_bid_check_) {
    return;  // No newly completed segment; skip the snapshot on the hot path.
  }
  ROTxn snapshot = store()->Snapshot();
  for (uint64_t segment = next_bid_check_; segment < complete_segments; ++segment) {
    if (!snapshot.Get(space().Key(SegmentKeySuffix(segment))).has_value()) {
      ProposeControl(kMsgTypeBid, EncodeSegmentMsg(segment, options_.server_id));
    }
  }
  next_bid_check_ = std::max(next_bid_check_, complete_segments);
}

void LogBackupEngine::UploadWorkerMain() {
  while (true) {
    auto segment = upload_queue_.Pop();
    if (!segment.has_value()) {
      return;  // Queue closed.
    }
    const LogPos lo = *segment * options_.segment_size + 1;
    const LogPos hi = (*segment + 1) * options_.segment_size;
    std::vector<LogRecord> records;
    bool ok = false;
    for (int attempt = 0; attempt < 5 && !ok; ++attempt) {
      try {
        records = options_.log->ReadRange(lo, hi);
        ok = true;
      } catch (const std::exception& e) {
        LOG_WARNING << "logbackup: segment " << *segment << " read failed: " << e.what();
        RealClock::Instance()->SleepMicros(2000);
      }
    }
    if (!ok) {
      continue;  // Leave the bid open; a future cleanup can re-bid.
    }
    Serializer ser;
    ser.WriteVarint(records.size());
    for (const LogRecord& record : records) {
      ser.WriteVarint(record.pos);
      ser.WriteString(record.payload);
    }
    try {
      options_.backup_store->PutObject(SegmentObjectName(*segment), ser.Release());
    } catch (const std::exception& e) {
      LOG_WARNING << "logbackup: segment " << *segment << " upload failed: " << e.what();
      continue;
    }
    ProposeControl(kMsgTypeComplete, EncodeSegmentMsg(*segment, options_.server_id));
  }
}

}  // namespace delos
