#include "src/engines/observer_engine.h"

#include "src/common/clock.h"

namespace delos {

namespace {

StackableEngineOptions MakeStackOptions(const ObserverEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  return stack_options;
}

}  // namespace

ObserverEngine::ObserverEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine("observer-" + options.label, downstream, store, MakeStackOptions(options)),
      propose_hist_(options.metrics->GetHistogram(options.label + ".propose.latency_us")),
      sync_hist_(options.metrics->GetHistogram(options.label + ".sync.latency_us")) {}

Future<std::any> ObserverEngine::Propose(LogEntry entry) {
  const int64_t start = RealClock::Instance()->NowMicros();
  // Route through the base class so traced proposals get this observer's
  // down-path span (and a trace id if this observer is the top of the
  // stack) in addition to the latency histogram.
  Future<std::any> future = StackableEngine::Propose(std::move(entry));
  future.Then([hist = propose_hist_, start](const Result<std::any>&) {
    hist->Record(RealClock::Instance()->NowMicros() - start);
  });
  return future;
}

Future<ROTxn> ObserverEngine::Sync() {
  const int64_t start = RealClock::Instance()->NowMicros();
  Future<ROTxn> future = downstream()->Sync();
  future.Then([hist = sync_hist_, start](const Result<ROTxn>&) {
    hist->Record(RealClock::Instance()->NowMicros() - start);
  });
  return future;
}

}  // namespace delos
