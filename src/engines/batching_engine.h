// BatchingEngine (paper §4.4, 2020; production in Zelos, reusable by both
// databases with zero customization).
//
// Accumulates concurrent proposals and proposes them as one batch entry.
// Placement in the engine stack is what enables *group commit*: the whole
// batch is applied within a single LocalStore transaction (one BaseEngine
// entry = one transaction), unlike batching below the stack, where the
// BaseEngine would open a transaction per sub-entry, or batching in the
// database, which each application would have to re-implement.
//
// A batch is flushed when it reaches `max_batch_entries` or when the oldest
// entry has waited `max_delay_micros` (the accumulation latency visible in
// the Figure 11 dashboard).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/scheduler.h"
#include "src/core/stackable_engine.h"

namespace delos {

class BatchingEngine : public StackableEngine {
 public:
  struct Options {
    size_t max_batch_entries = 64;
    int64_t max_delay_micros = 500;
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
    // Clock for health math (open-batch age). Defaults to RealClock; the
    // flush timer itself stays on the TimerScheduler.
    Clock* clock = nullptr;
    // An open batch older than these bounds means the flush timer died or
    // the downstream propose path is wedged — the batch should have flushed
    // after max_delay_micros.
    int64_t health_queue_degraded_micros = 100'000;
    int64_t health_queue_unhealthy_micros = 1'000'000;
  };

  BatchingEngine(Options options, IEngine* downstream, LocalStore* store);
  ~BatchingEngine() override;

  Future<std::any> Propose(LogEntry entry) override;

  // Judges the age of the open batch (soft state under mu_).
  HealthReport HealthCheck() const override;

  uint64_t batches_proposed() const { return batches_proposed_.load(std::memory_order_relaxed); }
  uint64_t entries_batched() const { return entries_batched_.load(std::memory_order_relaxed); }

 protected:
  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override;
  void PostApplyControl(const EngineHeader& header, const LogEntry& entry, LogPos pos) override;

 private:
  static constexpr uint64_t kMsgTypeBatch = 1;

  struct Waiter {
    std::shared_ptr<Promise<std::any>> promise;
    // Tracing context (empty/zero when tracing is off): the sub-entry's
    // trace ids, when it entered the queue, and whether this engine minted
    // its id (it then owns the client-visible root span).
    std::vector<uint64_t> trace_ids;
    int64_t enqueue_micros = 0;
    bool trace_root = false;
  };

  void FlushLocked(std::unique_lock<std::mutex>& lock);

  Options options_;
  // Live queue depth ("how full is the open batch right now"), null without
  // a registry.
  Gauge* queue_depth_gauge_ = nullptr;
  mutable std::mutex mu_;
  std::vector<LogEntry> batch_entries_;
  std::vector<Waiter> batch_waiters_;
  uint64_t batch_ticket_ = 0;  // identifies the open batch for the timer
  // Injected-clock time the open batch received its first entry (0 when no
  // batch is open); HealthCheck's queue-age verdict reads it under mu_.
  int64_t open_batch_since_micros_ = 0;
  std::atomic<uint64_t> batches_proposed_{0};
  std::atomic<uint64_t> entries_batched_{0};
  TimerScheduler scheduler_;

  // Apply-thread-only scratch parked per position: decoded sub-entries of an
  // applied batch and whether each sub-apply ran (for postApply forwarding).
  struct AppliedBatch {
    std::vector<LogEntry> entries;
    std::vector<bool> ok;
  };
  ApplyCarry<AppliedBatch> applying_carry_;
};

}  // namespace delos
