// Assembles production-shaped engine stacks (paper Figure 6).
//
//   DelosTable stack: Base | Digest | LogBackup | BrainDoctor | ViewTracking
//   Zelos stack:      Base | Digest | LogBackup | BrainDoctor | ViewTracking
//                          | SessionOrder | Batching
//   Passive (non-voting follower) stack: Base | Digest | BrainDoctor
//     (no ViewTracking: passive servers must not be counted as durable
//     replicas; no Batching/SessionOrder: they do not propose)
//
// Optionally layers an ObserverEngine above each engine (the production
// monitoring practice behind Figure 11) and inserts the 2021 engines (Time,
// Lease) that had not reached production when the paper's data was
// collected.
#pragma once

#include "src/backup/backup_store.h"
#include "src/core/cluster.h"
#include "src/engines/batching_engine.h"
#include "src/engines/brain_doctor_engine.h"
#include "src/engines/digest_engine.h"
#include "src/engines/lease_engine.h"
#include "src/engines/log_backup_engine.h"
#include "src/engines/observer_engine.h"
#include "src/engines/session_order_engine.h"
#include "src/engines/time_engine.h"
#include "src/engines/view_tracking_engine.h"

namespace delos {

struct StackConfig {
  bool view_tracking = true;
  bool brain_doctor = true;
  bool log_backup = false;   // requires backup_store
  bool session_order = false;
  bool batching = false;
  bool time = false;
  bool lease = false;
  // Digest-beacon divergence detection (DigestEngine, bottom of the middle
  // stack so its apply-side digest sees the prefix before this record).
  bool digest = true;
  // Layer an ObserverEngine above every engine (incl. the BaseEngine).
  bool observers = false;

  BackupStore* backup_store = nullptr;
  uint64_t backup_segment_size = 64;
  size_t batch_max_entries = 64;
  int64_t batch_max_delay_micros = 500;
  int64_t lease_ttl_micros = 500'000;
  int64_t lease_guard_epsilon_micros = 50'000;
  int time_quorum = 1;
  int64_t eject_after_micros = 0;
  // ViewTracking heartbeat interval (0 = only piggyback on app proposals).
  int64_t view_heartbeat_micros = 0;
  // Digest beacon cadence: header every N proposals (0 = count-based off)
  // and optional idle heartbeat (0 = off; sims keep it off for determinism).
  uint64_t digest_beacon_every = 64;
  int64_t digest_beacon_interval_micros = 0;
  size_t digest_sample_window = 8;
  // Deploy the digest layer disabled (phase one of two-phase insertion): it
  // sits in the stack and forwards entries but checks no beacons until
  // EnableViaLog. The digest bench uses this to price enabling the plane on
  // a stack that already carries the layer.
  bool digest_start_enabled = true;
  Clock* clock = nullptr;
};

// The Figure 6 production configurations.
StackConfig DelosTableStackConfig(BackupStore* backup_store);
StackConfig ZelosStackConfig(BackupStore* backup_store);
StackConfig PassiveFollowerStackConfig();

// Adds the configured engines (bottom-up) to the server. Call inside a
// Cluster::StackBuilder before attaching the application.
void BuildStack(ClusterServer& server, const StackConfig& config);

}  // namespace delos
