// CompressionEngine: a pure protocol layer demonstrating the entry-mutation
// capability of log-structured protocols (§1: an engine can "batch, encrypt,
// compress, or otherwise mutate entries en route to lower layers").
//
// On propose, application payloads at or above a size threshold are
// compressed and the engine's header records that fact; on apply, the
// payload is restored before the entry continues upstream — the layers above
// (and the application) never know. Stateless (State/Prot: No/Yes, like the
// ObserverEngine).
#pragma once

#include <atomic>

#include "src/core/stackable_engine.h"

namespace delos {

class CompressionEngine : public StackableEngine {
 public:
  struct Options {
    // Payloads shorter than this are passed through unchanged.
    size_t min_payload_bytes = 64;
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
  };

  CompressionEngine(Options options, IEngine* downstream, LocalStore* store);

  uint64_t bytes_in() const { return bytes_in_.load(std::memory_order_relaxed); }
  uint64_t bytes_out() const { return bytes_out_.load(std::memory_order_relaxed); }

 protected:
  void OnPropose(LogEntry* entry) override;
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override;
  void PostApplyData(const LogEntry& entry, LogPos pos) override;

 private:
  // Header blob: "1" = payload compressed, "0" = passthrough.
  Options options_;
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  // Apply-thread scratch parked per position: the decompressed entry
  // forwarded upstream for an applied entry (postApply must forward the same
  // view). Empty optional = the original entry was forwarded unchanged.
  ApplyCarry<std::optional<LogEntry>> decompressed_carry_;
};

}  // namespace delos
