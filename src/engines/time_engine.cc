#include "src/engines/time_engine.h"

#include "src/common/serde.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "time";

StackableEngineOptions MakeStackOptions(const TimeEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

std::string EncodeCreate(const std::string& id, int64_t duration_micros) {
  Serializer ser;
  ser.WriteString(id);
  ser.WriteSigned(duration_micros);
  return ser.Release();
}

std::string EncodeElapsed(const std::string& id, const std::string& server) {
  Serializer ser;
  ser.WriteString(id);
  ser.WriteString(server);
  return ser.Release();
}

// Timer record in the LocalStore.
struct TimerState {
  int64_t duration_micros = 0;
  LogPos create_pos = 0;
  uint64_t elapsed_count = 0;
  bool fired = false;

  std::string Encode() const {
    Serializer ser;
    ser.WriteSigned(duration_micros);
    ser.WriteVarint(create_pos);
    ser.WriteVarint(elapsed_count);
    ser.WriteBool(fired);
    return ser.Release();
  }
  static TimerState Decode(std::string_view bytes) {
    Deserializer de(bytes);
    TimerState state;
    state.duration_micros = de.ReadSigned();
    state.create_pos = de.ReadVarint();
    state.elapsed_count = de.ReadVarint();
    state.fired = de.ReadBool();
    return state;
  }
};

}  // namespace

TimeEngine::TimeEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : RealClock::Instance()) {}

TimeEngine::~TimeEngine() {
  shutdown_.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (std::thread& thread : countdown_threads_) {
    if (thread.joinable()) {
      thread.join();
    }
  }
}

Future<std::any> TimeEngine::CreateTimer(const std::string& id, int64_t duration_micros) {
  return ProposeControl(kMsgTypeCreate, EncodeCreate(id, duration_micros));
}

void TimeEngine::OnFire(FireCallback callback) {
  std::lock_guard<std::mutex> lock(callbacks_mu_);
  callbacks_.push_back(std::move(callback));
}

bool TimeEngine::IsFired(const std::string& id) const {
  auto self = const_cast<TimeEngine*>(this);
  auto state = self->store()->Snapshot().Get(self->space().Key("timer/" + id));
  return state.has_value() && TimerState::Decode(*state).fired;
}

std::any TimeEngine::ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                                  LogPos pos) {
  std::any result = ApplyControlImpl(txn, header, entry, pos);
  // Park the scratch for this position: the group-commit pipeline applies a
  // whole batch before any postApply, so a later record in the batch would
  // otherwise clobber the members.
  timer_carry_.Push(pos, TimerCarry{std::move(just_fired_id_), just_fired_create_pos_,
                                    std::move(just_created_id_), just_created_duration_});
  just_fired_id_.clear();
  just_created_id_.clear();
  return result;
}

std::any TimeEngine::ApplyControlImpl(RWTxn& txn, const EngineHeader& header,
                                      const LogEntry& entry, LogPos pos) {
  just_fired_id_.clear();
  just_created_id_.clear();

  if (header.msgtype == kMsgTypeCreate) {
    Deserializer de(header.blob);
    std::string id = de.ReadString();
    const int64_t duration = de.ReadSigned();
    const std::string key = space().Key("timer/" + id);
    if (!txn.Get(key).has_value()) {
      TimerState state;
      state.duration_micros = duration;
      state.create_pos = pos;
      txn.Put(key, state.Encode());
      just_created_id_ = id;
      just_created_duration_ = duration;
    }
    return std::any(Unit{});
  }

  if (header.msgtype == kMsgTypeElapsed) {
    Deserializer de(header.blob);
    const std::string id = de.ReadString();
    const std::string server = de.ReadString();
    const std::string key = space().Key("timer/" + id);
    auto stored = txn.Get(key);
    if (!stored.has_value()) {
      return std::any(Unit{});
    }
    TimerState state = TimerState::Decode(*stored);
    if (state.fired) {
      return std::any(Unit{});
    }
    const std::string elapsed_key = space().Key("elapsed/" + id + "/" + server);
    if (txn.Get(elapsed_key).has_value()) {
      return std::any(Unit{});  // This server already reported.
    }
    txn.Put(elapsed_key, "1");
    state.elapsed_count += 1;
    if (state.elapsed_count >= static_cast<uint64_t>(options_.quorum)) {
      state.fired = true;
      just_fired_id_ = id;
      just_fired_create_pos_ = state.create_pos;
    }
    txn.Put(key, state.Encode());
    return std::any(Unit{});
  }
  return std::any(Unit{});
}

void TimeEngine::PostApplyControl(const EngineHeader& header, const LogEntry& entry, LogPos pos) {
  const TimerCarry carry = timer_carry_.Take(pos).value_or(TimerCarry{});
  if (!carry.created_id.empty()) {
    // Start the local countdown; when it expires on this server's clock,
    // report ELAPSED through the log. Polling (rather than sleeping the full
    // duration) keeps countdowns responsive to simulated clocks and engine
    // shutdown.
    const std::string id = carry.created_id;
    const int64_t deadline = clock_->NowMicros() + carry.created_duration;
    std::lock_guard<std::mutex> lock(threads_mu_);
    countdown_threads_.emplace_back([this, id, deadline] {
      while (!shutdown_.load(std::memory_order_acquire)) {
        if (clock_->NowMicros() >= deadline) {
          ProposeControl(kMsgTypeElapsed, EncodeElapsed(id, options_.server_id));
          return;
        }
        RealClock::Instance()->SleepMicros(500);
      }
    });
  }
  if (!carry.fired_id.empty()) {
    std::vector<FireCallback> callbacks;
    {
      std::lock_guard<std::mutex> lock(callbacks_mu_);
      callbacks = callbacks_;
    }
    for (const auto& callback : callbacks) {
      callback(carry.fired_id, carry.fired_create_pos);
    }
  }
}

// --- TimedTrimmer ---

TimedTrimmer::TimedTrimmer(TimeEngine* time_engine, IEngine* stack_top)
    : time_engine_(time_engine), stack_top_(stack_top) {
  time_engine_->OnFire([this](const std::string& id, LogPos create_pos) {
    LogPos trim_pos = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pending_.find(id);
      if (it == pending_.end()) {
        return;
      }
      trim_pos = it->second;
      pending_.erase(it);
    }
    stack_top_->SetTrimPrefix(trim_pos);
  });
}

void TimedTrimmer::ScheduleTrim(LogPos pos, int64_t delay_micros) {
  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = "trim-" + std::to_string(next_id_++) + "-" + std::to_string(pos);
    pending_[id] = pos;
  }
  time_engine_->CreateTimer(id, delay_micros);
}

}  // namespace delos
