// ViewTrackingEngine (paper §4.1, 2018; production in both databases).
//
// Coordinates trimming of the shared log. Every outgoing proposal is stamped
// with the proposing server's *durable* playback position (the last log
// position applied AND flushed to a LocalStore checkpoint). Applying these
// headers builds, on every server, a deterministic map of playback positions
// across the fleet; the minimum over the map is the safe trim prefix, which
// the engine relays downward via SetTrimPrefix.
//
// The log itself is the discovery and failure-detection mechanism: a server
// joins the view when its first entry appears; a server silent for longer
// than the ejection timeout is removed from the view by an EJECT command
// that any other server may propose (the decision is in the log, hence
// deterministic).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "src/common/clock.h"
#include "src/core/stackable_engine.h"

namespace delos {

class ViewTrackingEngine : public StackableEngine {
 public:
  struct Options {
    std::string server_id;
    // Returns this server's durable playback position (wired to
    // BaseEngine::durable_position).
    std::function<LogPos()> durable_position;
    // A server silent for this long becomes eligible for ejection. <=0
    // disables ejection.
    int64_t eject_after_micros = 0;
    // When >0, the engine proposes a heartbeat carrying this server's
    // durable position every interval. Keeps the server in the view (and
    // its position fresh) even when the application is idle — without it, a
    // server that never proposes is invisible to the view and gets no trim
    // protection.
    int64_t heartbeat_interval_micros = 0;
    Clock* clock = nullptr;  // defaults to RealClock
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
  };

  ViewTrackingEngine(Options options, IEngine* downstream, LocalStore* store);
  ~ViewTrackingEngine() override;

  // The deterministic view: server id -> durable playback position.
  std::map<std::string, LogPos> View() const;
  // Current safe trim position (min over the view), 0 if the view is empty.
  LogPos SafeTrimPosition() const;

  // Judges membership liveness: members silent past the ejection timeout
  // (when ejection is enabled) hold the trim prefix back for everyone.
  HealthReport HealthCheck() const override;

 protected:
  void OnPropose(LogEntry* entry) override;
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override;
  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override;
  void PostApplyData(const LogEntry& entry, LogPos pos) override;
  void PostApplyControl(const EngineHeader& header, const LogEntry& entry, LogPos pos) override;

 private:
  static constexpr uint64_t kMsgTypeEject = 1;
  static constexpr uint64_t kMsgTypeHeartbeat = 2;

  void RecomputeTrimOpinion(RWTxn& txn);
  void MaybeProposeEjections();
  void ApplyPositionReport(RWTxn& txn, const std::string& server, LogPos durable);
  void HeartbeatLoopMain();

  Options options_;
  Clock* clock_;
  // Current number of servers in the view, null without a registry.
  Gauge* members_gauge_ = nullptr;
  // Soft state: wall time we last saw an entry from each server, and the
  // last time we proposed ejecting it (rate limit). Apply thread +
  // background readers; guarded.
  mutable std::mutex soft_mu_;
  std::map<std::string, int64_t> last_seen_micros_;
  std::map<std::string, int64_t> last_eject_attempt_micros_;
  LogPos pending_trim_opinion_ = kNoTrimConstraint;  // set in apply, relayed in postApply

  std::atomic<bool> shutdown_{false};
  std::thread heartbeat_thread_;
};

}  // namespace delos
