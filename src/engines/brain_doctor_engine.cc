#include "src/engines/brain_doctor_engine.h"

#include "src/common/serde.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "braindoctor";

StackableEngineOptions MakeStackOptions(const BrainDoctorEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

}  // namespace

BrainDoctorEngine::BrainDoctorEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)) {}

Future<std::any> BrainDoctorEngine::ApplyRawWrites(std::vector<RawWrite> writes) {
  Serializer ser;
  ser.WriteVarint(writes.size());
  for (const auto& [key, value] : writes) {
    ser.WriteString(key);
    ser.WriteOptional(value, [](Serializer& s, const std::string& v) { s.WriteString(v); });
  }
  return ProposeControl(kMsgTypeWriteBatch, ser.Release());
}

std::any BrainDoctorEngine::ApplyControl(RWTxn& txn, const EngineHeader& header,
                                         const LogEntry& entry, LogPos pos) {
  if (header.msgtype != kMsgTypeWriteBatch) {
    return std::any(Unit{});
  }
  Deserializer de(header.blob);
  const uint64_t count = de.ReadVarint();
  for (uint64_t i = 0; i < count; ++i) {
    std::string key = de.ReadString();
    auto value =
        de.ReadOptional<std::string>([](Deserializer& d) { return d.ReadString(); });
    if (value.has_value()) {
      txn.Put(key, *value);
    } else {
      txn.Delete(key);
    }
  }
  if (recorder() != nullptr) {
    // Raw repair writes bypass the application; leave an audit trail.
    recorder()->Record(FlightEventKind::kControl,
                       "braindoctor applied " + std::to_string(count) + " raw writes", 0, pos);
  }
  return std::any(count);
}

}  // namespace delos
