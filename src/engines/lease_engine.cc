#include "src/engines/lease_engine.h"

#include "src/common/logging.h"
#include "src/common/serde.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "lease";

StackableEngineOptions MakeStackOptions(const LeaseEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

std::string EncodeExpire(uint64_t epoch, uint64_t renewal_seq) {
  Serializer ser;
  ser.WriteVarint(epoch);
  ser.WriteVarint(renewal_seq);
  return ser.Release();
}

}  // namespace

std::string LeaseEngine::LeaseState::Encode() const {
  Serializer ser;
  ser.WriteString(holder);
  ser.WriteVarint(epoch);
  ser.WriteVarint(renewal_seq);
  return ser.Release();
}

LeaseEngine::LeaseState LeaseEngine::LeaseState::Decode(std::string_view bytes) {
  Deserializer de(bytes);
  LeaseState state;
  state.holder = de.ReadString();
  state.epoch = de.ReadVarint();
  state.renewal_seq = de.ReadVarint();
  return state;
}

LeaseEngine::LeaseEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : RealClock::Instance()) {
  if (options_.metrics != nullptr) {
    active_gauge_ = options_.metrics->GetGauge("lease.active");
  }
  if (options_.auto_renew) {
    renew_thread_ = std::thread([this] { RenewLoopMain(); });
  }
}

LeaseEngine::~LeaseEngine() {
  shutdown_.store(true, std::memory_order_release);
  if (renew_thread_.joinable()) {
    renew_thread_.join();
  }
}

LeaseEngine::LeaseState LeaseEngine::ReadState(RWTxn& txn) const {
  auto self = const_cast<LeaseEngine*>(this);
  auto bytes = txn.Get(self->space().Key("state"));
  return bytes.has_value() ? LeaseState::Decode(*bytes) : LeaseState{};
}

LeaseEngine::LeaseState LeaseEngine::ReadStateSnapshot() const {
  auto self = const_cast<LeaseEngine*>(this);
  auto bytes = self->store()->Snapshot().Get(self->space().Key("state"));
  return bytes.has_value() ? LeaseState::Decode(*bytes) : LeaseState{};
}

Future<std::any> LeaseEngine::AcquireLease() {
  Serializer ser;
  ser.WriteString(options_.server_id);
  return ProposeControl(kMsgTypeAcquire, ser.Release());
}

bool LeaseEngine::HoldsValidLease() const {
  std::lock_guard<std::mutex> lock(soft_mu_);
  return held_by_self_ && clock_->NowMicros() < valid_until_micros_;
}

std::string LeaseEngine::CurrentHolder() const { return ReadStateSnapshot().holder; }

Future<ROTxn> LeaseEngine::Sync() {
  if (enabled() && HoldsValidLease()) {
    // 0-RTT strongly consistent read: every completed write was proposed by
    // us (others are rejected at apply) and is already in our local store.
    return MakeReadyFuture<ROTxn>(store()->Snapshot());
  }
  return downstream()->Sync();
}

void LeaseEngine::OnPropose(LogEntry* entry) {
  // Stamp the proposer; apply uses it to enforce the designated proposer.
  Serializer ser;
  ser.WriteString(options_.server_id);
  entry->SetHeader(name(), EngineHeader{kMsgTypeApp, ser.Release()});
}

Future<std::any> LeaseEngine::Propose(LogEntry entry) {
  if (enabled()) {
    const LeaseState state = ReadStateSnapshot();
    if (!state.holder.empty() && state.holder != options_.server_id) {
      // Fast local fail (the apply-side check is authoritative).
      return MakeErrorFuture<std::any>(std::make_exception_ptr(ProposeRejectedError(
          "lease held by " + state.holder + "; proposals must go through the holder")));
    }
  }
  return StackableEngine::Propose(std::move(entry));
}

std::any LeaseEngine::ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  const LeaseState state = ReadState(txn);
  if (!state.holder.empty()) {
    const std::optional<EngineHeaderView>& header = apply_header();
    if (header.has_value()) {
      Deserializer de(header->blob);
      const std::string proposer = de.ReadString();
      if (proposer != state.holder) {
        // Deterministic rejection on every replica: the entry is filtered
        // and the proposer's propose gets an exception.
        return std::any(ApplyError{std::make_exception_ptr(
            ProposeRejectedError("lease held by " + state.holder))});
      }
    }
  }
  return CallUpstream(txn, entry, pos);
}

std::any LeaseEngine::ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                                   LogPos pos) {
  const std::string state_key = space().Key("state");

  if (header.msgtype == kMsgTypeAcquire) {
    Deserializer de(header.blob);
    const std::string requester = de.ReadString();
    LeaseState state = ReadState(txn);
    LeaseCarry carry;
    if (state.holder.empty()) {
      state.holder = requester;
      state.epoch += 1;
      state.renewal_seq += 1;
      txn.Put(state_key, state.Encode());
      carry.acquired_self = (requester == options_.server_id);
      lease_carry_.Push(pos, carry);
      if (recorder() != nullptr) {
        recorder()->Record(FlightEventKind::kLease, "granted to " + requester, 0, pos,
                           state.epoch);
      }
      return std::any(true);
    }
    if (state.holder == requester) {
      state.renewal_seq += 1;
      txn.Put(state_key, state.Encode());
      carry.renewed_self = (requester == options_.server_id);
      lease_carry_.Push(pos, carry);
      return std::any(true);
    }
    return std::any(false);
  }

  if (header.msgtype == kMsgTypeExpire) {
    Deserializer de(header.blob);
    const uint64_t epoch = de.ReadVarint();
    const uint64_t renewal_seq = de.ReadVarint();
    LeaseState state = ReadState(txn);
    if (!state.holder.empty() && state.epoch == epoch && state.renewal_seq == renewal_seq) {
      // No renewal since the expirer's observation: free the lease.
      LOG_INFO << "lease: holder " << state.holder << " expired (epoch " << epoch << ")";
      if (recorder() != nullptr) {
        recorder()->Record(FlightEventKind::kLease, "expired holder " + state.holder, 0, pos,
                           epoch);
      }
      state.holder.clear();
      txn.Put(state_key, state.Encode());
      return std::any(true);
    }
    return std::any(false);
  }
  return std::any(Unit{});
}

void LeaseEngine::PostApplyControl(const EngineHeader& header, const LogEntry& entry,
                                   LogPos pos) {
  const LeaseCarry carry = lease_carry_.Take(pos).value_or(LeaseCarry{});
  const LeaseState state = ReadStateSnapshot();
  if (active_gauge_ != nullptr) {
    // This replica's view of how many leases are currently granted (0 or 1).
    active_gauge_->Set(state.holder.empty() ? 0 : 1);
  }
  std::lock_guard<std::mutex> lock(soft_mu_);
  const int64_t now = clock_->NowMicros();
  observed_epoch_ = state.epoch;
  observed_renewal_seq_ = state.renewal_seq;
  observed_holder_ = state.holder;
  observed_at_micros_ = now;
  if (carry.acquired_self || carry.renewed_self) {
    held_by_self_ = true;
    valid_until_micros_ = now + options_.lease_ttl_micros - options_.guard_epsilon_micros;
  } else if (state.holder != options_.server_id) {
    held_by_self_ = false;
    valid_until_micros_ = 0;
  }
}

bool LeaseEngine::TryTakeover() {
  // Wait until the last-applied renewal is stale on our clock, then expire
  // and acquire.
  uint64_t epoch;
  uint64_t renewal_seq;
  std::string holder;
  int64_t observed_at;
  {
    std::lock_guard<std::mutex> lock(soft_mu_);
    epoch = observed_epoch_;
    renewal_seq = observed_renewal_seq_;
    holder = observed_holder_;
    observed_at = observed_at_micros_;
  }
  if (holder.empty()) {
    try {
      return std::any_cast<bool>(AcquireLease().Get());
    } catch (const std::exception&) {
      return false;
    }
  }
  if (holder == options_.server_id) {
    return true;
  }
  const int64_t patience = options_.lease_ttl_micros + options_.guard_epsilon_micros;
  while (clock_->NowMicros() - observed_at < patience) {
    if (shutdown_.load(std::memory_order_acquire)) {
      return false;
    }
    {
      std::lock_guard<std::mutex> lock(soft_mu_);
      if (observed_renewal_seq_ != renewal_seq || observed_epoch_ != epoch) {
        return false;  // The holder renewed; takeover aborted.
      }
    }
    RealClock::Instance()->SleepMicros(1000);
  }
  try {
    ProposeControl(kMsgTypeExpire, EncodeExpire(epoch, renewal_seq)).Get();
    return std::any_cast<bool>(AcquireLease().Get());
  } catch (const std::exception&) {
    return false;
  }
}

HealthReport LeaseEngine::HealthCheck() const {
  bool held;
  int64_t valid_until;
  std::string holder;
  int64_t observed_at;
  {
    std::lock_guard<std::mutex> lock(soft_mu_);
    held = held_by_self_;
    valid_until = valid_until_micros_;
    holder = observed_holder_;
    observed_at = observed_at_micros_;
  }
  HealthReport report{name(), HealthState::kOk, "", 0};
  const int64_t now = clock_->NowMicros();
  if (held) {
    if (now >= valid_until) {
      const int64_t overdue = now - valid_until;
      report.state = HealthState::kDegraded;
      report.reason = "held lease expired " + std::to_string(overdue) +
                      "us ago without renewal";
      report.value = overdue;
    }
    return report;
  }
  if (!holder.empty() && holder != options_.server_id && observed_at > 0) {
    const int64_t silent = now - observed_at;
    const int64_t patience = options_.lease_ttl_micros + options_.guard_epsilon_micros;
    if (silent > patience) {
      report.state = HealthState::kDegraded;
      report.reason = "holder " + holder + " silent " + std::to_string(silent) +
                      "us (takeover candidate)";
      report.value = silent;
    }
  }
  return report;
}

void LeaseEngine::RenewLoopMain() {
  const int64_t interval = std::max<int64_t>(options_.lease_ttl_micros / 3, 1000);
  int64_t last_renew = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    const int64_t now = clock_->NowMicros();
    bool should_renew = false;
    {
      std::lock_guard<std::mutex> lock(soft_mu_);
      should_renew = held_by_self_ && (now - last_renew >= interval);
    }
    if (should_renew && enabled()) {
      last_renew = now;
      AcquireLease();  // Renewal; fire and forget.
    }
    RealClock::Instance()->SleepMicros(1000);
  }
}

}  // namespace delos
