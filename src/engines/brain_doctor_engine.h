// BrainDoctorEngine (paper §4.2, 2019; production in both databases).
//
// A pass-through engine with one addition: an external call that proposes a
// list of raw LocalStore writes into the log; when the control command is
// applied, the writes are applied directly to the store, bypassing all
// application logic. Used for emergency "brain surgery" on a running
// database (the motivating incident was repairing secondary indices written
// incorrectly by a DelosTable bug). This engine is the sanctioned exception
// to keyspace isolation: it may write any key.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/stackable_engine.h"

namespace delos {

class BrainDoctorEngine : public StackableEngine {
 public:
  struct Options {
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
  };

  // One raw write: value present = put, absent = delete.
  using RawWrite = std::pair<std::string, std::optional<std::string>>;

  BrainDoctorEngine(Options options, IEngine* downstream, LocalStore* store);

  // Proposes the writes through the log; every replica applies them directly
  // to its LocalStore. Resolves to the number of writes applied.
  Future<std::any> ApplyRawWrites(std::vector<RawWrite> writes);

 protected:
  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override;

 private:
  static constexpr uint64_t kMsgTypeWriteBatch = 1;
};

}  // namespace delos
