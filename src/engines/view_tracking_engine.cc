#include "src/engines/view_tracking_engine.h"

#include <algorithm>

#include "src/common/serde.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "viewtracking";

StackableEngineOptions MakeStackOptions(const ViewTrackingEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

std::string EncodePositionHeader(const std::string& server, LogPos durable) {
  Serializer ser;
  ser.WriteString(server);
  ser.WriteVarint(durable);
  return ser.Release();
}

std::string EncodePos(LogPos pos) {
  Serializer ser;
  ser.WriteVarint(pos);
  return ser.Release();
}

LogPos DecodePos(const std::string& bytes) {
  Deserializer de(bytes);
  return de.ReadVarint();
}

}  // namespace

ViewTrackingEngine::ViewTrackingEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : RealClock::Instance()) {
  if (options_.metrics != nullptr) {
    members_gauge_ = options_.metrics->GetGauge("viewtracking.members");
  }
  if (options_.heartbeat_interval_micros > 0) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoopMain(); });
  }
}

ViewTrackingEngine::~ViewTrackingEngine() {
  shutdown_.store(true, std::memory_order_release);
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.join();
  }
}

void ViewTrackingEngine::HeartbeatLoopMain() {
  int64_t last = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    const int64_t now = RealClock::Instance()->NowMicros();
    if (now - last >= options_.heartbeat_interval_micros) {
      last = now;
      const LogPos durable =
          options_.durable_position != nullptr ? options_.durable_position() : 0;
      ProposeControl(kMsgTypeHeartbeat, EncodePositionHeader(options_.server_id, durable));
    }
    RealClock::Instance()->SleepMicros(
        std::min<int64_t>(options_.heartbeat_interval_micros / 4 + 1, 5000));
  }
}

void ViewTrackingEngine::ApplyPositionReport(RWTxn& txn, const std::string& server,
                                             LogPos durable) {
  const std::string view_key = space().Key("view/" + server);
  auto existing = txn.Get(view_key);
  const LogPos known = existing.has_value() ? DecodePos(*existing) : 0;
  // Positions only move forward; a lagging header (stamped before an
  // earlier one committed) must not regress the view.
  if (!existing.has_value() || durable > known) {
    txn.Put(view_key, EncodePos(durable));
  }
  if (!existing.has_value() && recorder() != nullptr) {
    recorder()->Record(FlightEventKind::kViewChange, "join " + server, 0, durable);
  }
  RecomputeTrimOpinion(txn);
  {
    std::lock_guard<std::mutex> lock(soft_mu_);
    last_seen_micros_[server] = clock_->NowMicros();
  }
}

void ViewTrackingEngine::OnPropose(LogEntry* entry) {
  const LogPos durable =
      options_.durable_position != nullptr ? options_.durable_position() : 0;
  entry->SetHeader(name(),
                   EngineHeader{kMsgTypeApp, EncodePositionHeader(options_.server_id, durable)});
}

std::any ViewTrackingEngine::ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  const std::optional<EngineHeaderView>& header = apply_header();
  if (header.has_value()) {
    Deserializer de(header->blob);
    const std::string server = de.ReadString();
    const LogPos durable = de.ReadVarint();
    ApplyPositionReport(txn, server, durable);
  }
  return CallUpstream(txn, entry, pos);
}

std::any ViewTrackingEngine::ApplyControl(RWTxn& txn, const EngineHeader& header,
                                          const LogEntry& entry, LogPos pos) {
  if (header.msgtype == kMsgTypeHeartbeat) {
    Deserializer de(header.blob);
    const std::string server = de.ReadString();
    const LogPos durable = de.ReadVarint();
    ApplyPositionReport(txn, server, durable);
    return std::any(Unit{});
  }
  if (header.msgtype == kMsgTypeEject) {
    Deserializer de(header.blob);
    const std::string server = de.ReadString();
    if (recorder() != nullptr) {
      recorder()->Record(FlightEventKind::kViewChange, "eject " + server, 0, pos);
    }
    txn.Delete(space().Key("view/" + server));
    RecomputeTrimOpinion(txn);
    std::lock_guard<std::mutex> lock(soft_mu_);
    last_seen_micros_.erase(server);
  }
  return std::any(Unit{});
}

void ViewTrackingEngine::RecomputeTrimOpinion(RWTxn& txn) {
  LogPos min_pos = kNoTrimConstraint;
  int64_t members = 0;
  txn.Scan(space().Key("view/"), space().Key("view0"),
           [&](std::string_view key, std::string_view value) {
             min_pos = std::min(min_pos, DecodePos(std::string(value)));
             members += 1;
             return true;
           });
  pending_trim_opinion_ = members > 0 ? min_pos : kNoTrimConstraint;
  if (members_gauge_ != nullptr) {
    members_gauge_->Set(members);
  }
}

void ViewTrackingEngine::PostApplyControl(const EngineHeader& header, const LogEntry& entry,
                                          LogPos pos) {
  if (pending_trim_opinion_ != kNoTrimConstraint) {
    SetOwnTrimOpinion(pending_trim_opinion_);
  }
  MaybeProposeEjections();
}

void ViewTrackingEngine::PostApplyData(const LogEntry& entry, LogPos pos) {
  // Relay the opinion computed during apply; doing it post-commit keeps the
  // trim decision based only on committed state.
  if (pending_trim_opinion_ != kNoTrimConstraint) {
    SetOwnTrimOpinion(pending_trim_opinion_);
  }
  MaybeProposeEjections();
  ForwardPostApply(entry, pos);
}

void ViewTrackingEngine::MaybeProposeEjections() {
  if (options_.eject_after_micros <= 0) {
    return;
  }
  const int64_t now = clock_->NowMicros();
  std::vector<std::string> to_eject;
  {
    std::lock_guard<std::mutex> lock(soft_mu_);
    for (const auto& [server, last_seen] : last_seen_micros_) {
      if (server == options_.server_id) {
        continue;
      }
      if (now - last_seen < options_.eject_after_micros) {
        continue;
      }
      auto& last_attempt = last_eject_attempt_micros_[server];
      if (now - last_attempt < options_.eject_after_micros) {
        continue;  // Rate-limit repeated ejection proposals.
      }
      last_attempt = now;
      to_eject.push_back(server);
    }
  }
  for (const std::string& server : to_eject) {
    Serializer ser;
    ser.WriteString(server);
    // Fire and forget; the command takes effect when applied.
    ProposeControl(kMsgTypeEject, ser.Release());
  }
}

std::map<std::string, LogPos> ViewTrackingEngine::View() const {
  std::map<std::string, LogPos> view;
  auto self = const_cast<ViewTrackingEngine*>(this);
  ROTxn snapshot = self->store()->Snapshot();
  const std::string prefix = self->space().Key("view/");
  for (const auto& [key, value] : snapshot.ScanPrefix(prefix)) {
    view[key.substr(prefix.size())] = DecodePos(value);
  }
  return view;
}

HealthReport ViewTrackingEngine::HealthCheck() const {
  HealthReport report{name(), HealthState::kOk, "", 0};
  if (options_.eject_after_micros <= 0) {
    return report;
  }
  const int64_t now = clock_->NowMicros();
  int64_t silent_members = 0;
  std::string worst;
  int64_t worst_silence = 0;
  {
    std::lock_guard<std::mutex> lock(soft_mu_);
    for (const auto& [server, last_seen] : last_seen_micros_) {
      if (server == options_.server_id) {
        continue;
      }
      const int64_t silence = now - last_seen;
      if (silence > options_.eject_after_micros) {
        ++silent_members;
        if (silence > worst_silence) {
          worst_silence = silence;
          worst = server;
        }
      }
    }
  }
  if (silent_members > 0) {
    report.state = HealthState::kDegraded;
    report.reason = std::to_string(silent_members) + " member(s) silent past ejection timeout (" +
                    worst + " " + std::to_string(worst_silence) + "us; trim held back)";
    report.value = silent_members;
  }
  return report;
}

LogPos ViewTrackingEngine::SafeTrimPosition() const {
  LogPos min_pos = kNoTrimConstraint;
  bool any = false;
  for (const auto& [server, pos] : View()) {
    min_pos = std::min(min_pos, pos);
    any = true;
  }
  return any ? min_pos : 0;
}

}  // namespace delos
