// LogBackupEngine (paper §4.2, 2019; production in both databases).
//
// Coordinates the nodes of a cluster to upload disjoint segments of the
// shared log to a backup store before the log is trimmed, enabling
// Point-in-Time restore. The log itself is the coordination mechanism:
//
//  * The replicated state is a map of segment bids. When playback crosses a
//    segment boundary, every server proposes a BID for the segment; the
//    first bid in the log wins deterministically.
//  * The winner uploads the segment (on a background worker, off the apply
//    thread) and proposes COMPLETE when done.
//  * The engine's trim opinion is the end of the last contiguous completed
//    segment, so the BaseEngine never trims entries that are not yet backed
//    up (setTrimPrefix min-relay, §3.3).
#pragma once

#include <atomic>
#include <string>
#include <thread>

#include "src/backup/backup_store.h"
#include "src/common/blocking_queue.h"
#include "src/core/stackable_engine.h"

namespace delos {

class LogBackupEngine : public StackableEngine {
 public:
  struct Options {
    std::string server_id;
    BackupStore* backup_store = nullptr;
    // The shared log to read segments from (wired to BaseEngine's log — on a
    // ClusterServer that is the per-server ReadCachingLog, so segment
    // uploads of recently applied positions are served from cache instead of
    // re-fetching them from the loglet).
    ISharedLog* log = nullptr;
    // Segment size in log positions. Segment s covers
    // [s * size + 1, (s + 1) * size].
    uint64_t segment_size = 64;
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
  };

  LogBackupEngine(Options options, IEngine* downstream, LocalStore* store);
  ~LogBackupEngine() override;

  // End of the last contiguous backed-up prefix (0 = nothing backed up).
  LogPos BackedUpPrefix() const;

  // Object name for a segment in the backup store.
  static std::string SegmentObjectName(uint64_t segment);
  static constexpr char kSegmentPrefix[] = "logseg/";

 protected:
  void OnPropose(LogEntry* entry) override {}
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override;
  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override;
  void PostApplyData(const LogEntry& entry, LogPos pos) override;
  void PostApplyControl(const EngineHeader& header, const LogEntry& entry, LogPos pos) override;

 private:
  static constexpr uint64_t kMsgTypeBid = 1;
  static constexpr uint64_t kMsgTypeComplete = 2;

  void MaybeBid(LogPos pos);
  void UploadWorkerMain();
  void RecomputeBackedPrefix(RWTxn& txn);

  Options options_;
  std::atomic<LogPos> backed_prefix_{0};
  // Segments this server won and must upload.
  BlockingQueue<uint64_t> upload_queue_;
  std::thread upload_worker_;
  // Apply-thread-only scratch parked per position: segment won by us in an
  // applied entry (kNoSegment if none).
  static constexpr uint64_t kNoSegment = UINT64_MAX;
  ApplyCarry<uint64_t> won_segment_carry_;
  // Apply-thread-only: first segment whose bid we have not yet checked.
  uint64_t next_bid_check_ = 0;
};

}  // namespace delos
