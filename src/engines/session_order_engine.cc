#include "src/engines/session_order_engine.h"

#include <optional>
#include <utility>
#include <vector>

#include "src/common/clock.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/common/serde.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "sessionorder";

StackableEngineOptions MakeStackOptions(const SessionOrderEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

std::string EncodeSessionHeader(const std::string& session, uint64_t seq) {
  Serializer ser;
  ser.WriteString(session);
  ser.WriteVarint(seq);
  return ser.Release();
}

std::pair<std::string, uint64_t> DecodeSessionHeader(std::string_view blob) {
  Deserializer de(blob);
  std::string session = de.ReadString();
  const uint64_t seq = de.ReadVarint();
  return {std::move(session), seq};
}

std::string EncodeSeq(uint64_t seq) {
  Serializer ser;
  ser.WriteVarint(seq);
  return ser.Release();
}

uint64_t DecodeSeq(const std::string& bytes) {
  Deserializer de(bytes);
  return de.ReadVarint();
}

// Bound on same-seq re-appends after a sub-stack append failure. The retries
// exist to plug holes in the session sequence (a seq that never commits
// blocks every later seq forever); the bound keeps a dead log from looping.
constexpr int kMaxAppendRetries = 8;

}  // namespace

SessionOrderEngine::SessionOrderEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(std::move(options)) {
  if (options_.clock == nullptr) {
    options_.clock = RealClock::Instance();
  }
  Rng rng(static_cast<uint64_t>(RealClock::Instance()->NowMicros()) ^
          Fnv1a64(options_.server_id) ^ 0x5e55104uLL);
  session_id_ = options_.server_id + "#" + rng.String(8);
}

Future<std::any> SessionOrderEngine::Propose(LogEntry entry) {
  if (!enabled()) {
    return downstream()->Propose(std::move(entry));
  }
  auto promise = std::make_shared<Promise<std::any>>();
  Future<std::any> future = promise->GetFuture();
  // Trace ids are stamped before the entry is copied into the pending map so
  // retries re-propose the same ids — a retried append shows up as extra
  // spans on the *original* trace, which is exactly the causality a debugger
  // wants to see.
  bool trace_root = false;
  std::vector<uint64_t> trace_ids;
  int64_t trace_start = 0;
  if (tracer() != nullptr) {
    trace_ids = EnsureTraceIds(&entry, &trace_root);
    trace_start = tracer()->NowMicros();
  }
  LogEntry stamped;
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    seq = next_seq_++;
    entry.SetHeader(name(), EngineHeader{kMsgTypeApp, EncodeSessionHeader(session_id_, seq)});
    stamped = entry;
    pending_.emplace(seq,
                     PendingPropose{entry, promise, 0, options_.clock->NowMicros()});
  }
  // The sub-stack's return value is ignored: this propose is completed from
  // postApply when its sequence number applies in order. Append failures are
  // retried with the same sequence number (see ProposeStamped).
  ProposeStamped(std::move(stamped), seq);
  if (!trace_ids.empty()) {
    // Sequencing span: stamping plus the synchronous hand-off of the first
    // append attempt.
    const int64_t handoff = tracer()->NowMicros();
    for (const uint64_t id : trace_ids) {
      tracer()->RecordSpan(id, "sessionorder.seq", server_label(), trace_start, handoff);
    }
    if (trace_root) {
      RecordRootSpanOnCompletion(future, trace_ids, trace_start);
    }
  }
  return future;
}

void SessionOrderEngine::ProposeStamped(LogEntry stamped, uint64_t seq) {
  downstream()->Propose(std::move(stamped)).Then([this, seq](Result<std::any> result) {
    if (result.ok()) {
      return;
    }
    // The append failed — or *may* have failed (a timeout is ambiguous). The
    // seq must still commit or every later seq in this session is filtered as
    // a gap, so retry the same stamped entry. If the first append actually
    // committed, the retry applies as seq < expected and is filtered.
    std::shared_ptr<Promise<std::any>> to_fail;
    std::optional<LogEntry> to_retry;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      auto it = pending_.find(seq);
      if (it == pending_.end()) {
        // Already completed from postApply (the "failed" append committed).
        return;
      }
      if (++it->second.append_retries <= kMaxAppendRetries) {
        to_retry = it->second.stamped_entry;
      } else {
        to_fail = it->second.promise;
        pending_.erase(it);
      }
    }
    if (to_retry.has_value()) {
      ProposeStamped(*std::move(to_retry), seq);
      return;
    }
    to_fail->SetException(result.error());
  });
}

std::any SessionOrderEngine::ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  Carried carried;
  std::any result = ApplyDataImpl(txn, entry, pos, carried);
  carry_.Push(pos, std::move(carried));
  return result;
}

std::any SessionOrderEngine::ApplyDataImpl(RWTxn& txn, const LogEntry& entry, LogPos pos,
                                           Carried& carried) {
  const std::optional<EngineHeaderView>& header = apply_header();
  if (!header.has_value()) {
    // Entry from a stack iteration without this engine: pass through.
    return CallUpstream(txn, entry, pos);
  }
  auto [session, seq] = DecodeSessionHeader(header->blob);
  carried.was_ours = (session == session_id_);
  carried.seq = seq;

  const std::string next_key = space().Key("next/" + session);
  auto stored = txn.Get(next_key);
  const uint64_t expected = stored.has_value() ? DecodeSeq(*stored) : 1;

  if (seq == expected) {
    txn.Put(next_key, EncodeSeq(seq + 1));
    carried.outcome = Outcome::kApplied;
    std::any result = CallUpstream(txn, entry, pos);
    if (carried.was_ours) {
      carried.result = result;
    }
    return result;
  }
  if (seq < expected) {
    // Duplicate from a re-propose: filtered — exactly-once semantics.
    duplicates_filtered_.fetch_add(1, std::memory_order_relaxed);
    carried.outcome = Outcome::kDuplicate;
    return std::any(Unit{});
  }
  // Gap: the log reordered this session's entries. Filter; the proposer
  // re-proposes everything from `expected` on.
  disorder_events_.fetch_add(1, std::memory_order_relaxed);
  carried.outcome = Outcome::kGap;
  return std::any(Unit{});
}

void SessionOrderEngine::PostApplyData(const LogEntry& entry, LogPos pos) {
  const Carried carried = carry_.Take(pos).value_or(Carried{});
  switch (carried.outcome) {
    case Outcome::kApplied:
      if (carried.was_ours) {
        // Short-circuit: notify the waiting propose directly.
        std::shared_ptr<Promise<std::any>> promise;
        {
          std::lock_guard<std::mutex> lock(pending_mu_);
          auto it = pending_.find(carried.seq);
          if (it != pending_.end()) {
            promise = it->second.promise;
            pending_.erase(it);
          }
        }
        if (promise != nullptr) {
          if (IsApplyError(carried.result)) {
            promise->SetException(std::any_cast<ApplyError>(carried.result).error);
          } else {
            promise->SetValue(carried.result);
          }
        }
      }
      break;
    case Outcome::kGap:
      if (carried.was_ours) {
        // Our own entry arrived out of order: re-propose the whole pending
        // window starting at the gap, with original sequence numbers.
        ReproposeFrom(0);
      }
      break;
    case Outcome::kDuplicate:
    case Outcome::kNone:
      break;
  }
  ForwardPostApply(entry, pos);
}

void SessionOrderEngine::ReproposeFrom(uint64_t first_seq) {
  std::vector<std::pair<uint64_t, LogEntry>> to_repropose;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (const auto& [seq, pending] : pending_) {
      if (seq >= first_seq) {
        to_repropose.emplace_back(seq, pending.stamped_entry);
      }
    }
  }
  LOG_DEBUG << "sessionorder: re-proposing " << to_repropose.size() << " entries after disorder";
  for (auto& [seq, entry] : to_repropose) {
    ProposeStamped(std::move(entry), seq);
  }
}

HealthReport SessionOrderEngine::HealthCheck() const {
  int64_t oldest = 0;
  int64_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    depth = static_cast<int64_t>(pending_.size());
    // pending_ is keyed by seq; the lowest seq is the oldest stamp.
    if (!pending_.empty()) {
      oldest = pending_.begin()->second.stamped_micros;
    }
  }
  HealthReport report{name(), HealthState::kOk, "", depth};
  if (depth == 0) {
    return report;
  }
  const int64_t age = options_.clock->NowMicros() - oldest;
  if (age >= options_.health_pending_unhealthy_micros) {
    report.state = HealthState::kUnhealthy;
    report.reason = "oldest pending seq stalled " + std::to_string(age) + "us (" +
                    std::to_string(depth) + " pending; session-sequence hole)";
    report.value = age;
  } else if (age >= options_.health_pending_degraded_micros) {
    report.state = HealthState::kDegraded;
    report.reason = "oldest pending seq waiting " + std::to_string(age) + "us (" +
                    std::to_string(depth) + " pending)";
    report.value = age;
  }
  return report;
}

uint64_t SessionOrderEngine::disorder_events() const {
  return disorder_events_.load(std::memory_order_relaxed);
}

uint64_t SessionOrderEngine::duplicates_filtered() const {
  return duplicates_filtered_.load(std::memory_order_relaxed);
}

}  // namespace delos
