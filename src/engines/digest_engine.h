// DigestEngine: online replica-divergence detection through the log.
//
// The simulator catches divergence offline by replaying the whole log into a
// reference store and diffing checksums; production has no such luxury — a
// replica corrupted by a bad apply, a torn checkpoint, or a non-deterministic
// engine serves wrong answers while every health check stays green. This
// engine makes the check always-on by routing it through the shared log
// itself (the paper's universal ordering device):
//
//  * Every Nth outgoing proposal is stamped with a *digest beacon* header
//    (piggybacking on batching exactly like the trace header), and an
//    optional heartbeat proposes a standalone beacon when the application is
//    idle. The beacon carries the proposing replica's recent digest samples:
//    (log position, LocalStore state digest as of that position) pairs, plus
//    its apply position and a hash over the sample table.
//  * Beacons are totally ordered by the log, so every replica applies each
//    beacon at the same position Q and computes the SAME deterministic
//    quantity there: the state digest of the log prefix [1, Q-1], via
//    RWTxn::EffectiveDigest (committed checksum patched with the staged
//    batch overlay, minus the batch-boundary-dependent group-commit cursor).
//    The result is written to a small per-replica sample table in the store
//    (bounded window, pruned deterministically) — replicas that applied the
//    same prefix have byte-identical tables.
//  * Applying a beacon, each replica compares the proposer's carried samples
//    against its own table at the common positions. A mismatch convicts
//    divergence inside the bounded window (last-agreeing sample, first
//    disagreeing sample]; the DivergenceTracker (src/common) latches the
//    earliest such interval, records a kDivergence flight event with the
//    digest pair, captures a flight excerpt + recent trace ids, and flips
//    this engine's HealthCheck to UNHEALTHY with the position range.
//
// False-positive freedom: every store write during apply is a deterministic
// function of the log prefix (the repo-wide invariant the simulator's
// reference replay already enforces), except the group-commit cursor — which
// EffectiveDigest excludes. Crash recovery (checkpoint + replay), trim, and
// loglet reconfiguration all preserve "state = f(prefix)", so beacons never
// convict a healthy replica; digest_test and sim_digest_test hold this down.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/divergence.h"
#include "src/core/stackable_engine.h"

namespace delos {

class DigestEngine : public StackableEngine {
 public:
  struct Options {
    std::string server_id;
    // Stamp a beacon header on every Nth proposal descending through this
    // layer (0 disables count-based beacons).
    uint64_t beacon_every_n_proposals = 64;
    // When >0, a background thread proposes a standalone beacon control
    // entry every interval, so idle clusters still cross-check (off by
    // default; the simulator keeps it off for determinism).
    int64_t beacon_interval_micros = 0;
    // Digest samples kept in the store table and carried per beacon.
    size_t sample_window = 8;
    Clock* clock = nullptr;  // defaults to RealClock
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    // Sink for the kDivergence event + conviction flight excerpt. Wired by
    // stacks.cc to the server's recorder (the tracker needs it at
    // construction, before ConfigureObservability runs).
    FlightRecorder* recorder = nullptr;
    bool start_enabled = true;
  };

  DigestEngine(Options options, IEngine* downstream, LocalStore* store);
  ~DigestEngine() override;

  // Proposes a standalone beacon carrying this replica's current sample
  // table and blocks until it is applied locally. Deterministic drivers
  // (sim, tests, delosctl demo) use this instead of the heartbeat thread.
  // timeout_micros > 0 bounds the wait (a fault-sim replay can wedge on a
  // scheduled crash before the beacon applies); returns false on timeout or
  // propose failure, true once the beacon applied locally.
  bool ProposeBeaconNow(int64_t timeout_micros = 0);

  // The earliest-divergence attribution state (never null).
  DivergenceTracker* tracker() { return &tracker_; }
  const DivergenceTracker* tracker() const { return &tracker_; }

  // This replica's sample table: log position -> state digest there.
  std::map<LogPos, uint64_t> SampleTable() const;

  // UNHEALTHY with the convicted position window once the tracker latches.
  HealthReport HealthCheck() const override;

  // /digest rendering (text and JSON).
  std::string Render() const;
  std::string RenderJson() const;

 protected:
  void OnPropose(LogEntry* entry) override;
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override;
  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override;
  void PostApplyData(const LogEntry& entry, LogPos pos) override;
  void PostApplyControl(const EngineHeader& header, const LogEntry& entry, LogPos pos) override;

 private:
  static constexpr uint64_t kMsgTypeBeacon = 1;

  // Serializes (server id, apply position, table hash, samples) from the
  // soft copy of the sample table.
  std::string BuildBeaconBlob();
  // Computes the local digest at `pos`, compares the beacon's samples
  // against the store table, records the verdicts, and writes + prunes this
  // replica's sample. Parks the new sample for the post-apply soft update.
  void ProcessBeacon(RWTxn& txn, std::string_view blob, const LogEntry& entry, LogPos pos);
  void HeartbeatLoopMain();

  Options options_;
  Clock* clock_;
  DivergenceTracker tracker_;

  std::atomic<uint64_t> propose_count_{0};

  // Soft copy of this replica's sample table (what outgoing beacons carry),
  // rebuilt from the store on construction and advanced in postApply.
  mutable std::mutex soft_mu_;
  std::map<LogPos, uint64_t> soft_samples_;
  // Advanced once per applied record (lock-free: postApply is single-
  // threaded, beacon builders only need a recent value).
  std::atomic<LogPos> last_applied_pos_{0};

  // Apply->postApply scratch: the sample this position added.
  ApplyCarry<std::pair<LogPos, uint64_t>> sample_carry_;

  std::atomic<bool> shutdown_{false};
  std::thread heartbeat_thread_;
};

}  // namespace delos
