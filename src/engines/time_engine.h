// TimeEngine (paper §4.3, 2021).
//
// Distributed time-outs that are robust to clock skew and drift: a timer
// created via the log fires only once a fixed amount of time has elapsed on
// a quorum of servers' *local* clocks. Each server, upon applying the
// creation command, starts a local countdown and proposes an ELAPSED command
// when it expires; the timer deterministically fires at the log position
// where the quorum-th distinct ELAPSED applies.
//
// The motivating use is time-based trimming for non-voting followers: create
// a timer at some log position and call setTrimPrefix when it fires (see
// TimedTrimmer below).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/stackable_engine.h"

namespace delos {

class TimeEngine : public StackableEngine {
 public:
  struct Options {
    std::string server_id;
    // Servers whose local clocks must elapse before the timer fires.
    int quorum = 1;
    Clock* clock = nullptr;  // defaults to RealClock
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
  };

  // Invoked (on the apply thread, post-commit) when a timer fires; receives
  // the timer id and the log position of its creation command.
  using FireCallback = std::function<void(const std::string& id, LogPos create_pos)>;

  TimeEngine(Options options, IEngine* downstream, LocalStore* store);
  ~TimeEngine() override;

  // Creates a distributed timer through the log. Returns once the creation
  // command is appended (not once the timer fires).
  Future<std::any> CreateTimer(const std::string& id, int64_t duration_micros);

  // Registers a local callback for timer firings.
  void OnFire(FireCallback callback);

  // Deterministic query against committed state.
  bool IsFired(const std::string& id) const;

 protected:
  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override;
  void PostApplyControl(const EngineHeader& header, const LogEntry& entry, LogPos pos) override;

 private:
  static constexpr uint64_t kMsgTypeCreate = 1;
  static constexpr uint64_t kMsgTypeElapsed = 2;

  std::any ApplyControlImpl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                            LogPos pos);

  Options options_;
  Clock* clock_;
  // Per-timer countdown threads: each polls the (possibly simulated) clock
  // and proposes ELAPSED when the deadline passes. Joined on destruction.
  std::atomic<bool> shutdown_{false};
  std::mutex threads_mu_;
  std::vector<std::thread> countdown_threads_;

  std::mutex callbacks_mu_;
  std::vector<FireCallback> callbacks_;

  // Apply-thread-only scratch (valid within one ApplyControlImpl call, then
  // parked per position in timer_carry_ for PostApplyControl): timer that
  // transitioned to fired in the entry being applied.
  std::string just_fired_id_;
  LogPos just_fired_create_pos_ = 0;
  // Timer created by the entry being applied (schedule countdown post-commit).
  std::string just_created_id_;
  int64_t just_created_duration_ = 0;

  struct TimerCarry {
    std::string fired_id;
    LogPos fired_create_pos = 0;
    std::string created_id;
    int64_t created_duration = 0;
  };
  ApplyCarry<TimerCarry> timer_carry_;
};

// Time-based trimming (the TimeEngine's production use case): creates a
// timer covering a log position and relays setTrimPrefix to the top of the
// stack when it fires, giving non-voting followers time to play entries.
class TimedTrimmer {
 public:
  TimedTrimmer(TimeEngine* time_engine, IEngine* stack_top);

  // Allows trimming up to `pos` once `delay_micros` has elapsed on the
  // TimeEngine's quorum of servers.
  void ScheduleTrim(LogPos pos, int64_t delay_micros);

 private:
  TimeEngine* time_engine_;
  IEngine* stack_top_;
  std::mutex mu_;
  std::map<std::string, LogPos> pending_;  // timer id -> trim position
  uint64_t next_id_ = 1;
};

}  // namespace delos
