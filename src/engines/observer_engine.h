// ObserverEngine (paper §4.1, 2018; production in both databases).
//
// A stateless protocol layer that measures end-to-end propose/sync latency
// of the sub-stack below it and records it into named histograms
// ("<label>.propose.latency_us", matching the production dashboard names in
// Figure 11). Standard practice is to layer one observer above each engine,
// separating monitoring from core logic.
#pragma once

#include "src/common/metrics.h"
#include "src/core/stackable_engine.h"

namespace delos {

class ObserverEngine : public StackableEngine {
 public:
  struct Options {
    // Names the layer being observed (the engine directly below); becomes
    // the metric prefix.
    std::string label;
    MetricsRegistry* metrics = nullptr;
    ApplyProfiler* profiler = nullptr;
  };

  ObserverEngine(Options options, IEngine* downstream, LocalStore* store);

  Future<std::any> Propose(LogEntry entry) override;
  Future<ROTxn> Sync() override;

 private:
  Histogram* propose_hist_;
  Histogram* sync_hist_;
};

}  // namespace delos
