// LeaseEngine (paper §4.4, 2021).
//
// The BaseEngine is leaderless: any server proposes, and a strongly
// consistent read costs a sync (a round trip to the shared log). The
// LeaseEngine elects a *designated proposer* above the shared log: while a
// server holds a valid lease, its sync returns immediately from the local
// store — 0-RTT strongly consistent reads (the 100× latency drop of Figure
// 10) — and data proposals from every other server are deterministically
// rejected at apply time, which is what makes the local read safe (every
// completed write went through the holder's own propose, which returns only
// after the holder applied it locally).
//
// Lease state machine (all transitions via the log, hence consistent even
// across enable/disable, as the paper's Figure 10 experiment stresses):
//  * ACQUIRE(server): grants if the lease is free; renews if `server`
//    already holds it. Each grant/renewal bumps renewal_seq.
//  * EXPIRE(epoch, renewal_seq): proposed by a server that has observed no
//    renewal for ttl + epsilon on its own clock since *it applied* the last
//    renewal; valid only if (epoch, renewal_seq) still match — i.e. no
//    renewal slipped in — and frees the lease.
//
// Clock-skew safety: the holder treats its lease as valid for
// ttl - epsilon after it applied its own renewal; an expirer waits
// ttl + epsilon after applying that same renewal, and the apply necessarily
// happened after the holder's stamp. With epsilon >= the maximum clock-rate
// divergence over a ttl, the holder always stops serving local reads before
// anyone can free the lease (property-tested in lease_engine_test).
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/clock.h"
#include "src/core/stackable_engine.h"

namespace delos {

class LeaseEngine : public StackableEngine {
 public:
  struct Options {
    std::string server_id;
    int64_t lease_ttl_micros = 500'000;
    // Safety guard subtracted from the holder's validity window and added to
    // the expirer's patience.
    int64_t guard_epsilon_micros = 50'000;
    // When true, the engine renews its own lease in the background while it
    // is the holder.
    bool auto_renew = true;
    Clock* clock = nullptr;  // defaults to RealClock
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
  };

  LeaseEngine(Options options, IEngine* downstream, LocalStore* store);
  ~LeaseEngine() override;

  // Proposes an ACQUIRE for this server. Resolves to true if granted (or
  // renewed), false if another server holds the lease.
  Future<std::any> AcquireLease();

  // Proposes EXPIRE if this server has observed the current holder silent
  // long enough; then tries to acquire. Returns true once this server holds
  // the lease. Used for takeover after a holder failure.
  bool TryTakeover();

  // 0-RTT when this server holds a valid lease; falls through to the
  // sub-stack otherwise.
  Future<ROTxn> Sync() override;
  Future<std::any> Propose(LogEntry entry) override;

  bool HoldsValidLease() const;
  std::string CurrentHolder() const;

  // Judges lease liveness: held-but-expired without renewal (renew loop dead
  // or propose path wedged), or another holder silent past ttl + epsilon
  // (takeover candidate). Both are DEGRADED — syncs still work, they just
  // lose the 0-RTT fast path.
  HealthReport HealthCheck() const override;

 protected:
  void OnPropose(LogEntry* entry) override;
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override;
  std::any ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                        LogPos pos) override;
  void PostApplyControl(const EngineHeader& header, const LogEntry& entry, LogPos pos) override;

 private:
  static constexpr uint64_t kMsgTypeAcquire = 1;
  static constexpr uint64_t kMsgTypeExpire = 2;

  struct LeaseState {
    std::string holder;
    uint64_t epoch = 0;
    uint64_t renewal_seq = 0;
    std::string Encode() const;
    static LeaseState Decode(std::string_view bytes);
  };

  LeaseState ReadState(RWTxn& txn) const;
  LeaseState ReadStateSnapshot() const;
  void RenewLoopMain();

  Options options_;
  Clock* clock_;
  // Live count of granted leases as seen by this replica (0 or 1), null
  // without a registry.
  Gauge* active_gauge_ = nullptr;

  // Soft, replica-local view maintained in postApply.
  mutable std::mutex soft_mu_;
  bool held_by_self_ = false;
  int64_t valid_until_micros_ = 0;     // local-clock validity when we hold it
  uint64_t observed_epoch_ = 0;        // last holder state we applied
  uint64_t observed_renewal_seq_ = 0;
  std::string observed_holder_;
  int64_t observed_at_micros_ = 0;     // local-clock time we applied it

  // Apply-thread scratch parked per position: did an applied entry grant or
  // renew the lease for us?
  struct LeaseCarry {
    bool acquired_self = false;
    bool renewed_self = false;
  };
  ApplyCarry<LeaseCarry> lease_carry_;

  std::atomic<bool> shutdown_{false};
  std::thread renew_thread_;
};

}  // namespace delos
