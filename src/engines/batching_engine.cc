#include "src/engines/batching_engine.h"

#include <algorithm>

#include "src/common/serde.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "batching";

StackableEngineOptions MakeStackOptions(const BatchingEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

std::string EncodeBatch(const std::vector<LogEntry>& entries) {
  Serializer ser;
  ser.WriteVarint(entries.size());
  for (const LogEntry& entry : entries) {
    ser.WriteString(entry.Serialize());
  }
  return ser.Release();
}

std::vector<LogEntry> DecodeBatch(const std::string& blob) {
  Deserializer de(blob);
  const uint64_t count = de.ReadVarint();
  std::vector<LogEntry> entries;
  entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    entries.push_back(LogEntry::Deserialize(de.ReadString()));
  }
  return entries;
}

}  // namespace

BatchingEngine::BatchingEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(options) {
  if (options_.clock == nullptr) {
    options_.clock = RealClock::Instance();
  }
  if (options_.metrics != nullptr) {
    queue_depth_gauge_ = options_.metrics->GetGauge("batching.queue.depth");
  }
}

BatchingEngine::~BatchingEngine() {
  // Flush whatever is pending so waiters are not left hanging.
  std::unique_lock<std::mutex> lock(mu_);
  if (!batch_entries_.empty()) {
    FlushLocked(lock);
  }
}

Future<std::any> BatchingEngine::Propose(LogEntry entry) {
  if (!enabled()) {
    return downstream()->Propose(std::move(entry));
  }
  if (workload() != nullptr) {
    // Propose-path tap for the queue hand-off (this engine bypasses the
    // generic StackableEngine::Propose). The layers below charge the merged
    // batch entry once, carrying the union of client ids.
    workload()->ChargePropose("batching.queue", ClientIdsOf(entry), entry.SerializedSize());
  }
  Waiter waiter;
  waiter.promise = std::make_shared<Promise<std::any>>();
  Future<std::any> future = waiter.promise->GetFuture();
  if (tracer() != nullptr) {
    // Queue-wait accounting starts now; the span is recorded at flush. An
    // entry entering the stack at this layer is stamped here, so batched
    // proposals are traced even with no engine above.
    waiter.trace_ids = EnsureTraceIds(&entry, &waiter.trace_root);
    waiter.enqueue_micros = tracer()->NowMicros();
  }
  std::unique_lock<std::mutex> lock(mu_);
  batch_entries_.push_back(std::move(entry));
  batch_waiters_.push_back(std::move(waiter));
  if (batch_entries_.size() == 1) {
    open_batch_since_micros_ = options_.clock->NowMicros();
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<int64_t>(batch_entries_.size()));
  }
  if (batch_entries_.size() >= options_.max_batch_entries) {
    FlushLocked(lock);
    return future;
  }
  if (batch_entries_.size() == 1) {
    // First entry of a new batch: arm the delay timer.
    const uint64_t ticket = batch_ticket_;
    scheduler_.Schedule(options_.max_delay_micros, [this, ticket] {
      std::unique_lock<std::mutex> timer_lock(mu_);
      if (batch_ticket_ == ticket && !batch_entries_.empty()) {
        FlushLocked(timer_lock);
      }
    });
  }
  return future;
}

void BatchingEngine::FlushLocked(std::unique_lock<std::mutex>& lock) {
  std::vector<LogEntry> entries;
  std::vector<Waiter> waiters;
  entries.swap(batch_entries_);
  waiters.swap(batch_waiters_);
  batch_ticket_ += 1;
  open_batch_since_micros_ = 0;
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(0);
  }
  lock.unlock();

  batches_proposed_.fetch_add(1, std::memory_order_relaxed);
  entries_batched_.fetch_add(entries.size(), std::memory_order_relaxed);

  LogEntry batch = MakeControlEntry(name(), kMsgTypeBatch, EncodeBatch(entries));
  // Stamp the batch with the union of the constituents' client ids (exactly
  // like trace ids below): the shared append downstream attributes to every
  // proposing client.
  std::vector<uint64_t> merged_clients;
  for (const LogEntry& sub : entries) {
    for (const uint64_t id : ClientIdsOf(sub)) {
      merged_clients.push_back(id);
    }
  }
  std::sort(merged_clients.begin(), merged_clients.end());
  merged_clients.erase(std::unique(merged_clients.begin(), merged_clients.end()),
                       merged_clients.end());
  if (!merged_clients.empty()) {
    SetClientIds(&batch, merged_clients);
  }
  Tracer* tracer = this->tracer();
  if (tracer != nullptr) {
    // Close every sub-entry's queue-wait span and stamp the batch control
    // entry with the *union* of their ids: the batch never gets an id of its
    // own, so the shared append downstream attributes to each constituent
    // proposal's trace.
    const int64_t flush_micros = tracer->NowMicros();
    std::vector<uint64_t> merged;
    for (const Waiter& waiter : waiters) {
      for (const uint64_t id : waiter.trace_ids) {
        tracer->RecordSpan(id, "batching.queue", server_label(), waiter.enqueue_micros,
                           flush_micros);
        merged.push_back(id);
      }
    }
    if (!merged.empty()) {
      SetTraceIds(&batch, merged);
    }
  }
  downstream()
      ->Propose(std::move(batch))
      .Then([waiters = std::move(waiters), tracer,
             server = server_label()](Result<std::any> result) {
        const std::vector<std::any>* batch_results = nullptr;
        if (result.ok()) {
          batch_results = &std::any_cast<const std::vector<std::any>&>(result.value());
        }
        if (tracer != nullptr) {
          // Sub-entries whose ids were minted here get their client-visible
          // root span now that the batch's outcome is known — including the
          // per-sub-entry outcome, so a failed constituent is marked failed
          // even when the batch as a whole committed.
          const int64_t end = tracer->NowMicros();
          for (size_t i = 0; i < waiters.size(); ++i) {
            const Waiter& waiter = waiters[i];
            if (!waiter.trace_root) {
              continue;
            }
            const bool failed = batch_results == nullptr || i >= batch_results->size() ||
                                IsApplyError((*batch_results)[i]);
            for (const uint64_t id : waiter.trace_ids) {
              tracer->RecordSpan(id, "client.propose", server, waiter.enqueue_micros, end,
                                 failed);
            }
          }
        }
        if (!result.ok()) {
          for (const Waiter& waiter : waiters) {
            waiter.promise->SetException(result.error());
          }
          return;
        }
        // The batch apply returned one result per sub-entry.
        const auto& results = *batch_results;
        for (size_t i = 0; i < waiters.size(); ++i) {
          if (i >= results.size()) {
            waiters[i].promise->SetException(std::make_exception_ptr(
                DelosError("batch result missing for sub-entry")));
            continue;
          }
          if (IsApplyError(results[i])) {
            waiters[i].promise->SetException(std::any_cast<ApplyError>(results[i]).error);
          } else {
            waiters[i].promise->SetValue(results[i]);
          }
        }
      });
  lock.lock();
}

HealthReport BatchingEngine::HealthCheck() const {
  int64_t since;
  int64_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    since = open_batch_since_micros_;
    depth = static_cast<int64_t>(batch_entries_.size());
  }
  HealthReport report{name(), HealthState::kOk, "", depth};
  if (depth == 0 || since == 0) {
    return report;
  }
  const int64_t age = options_.clock->NowMicros() - since;
  if (age >= options_.health_queue_unhealthy_micros) {
    report.state = HealthState::kUnhealthy;
    report.reason = "open batch stuck " + std::to_string(age) + "us (" + std::to_string(depth) +
                    " entries; flush timer or downstream wedged)";
    report.value = age;
  } else if (age >= options_.health_queue_degraded_micros) {
    report.state = HealthState::kDegraded;
    report.reason = "open batch aged " + std::to_string(age) + "us (" + std::to_string(depth) +
                    " entries)";
    report.value = age;
  }
  return report;
}

std::any BatchingEngine::ApplyControl(RWTxn& txn, const EngineHeader& header,
                                      const LogEntry& entry, LogPos pos) {
  if (header.msgtype != kMsgTypeBatch) {
    return std::any(Unit{});
  }
  // Group commit: every sub-entry applies within this one transaction.
  AppliedBatch applied;
  applied.entries = DecodeBatch(header.blob);
  applied.ok.assign(applied.entries.size(), false);
  std::vector<std::any> results;
  results.reserve(applied.entries.size());
  for (size_t i = 0; i < applied.entries.size(); ++i) {
    std::any result = CallUpstream(txn, applied.entries[i], pos);
    applied.ok[i] = !IsApplyError(result);
    results.push_back(std::move(result));
  }
  applying_carry_.Push(pos, std::move(applied));
  return std::any(std::move(results));
}

void BatchingEngine::PostApplyControl(const EngineHeader& header, const LogEntry& entry,
                                      LogPos pos) {
  if (header.msgtype != kMsgTypeBatch || upstream() == nullptr) {
    return;
  }
  const AppliedBatch applied = applying_carry_.Take(pos).value_or(AppliedBatch{});
  for (size_t i = 0; i < applied.entries.size(); ++i) {
    if (applied.ok[i]) {
      upstream()->PostApply(applied.entries[i], pos);
    }
  }
}

}  // namespace delos
