#include "src/engines/digest_engine.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <sstream>

#include "src/common/checksum.h"
#include "src/common/serde.h"
#include "src/core/entry.h"

namespace delos {

namespace {

constexpr char kEngineName[] = "digest";
// The group-commit cursor is the one store key whose value is the batch
// boundary itself — identical log prefixes with different batch shapes
// legitimately disagree on it, so it never participates in the digest.
const std::vector<std::string>& ExcludedKeys() {
  static const std::vector<std::string> kKeys = {"e/base/cursor"};
  return kKeys;
}

StackableEngineOptions MakeStackOptions(const DigestEngine::Options& options) {
  StackableEngineOptions stack_options;
  stack_options.metrics = options.metrics;
  stack_options.profiler = options.profiler;
  stack_options.start_enabled = options.start_enabled;
  return stack_options;
}

DivergenceOptions MakeTrackerOptions(const DigestEngine::Options& options) {
  DivergenceOptions tracker_options;
  tracker_options.server = options.server_id;
  tracker_options.metrics = options.metrics;
  tracker_options.recorder = options.recorder;
  return tracker_options;
}

std::string PadPos(LogPos pos) {
  // Zero-padded decimal so lexicographic key order is numeric order.
  std::string out(20, '0');
  for (size_t i = out.size(); pos != 0; pos /= 10) {
    out[--i] = static_cast<char>('0' + pos % 10);
  }
  return out;
}

std::string EncodeDigest(uint64_t digest) {
  Serializer ser;
  ser.WriteFixed64(digest);
  return ser.Release();
}

uint64_t DecodeDigest(std::string_view bytes) {
  Deserializer de(bytes);
  return de.ReadFixed64();
}

}  // namespace

DigestEngine::DigestEngine(Options options, IEngine* downstream, LocalStore* store)
    : StackableEngine(kEngineName, downstream, store, MakeStackOptions(options)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : RealClock::Instance()),
      tracker_(MakeTrackerOptions(options_)) {
  // Recover the sample table: after a crash the store (checkpoint + replay)
  // already holds the deterministic table, so outgoing beacons resume with
  // exactly the samples every healthy peer expects.
  const std::string prefix = space().Key("sample/");
  for (const auto& [key, value] : store->Snapshot().ScanPrefix(prefix)) {
    try {
      soft_samples_[std::stoull(key.substr(prefix.size()))] = DecodeDigest(value);
    } catch (const std::exception&) {
      // An unparseable sample only degrades beacon coverage; never fatal.
    }
  }
  if (options_.beacon_interval_micros > 0) {
    heartbeat_thread_ = std::thread([this] { HeartbeatLoopMain(); });
  }
}

DigestEngine::~DigestEngine() {
  shutdown_.store(true, std::memory_order_release);
  if (heartbeat_thread_.joinable()) {
    heartbeat_thread_.join();
  }
}

void DigestEngine::HeartbeatLoopMain() {
  int64_t last = 0;
  while (!shutdown_.load(std::memory_order_acquire)) {
    const int64_t now = RealClock::Instance()->NowMicros();
    if (now - last >= options_.beacon_interval_micros) {
      last = now;
      tracker_.OnBeaconAppended();
      ProposeControl(kMsgTypeBeacon, BuildBeaconBlob());  // fire and forget
    }
    RealClock::Instance()->SleepMicros(
        std::min<int64_t>(options_.beacon_interval_micros / 4 + 1, 5000));
  }
}

std::string DigestEngine::BuildBeaconBlob() {
  Serializer samples;
  const LogPos applied = last_applied_pos_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(soft_mu_);
    samples.WriteVarint(soft_samples_.size());
    for (const auto& [pos, digest] : soft_samples_) {
      samples.WriteVarint(pos);
      samples.WriteFixed64(digest);
    }
  }
  std::string sample_bytes = samples.Release();
  Serializer ser;
  ser.WriteString(options_.server_id);
  ser.WriteVarint(applied);
  ser.WriteFixed64(Fnv1a64(sample_bytes));
  ser.WriteString(sample_bytes);
  return ser.Release();
}

bool DigestEngine::ProposeBeaconNow(int64_t timeout_micros) {
  tracker_.OnBeaconAppended();
  auto applied = ProposeControl(kMsgTypeBeacon, BuildBeaconBlob());
  try {
    if (timeout_micros <= 0) {
      applied.Get();
      return true;
    }
    return applied.GetFor(std::chrono::microseconds(timeout_micros)).has_value();
  } catch (const std::exception&) {
    return false;  // append failed or the local replay crashed under it
  }
}

void DigestEngine::OnPropose(LogEntry* entry) {
  if (options_.beacon_every_n_proposals == 0) {
    return;
  }
  const uint64_t count = propose_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count % options_.beacon_every_n_proposals != 0) {
    return;
  }
  entry->SetHeader(name(), EngineHeader{kMsgTypeApp, BuildBeaconBlob()});
  tracker_.OnBeaconAppended();
}

std::any DigestEngine::ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  // The dispatch already looked our header up; most records carry none.
  const std::optional<EngineHeaderView>& header = apply_header();
  if (header.has_value() && header->msgtype == kMsgTypeApp && !header->blob.empty()) {
    ProcessBeacon(txn, header->blob, entry, pos);
  }
  return CallUpstream(txn, entry, pos);
}

std::any DigestEngine::ApplyControl(RWTxn& txn, const EngineHeader& header, const LogEntry& entry,
                                    LogPos pos) {
  if (header.msgtype == kMsgTypeBeacon) {
    ProcessBeacon(txn, header.blob, entry, pos);
  }
  return std::any(Unit{});
}

void DigestEngine::ProcessBeacon(RWTxn& txn, std::string_view blob, const LogEntry& entry,
                                 LogPos pos) {
  // The digest every replica agrees to compute at position `pos`: the state
  // of the applied prefix [1, pos-1]. This engine sits at the bottom of the
  // middle stack, so nothing of `pos` itself has been staged yet; earlier
  // records of the same group-commit batch ARE staged, and EffectiveDigest
  // folds them in — replicas whose batch boundary already committed those
  // records get the identical value from the committed checksum instead.
  const uint64_t local_digest = txn.EffectiveDigest(ExcludedKeys());

  std::string proposer;
  std::vector<std::pair<LogPos, uint64_t>> remote_samples;
  try {
    Deserializer de(blob);
    proposer = de.ReadString();
    de.ReadVarint();   // proposer's apply position (informational)
    de.ReadFixed64();  // sample-table hash (informational)
    Deserializer samples(de.ReadStringView());
    const uint64_t count = samples.ReadVarint();
    for (uint64_t i = 0; i < count; ++i) {
      const LogPos sample_pos = samples.ReadVarint();
      const uint64_t sample_digest = samples.ReadFixed64();
      remote_samples.emplace_back(sample_pos, sample_digest);
    }
  } catch (const SerdeError&) {
    // A malformed beacon must never fail the apply; it just checks nothing.
    remote_samples.clear();
  }
  tracker_.OnBeaconChecked(pos, proposer);

  // This replica's table, read through the transaction so samples staged by
  // earlier beacons of the same batch participate. Keys are zero-padded, so
  // the merged scan already yields positions ascending — kept as a sorted
  // vector (no per-beacon map churn; this path runs on every beacon).
  const std::string prefix = space().Key("sample/");
  std::string scan_end = prefix;
  scan_end.back() = static_cast<char>(scan_end.back() + 1);
  std::vector<std::pair<LogPos, uint64_t>> local_samples;
  txn.Scan(prefix, scan_end, [&](std::string_view key, std::string_view value) {
    LogPos sample_pos = 0;
    const auto [ptr, ec] =
        std::from_chars(key.data() + prefix.size(), key.data() + key.size(), sample_pos);
    if (ec == std::errc() && ptr == key.data() + key.size() && value.size() >= 8) {
      local_samples.emplace_back(sample_pos, DecodeDigest(value));
    }
    return true;
  });

  const std::vector<uint64_t> trace_ids = TraceIdsOf(entry);
  const uint64_t trace_id = trace_ids.empty() ? 0 : trace_ids.front();
  // window_lo for a mismatch at P is the greatest position verified BELOW P:
  // matches from this beacon's ascending sweep, plus the global verified
  // watermark only when it sits below P (an earlier beacon may have verified
  // a position above P — that bounds nothing about where [.., P] went bad).
  const uint64_t global_verified = tracker_.last_verified_pos();
  uint64_t last_match = 0;
  std::sort(remote_samples.begin(), remote_samples.end());
  // Both sides sorted ascending: a single merge pass finds the common
  // positions.
  size_t li = 0;
  for (const auto& [sample_pos, remote_digest] : remote_samples) {
    while (li < local_samples.size() && local_samples[li].first < sample_pos) {
      ++li;
    }
    if (li == local_samples.size() || local_samples[li].first != sample_pos) {
      continue;  // Outside this replica's window; nothing to compare.
    }
    if (local_samples[li].second == remote_digest) {
      last_match = std::max<uint64_t>(last_match, sample_pos);
      tracker_.OnSampleMatch(sample_pos);
    } else {
      uint64_t window_lo = last_match;
      if (global_verified < sample_pos) {
        window_lo = std::max<uint64_t>(window_lo, global_verified);
      }
      tracker_.OnSampleMismatch(window_lo, sample_pos, local_samples[li].second, remote_digest,
                                proposer, trace_id);
    }
  }

  // Record this position's sample and prune the window — all inside the
  // entry's transaction, so the table stays a deterministic function of the
  // log prefix on every replica.
  txn.Put(prefix + PadPos(pos), EncodeDigest(local_digest));
  local_samples.emplace_back(pos, local_digest);
  if (local_samples.size() > options_.sample_window) {
    const size_t to_drop = local_samples.size() - options_.sample_window;
    for (size_t i = 0; i < to_drop; ++i) {
      txn.Delete(prefix + PadPos(local_samples[i].first));
    }
  }
  sample_carry_.Push(pos, {pos, local_digest});
}

void DigestEngine::PostApplyData(const LogEntry& entry, LogPos pos) {
  // Runs for EVERY applied record; only beacon positions park a sample, so
  // the common path is one empty-deque check and a relaxed store — no lock.
  if (auto sample = sample_carry_.Take(pos); sample.has_value()) {
    std::lock_guard<std::mutex> lock(soft_mu_);
    soft_samples_[sample->first] = sample->second;
    while (soft_samples_.size() > options_.sample_window) {
      soft_samples_.erase(soft_samples_.begin());
    }
  }
  last_applied_pos_.store(pos, std::memory_order_relaxed);
  ForwardPostApply(entry, pos);
}

void DigestEngine::PostApplyControl(const EngineHeader& header, const LogEntry& entry,
                                    LogPos pos) {
  if (auto sample = sample_carry_.Take(pos); sample.has_value()) {
    std::lock_guard<std::mutex> lock(soft_mu_);
    soft_samples_[sample->first] = sample->second;
    while (soft_samples_.size() > options_.sample_window) {
      soft_samples_.erase(soft_samples_.begin());
    }
  }
  last_applied_pos_.store(pos, std::memory_order_relaxed);
}

std::map<LogPos, uint64_t> DigestEngine::SampleTable() const {
  std::lock_guard<std::mutex> lock(soft_mu_);
  return soft_samples_;
}

HealthReport DigestEngine::HealthCheck() const {
  const std::string reason = tracker_.HealthReason();
  if (reason.empty()) {
    return HealthReport{name(), HealthState::kOk, "",
                        static_cast<int64_t>(tracker_.last_verified_pos())};
  }
  return HealthReport{name(), HealthState::kUnhealthy, reason,
                      static_cast<int64_t>(tracker_.window_hi())};
}

std::string DigestEngine::Render() const {
  std::ostringstream out;
  out << "digest beacons on " << options_.server_id << "\n";
  out << "  cadence: every " << options_.beacon_every_n_proposals << " proposals";
  if (options_.beacon_interval_micros > 0) {
    out << ", heartbeat " << options_.beacon_interval_micros << "us";
  }
  out << "\n";
  out << "  beacons appended: " << tracker_.beacons_appended() << "\n";
  out << "  beacons checked: " << tracker_.beacons_checked() << "\n";
  out << "  mismatches: " << tracker_.mismatches() << "\n";
  out << "  last verified pos: " << tracker_.last_verified_pos() << "\n";
  const std::string reason = tracker_.HealthReason();
  out << "  verdict: " << (reason.empty() ? "no divergence" : reason) << "\n";
  out << "  sample table:\n";
  for (const auto& [pos, digest] : SampleTable()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "    pos %llu digest %016llx\n",
                  static_cast<unsigned long long>(pos),
                  static_cast<unsigned long long>(digest));
    out << buf;
  }
  return out.str();
}

std::string DigestEngine::RenderJson() const {
  std::ostringstream out;
  out << "{\"server\":\"" << options_.server_id
      << "\",\"beacon_every_n_proposals\":" << options_.beacon_every_n_proposals
      << ",\"beacons_appended\":" << tracker_.beacons_appended()
      << ",\"beacons_checked\":" << tracker_.beacons_checked()
      << ",\"mismatches\":" << tracker_.mismatches()
      << ",\"last_verified_pos\":" << tracker_.last_verified_pos()
      << ",\"convicted\":" << (tracker_.convicted() ? "true" : "false") << ",\"samples\":[";
  bool first = true;
  for (const auto& [pos, digest] : SampleTable()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"pos\":" << pos << ",\"digest\":" << digest << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace delos
