// SessionOrderEngine (paper §4.3, 2020; production in Zelos).
//
// Enforces ZooKeeper's session-ordering guarantee (stronger than
// linearizability: within a session, a read issued after a write — even
// concurrently — must reflect it) and exactly-once execution.
//
//  * Outgoing proposals are stamped with a per-session sequence number.
//  * On apply, entries must arrive in sequence order. A duplicate
//    (seq < expected) is filtered — exactly-once. A gap (seq > expected)
//    means the log reordered entries (leader change in the log
//    implementation, stack code change, ...): the entry is filtered and the
//    proposing server re-proposes everything since the disorder event with
//    the *same* sequence numbers.
//  * Unlike other engines, propose is not 1:1 with a sub-stack propose
//    (retries), so the engine does its own RPC bookkeeping: each propose is
//    completed from postApply directly — the short-circuit visible in the
//    Figure 11 dashboard, where this engine's propose latency can sit below
//    the BaseEngine's.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/stackable_engine.h"

namespace delos {

class SessionOrderEngine : public StackableEngine {
 public:
  struct Options {
    std::string server_id;
    ApplyProfiler* profiler = nullptr;
    MetricsRegistry* metrics = nullptr;
    bool start_enabled = true;
    // Clock for health math (oldest-pending age). Defaults to RealClock.
    Clock* clock = nullptr;
    // A proposal pending longer than these bounds means its seq never
    // applied — a session-sequence hole the retries failed to plug, or a
    // wedged sub-stack.
    int64_t health_pending_degraded_micros = 1'000'000;
    int64_t health_pending_unhealthy_micros = 5'000'000;
  };

  SessionOrderEngine(Options options, IEngine* downstream, LocalStore* store);

  Future<std::any> Propose(LogEntry entry) override;

  // Judges the age of the oldest pending (stamped, not yet applied-in-order)
  // proposal.
  HealthReport HealthCheck() const override;

  // Observability: disorder events detected (gaps) and duplicates filtered.
  uint64_t disorder_events() const;
  uint64_t duplicates_filtered() const;

 protected:
  std::any ApplyData(RWTxn& txn, const LogEntry& entry, LogPos pos) override;
  void PostApplyData(const LogEntry& entry, LogPos pos) override;

 private:
  struct PendingPropose {
    LogEntry stamped_entry;  // retains the original sequence number
    std::shared_ptr<Promise<std::any>> promise;
    // Sub-stack append failures survived so far (see ProposeStamped).
    int append_retries = 0;
    // Injected-clock time the proposal was stamped (HealthCheck age base).
    int64_t stamped_micros = 0;
  };

  enum class Outcome { kNone, kApplied, kDuplicate, kGap };

  // Apply-thread scratch connecting Apply to PostApply for one entry, parked
  // per log position because the group-commit pipeline applies a whole batch
  // before running any postApply.
  struct Carried {
    Outcome outcome = Outcome::kNone;
    bool was_ours = false;
    uint64_t seq = 0;
    std::any result;
  };

  std::any ApplyDataImpl(RWTxn& txn, const LogEntry& entry, LogPos pos, Carried& carried);
  void ReproposeFrom(uint64_t first_seq);
  // Proposes a seq-stamped entry into the sub-stack, retrying the SAME
  // stamped entry (same sequence number) on append failure. Without the
  // retry, a lost append would leave a permanent hole in the session
  // sequence: that seq never commits, so every later entry from this
  // session applies as a gap and is filtered forever. Exactly-once makes
  // the retry safe — if the failure was ambiguous (the entry actually
  // committed), the duplicate is filtered on apply.
  void ProposeStamped(LogEntry stamped, uint64_t seq);

  Options options_;
  // The session id: unique per engine incarnation so replayed entries from a
  // previous life never interleave with this life's sequence space.
  std::string session_id_;

  mutable std::mutex pending_mu_;
  std::map<uint64_t, PendingPropose> pending_;
  uint64_t next_seq_ = 1;

  std::atomic<uint64_t> disorder_events_{0};
  std::atomic<uint64_t> duplicates_filtered_{0};

  ApplyCarry<Carried> carry_;
};

}  // namespace delos
