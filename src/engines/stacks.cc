#include "src/engines/stacks.h"

namespace delos {

StackConfig DelosTableStackConfig(BackupStore* backup_store) {
  StackConfig config;
  config.view_tracking = true;
  config.brain_doctor = true;
  config.log_backup = backup_store != nullptr;
  config.backup_store = backup_store;
  return config;
}

StackConfig ZelosStackConfig(BackupStore* backup_store) {
  StackConfig config = DelosTableStackConfig(backup_store);
  config.session_order = true;
  config.batching = true;
  return config;
}

StackConfig PassiveFollowerStackConfig() {
  StackConfig config;
  config.view_tracking = false;  // not a durable first-class replica
  config.brain_doctor = true;
  return config;
}

void BuildStack(ClusterServer& server, const StackConfig& config) {
  const auto add_observer = [&](const std::string& label) {
    if (config.observers) {
      ObserverEngine::Options options;
      options.label = label;
      options.metrics = server.metrics();
      options.profiler = server.profiler();
      server.AddEngine<ObserverEngine>(options);
    }
  };

  add_observer("base");

  if (config.digest) {
    // Bottom of the middle stack: applying a record, the digest runs before
    // any other layer stages that record's writes, so the beacon digest is
    // exactly "state after the prefix" on every replica.
    DigestEngine::Options options;
    options.server_id = server.id();
    options.beacon_every_n_proposals = config.digest_beacon_every;
    options.beacon_interval_micros = config.digest_beacon_interval_micros;
    options.sample_window = config.digest_sample_window;
    options.clock = config.clock;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    options.recorder = server.flight_recorder();
    options.start_enabled = config.digest_start_enabled;
    server.AddEngine<DigestEngine>(options);
    add_observer("digest");
  }

  if (config.log_backup) {
    LogBackupEngine::Options options;
    options.server_id = server.id();
    options.backup_store = config.backup_store;
    options.log = server.base()->shared_log();
    options.segment_size = config.backup_segment_size;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    server.AddEngine<LogBackupEngine>(options);
    add_observer("logbackup");
  }

  if (config.brain_doctor) {
    BrainDoctorEngine::Options options;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    server.AddEngine<BrainDoctorEngine>(options);
    add_observer("braindoctor");
  }

  if (config.view_tracking) {
    ViewTrackingEngine::Options options;
    options.server_id = server.id();
    options.durable_position = [base = server.base()] { return base->durable_position(); };
    options.eject_after_micros = config.eject_after_micros;
    options.heartbeat_interval_micros = config.view_heartbeat_micros;
    options.clock = config.clock;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    server.AddEngine<ViewTrackingEngine>(options);
    add_observer("viewtracking");
  }

  if (config.time) {
    TimeEngine::Options options;
    options.server_id = server.id();
    options.quorum = config.time_quorum;
    options.clock = config.clock;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    server.AddEngine<TimeEngine>(options);
    add_observer("time");
  }

  if (config.session_order) {
    SessionOrderEngine::Options options;
    options.server_id = server.id();
    options.clock = config.clock;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    server.AddEngine<SessionOrderEngine>(options);
    add_observer("sessionordering");
  }

  if (config.lease) {
    LeaseEngine::Options options;
    options.server_id = server.id();
    options.lease_ttl_micros = config.lease_ttl_micros;
    options.guard_epsilon_micros = config.lease_guard_epsilon_micros;
    options.clock = config.clock;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    server.AddEngine<LeaseEngine>(options);
    add_observer("lease");
  }

  if (config.batching) {
    BatchingEngine::Options options;
    options.max_batch_entries = config.batch_max_entries;
    options.max_delay_micros = config.batch_max_delay_micros;
    options.clock = config.clock;
    options.profiler = server.profiler();
    options.metrics = server.metrics();
    server.AddEngine<BatchingEngine>(options);
    add_observer("batching");
  }
}

}  // namespace delos
