// delosctl: command-line inspector for a running Delos server.
//
// Talks HTTP to the admin endpoint (src/net/admin_server.h):
//
//   delosctl [--host H] [--port P] status    per-engine health table
//   delosctl [...] top                       metric rates (time-series ring)
//   delosctl [...] stack                     engine stack + cursors (JSON)
//   delosctl [...] metrics                   Prometheus exposition
//   delosctl [...] healthz                   health JSON; exit 1 if UNHEALTHY
//   delosctl [...] flight                    flight-recorder tail
//   delosctl [...] trace <id>                one end-to-end trace
//   delosctl [...] latency                   per-stage latency attribution
//   delosctl [...] slow [id]                 slow-trace exemplars (detail with id)
//   delosctl [...] workload                  per-layer resource accounting + hot spots
//   delosctl [...] top keys|clients          heavy-hitter tables (workload sketches)
//   delosctl [...] digest                    digest-beacon counters + sample table
//   delosctl [...] divergence                earliest-divergence conviction report
//
// `--json` switches status/top/metrics/latency/slow/workload to
// machine-readable JSON (appends ?format=json to the admin path) for
// scripting and CI.
//
// `--demo` boots a single-server Zelos cluster in-process, drives a short
// workload, serves it on an ephemeral loopback port, and runs the requested
// command against it over real HTTP — a self-contained tour of the admin
// plane with no cluster to set up.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "src/apps/zelos/zelos.h"
#include "src/common/trace.h"
#include "src/core/cluster.h"
#include "src/engines/stacks.h"
#include "src/net/admin_server.h"

using namespace delos;

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: delosctl [--host HOST] [--port PORT] [--demo] [--json] COMMAND [ARG]\n"
               "\n"
               "commands:\n"
               "  status       per-engine health table\n"
               "  top          metric rates from the time-series ring\n"
               "  top keys     hot keys (workload attribution heavy hitters)\n"
               "  top clients  top clients (workload attribution heavy hitters)\n"
               "  stack        engine stack + apply cursors (JSON)\n"
               "  metrics      Prometheus exposition\n"
               "  healthz      health report (exit 1 when UNHEALTHY)\n"
               "  flight       flight-recorder tail\n"
               "  trace ID     render trace ID\n"
               "  latency      per-stage latency attribution + critical-path dominance\n"
               "  slow [ID]    slow-trace exemplar list (or one exemplar's detail)\n"
               "  workload     per-layer resource accounting + hot-spot verdicts\n"
               "  digest       digest-beacon counters + per-position sample table\n"
               "  divergence   earliest-divergence conviction report\n"
               "\n"
               "  --demo       run against an in-process single-server Zelos cluster\n"
               "  --json       machine-readable output "
               "(status/top/metrics/latency/slow/workload)\n");
}

// Maps a command (+ optional argument) to an admin-endpoint path; empty on
// unknown command.
std::string CommandPath(const std::string& command, const std::string& arg) {
  if (command == "status") return "/status";
  if (command == "top") {
    if (arg.empty()) return "/top";
    if (arg == "keys") return "/top/keys";
    if (arg == "clients") return "/top/clients";
    std::fprintf(stderr, "delosctl: top takes no argument, 'keys', or 'clients'\n");
    return "";
  }
  if (command == "workload") return "/workload";
  if (command == "digest") return "/digest";
  if (command == "divergence") return "/divergence";
  if (command == "stack") return "/stack";
  if (command == "metrics") return "/metrics";
  if (command == "healthz") return "/healthz";
  if (command == "flight") return "/flight";
  if (command == "latency") return "/latency";
  if (command == "slow") {
    return arg.empty() ? "/slow" : "/slow/" + arg;
  }
  if (command == "trace") {
    if (arg.empty()) {
      std::fprintf(stderr, "delosctl: trace needs an id (see /flight for recent ids)\n");
      return "";
    }
    return "/trace/" + arg;
  }
  return "";
}

int RunCommand(const std::string& host, uint16_t port, const std::string& command,
               const std::string& arg, bool json) {
  std::string path = CommandPath(command, arg);
  if (path.empty()) {
    PrintUsage();
    return 2;
  }
  if (json) {
    path += "?format=json";
  }
  int status = 0;
  std::string body;
  if (!AdminHttpGet(host, port, path, &status, &body)) {
    std::fprintf(stderr, "delosctl: cannot reach %s:%u%s\n", host.c_str(), port, path.c_str());
    return 2;
  }
  std::fputs(body.c_str(), stdout);
  if (command == "healthz") {
    return status == 200 ? 0 : 1;
  }
  if (status != 200) {
    std::fprintf(stderr, "delosctl: %s returned HTTP %d\n", path.c_str(), status);
    return 1;
  }
  return 0;
}

// The --demo cluster: one Zelos server with the production-shaped stack,
// short workload, admin server on an ephemeral port.
int RunDemo(const std::string& command, const std::string& arg, bool json) {
  std::map<std::string, std::unique_ptr<zelos::ZelosApplicator>> apps;
  Tracer tracer;
  Cluster::Options options;
  options.num_servers = 1;
  options.base_options.tracer = &tracer;
  Cluster cluster(options, [&](ClusterServer& server) {
    StackConfig config = ZelosStackConfig(nullptr);
    config.batch_max_entries = 8;
    config.batch_max_delay_micros = 500;
    // A tight beacon cadence so the demo's short burst crosses it several
    // times and `delosctl digest` has checked beacons to show.
    config.digest_beacon_every = 8;
    BuildStack(server, config);
    auto app = std::make_unique<zelos::ZelosApplicator>();
    app->set_metrics(server.metrics());
    // Through the workload apply tap, so the demo's /workload, /top/keys
    // and /top/clients surfaces have per-key attribution to show.
    server.RegisterApplicator(app.get(), zelos::ZelosKeyExtractor::Instance());
    server.RegisterHealthTarget(app.get());
    apps[server.id()] = std::move(app);
  });
  ClusterServer& server = cluster.server(0);

  // A short workload so every surface has something to show.
  zelos::ZelosClient client(server.top(), apps["server0"].get());
  server.CollectHealth();  // time-series baseline window
  const zelos::SessionId session = client.CreateSession();
  for (int i = 0; i < 16; ++i) {
    client.Create(session, "/demo" + std::to_string(i), "v");
  }
  for (int i = 0; i < 64; ++i) {
    client.SetData("/demo" + std::to_string(i % 16), "value" + std::to_string(i));
  }
  server.top()->Sync().Get();
  server.CollectHealth();  // close a window over the workload

  AdminServer admin{AdminEndpoint(&server)};
  if (!admin.Start()) {
    std::fprintf(stderr, "delosctl: demo admin server failed to bind\n");
    return 2;
  }
  std::fprintf(stderr, "[demo] single-server Zelos cluster on 127.0.0.1:%u\n", admin.port());
  std::string trace_arg = arg;
  if (command == "trace" && trace_arg.empty()) {
    trace_arg = std::to_string(tracer.last_trace_id());
  }
  const int rc = RunCommand("127.0.0.1", admin.port(), command, trace_arg, json);
  admin.Stop();
  cluster.server(0).Stop();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7331;
  bool demo = false;
  bool json = false;
  int i = 1;
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (flag == "--demo") {
      demo = true;
    } else if (flag == "--json") {
      json = true;
    } else if (flag == "--help" || flag == "-h") {
      PrintUsage();
      return 0;
    } else {
      break;  // first non-flag is the command
    }
  }
  if (i >= argc) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[i];
  const std::string arg = i + 1 < argc ? argv[i + 1] : "";
  if (demo) {
    return RunDemo(command, arg, json);
  }
  return RunCommand(host, port, command, arg, json);
}
