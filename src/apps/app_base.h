// Shared support for Delos applications (§3.1).
//
// An application splits into a Wrapper (the external API: serializes each
// request and proposes it to the top engine; reads go through sync) and an
// Applicator (executes requests inside the apply upcall). This header holds
// the op-envelope convention all our applications share: payload =
// varint op code + op-specific fields.
#pragma once

#include <unistd.h>

#include <any>
#include <string>

#include "src/common/serde.h"
#include "src/core/engine.h"
#include "src/core/entry.h"

namespace delos {

// Builds an application payload: op code + serialized arguments.
class OpWriter {
 public:
  explicit OpWriter(uint64_t op_code) { ser_.WriteVarint(op_code); }
  Serializer& args() { return ser_; }
  LogEntry ToEntry() && {
    LogEntry entry;
    entry.payload = ser_.Release();
    return entry;
  }

 private:
  Serializer ser_;
};

// Reads an op envelope inside Apply.
class OpReader {
 public:
  explicit OpReader(const std::string& payload) : de_(payload), op_code_(de_.ReadVarint()) {}
  uint64_t op_code() const { return op_code_; }
  Deserializer& args() { return de_; }

 private:
  Deserializer de_;
  uint64_t op_code_;
};

// Helper mixin for Wrappers: propose an op and unwrap the typed result, or
// obtain a linearizable snapshot for reads.
class AppWrapperBase {
 public:
  explicit AppWrapperBase(IEngine* top) : top_(top) {}

  // Workload attribution identity: every op proposed through this wrapper
  // is stamped with this id (piggybacked in the reserved client header; see
  // core/entry.h) so the attribution plane can name noisy clients even on
  // plain stacks with no session layer. Defaults to a stable per-process
  // id; benches, the simulator, and multi-tenant callers set explicit ids.
  void set_client_id(uint64_t id) { client_id_ = id; }
  uint64_t client_id() const { return client_id_; }

  // The process-wide default identity (stable for the process lifetime).
  static uint64_t ProcessClientId() {
    static const uint64_t id = static_cast<uint64_t>(::getpid());
    return id;
  }

 protected:
  // Blocking propose; rethrows deterministic application errors.
  template <typename T>
  T ProposeAndGet(LogEntry entry) {
    SetClientIds(&entry, {client_id_});
    std::any result = top_->Propose(std::move(entry)).Get();
    return std::any_cast<T>(result);
  }

  // Linearizable read snapshot (§3.1: sync returns a ROTx reflecting all
  // completed writes).
  ROTxn SyncRead() { return top_->Sync().Get(); }

  IEngine* top_engine() { return top_; }

 private:
  IEngine* top_;
  uint64_t client_id_ = ProcessClientId();
};

}  // namespace delos
