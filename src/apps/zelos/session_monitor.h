// SessionMonitor: Zelos's failure detector for client sessions.
//
// ZooKeeper expires a session when no heartbeat arrives within its timeout.
// Here, each server may run a SessionMonitor that polls the committed
// session table: a session whose heartbeat position has not advanced for
// longer than its timeout (measured on the monitor's local clock) is expired
// by proposing an ExpireSession command — the decision travels through the
// log, so ephemeral-node cleanup is deterministic on every replica even
// though the detection used a local clock. Multiple monitors racing to
// expire the same session are harmless (expiry is idempotent).
#pragma once

#include <atomic>
#include <map>
#include <thread>

#include "src/apps/zelos/zelos.h"
#include "src/common/clock.h"

namespace delos::zelos {

class SessionMonitor {
 public:
  struct Options {
    int64_t check_interval_micros = 20'000;
    Clock* clock = nullptr;  // defaults to RealClock
  };

  // `client` proposes the expirations; `store` is the local replica state
  // the monitor watches. Starts its thread immediately.
  SessionMonitor(ZelosClient* client, LocalStore* store, Options options);
  SessionMonitor(ZelosClient* client, LocalStore* store)
      : SessionMonitor(client, store, Options{}) {}
  ~SessionMonitor();

  SessionMonitor(const SessionMonitor&) = delete;
  SessionMonitor& operator=(const SessionMonitor&) = delete;

  uint64_t sessions_expired() const { return expired_.load(std::memory_order_relaxed); }

 private:
  struct Observation {
    std::string heartbeat_state;  // last observed heartbeat record (or "")
    int64_t observed_at_micros = 0;
    int64_t timeout_micros = 0;
  };

  void MonitorLoop();
  void CheckOnce();

  ZelosClient* client_;
  LocalStore* store_;
  Options options_;
  Clock* clock_;
  std::map<SessionId, Observation> observations_;
  std::atomic<uint64_t> expired_{0};
  std::atomic<bool> shutdown_{false};
  std::thread thread_;
};

}  // namespace delos::zelos
