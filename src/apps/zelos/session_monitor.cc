#include "src/apps/zelos/session_monitor.h"

#include "src/common/logging.h"

namespace delos::zelos {

SessionMonitor::SessionMonitor(ZelosClient* client, LocalStore* store, Options options)
    : client_(client),
      store_(store),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock::Instance()) {
  thread_ = std::thread([this] { MonitorLoop(); });
}

SessionMonitor::~SessionMonitor() {
  shutdown_.store(true, std::memory_order_release);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void SessionMonitor::MonitorLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    CheckOnce();
    RealClock::Instance()->SleepMicros(options_.check_interval_micros);
  }
}

void SessionMonitor::CheckOnce() {
  ROTxn snapshot = store_->Snapshot();
  const int64_t now = clock_->NowMicros();
  std::map<SessionId, Observation> live;
  std::vector<SessionId> to_expire;

  for (const auto& [key, record] : snapshot.ScanPrefix(ZelosApplicator::kSessionPrefix)) {
    const SessionId id = ZelosApplicator::SessionIdFromKey(key);
    const int64_t timeout = ZelosApplicator::DecodeSessionTimeout(record);
    const std::string heartbeat =
        snapshot.Get(ZelosApplicator::HeartbeatKey(id)).value_or("");
    auto it = observations_.find(id);
    if (it == observations_.end() || it->second.heartbeat_state != heartbeat) {
      // First sighting or fresh heartbeat: restart the countdown.
      live[id] = Observation{heartbeat, now, timeout};
      continue;
    }
    live[id] = it->second;
    if (timeout > 0 && now - it->second.observed_at_micros > timeout) {
      to_expire.push_back(id);
    }
  }
  observations_ = std::move(live);

  for (const SessionId id : to_expire) {
    try {
      client_->ExpireSession(id);
      expired_.fetch_add(1, std::memory_order_relaxed);
      observations_.erase(id);
      LOG_INFO << "session monitor: expired session " << id;
    } catch (const std::exception& e) {
      LOG_WARNING << "session monitor: expire " << id << " failed: " << e.what();
    }
  }
}

}  // namespace delos::zelos
