// Zelos: the ZooKeeper clone built on the Delos stack (§4.3).
//
// Reproduces the ZooKeeper data model over the log-structured protocol
// stack: a hierarchical namespace of znodes with versioned data, ephemeral
// and sequential nodes, sessions, one-shot watches, and atomic multi-ops.
//
//  * Writes are ops proposed through the top engine; in the production-shaped
//    stack they pass through the BatchingEngine (group commit) and the
//    SessionOrderEngine (ZooKeeper's session-ordering guarantee, §4.3).
//  * Reads are served from sync snapshots (strongly consistent).
//  * Watches are replica-local soft state, triggered from postApply — the
//    reason Zelos postApply shows significant work in Figure 7.
//  * A multi-op is atomic "for free": a deterministic error thrown mid-way
//    rolls back the whole apply sub-transaction (§3.4).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/app_base.h"
#include "src/common/metrics.h"
#include "src/common/workload.h"
#include "src/core/engine.h"
#include "src/core/health.h"

namespace delos::zelos {

// --- Deterministic application errors (ZooKeeper error codes) ---

class ZelosError : public DeterministicError {
 public:
  explicit ZelosError(const std::string& what) : DeterministicError(what) {}
};
class NoNodeError : public ZelosError {
 public:
  explicit NoNodeError(const std::string& path) : ZelosError("no node: " + path) {}
};
class NodeExistsError : public ZelosError {
 public:
  explicit NodeExistsError(const std::string& path) : ZelosError("node exists: " + path) {}
};
class BadVersionError : public ZelosError {
 public:
  explicit BadVersionError(const std::string& path) : ZelosError("bad version: " + path) {}
};
class NotEmptyError : public ZelosError {
 public:
  explicit NotEmptyError(const std::string& path) : ZelosError("not empty: " + path) {}
};
class SessionExpiredError : public ZelosError {
 public:
  explicit SessionExpiredError() : ZelosError("session expired") {}
};
class NoChildrenForEphemeralsError : public ZelosError {
 public:
  explicit NoChildrenForEphemeralsError(const std::string& path)
      : ZelosError("ephemerals cannot have children: " + path) {}
};
class BadArgumentsError : public ZelosError {
 public:
  explicit BadArgumentsError(const std::string& what) : ZelosError("bad arguments: " + what) {}
};

// --- Data model ---

using SessionId = uint64_t;

enum CreateFlags : uint32_t {
  kPersistent = 0,
  kEphemeral = 1,
  kSequential = 2,
};

struct Stat {
  LogPos czxid = 0;   // log position of the creating entry
  LogPos mzxid = 0;   // log position of the last data change
  int64_t version = 0;
  int64_t cversion = 0;  // child-list version
  SessionId ephemeral_owner = 0;
};

struct WatchEvent {
  enum class Type { kCreated, kDeleted, kDataChanged, kChildrenChanged };
  Type type;
  std::string path;
};
using WatchCallback = std::function<void(const WatchEvent&)>;

// --- Applicator ---

class ZelosApplicator : public IApplicator, public IHealthCheckable {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override;

  // IHealthCheckable: a single deterministic failure is a normal client
  // error (bad version, no node); a long unbroken streak of them means every
  // write is bouncing — systematic misuse or corrupt state. Registered with
  // the server's watchdog via RegisterHealthTarget.
  HealthReport HealthCheck() const override;
  // Triggers one-shot watches for the entry's effects (soft state).
  void PostApply(const LogEntry& entry, LogPos pos) override;

  // Local watch registration (one-shot, ZooKeeper-style).
  void AddDataWatch(const std::string& path, WatchCallback callback);
  void AddExistsWatch(const std::string& path, WatchCallback callback);
  void AddChildWatch(const std::string& path, WatchCallback callback);

  // Publishes a "zelos.open_sessions" gauge to `metrics` (create / close /
  // expire all travel through apply, so the gauge tracks committed state).
  void set_metrics(MetricsRegistry* metrics);

  // Key layout (shared with the read path).
  static std::string NodeKey(const std::string& path);
  static std::string ChildKey(const std::string& parent, const std::string& child);
  static std::string ChildPrefix(const std::string& parent);
  static std::string SessionKey(SessionId id);
  static std::string HeartbeatKey(SessionId id);
  static std::string EphemeralKey(SessionId id, const std::string& path);
  static std::string EphemeralPrefix(SessionId id);
  // Decodes the timeout stored in a session record.
  static int64_t DecodeSessionTimeout(std::string_view record);
  // Parses the id out of a session key ("z/s/<zero-padded id>").
  static SessionId SessionIdFromKey(std::string_view key);
  static constexpr char kSessionPrefix[] = "z/s/";

  // Node record serialization (shared with the read path).
  struct NodeRecord {
    std::string data;
    Stat stat;
    uint64_t seq_counter = 0;  // for sequential children
    std::string Encode() const;
    static NodeRecord Decode(std::string_view bytes);
  };

 private:
  struct MultiOp;  // forward decl for the multi decoder

  void EnsureRoot(RWTxn& txn, LogPos pos);
  NodeRecord GetNode(RWTxn& txn, const std::string& path);
  std::string DoCreate(RWTxn& txn, LogPos pos, SessionId session, const std::string& path,
                       const std::string& data, uint32_t flags);
  void DoDelete(RWTxn& txn, const std::string& path, int64_t expected_version);
  int64_t DoSetData(RWTxn& txn, LogPos pos, const std::string& path, const std::string& data,
                    int64_t expected_version);
  void DoCloseSession(RWTxn& txn, SessionId session);
  void CheckSession(RWTxn& txn, SessionId session);
  std::any ApplyOp(RWTxn& txn, const LogEntry& entry, LogPos pos);

  // Apply-thread scratch: watch events for applied-but-not-yet-notified
  // entries. Accumulates across a group-commit batch; drained by the first
  // postApply after the batch commits.
  std::vector<WatchEvent> pending_events_;

  Gauge* open_sessions_gauge_ = nullptr;

  // Consecutive deterministic apply failures (reset on any success); read by
  // HealthCheck from the watchdog thread.
  std::atomic<uint64_t> failure_streak_{0};

  std::mutex watch_mu_;
  std::map<std::string, std::vector<WatchCallback>> data_watches_;
  std::map<std::string, std::vector<WatchCallback>> exists_watches_;
  std::map<std::string, std::vector<WatchCallback>> child_watches_;
};

// --- Wrapper ---

class ZelosClient : public AppWrapperBase {
 public:
  // `applicator` is this server's local applicator (watch registration).
  ZelosClient(IEngine* top, ZelosApplicator* applicator)
      : AppWrapperBase(top), applicator_(applicator) {}

  // Session lifecycle (replicated through the log).
  SessionId CreateSession(int64_t timeout_micros = 10'000'000);
  void CloseSession(SessionId session);
  // Proposed by a failure detector that saw no heartbeat; same effect as
  // close but kept distinct for observability.
  void ExpireSession(SessionId session);
  void Heartbeat(SessionId session);

  // Writes. Returns the actual path (differs for sequential nodes).
  std::string Create(SessionId session, const std::string& path, const std::string& data,
                     uint32_t flags = kPersistent);
  void Delete(const std::string& path, int64_t expected_version = -1);
  // Returns the new data version.
  int64_t SetData(const std::string& path, const std::string& data,
                  int64_t expected_version = -1);

  // Atomic multi-op. Each element is (op, path, data, flags/version).
  struct Op {
    enum class Kind { kCreate, kDelete, kSetData, kCheckVersion } kind;
    std::string path;
    std::string data;
    uint32_t flags = 0;
    int64_t version = -1;
    SessionId session = 0;
  };
  // Returns the created path for each kCreate (empty string otherwise).
  std::vector<std::string> Multi(const std::vector<Op>& ops);

  // Reads (strongly consistent; optional one-shot watch registration).
  std::optional<std::pair<std::string, Stat>> GetData(const std::string& path,
                                                      WatchCallback watch = nullptr);
  std::optional<Stat> Exists(const std::string& path, WatchCallback watch = nullptr);
  std::vector<std::string> GetChildren(const std::string& path, WatchCallback watch = nullptr);

  // Op codes.
  enum OpCode : uint64_t {
    kCreateSession = 1,
    kCloseSession = 2,
    kExpireSession = 3,
    kHeartbeat = 4,
    kCreate = 10,
    kDelete = 11,
    kSetData = 12,
    kMulti = 13,
  };

 private:
  ZelosApplicator* applicator_;
};

// Workload-attribution hook: data ops map to "zelos<path>" (paths begin with
// '/'), session-lifecycle ops to "zelos/session[/<id>]", multis to their
// first constituent's path. Malformed payloads yield "".
class ZelosKeyExtractor : public IKeyExtractor {
 public:
  std::string KeyOf(std::string_view payload) const override;
  static const ZelosKeyExtractor* Instance();
};

// Path helpers shared by applicator, client, and tests.
bool IsValidPath(const std::string& path);
std::string ParentPath(const std::string& path);
std::string BaseName(const std::string& path);

}  // namespace delos::zelos
