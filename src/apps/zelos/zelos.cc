#include "src/apps/zelos/zelos.h"

#include <cstdio>

namespace delos::zelos {

namespace {

constexpr char kNextSessionKey[] = "z/meta/next_session";
constexpr char kPathSep = '/';
// Separates parent path from child name in the child index; sorts below any
// printable path byte so children group correctly.
constexpr char kChildSep = '\x01';

std::string PadSession(SessionId id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%020llu", static_cast<unsigned long long>(id));
  return buffer;
}

void WriteStat(Serializer& ser, const Stat& stat) {
  ser.WriteVarint(stat.czxid);
  ser.WriteVarint(stat.mzxid);
  ser.WriteSigned(stat.version);
  ser.WriteSigned(stat.cversion);
  ser.WriteVarint(stat.ephemeral_owner);
}

Stat ReadStat(Deserializer& de) {
  Stat stat;
  stat.czxid = de.ReadVarint();
  stat.mzxid = de.ReadVarint();
  stat.version = de.ReadSigned();
  stat.cversion = de.ReadSigned();
  stat.ephemeral_owner = de.ReadVarint();
  return stat;
}

}  // namespace

bool IsValidPath(const std::string& path) {
  if (path.empty() || path[0] != kPathSep) {
    return false;
  }
  if (path.size() > 1 && path.back() == kPathSep) {
    return false;
  }
  if (path.find("//") != std::string::npos) {
    return false;
  }
  if (path.find(kChildSep) != std::string::npos) {
    return false;
  }
  return true;
}

std::string ParentPath(const std::string& path) {
  const size_t slash = path.rfind(kPathSep);
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  return path.substr(path.rfind(kPathSep) + 1);
}

// --- key layout ---

std::string ZelosApplicator::NodeKey(const std::string& path) { return "z/n" + path; }

std::string ZelosApplicator::ChildKey(const std::string& parent, const std::string& child) {
  return ChildPrefix(parent) + child;
}

std::string ZelosApplicator::ChildPrefix(const std::string& parent) {
  return "z/c" + parent + kChildSep;
}

std::string ZelosApplicator::SessionKey(SessionId id) { return "z/s/" + PadSession(id); }

std::string ZelosApplicator::HeartbeatKey(SessionId id) { return "z/hb/" + PadSession(id); }

int64_t ZelosApplicator::DecodeSessionTimeout(std::string_view record) {
  Deserializer de(record);
  return de.ReadSigned();
}

SessionId ZelosApplicator::SessionIdFromKey(std::string_view key) {
  return std::stoull(std::string(key.substr(std::string_view(kSessionPrefix).size())));
}

std::string ZelosApplicator::EphemeralKey(SessionId id, const std::string& path) {
  return EphemeralPrefix(id) + path;
}

std::string ZelosApplicator::EphemeralPrefix(SessionId id) {
  return "z/e/" + PadSession(id) + kChildSep;
}

// --- node record ---

std::string ZelosApplicator::NodeRecord::Encode() const {
  Serializer ser;
  ser.WriteString(data);
  WriteStat(ser, stat);
  ser.WriteVarint(seq_counter);
  return ser.Release();
}

ZelosApplicator::NodeRecord ZelosApplicator::NodeRecord::Decode(std::string_view bytes) {
  Deserializer de(bytes);
  NodeRecord record;
  record.data = de.ReadString();
  record.stat = ReadStat(de);
  record.seq_counter = de.ReadVarint();
  return record;
}

// --- applicator internals ---

void ZelosApplicator::EnsureRoot(RWTxn& txn, LogPos pos) {
  const std::string root_key = NodeKey("/");
  if (!txn.Get(root_key).has_value()) {
    NodeRecord root;
    root.stat.czxid = pos;
    root.stat.mzxid = pos;
    txn.Put(root_key, root.Encode());
  }
}

ZelosApplicator::NodeRecord ZelosApplicator::GetNode(RWTxn& txn, const std::string& path) {
  auto bytes = txn.Get(NodeKey(path));
  if (!bytes.has_value()) {
    throw NoNodeError(path);
  }
  return NodeRecord::Decode(*bytes);
}

void ZelosApplicator::CheckSession(RWTxn& txn, SessionId session) {
  if (session == 0) {
    return;  // Session-less client (tests, internal ops).
  }
  if (!txn.Get(SessionKey(session)).has_value()) {
    throw SessionExpiredError();
  }
}

std::string ZelosApplicator::DoCreate(RWTxn& txn, LogPos pos, SessionId session,
                                      const std::string& path, const std::string& data,
                                      uint32_t flags) {
  if (!IsValidPath(path) || path == "/") {
    throw BadArgumentsError("invalid path " + path);
  }
  if ((flags & kEphemeral) != 0 && session == 0) {
    throw BadArgumentsError("ephemeral nodes need a session");
  }
  CheckSession(txn, session);
  EnsureRoot(txn, pos);

  const std::string parent = ParentPath(path);
  auto parent_bytes = txn.Get(NodeKey(parent));
  if (!parent_bytes.has_value()) {
    throw NoNodeError(parent);
  }
  NodeRecord parent_record = NodeRecord::Decode(*parent_bytes);
  if (parent_record.stat.ephemeral_owner != 0) {
    throw NoChildrenForEphemeralsError(parent);
  }

  std::string actual_path = path;
  if ((flags & kSequential) != 0) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%010llu",
                  static_cast<unsigned long long>(parent_record.seq_counter));
    parent_record.seq_counter += 1;
    actual_path += suffix;
  }
  if (txn.Get(NodeKey(actual_path)).has_value()) {
    throw NodeExistsError(actual_path);
  }

  NodeRecord node;
  node.data = data;
  node.stat.czxid = pos;
  node.stat.mzxid = pos;
  if ((flags & kEphemeral) != 0) {
    node.stat.ephemeral_owner = session;
    txn.Put(EphemeralKey(session, actual_path), "");
  }
  txn.Put(NodeKey(actual_path), node.Encode());
  txn.Put(ChildKey(parent, BaseName(actual_path)), "");
  parent_record.stat.cversion += 1;
  txn.Put(NodeKey(parent), parent_record.Encode());

  pending_events_.push_back({WatchEvent::Type::kCreated, actual_path});
  pending_events_.push_back({WatchEvent::Type::kChildrenChanged, parent});
  return actual_path;
}

void ZelosApplicator::DoDelete(RWTxn& txn, const std::string& path, int64_t expected_version) {
  if (!IsValidPath(path) || path == "/") {
    throw BadArgumentsError("cannot delete " + path);
  }
  NodeRecord node = GetNode(txn, path);
  if (expected_version >= 0 && node.stat.version != expected_version) {
    throw BadVersionError(path);
  }
  // Reject non-empty nodes.
  bool has_children = false;
  txn.Scan(ChildPrefix(path), ChildPrefix(path) + "\xff",
           [&](std::string_view, std::string_view) {
             has_children = true;
             return false;
           });
  if (has_children) {
    throw NotEmptyError(path);
  }

  const std::string parent = ParentPath(path);
  NodeRecord parent_record = GetNode(txn, parent);
  txn.Delete(NodeKey(path));
  txn.Delete(ChildKey(parent, BaseName(path)));
  if (node.stat.ephemeral_owner != 0) {
    txn.Delete(EphemeralKey(node.stat.ephemeral_owner, path));
  }
  parent_record.stat.cversion += 1;
  txn.Put(NodeKey(parent), parent_record.Encode());

  pending_events_.push_back({WatchEvent::Type::kDeleted, path});
  pending_events_.push_back({WatchEvent::Type::kChildrenChanged, parent});
}

int64_t ZelosApplicator::DoSetData(RWTxn& txn, LogPos pos, const std::string& path,
                                   const std::string& data, int64_t expected_version) {
  NodeRecord node = GetNode(txn, path);
  if (expected_version >= 0 && node.stat.version != expected_version) {
    throw BadVersionError(path);
  }
  node.data = data;
  node.stat.version += 1;
  node.stat.mzxid = pos;
  txn.Put(NodeKey(path), node.Encode());
  pending_events_.push_back({WatchEvent::Type::kDataChanged, path});
  return node.stat.version;
}

void ZelosApplicator::set_metrics(MetricsRegistry* metrics) {
  open_sessions_gauge_ = metrics != nullptr ? metrics->GetGauge("zelos.open_sessions") : nullptr;
}

void ZelosApplicator::DoCloseSession(RWTxn& txn, SessionId session) {
  if (!txn.Get(SessionKey(session)).has_value()) {
    return;  // Already closed/expired: idempotent.
  }
  if (open_sessions_gauge_ != nullptr) {
    open_sessions_gauge_->Add(-1);
  }
  // Delete the session's ephemeral nodes.
  std::vector<std::string> ephemerals;
  const std::string prefix = EphemeralPrefix(session);
  txn.Scan(prefix, prefix + "\xff", [&](std::string_view key, std::string_view) {
    ephemerals.emplace_back(key.substr(prefix.size()));
    return true;
  });
  for (const std::string& path : ephemerals) {
    DoDelete(txn, path, -1);
  }
  txn.Delete(SessionKey(session));
}

std::any ZelosApplicator::Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  // Watch events accumulate across a group-commit batch (postApply only runs
  // after the whole batch commits, and the first postApply drains everything
  // pending). On a deterministic throw the record is rolled back, so its
  // events are trimmed and never fire.
  const size_t event_mark = pending_events_.size();
  try {
    std::any result = ApplyOp(txn, entry, pos);
    failure_streak_.store(0, std::memory_order_relaxed);
    return result;
  } catch (const DeterministicError&) {
    pending_events_.resize(event_mark);
    failure_streak_.fetch_add(1, std::memory_order_relaxed);
    throw;
  } catch (...) {
    pending_events_.resize(event_mark);
    throw;
  }
}

HealthReport ZelosApplicator::HealthCheck() const {
  const uint64_t streak = failure_streak_.load(std::memory_order_relaxed);
  HealthReport report{"zelos", HealthState::kOk, "", static_cast<int64_t>(streak)};
  // Thresholds: a handful of consecutive rejections is normal contention; a
  // long unbroken run means nothing is committing.
  if (streak >= 256) {
    report.state = HealthState::kUnhealthy;
    report.reason = std::to_string(streak) + " consecutive deterministic apply failures";
  } else if (streak >= 64) {
    report.state = HealthState::kDegraded;
    report.reason = std::to_string(streak) + " consecutive deterministic apply failures";
  }
  return report;
}

std::any ZelosApplicator::ApplyOp(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  if (entry.payload.empty()) {
    return std::any(Unit{});
  }
  OpReader op(entry.payload);
  switch (op.op_code()) {
    case ZelosClient::kCreateSession: {
      const int64_t timeout = op.args().ReadSigned();
      auto next_bytes = txn.Get(kNextSessionKey);
      SessionId id = 1;
      if (next_bytes.has_value()) {
        Deserializer de(*next_bytes);
        id = de.ReadVarint();
      }
      Serializer next_ser;
      next_ser.WriteVarint(id + 1);
      txn.Put(kNextSessionKey, next_ser.Release());
      Serializer session_ser;
      session_ser.WriteSigned(timeout);
      txn.Put(SessionKey(id), session_ser.Release());
      if (open_sessions_gauge_ != nullptr) {
        open_sessions_gauge_->Add(1);
      }
      return std::any(id);
    }
    case ZelosClient::kCloseSession:
    case ZelosClient::kExpireSession: {
      const SessionId session = op.args().ReadVarint();
      DoCloseSession(txn, session);
      return std::any(Unit{});
    }
    case ZelosClient::kHeartbeat: {
      const SessionId session = op.args().ReadVarint();
      CheckSession(txn, session);
      Serializer ser;
      ser.WriteVarint(pos);
      txn.Put(HeartbeatKey(session), ser.Release());
      return std::any(Unit{});
    }
    case ZelosClient::kCreate: {
      const SessionId session = op.args().ReadVarint();
      const std::string path = op.args().ReadString();
      const std::string data = op.args().ReadString();
      const auto flags = static_cast<uint32_t>(op.args().ReadVarint());
      return std::any(DoCreate(txn, pos, session, path, data, flags));
    }
    case ZelosClient::kDelete: {
      const std::string path = op.args().ReadString();
      const int64_t version = op.args().ReadSigned();
      DoDelete(txn, path, version);
      return std::any(Unit{});
    }
    case ZelosClient::kSetData: {
      const std::string path = op.args().ReadString();
      const std::string data = op.args().ReadString();
      const int64_t version = op.args().ReadSigned();
      return std::any(DoSetData(txn, pos, path, data, version));
    }
    case ZelosClient::kMulti: {
      // Atomic: any throw here unwinds to the engine below, which rolls back
      // the whole sub-transaction (§3.4).
      const uint64_t count = op.args().ReadVarint();
      std::vector<std::string> results;
      results.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        const auto kind = static_cast<ZelosClient::Op::Kind>(op.args().ReadVarint());
        const SessionId session = op.args().ReadVarint();
        const std::string path = op.args().ReadString();
        const std::string data = op.args().ReadString();
        const auto flags = static_cast<uint32_t>(op.args().ReadVarint());
        const int64_t version = op.args().ReadSigned();
        switch (kind) {
          case ZelosClient::Op::Kind::kCreate:
            results.push_back(DoCreate(txn, pos, session, path, data, flags));
            break;
          case ZelosClient::Op::Kind::kDelete:
            DoDelete(txn, path, version);
            results.emplace_back();
            break;
          case ZelosClient::Op::Kind::kSetData:
            DoSetData(txn, pos, path, data, version);
            results.emplace_back();
            break;
          case ZelosClient::Op::Kind::kCheckVersion: {
            NodeRecord node = GetNode(txn, path);
            if (version >= 0 && node.stat.version != version) {
              throw BadVersionError(path);
            }
            results.emplace_back();
            break;
          }
        }
      }
      return std::any(std::move(results));
    }
    default:
      throw BadArgumentsError("unknown op code " + std::to_string(op.op_code()));
  }
}

void ZelosApplicator::PostApply(const LogEntry& entry, LogPos pos) {
  if (pending_events_.empty()) {
    return;
  }
  std::vector<std::pair<WatchCallback, WatchEvent>> to_fire;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    for (const WatchEvent& event : pending_events_) {
      switch (event.type) {
        case WatchEvent::Type::kCreated: {
          // Creation fires exists-watches.
          auto it = exists_watches_.find(event.path);
          if (it != exists_watches_.end()) {
            for (auto& callback : it->second) {
              to_fire.emplace_back(std::move(callback), event);
            }
            exists_watches_.erase(it);
          }
          break;
        }
        case WatchEvent::Type::kDeleted:
        case WatchEvent::Type::kDataChanged: {
          for (auto* watches : {&data_watches_, &exists_watches_}) {
            auto it = watches->find(event.path);
            if (it != watches->end()) {
              for (auto& callback : it->second) {
                to_fire.emplace_back(std::move(callback), event);
              }
              watches->erase(it);
            }
          }
          break;
        }
        case WatchEvent::Type::kChildrenChanged: {
          auto it = child_watches_.find(event.path);
          if (it != child_watches_.end()) {
            for (auto& callback : it->second) {
              to_fire.emplace_back(std::move(callback), event);
            }
            child_watches_.erase(it);
          }
          break;
        }
      }
    }
  }
  pending_events_.clear();
  for (auto& [callback, event] : to_fire) {
    callback(event);
  }
}

void ZelosApplicator::AddDataWatch(const std::string& path, WatchCallback callback) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  data_watches_[path].push_back(std::move(callback));
}

void ZelosApplicator::AddExistsWatch(const std::string& path, WatchCallback callback) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  exists_watches_[path].push_back(std::move(callback));
}

void ZelosApplicator::AddChildWatch(const std::string& path, WatchCallback callback) {
  std::lock_guard<std::mutex> lock(watch_mu_);
  child_watches_[path].push_back(std::move(callback));
}

namespace {

// Single-allocation "<prefix><rest>" — the extractor runs once per applied
// record, so it avoids the temporary ReadString copy.
std::string PrefixedKey(std::string_view prefix, std::string_view rest) {
  std::string out;
  out.reserve(prefix.size() + rest.size());
  out.append(prefix);
  out.append(rest);
  return out;
}

}  // namespace

std::string ZelosKeyExtractor::KeyOf(std::string_view payload) const {
  if (payload.empty()) {
    return "";
  }
  try {
    Deserializer de(payload);
    switch (de.ReadVarint()) {
      case ZelosClient::kCreateSession:
        return "zelos/session";
      case ZelosClient::kCloseSession:
      case ZelosClient::kExpireSession:
      case ZelosClient::kHeartbeat:
        return "zelos/session/" + std::to_string(de.ReadVarint());
      case ZelosClient::kCreate:
        de.ReadVarint();  // session
        return PrefixedKey("zelos", de.ReadStringView());
      case ZelosClient::kDelete:
      case ZelosClient::kSetData:
        return PrefixedKey("zelos", de.ReadStringView());
      case ZelosClient::kMulti: {
        if (de.ReadVarint() == 0) {
          return "zelos/multi";
        }
        de.ReadVarint();  // first op's kind
        de.ReadVarint();  // first op's session
        return PrefixedKey("zelos", de.ReadStringView());
      }
      default:
        return "";
    }
  } catch (const std::exception&) {
    return "";
  }
}

const ZelosKeyExtractor* ZelosKeyExtractor::Instance() {
  static const ZelosKeyExtractor extractor;
  return &extractor;
}

// --- client ---

SessionId ZelosClient::CreateSession(int64_t timeout_micros) {
  OpWriter op(kCreateSession);
  op.args().WriteSigned(timeout_micros);
  return ProposeAndGet<SessionId>(std::move(op).ToEntry());
}

void ZelosClient::CloseSession(SessionId session) {
  OpWriter op(kCloseSession);
  op.args().WriteVarint(session);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void ZelosClient::ExpireSession(SessionId session) {
  OpWriter op(kExpireSession);
  op.args().WriteVarint(session);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void ZelosClient::Heartbeat(SessionId session) {
  OpWriter op(kHeartbeat);
  op.args().WriteVarint(session);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

std::string ZelosClient::Create(SessionId session, const std::string& path,
                                const std::string& data, uint32_t flags) {
  OpWriter op(kCreate);
  op.args().WriteVarint(session);
  op.args().WriteString(path);
  op.args().WriteString(data);
  op.args().WriteVarint(flags);
  return ProposeAndGet<std::string>(std::move(op).ToEntry());
}

void ZelosClient::Delete(const std::string& path, int64_t expected_version) {
  OpWriter op(kDelete);
  op.args().WriteString(path);
  op.args().WriteSigned(expected_version);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

int64_t ZelosClient::SetData(const std::string& path, const std::string& data,
                             int64_t expected_version) {
  OpWriter op(kSetData);
  op.args().WriteString(path);
  op.args().WriteString(data);
  op.args().WriteSigned(expected_version);
  return ProposeAndGet<int64_t>(std::move(op).ToEntry());
}

std::vector<std::string> ZelosClient::Multi(const std::vector<Op>& ops) {
  OpWriter op(kMulti);
  op.args().WriteVarint(ops.size());
  for (const Op& sub : ops) {
    op.args().WriteVarint(static_cast<uint64_t>(sub.kind));
    op.args().WriteVarint(sub.session);
    op.args().WriteString(sub.path);
    op.args().WriteString(sub.data);
    op.args().WriteVarint(sub.flags);
    op.args().WriteSigned(sub.version);
  }
  return ProposeAndGet<std::vector<std::string>>(std::move(op).ToEntry());
}

std::optional<std::pair<std::string, Stat>> ZelosClient::GetData(const std::string& path,
                                                                 WatchCallback watch) {
  ROTxn snapshot = SyncRead();
  auto bytes = snapshot.Get(ZelosApplicator::NodeKey(path));
  if (watch != nullptr) {
    // Registered after the snapshot: an intervening change may fire
    // immediately after registration rather than be missed.
    applicator_->AddDataWatch(path, std::move(watch));
  }
  if (!bytes.has_value()) {
    return std::nullopt;
  }
  auto record = ZelosApplicator::NodeRecord::Decode(*bytes);
  return std::make_pair(record.data, record.stat);
}

std::optional<Stat> ZelosClient::Exists(const std::string& path, WatchCallback watch) {
  ROTxn snapshot = SyncRead();
  auto bytes = snapshot.Get(ZelosApplicator::NodeKey(path));
  if (watch != nullptr) {
    applicator_->AddExistsWatch(path, std::move(watch));
  }
  if (!bytes.has_value()) {
    return std::nullopt;
  }
  return ZelosApplicator::NodeRecord::Decode(*bytes).stat;
}

std::vector<std::string> ZelosClient::GetChildren(const std::string& path, WatchCallback watch) {
  ROTxn snapshot = SyncRead();
  if (watch != nullptr) {
    applicator_->AddChildWatch(path, std::move(watch));
  }
  const std::string prefix = ZelosApplicator::ChildPrefix(path);
  std::vector<std::string> children;
  for (const auto& [key, unused] : snapshot.ScanPrefix(prefix)) {
    children.push_back(key.substr(prefix.size()));
  }
  return children;
}

}  // namespace delos::zelos
