#include "src/apps/delostable/query.h"

#include <algorithm>

namespace delos::table {

namespace {

// Missing columns compare as Null (variant index 0), which sorts below every
// typed value — consistent with the ordered codec.
Value ColumnOrNull(const Row& row, const std::string& column) {
  auto it = row.find(column);
  return it != row.end() ? it->second : Value{};
}

}  // namespace

bool Predicate::Matches(const Row& row) const {
  const Value actual = ColumnOrNull(row, column);
  switch (op) {
    case Op::kEq:
      return actual == value;
    case Op::kNe:
      return actual != value;
    case Op::kLt:
      return actual < value;
    case Op::kLe:
      return actual <= value;
    case Op::kGt:
      return actual > value;
    case Op::kGe:
      return actual >= value;
  }
  return false;
}

QueryPlan QueryEngine::Plan(const Query& query) {
  auto schema = client_->GetSchema(query.table);
  if (!schema.has_value()) {
    throw NoSuchTableError(query.table);
  }
  return PlanWithSchema(query, *schema);
}

QueryPlan QueryEngine::PlanWithSchema(const Query& query, const TableSchema& schema) {
  for (const Predicate& predicate : query.predicates) {
    if (!schema.ColumnType(predicate.column).has_value()) {
      throw SchemaError("predicate on unknown column " + predicate.column);
    }
  }
  QueryPlan plan;

  // 1. Prefer an equality lookup through a secondary index.
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    const Predicate& predicate = query.predicates[i];
    const bool indexed =
        std::find(schema.secondary_indexes.begin(), schema.secondary_indexes.end(),
                  predicate.column) != schema.secondary_indexes.end();
    if (predicate.op == Predicate::Op::kEq && indexed) {
      plan.access = QueryPlan::Access::kIndexLookup;
      plan.index_column = predicate.column;
      for (size_t j = 0; j < query.predicates.size(); ++j) {
        if (j != i) {
          plan.residual.push_back(query.predicates[j]);
        }
      }
      // The index guarantees equality; nothing residual for this predicate.
      return plan;
    }
  }

  // 2. Bound a primary-key range scan. The lower bound can be made
  // inclusive exactly for kGe/kEq; kLt gives an exclusive upper bound.
  // Everything stays in the residual for exactness (kGt's strictness, kLe's
  // inclusivity).
  bool bounded = false;
  for (const Predicate& predicate : query.predicates) {
    if (predicate.column != schema.primary_key) {
      continue;
    }
    if (predicate.op == Predicate::Op::kEq || predicate.op == Predicate::Op::kGe ||
        predicate.op == Predicate::Op::kGt) {
      if (!plan.pk_lower.has_value() || *plan.pk_lower < predicate.value) {
        plan.pk_lower = predicate.value;
      }
      bounded = true;
    }
    if (predicate.op == Predicate::Op::kLt) {
      if (!plan.pk_upper.has_value() || predicate.value < *plan.pk_upper) {
        plan.pk_upper = predicate.value;
      }
      bounded = true;
    }
  }
  plan.access = bounded ? QueryPlan::Access::kPkRange : QueryPlan::Access::kFullScan;
  plan.residual = query.predicates;
  return plan;
}

std::vector<Row> QueryEngine::Select(const Query& query) {
  const QueryPlan plan = Plan(query);
  std::vector<Row> candidates;
  switch (plan.access) {
    case QueryPlan::Access::kIndexLookup: {
      Value key;
      for (const Predicate& predicate : query.predicates) {
        if (predicate.column == plan.index_column && predicate.op == Predicate::Op::kEq) {
          key = predicate.value;
          break;
        }
      }
      candidates = client_->IndexLookup(query.table, plan.index_column, key);
      break;
    }
    case QueryPlan::Access::kPkRange:
      candidates = client_->Scan(query.table, plan.pk_lower, plan.pk_upper);
      break;
    case QueryPlan::Access::kFullScan:
      candidates = client_->Scan(query.table, std::nullopt, std::nullopt);
      break;
  }
  std::vector<Row> results;
  for (Row& row : candidates) {
    bool matches = true;
    for (const Predicate& predicate : plan.residual) {
      if (!predicate.Matches(row)) {
        matches = false;
        break;
      }
    }
    if (matches) {
      results.push_back(std::move(row));
      if (results.size() >= query.limit) {
        break;
      }
    }
  }
  return results;
}

size_t QueryEngine::Count(const Query& query) { return Select(query).size(); }

}  // namespace delos::table
