// Typed values and order-preserving key encoding for DelosTable.
//
// Primary keys and secondary-index keys are stored in the LocalStore, whose
// scans are byte-ordered; the codec here guarantees that
// Encode(a) < Encode(b) (bytewise) iff a < b (typed), for every supported
// type — which is what makes range scans and index lookups correct.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/errors.h"
#include "src/common/serde.h"

namespace delos::table {

enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

using Value = std::variant<std::monostate, bool, int64_t, double, std::string>;

ValueType TypeOf(const Value& value);
const char* TypeName(ValueType type);

// Order-preserving encoding. Values of different types order by type tag.
//  * int64: sign bit flipped, big-endian.
//  * double: sign-magnitude flip (negative values reverse order), big-endian.
//  * string: 0x00 escaped as {0x00, 0xFF}, terminated by {0x00, 0x00} so a
//    prefix never sorts between its extensions' components in composite keys.
void EncodeOrdered(const Value& value, std::string* out);
std::string EncodeOrdered(const Value& value);
// Decodes one value from `in` starting at *offset, advancing it.
Value DecodeOrdered(std::string_view in, size_t* offset);

// Plain (non-ordered) serialization for row storage.
void WriteValue(Serializer& ser, const Value& value);
Value ReadValue(Deserializer& de);

// Human-readable rendering for examples and debug output.
std::string ToString(const Value& value);

}  // namespace delos::table
