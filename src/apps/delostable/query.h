// A small declarative query layer for DelosTable — the "complex relational
// query" surface the paper attributes to production DelosTable traffic
// (§5, "each of which can be a complex relational query").
//
// Queries are conjunctions of predicates with an optional limit. A tiny
// planner picks the access path:
//  1. equality predicate on an indexed column  -> secondary-index lookup,
//  2. predicates on the primary key            -> bounded pk range scan,
//  3. otherwise                                -> full scan,
// with remaining predicates applied as residual filters. Reads run against a
// single sync snapshot, so a query is internally consistent and
// linearizable.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/apps/delostable/table_db.h"

namespace delos::table {

struct Predicate {
  enum class Op { kEq, kLt, kLe, kGt, kGe, kNe };
  std::string column;
  Op op = Op::kEq;
  Value value;

  bool Matches(const Row& row) const;
};

struct Query {
  std::string table;
  std::vector<Predicate> predicates;  // conjunction (AND)
  size_t limit = SIZE_MAX;
};

// The chosen access path, exposed for tests and EXPLAIN-style debugging.
struct QueryPlan {
  enum class Access { kIndexLookup, kPkRange, kFullScan };
  Access access = Access::kFullScan;
  std::string index_column;            // for kIndexLookup
  std::optional<Value> pk_lower;       // for kPkRange (inclusive)
  std::optional<Value> pk_upper;       // for kPkRange (exclusive)
  std::vector<Predicate> residual;     // applied after the access path
};

class QueryEngine {
 public:
  explicit QueryEngine(TableClient* client) : client_(client) {}

  // Plans without executing (EXPLAIN).
  QueryPlan Plan(const Query& query);

  // Executes: plans, fetches via the chosen access path, applies residual
  // filters. Throws NoSuchTableError for unknown tables and SchemaError for
  // predicates on unknown columns.
  std::vector<Row> Select(const Query& query);

  // Convenience aggregate.
  size_t Count(const Query& query);

 private:
  QueryPlan PlanWithSchema(const Query& query, const TableSchema& schema);

  TableClient* client_;
};

}  // namespace delos::table
