// DelosTable: the first Delos production database (§4.1) — a replicated
// relational table store with typed columns, primary keys, secondary
// indexes, conditional updates, and range scans.
//
// Split per §3.1 into a Wrapper (TableClient: serializes requests, proposes
// write ops to the top engine, serves reads from sync snapshots) and an
// Applicator (TableApplicator: executes ops deterministically inside the
// apply upcall, maintaining rows and secondary indexes in the LocalStore).
// Deterministic errors (row_not_found, duplicate key, condition failed) are
// thrown from apply and relayed to the caller, exercising the exception
// semantics of §3.4.
#pragma once

#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/app_base.h"
#include "src/apps/delostable/value.h"
#include "src/common/workload.h"
#include "src/core/engine.h"
#include "src/core/health.h"

namespace delos::table {

// --- Deterministic application errors ---

class TableError : public DeterministicError {
 public:
  explicit TableError(const std::string& what) : DeterministicError(what) {}
};
class NoSuchTableError : public TableError {
 public:
  explicit NoSuchTableError(const std::string& t) : TableError("no such table: " + t) {}
};
class DuplicateTableError : public TableError {
 public:
  explicit DuplicateTableError(const std::string& t) : TableError("table exists: " + t) {}
};
class RowNotFoundError : public TableError {
 public:
  explicit RowNotFoundError() : TableError("row_not_found") {}
};
class DuplicateKeyError : public TableError {
 public:
  explicit DuplicateKeyError() : TableError("duplicate primary key") {}
};
class SchemaError : public TableError {
 public:
  explicit SchemaError(const std::string& what) : TableError("schema error: " + what) {}
};
class ConditionFailedError : public TableError {
 public:
  explicit ConditionFailedError() : TableError("conditional update failed") {}
};

// --- Schema ---

struct ColumnSpec {
  std::string name;
  ValueType type = ValueType::kString;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnSpec> columns;
  std::string primary_key;                  // must name one of the columns
  std::vector<std::string> secondary_indexes;  // column names

  void Write(Serializer& ser) const;
  static TableSchema Read(Deserializer& de);
  std::optional<ValueType> ColumnType(const std::string& column) const;
};

// A row: column name -> value.
using Row = std::map<std::string, Value>;

void WriteRow(Serializer& ser, const Row& row);
Row ReadRow(Deserializer& de);

// --- Applicator ---

class TableApplicator : public IApplicator, public IHealthCheckable {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override;

  // IHealthCheckable: judges the streak of consecutive deterministic apply
  // failures (see ZelosApplicator::HealthCheck for the rationale).
  HealthReport HealthCheck() const override;

  // Key layout helpers (shared with the read path in TableClient).
  static std::string MetaKey(const std::string& table);
  static std::string RowKey(const std::string& table, const Value& pk);
  static std::string RowPrefix(const std::string& table);
  static std::string IndexKey(const std::string& table, const std::string& column,
                              const Value& value, const Value& pk);
  static std::string IndexPrefix(const std::string& table, const std::string& column,
                                 const Value& value);

 private:
  std::any ApplyImpl(RWTxn& txn, const LogEntry& entry, LogPos pos);
  TableSchema LoadSchema(RWTxn& txn, const std::string& table);
  void InsertOrUpsertRow(RWTxn& txn, const std::string& table, const Row& row, bool upsert);
  void UpdateRow(RWTxn& txn, const std::string& table, const Value& pk, const Row& changes);
  void DeleteRow(RWTxn& txn, const std::string& table, const Value& pk);
  void ValidateRow(const TableSchema& schema, const Row& row, bool require_all);
  void PutIndexEntries(RWTxn& txn, const TableSchema& schema, const Row& row);
  void DeleteIndexEntries(RWTxn& txn, const TableSchema& schema, const Row& row);
  std::any WriteRowOp(RWTxn& txn, OpReader& op, bool upsert);

  // Consecutive deterministic apply failures (reset on success).
  std::atomic<uint64_t> failure_streak_{0};
};

// Workload-attribution hook: maps each op payload to "table/<name>" (batches
// attribute to their first op's table), so /top/keys names hot tables. A
// pure function of the bytes; malformed payloads yield "".
class TableKeyExtractor : public IKeyExtractor {
 public:
  std::string KeyOf(std::string_view payload) const override;
  static const TableKeyExtractor* Instance();
};

// --- Wrapper ---

class TableClient : public AppWrapperBase {
 public:
  explicit TableClient(IEngine* top) : AppWrapperBase(top) {}

  // DDL / writes (linearizable, replicated RPC through the log).
  void CreateTable(const TableSchema& schema);
  void DropTable(const std::string& table);
  void Insert(const std::string& table, const Row& row);
  void Upsert(const std::string& table, const Row& row);
  // Partial update of an existing row; throws RowNotFoundError.
  void Update(const std::string& table, const Value& pk, const Row& changes);
  void Delete(const std::string& table, const Value& pk);
  // Applies `changes` iff column `cond_column` currently equals `expected`.
  void ConditionalUpdate(const std::string& table, const Value& pk,
                         const std::string& cond_column, const Value& expected,
                         const Row& changes);

  // Atomic multi-row transaction: all ops apply in one log entry inside one
  // LocalStore transaction; if any op throws (row_not_found, duplicate key,
  // condition failed, ...), the whole batch rolls back (§3.4 failure
  // atomicity). Ops may span tables.
  struct BatchOp {
    enum class Kind { kInsert, kUpsert, kUpdate, kDelete } kind;
    std::string table;
    Row row;        // kInsert/kUpsert: full row; kUpdate: changes
    Value pk;       // kUpdate/kDelete
  };
  void ApplyBatch(const std::vector<BatchOp>& ops);

  // Reads (strongly consistent via sync; no proposal).
  std::optional<Row> Get(const std::string& table, const Value& pk);
  // Rows with pk in [from, to); unbounded when nullopt. Ordered by pk.
  std::vector<Row> Scan(const std::string& table, const std::optional<Value>& from,
                        const std::optional<Value>& to, size_t limit = SIZE_MAX);
  // Equality lookup through a secondary index.
  std::vector<Row> IndexLookup(const std::string& table, const std::string& column,
                               const Value& value, size_t limit = SIZE_MAX);
  std::optional<TableSchema> GetSchema(const std::string& table);

  // Op codes (shared with the applicator).
  enum Op : uint64_t {
    kCreateTable = 1,
    kDropTable = 2,
    kInsert = 3,
    kUpsert = 4,
    kUpdate = 5,
    kDelete = 6,
    kConditionalUpdate = 7,
    kWriteBatch = 8,
  };
};

}  // namespace delos::table
