#include "src/apps/delostable/table_db.h"

namespace delos::table {

// --- Schema / row serialization ---

void TableSchema::Write(Serializer& ser) const {
  ser.WriteString(name);
  ser.WriteVarint(columns.size());
  for (const ColumnSpec& column : columns) {
    ser.WriteString(column.name);
    ser.WriteVarint(static_cast<uint64_t>(column.type));
  }
  ser.WriteString(primary_key);
  ser.WriteVarint(secondary_indexes.size());
  for (const std::string& index : secondary_indexes) {
    ser.WriteString(index);
  }
}

TableSchema TableSchema::Read(Deserializer& de) {
  TableSchema schema;
  schema.name = de.ReadString();
  const uint64_t num_columns = de.ReadVarint();
  for (uint64_t i = 0; i < num_columns; ++i) {
    ColumnSpec column;
    column.name = de.ReadString();
    column.type = static_cast<ValueType>(de.ReadVarint());
    schema.columns.push_back(std::move(column));
  }
  schema.primary_key = de.ReadString();
  const uint64_t num_indexes = de.ReadVarint();
  for (uint64_t i = 0; i < num_indexes; ++i) {
    schema.secondary_indexes.push_back(de.ReadString());
  }
  return schema;
}

std::optional<ValueType> TableSchema::ColumnType(const std::string& column) const {
  for (const ColumnSpec& spec : columns) {
    if (spec.name == column) {
      return spec.type;
    }
  }
  return std::nullopt;
}

void WriteRow(Serializer& ser, const Row& row) {
  ser.WriteVarint(row.size());
  for (const auto& [column, value] : row) {
    ser.WriteString(column);
    WriteValue(ser, value);
  }
}

Row ReadRow(Deserializer& de) {
  Row row;
  const uint64_t count = de.ReadVarint();
  for (uint64_t i = 0; i < count; ++i) {
    std::string column = de.ReadString();
    row.emplace(std::move(column), ReadValue(de));
  }
  return row;
}

// --- Key layout ---

std::string TableApplicator::MetaKey(const std::string& table) { return "t/meta/" + table; }

std::string TableApplicator::RowPrefix(const std::string& table) { return "t/" + table + "/r/"; }

std::string TableApplicator::RowKey(const std::string& table, const Value& pk) {
  std::string key = RowPrefix(table);
  EncodeOrdered(pk, &key);
  return key;
}

std::string TableApplicator::IndexPrefix(const std::string& table, const std::string& column,
                                         const Value& value) {
  std::string key = "t/" + table + "/i/" + column + "/";
  EncodeOrdered(value, &key);
  return key;
}

std::string TableApplicator::IndexKey(const std::string& table, const std::string& column,
                                      const Value& value, const Value& pk) {
  std::string key = IndexPrefix(table, column, value);
  EncodeOrdered(pk, &key);
  return key;
}

// --- Applicator internals ---

TableSchema TableApplicator::LoadSchema(RWTxn& txn, const std::string& table) {
  auto bytes = txn.Get(MetaKey(table));
  if (!bytes.has_value()) {
    throw NoSuchTableError(table);
  }
  Deserializer de(*bytes);
  return TableSchema::Read(de);
}

void TableApplicator::ValidateRow(const TableSchema& schema, const Row& row, bool require_all) {
  for (const auto& [column, value] : row) {
    auto type = schema.ColumnType(column);
    if (!type.has_value()) {
      throw SchemaError("unknown column " + column);
    }
    if (TypeOf(value) != *type && TypeOf(value) != ValueType::kNull) {
      throw SchemaError("column " + column + " expects " + TypeName(*type) + ", got " +
                        TypeName(TypeOf(value)));
    }
  }
  if (require_all && row.count(schema.primary_key) == 0) {
    throw SchemaError("missing primary key column " + schema.primary_key);
  }
}

void TableApplicator::PutIndexEntries(RWTxn& txn, const TableSchema& schema, const Row& row) {
  const Value& pk = row.at(schema.primary_key);
  for (const std::string& column : schema.secondary_indexes) {
    auto it = row.find(column);
    if (it != row.end() && TypeOf(it->second) != ValueType::kNull) {
      txn.Put(IndexKey(schema.name, column, it->second, pk), "");
    }
  }
}

void TableApplicator::DeleteIndexEntries(RWTxn& txn, const TableSchema& schema, const Row& row) {
  const Value& pk = row.at(schema.primary_key);
  for (const std::string& column : schema.secondary_indexes) {
    auto it = row.find(column);
    if (it != row.end() && TypeOf(it->second) != ValueType::kNull) {
      txn.Delete(IndexKey(schema.name, column, it->second, pk));
    }
  }
}

void TableApplicator::InsertOrUpsertRow(RWTxn& txn, const std::string& table, const Row& row,
                                        bool upsert) {
  const TableSchema schema = LoadSchema(txn, table);
  ValidateRow(schema, row, /*require_all=*/true);
  const Value& pk = row.at(schema.primary_key);
  const std::string row_key = RowKey(table, pk);

  auto existing = txn.Get(row_key);
  if (existing.has_value()) {
    if (!upsert) {
      throw DuplicateKeyError();
    }
    Deserializer de(*existing);
    DeleteIndexEntries(txn, schema, ReadRow(de));
  }
  Serializer ser;
  WriteRow(ser, row);
  txn.Put(row_key, ser.Release());
  PutIndexEntries(txn, schema, row);
}

void TableApplicator::UpdateRow(RWTxn& txn, const std::string& table, const Value& pk,
                                const Row& changes) {
  const TableSchema schema = LoadSchema(txn, table);
  ValidateRow(schema, changes, /*require_all=*/false);
  const std::string row_key = RowKey(table, pk);
  auto existing = txn.Get(row_key);
  if (!existing.has_value()) {
    throw RowNotFoundError();
  }
  Deserializer de(*existing);
  Row row = ReadRow(de);
  DeleteIndexEntries(txn, schema, row);
  for (const auto& [column, value] : changes) {
    if (column == schema.primary_key) {
      throw SchemaError("cannot update the primary key");
    }
    row[column] = value;
  }
  Serializer ser;
  WriteRow(ser, row);
  txn.Put(row_key, ser.Release());
  PutIndexEntries(txn, schema, row);
}

void TableApplicator::DeleteRow(RWTxn& txn, const std::string& table, const Value& pk) {
  const TableSchema schema = LoadSchema(txn, table);
  const std::string row_key = RowKey(table, pk);
  auto existing = txn.Get(row_key);
  if (!existing.has_value()) {
    throw RowNotFoundError();
  }
  Deserializer de(*existing);
  DeleteIndexEntries(txn, schema, ReadRow(de));
  txn.Delete(row_key);
}

std::any TableApplicator::WriteRowOp(RWTxn& txn, OpReader& op, bool upsert) {
  const std::string table = op.args().ReadString();
  const Row row = ReadRow(op.args());
  InsertOrUpsertRow(txn, table, row, upsert);
  return std::any(Unit{});
}

std::any TableApplicator::Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  try {
    std::any result = ApplyImpl(txn, entry, pos);
    failure_streak_.store(0, std::memory_order_relaxed);
    return result;
  } catch (const DeterministicError&) {
    failure_streak_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

HealthReport TableApplicator::HealthCheck() const {
  const uint64_t streak = failure_streak_.load(std::memory_order_relaxed);
  HealthReport report{"delostable", HealthState::kOk, "", static_cast<int64_t>(streak)};
  if (streak >= 256) {
    report.state = HealthState::kUnhealthy;
    report.reason = std::to_string(streak) + " consecutive deterministic apply failures";
  } else if (streak >= 64) {
    report.state = HealthState::kDegraded;
    report.reason = std::to_string(streak) + " consecutive deterministic apply failures";
  }
  return report;
}

std::any TableApplicator::ApplyImpl(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  if (entry.payload.empty()) {
    return std::any(Unit{});  // Engine-internal entry that reached the top.
  }
  OpReader op(entry.payload);
  switch (op.op_code()) {
    case TableClient::kCreateTable: {
      const TableSchema schema = TableSchema::Read(op.args());
      if (txn.Get(MetaKey(schema.name)).has_value()) {
        throw DuplicateTableError(schema.name);
      }
      if (!schema.ColumnType(schema.primary_key).has_value()) {
        throw SchemaError("primary key " + schema.primary_key + " is not a column");
      }
      for (const std::string& index : schema.secondary_indexes) {
        if (!schema.ColumnType(index).has_value()) {
          throw SchemaError("index column " + index + " is not a column");
        }
      }
      Serializer ser;
      schema.Write(ser);
      txn.Put(MetaKey(schema.name), ser.Release());
      return std::any(Unit{});
    }
    case TableClient::kDropTable: {
      const std::string table = op.args().ReadString();
      LoadSchema(txn, table);  // throws if absent
      txn.Delete(MetaKey(table));
      // Drop rows and index entries.
      std::vector<std::string> keys;
      txn.Scan("t/" + table + "/", "t/" + table + "0",
               [&](std::string_view key, std::string_view) {
                 keys.emplace_back(key);
                 return true;
               });
      for (const std::string& key : keys) {
        txn.Delete(key);
      }
      return std::any(Unit{});
    }
    case TableClient::kInsert:
      return WriteRowOp(txn, op, /*upsert=*/false);
    case TableClient::kUpsert:
      return WriteRowOp(txn, op, /*upsert=*/true);
    case TableClient::kUpdate:
    case TableClient::kConditionalUpdate: {
      const bool conditional = op.op_code() == TableClient::kConditionalUpdate;
      const std::string table = op.args().ReadString();
      size_t offset = 0;
      const std::string pk_bytes = op.args().ReadString();
      const Value pk = DecodeOrdered(pk_bytes, &offset);
      std::string cond_column;
      Value expected;
      if (conditional) {
        cond_column = op.args().ReadString();
        expected = ReadValue(op.args());
      }
      const Row changes = ReadRow(op.args());
      if (conditional) {
        const std::string row_key = RowKey(table, pk);
        auto existing = txn.Get(row_key);
        if (!existing.has_value()) {
          throw RowNotFoundError();
        }
        Deserializer de(*existing);
        Row row = ReadRow(de);
        auto it = row.find(cond_column);
        const Value current = (it != row.end()) ? it->second : Value{};
        if (current != expected) {
          throw ConditionFailedError();
        }
      }
      UpdateRow(txn, table, pk, changes);
      return std::any(Unit{});
    }
    case TableClient::kDelete: {
      const std::string table = op.args().ReadString();
      size_t offset = 0;
      const std::string pk_bytes = op.args().ReadString();
      const Value pk = DecodeOrdered(pk_bytes, &offset);
      DeleteRow(txn, table, pk);
      return std::any(Unit{});
    }
    case TableClient::kWriteBatch: {
      // Atomic multi-row transaction: any throw unwinds to the engine below,
      // rolling back every op in the batch.
      const uint64_t count = op.args().ReadVarint();
      for (uint64_t i = 0; i < count; ++i) {
        const auto kind = static_cast<TableClient::BatchOp::Kind>(op.args().ReadVarint());
        const std::string table = op.args().ReadString();
        size_t offset = 0;
        const std::string pk_bytes = op.args().ReadString();
        const Row row = ReadRow(op.args());
        switch (kind) {
          case TableClient::BatchOp::Kind::kInsert:
            InsertOrUpsertRow(txn, table, row, /*upsert=*/false);
            break;
          case TableClient::BatchOp::Kind::kUpsert:
            InsertOrUpsertRow(txn, table, row, /*upsert=*/true);
            break;
          case TableClient::BatchOp::Kind::kUpdate:
            UpdateRow(txn, table, DecodeOrdered(pk_bytes, &offset), row);
            break;
          case TableClient::BatchOp::Kind::kDelete:
            DeleteRow(txn, table, DecodeOrdered(pk_bytes, &offset));
            break;
        }
      }
      return std::any(count);
    }
    default:
      throw TableError("unknown op code " + std::to_string(op.op_code()));
  }
}

std::string TableKeyExtractor::KeyOf(std::string_view payload) const {
  if (payload.empty()) {
    return "";
  }
  try {
    Deserializer de(payload);
    switch (de.ReadVarint()) {
      case TableClient::kCreateTable:
        return "table/" + TableSchema::Read(de).name;
      case TableClient::kDropTable:
      case TableClient::kInsert:
      case TableClient::kUpsert:
      case TableClient::kUpdate:
      case TableClient::kDelete:
      case TableClient::kConditionalUpdate:
        return "table/" + de.ReadString();
      case TableClient::kWriteBatch: {
        if (de.ReadVarint() == 0) {
          return "";
        }
        de.ReadVarint();  // first op's kind
        return "table/" + de.ReadString();
      }
      default:
        return "";
    }
  } catch (const std::exception&) {
    return "";
  }
}

const TableKeyExtractor* TableKeyExtractor::Instance() {
  static const TableKeyExtractor extractor;
  return &extractor;
}

// --- Wrapper ---

void TableClient::CreateTable(const TableSchema& schema) {
  OpWriter op(kCreateTable);
  schema.Write(op.args());
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void TableClient::DropTable(const std::string& table) {
  OpWriter op(kDropTable);
  op.args().WriteString(table);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void TableClient::Insert(const std::string& table, const Row& row) {
  OpWriter op(kInsert);
  op.args().WriteString(table);
  WriteRow(op.args(), row);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void TableClient::Upsert(const std::string& table, const Row& row) {
  OpWriter op(kUpsert);
  op.args().WriteString(table);
  WriteRow(op.args(), row);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void TableClient::Update(const std::string& table, const Value& pk, const Row& changes) {
  OpWriter op(kUpdate);
  op.args().WriteString(table);
  op.args().WriteString(EncodeOrdered(pk));
  WriteRow(op.args(), changes);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void TableClient::ConditionalUpdate(const std::string& table, const Value& pk,
                                    const std::string& cond_column, const Value& expected,
                                    const Row& changes) {
  OpWriter op(kConditionalUpdate);
  op.args().WriteString(table);
  op.args().WriteString(EncodeOrdered(pk));
  op.args().WriteString(cond_column);
  WriteValue(op.args(), expected);
  WriteRow(op.args(), changes);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void TableClient::ApplyBatch(const std::vector<BatchOp>& ops) {
  OpWriter op(kWriteBatch);
  op.args().WriteVarint(ops.size());
  for (const BatchOp& batch_op : ops) {
    op.args().WriteVarint(static_cast<uint64_t>(batch_op.kind));
    op.args().WriteString(batch_op.table);
    op.args().WriteString(EncodeOrdered(batch_op.pk));
    WriteRow(op.args(), batch_op.row);
  }
  ProposeAndGet<uint64_t>(std::move(op).ToEntry());
}

void TableClient::Delete(const std::string& table, const Value& pk) {
  OpWriter op(kDelete);
  op.args().WriteString(table);
  op.args().WriteString(EncodeOrdered(pk));
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

std::optional<Row> TableClient::Get(const std::string& table, const Value& pk) {
  ROTxn snapshot = SyncRead();
  auto bytes = snapshot.Get(TableApplicator::RowKey(table, pk));
  if (!bytes.has_value()) {
    return std::nullopt;
  }
  Deserializer de(*bytes);
  return ReadRow(de);
}

std::vector<Row> TableClient::Scan(const std::string& table, const std::optional<Value>& from,
                                   const std::optional<Value>& to, size_t limit) {
  ROTxn snapshot = SyncRead();
  const std::string prefix = TableApplicator::RowPrefix(table);
  std::string start = prefix;
  if (from.has_value()) {
    EncodeOrdered(*from, &start);
  }
  std::string end;
  if (to.has_value()) {
    end = prefix;
    EncodeOrdered(*to, &end);
  } else {
    end = "t/" + table + "/r0";  // '0' > '/': one past the row prefix
  }
  std::vector<Row> rows;
  snapshot.Scan(start, end, [&](std::string_view key, std::string_view value) {
    Deserializer de(value);
    rows.push_back(ReadRow(de));
    return rows.size() < limit;
  });
  return rows;
}

std::vector<Row> TableClient::IndexLookup(const std::string& table, const std::string& column,
                                          const Value& value, size_t limit) {
  ROTxn snapshot = SyncRead();
  const std::string prefix = TableApplicator::IndexPrefix(table, column, value);
  std::vector<Row> rows;
  for (const auto& [index_key, unused] : snapshot.ScanPrefix(prefix, limit)) {
    size_t offset = prefix.size();
    const Value pk = DecodeOrdered(index_key, &offset);
    auto bytes = snapshot.Get(TableApplicator::RowKey(table, pk));
    if (bytes.has_value()) {
      Deserializer de(*bytes);
      rows.push_back(ReadRow(de));
    }
  }
  return rows;
}

std::optional<TableSchema> TableClient::GetSchema(const std::string& table) {
  ROTxn snapshot = SyncRead();
  auto bytes = snapshot.Get(TableApplicator::MetaKey(table));
  if (!bytes.has_value()) {
    return std::nullopt;
  }
  Deserializer de(*bytes);
  return TableSchema::Read(de);
}

}  // namespace delos::table
