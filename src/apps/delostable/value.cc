#include "src/apps/delostable/value.h"

#include <cstring>

namespace delos::table {

namespace {

void AppendBigEndian64(uint64_t bits, std::string* out) {
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

uint64_t ReadBigEndian64(std::string_view in, size_t* offset) {
  if (*offset + 8 > in.size()) {
    throw SerdeError("truncated ordered value");
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits = (bits << 8) | static_cast<unsigned char>(in[*offset + i]);
  }
  *offset += 8;
  return bits;
}

}  // namespace

ValueType TypeOf(const Value& value) {
  return static_cast<ValueType>(value.index());
}

const char* TypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

void EncodeOrdered(const Value& value, std::string* out) {
  out->push_back(static_cast<char>(TypeOf(value)));
  switch (TypeOf(value)) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->push_back(std::get<bool>(value) ? 1 : 0);
      break;
    case ValueType::kInt64: {
      // Flipping the sign bit maps the signed order onto the unsigned order.
      const uint64_t bits = static_cast<uint64_t>(std::get<int64_t>(value)) ^ (1ULL << 63);
      AppendBigEndian64(bits, out);
      break;
    }
    case ValueType::kDouble: {
      uint64_t bits;
      const double d = std::get<double>(value);
      std::memcpy(&bits, &d, sizeof(bits));
      // Positive doubles: flip sign bit. Negative doubles: flip everything
      // (their magnitude order is reversed).
      if ((bits >> 63) == 0) {
        bits ^= 1ULL << 63;
      } else {
        bits = ~bits;
      }
      AppendBigEndian64(bits, out);
      break;
    }
    case ValueType::kString: {
      for (const char c : std::get<std::string>(value)) {
        if (c == '\0') {
          out->push_back('\0');
          out->push_back('\xff');
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\0');
      out->push_back('\0');
      break;
    }
  }
}

std::string EncodeOrdered(const Value& value) {
  std::string out;
  EncodeOrdered(value, &out);
  return out;
}

Value DecodeOrdered(std::string_view in, size_t* offset) {
  if (*offset >= in.size()) {
    throw SerdeError("truncated ordered value tag");
  }
  const auto type = static_cast<ValueType>(in[(*offset)++]);
  switch (type) {
    case ValueType::kNull:
      return Value{};
    case ValueType::kBool: {
      if (*offset >= in.size()) {
        throw SerdeError("truncated ordered bool");
      }
      return Value{in[(*offset)++] != 0};
    }
    case ValueType::kInt64: {
      const uint64_t bits = ReadBigEndian64(in, offset) ^ (1ULL << 63);
      return Value{static_cast<int64_t>(bits)};
    }
    case ValueType::kDouble: {
      uint64_t bits = ReadBigEndian64(in, offset);
      if ((bits >> 63) != 0) {
        bits ^= 1ULL << 63;
      } else {
        bits = ~bits;
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value{d};
    }
    case ValueType::kString: {
      std::string s;
      while (true) {
        if (*offset >= in.size()) {
          throw SerdeError("unterminated ordered string");
        }
        const char c = in[(*offset)++];
        if (c != '\0') {
          s.push_back(c);
          continue;
        }
        if (*offset >= in.size()) {
          throw SerdeError("truncated ordered string escape");
        }
        const char next = in[(*offset)++];
        if (next == '\0') {
          return Value{std::move(s)};
        }
        s.push_back('\0');
      }
    }
  }
  throw SerdeError("unknown ordered value tag");
}

void WriteValue(Serializer& ser, const Value& value) {
  ser.WriteVarint(static_cast<uint64_t>(TypeOf(value)));
  switch (TypeOf(value)) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      ser.WriteBool(std::get<bool>(value));
      break;
    case ValueType::kInt64:
      ser.WriteSigned(std::get<int64_t>(value));
      break;
    case ValueType::kDouble:
      ser.WriteDouble(std::get<double>(value));
      break;
    case ValueType::kString:
      ser.WriteString(std::get<std::string>(value));
      break;
  }
}

Value ReadValue(Deserializer& de) {
  const auto type = static_cast<ValueType>(de.ReadVarint());
  switch (type) {
    case ValueType::kNull:
      return Value{};
    case ValueType::kBool:
      return Value{de.ReadBool()};
    case ValueType::kInt64:
      return Value{de.ReadSigned()};
    case ValueType::kDouble:
      return Value{de.ReadDouble()};
    case ValueType::kString:
      return Value{de.ReadString()};
  }
  throw SerdeError("unknown value type");
}

std::string ToString(const Value& value) {
  switch (TypeOf(value)) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return std::get<bool>(value) ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(value));
    case ValueType::kDouble:
      return std::to_string(std::get<double>(value));
    case ValueType::kString:
      return "\"" + std::get<std::string>(value) + "\"";
  }
  return "?";
}

}  // namespace delos::table
