#include "src/apps/delosq/delosq.h"

#include <cstdio>

namespace delos::delosq {

namespace {

struct QueueMeta {
  uint64_t head = 0;  // next seq to pop
  uint64_t tail = 0;  // next seq to push

  std::string Encode() const {
    Serializer ser;
    ser.WriteVarint(head);
    ser.WriteVarint(tail);
    return ser.Release();
  }
  static QueueMeta Decode(std::string_view bytes) {
    Deserializer de(bytes);
    QueueMeta meta;
    meta.head = de.ReadVarint();
    meta.tail = de.ReadVarint();
    return meta;
  }
};

QueueMeta LoadMeta(RWTxn& txn, const std::string& queue) {
  auto bytes = txn.Get(QueueApplicator::MetaKey(queue));
  if (!bytes.has_value()) {
    throw NoSuchQueueError(queue);
  }
  return QueueMeta::Decode(*bytes);
}

}  // namespace

std::string QueueApplicator::MetaKey(const std::string& queue) { return "q/m/" + queue; }

std::string QueueApplicator::ElementKey(const std::string& queue, uint64_t seq) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%020llu", static_cast<unsigned long long>(seq));
  return "q/e/" + queue + "/" + buffer;
}

std::any QueueApplicator::Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  if (entry.payload.empty()) {
    return std::any(Unit{});
  }
  OpReader op(entry.payload);
  switch (op.op_code()) {
    case QueueClient::kCreateQueue: {
      const std::string queue = op.args().ReadString();
      if (txn.Get(MetaKey(queue)).has_value()) {
        throw QueueExistsError(queue);
      }
      txn.Put(MetaKey(queue), QueueMeta{}.Encode());
      return std::any(Unit{});
    }
    case QueueClient::kDropQueue: {
      const std::string queue = op.args().ReadString();
      const QueueMeta meta = LoadMeta(txn, queue);
      for (uint64_t seq = meta.head; seq < meta.tail; ++seq) {
        txn.Delete(ElementKey(queue, seq));
      }
      txn.Delete(MetaKey(queue));
      return std::any(Unit{});
    }
    case QueueClient::kPush: {
      const std::string queue = op.args().ReadString();
      const std::string payload = op.args().ReadString();
      QueueMeta meta = LoadMeta(txn, queue);
      txn.Put(ElementKey(queue, meta.tail), payload);
      const uint64_t seq = meta.tail;
      meta.tail += 1;
      txn.Put(MetaKey(queue), meta.Encode());
      return std::any(seq);
    }
    case QueueClient::kPop: {
      const std::string queue = op.args().ReadString();
      QueueMeta meta = LoadMeta(txn, queue);
      if (meta.head == meta.tail) {
        return std::any(std::optional<std::string>{});
      }
      auto payload = txn.Get(ElementKey(queue, meta.head));
      txn.Delete(ElementKey(queue, meta.head));
      meta.head += 1;
      txn.Put(MetaKey(queue), meta.Encode());
      return std::any(std::optional<std::string>(std::move(payload)));
    }
    default:
      throw QueueError("unknown op code " + std::to_string(op.op_code()));
  }
}

std::string QueueKeyExtractor::KeyOf(std::string_view payload) const {
  if (payload.empty()) {
    return "";
  }
  try {
    Deserializer de(payload);
    switch (de.ReadVarint()) {
      case QueueClient::kCreateQueue:
      case QueueClient::kDropQueue:
      case QueueClient::kPush:
      case QueueClient::kPop:
        return "queue/" + de.ReadString();
      default:
        return "";
    }
  } catch (const std::exception&) {
    return "";
  }
}

const QueueKeyExtractor* QueueKeyExtractor::Instance() {
  static const QueueKeyExtractor extractor;
  return &extractor;
}

void QueueClient::CreateQueue(const std::string& queue) {
  OpWriter op(kCreateQueue);
  op.args().WriteString(queue);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

void QueueClient::DropQueue(const std::string& queue) {
  OpWriter op(kDropQueue);
  op.args().WriteString(queue);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

uint64_t QueueClient::Push(const std::string& queue, const std::string& payload) {
  OpWriter op(kPush);
  op.args().WriteString(queue);
  op.args().WriteString(payload);
  return ProposeAndGet<uint64_t>(std::move(op).ToEntry());
}

std::optional<std::string> QueueClient::Pop(const std::string& queue) {
  OpWriter op(kPop);
  op.args().WriteString(queue);
  return ProposeAndGet<std::optional<std::string>>(std::move(op).ToEntry());
}

std::optional<std::string> QueueClient::Peek(const std::string& queue) {
  ROTxn snapshot = SyncRead();
  auto meta_bytes = snapshot.Get(QueueApplicator::MetaKey(queue));
  if (!meta_bytes.has_value()) {
    throw NoSuchQueueError(queue);
  }
  const QueueMeta meta = QueueMeta::Decode(*meta_bytes);
  if (meta.head == meta.tail) {
    return std::nullopt;
  }
  return snapshot.Get(QueueApplicator::ElementKey(queue, meta.head));
}

uint64_t QueueClient::Size(const std::string& queue) {
  ROTxn snapshot = SyncRead();
  auto meta_bytes = snapshot.Get(QueueApplicator::MetaKey(queue));
  if (!meta_bytes.has_value()) {
    throw NoSuchQueueError(queue);
  }
  const QueueMeta meta = QueueMeta::Decode(*meta_bytes);
  return meta.tail - meta.head;
}

std::vector<std::string> QueueClient::ListQueues() {
  ROTxn snapshot = SyncRead();
  std::vector<std::string> queues;
  for (const auto& [key, unused] : snapshot.ScanPrefix("q/m/")) {
    queues.push_back(key.substr(4));
  }
  return queues;
}

}  // namespace delos::delosq
