// DelosQ: the replicated queue service mentioned in §6 (built by an intern
// over a summer — a demonstration of how quickly new databases compose on
// the Delos platform). Named FIFO queues with durable, linearizable
// push/pop; peek and size are strongly consistent reads.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/apps/app_base.h"
#include "src/common/workload.h"
#include "src/core/engine.h"

namespace delos::delosq {

class QueueError : public DeterministicError {
 public:
  explicit QueueError(const std::string& what) : DeterministicError(what) {}
};
class NoSuchQueueError : public QueueError {
 public:
  explicit NoSuchQueueError(const std::string& q) : QueueError("no such queue: " + q) {}
};
class QueueExistsError : public QueueError {
 public:
  explicit QueueExistsError(const std::string& q) : QueueError("queue exists: " + q) {}
};

class QueueApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override;

  static std::string MetaKey(const std::string& queue);
  static std::string ElementKey(const std::string& queue, uint64_t seq);
};

// Workload-attribution hook: every op maps to "queue/<name>" (the queue is
// the first field of all four ops). Malformed payloads yield "".
class QueueKeyExtractor : public IKeyExtractor {
 public:
  std::string KeyOf(std::string_view payload) const override;
  static const QueueKeyExtractor* Instance();
};

class QueueClient : public AppWrapperBase {
 public:
  explicit QueueClient(IEngine* top) : AppWrapperBase(top) {}

  void CreateQueue(const std::string& queue);
  void DropQueue(const std::string& queue);
  // Returns the sequence number assigned to the element.
  uint64_t Push(const std::string& queue, const std::string& payload);
  // Pops the head; nullopt when empty.
  std::optional<std::string> Pop(const std::string& queue);

  // Reads.
  std::optional<std::string> Peek(const std::string& queue);
  uint64_t Size(const std::string& queue);
  std::vector<std::string> ListQueues();

  enum Op : uint64_t {
    kCreateQueue = 1,
    kDropQueue = 2,
    kPush = 3,
    kPop = 4,
  };
};

}  // namespace delos::delosq
