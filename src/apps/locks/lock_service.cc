#include "src/apps/locks/lock_service.h"

#include <algorithm>

namespace delos::locks {

std::string LockApplicator::LockKey(const std::string& lock) { return "l/" + lock; }

std::string LockApplicator::LockRecord::Encode() const {
  Serializer ser;
  ser.WriteString(owner);
  ser.WriteVarint(waiters.size());
  for (const std::string& waiter : waiters) {
    ser.WriteString(waiter);
  }
  return ser.Release();
}

LockApplicator::LockRecord LockApplicator::LockRecord::Decode(std::string_view bytes) {
  Deserializer de(bytes);
  LockRecord record;
  record.owner = de.ReadString();
  const uint64_t count = de.ReadVarint();
  for (uint64_t i = 0; i < count; ++i) {
    record.waiters.push_back(de.ReadString());
  }
  return record;
}

std::any LockApplicator::Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  // Grants accumulate across a group-commit batch (postApply only runs after
  // the whole batch commits, and the first postApply drains everything
  // pending). On a deterministic throw the record is rolled back, so its
  // grants are trimmed and never fire.
  const size_t grant_mark = pending_grants_.size();
  try {
    return ApplyOp(txn, entry, pos);
  } catch (...) {
    pending_grants_.resize(grant_mark);
    throw;
  }
}

std::any LockApplicator::ApplyOp(RWTxn& txn, const LogEntry& entry, LogPos pos) {
  if (entry.payload.empty()) {
    return std::any(Unit{});
  }
  OpReader op(entry.payload);
  const std::string lock = op.args().ReadString();
  const std::string owner = op.args().ReadString();
  const std::string key = LockKey(lock);
  auto bytes = txn.Get(key);
  LockRecord record = bytes.has_value() ? LockRecord::Decode(*bytes) : LockRecord{};

  switch (op.op_code()) {
    case LockClient::kAcquire: {
      if (record.owner == owner) {
        return std::any(true);  // Re-acquire by the holder: idempotent.
      }
      if (record.owner.empty()) {
        record.owner = owner;
        txn.Put(key, record.Encode());
        pending_grants_.emplace_back(lock, owner);
        return std::any(true);
      }
      if (std::find(record.waiters.begin(), record.waiters.end(), owner) ==
          record.waiters.end()) {
        record.waiters.push_back(owner);
        txn.Put(key, record.Encode());
      }
      return std::any(false);
    }
    case LockClient::kRelease: {
      if (record.owner == owner) {
        if (record.waiters.empty()) {
          record.owner.clear();
        } else {
          // Hand off to the next waiter within the same log entry.
          record.owner = record.waiters.front();
          record.waiters.erase(record.waiters.begin());
          pending_grants_.emplace_back(lock, record.owner);
        }
        txn.Put(key, record.Encode());
        return std::any(Unit{});
      }
      auto it = std::find(record.waiters.begin(), record.waiters.end(), owner);
      if (it != record.waiters.end()) {
        record.waiters.erase(it);
        txn.Put(key, record.Encode());
        return std::any(Unit{});
      }
      throw NotLockOwnerError(lock);
    }
    default:
      throw LockError("unknown op code " + std::to_string(op.op_code()));
  }
}

void LockApplicator::PostApply(const LogEntry& entry, LogPos pos) {
  if (pending_grants_.empty()) {
    return;
  }
  // Invoked under callbacks_mu_ so RemoveGrantCallback (a client destructor)
  // can never race an in-flight invocation of the callback it removes.
  // Callbacks only flag local soft state and notify, so holding the lock
  // across them is safe and cheap.
  std::lock_guard<std::mutex> guard(callbacks_mu_);
  for (const auto& [lock, owner] : pending_grants_) {
    for (const auto& [id, callback] : callbacks_) {
      callback(lock, owner);
    }
  }
  pending_grants_.clear();
}

uint64_t LockApplicator::OnGrant(GrantCallback callback) {
  std::lock_guard<std::mutex> lock(callbacks_mu_);
  const uint64_t id = next_callback_id_++;
  callbacks_[id] = std::move(callback);
  return id;
}

void LockApplicator::RemoveGrantCallback(uint64_t id) {
  std::lock_guard<std::mutex> lock(callbacks_mu_);
  callbacks_.erase(id);
}

std::string LockKeyExtractor::KeyOf(std::string_view payload) const {
  if (payload.empty()) {
    return "";
  }
  try {
    Deserializer de(payload);
    switch (de.ReadVarint()) {
      case LockClient::kAcquire:
      case LockClient::kRelease:
        return "lock/" + de.ReadString();
      default:
        return "";
    }
  } catch (const std::exception&) {
    return "";
  }
}

const LockKeyExtractor* LockKeyExtractor::Instance() {
  static const LockKeyExtractor extractor;
  return &extractor;
}

LockClient::LockClient(IEngine* top, LockApplicator* applicator)
    : AppWrapperBase(top), applicator_(applicator) {
  grant_callback_id_ =
      applicator_->OnGrant([this](const std::string& lock, const std::string& owner) {
        {
          std::lock_guard<std::mutex> guard(granted_mu_);
          granted_[{lock, owner}] = true;
        }
        granted_cv_.notify_all();
      });
}

LockClient::~LockClient() { applicator_->RemoveGrantCallback(grant_callback_id_); }

bool LockClient::Acquire(const std::string& lock, const std::string& owner) {
  OpWriter op(kAcquire);
  op.args().WriteString(lock);
  op.args().WriteString(owner);
  return ProposeAndGet<bool>(std::move(op).ToEntry());
}

bool LockClient::AcquireWait(const std::string& lock, const std::string& owner,
                             int64_t timeout_micros) {
  {
    std::lock_guard<std::mutex> guard(granted_mu_);
    granted_[{lock, owner}] = false;
  }
  if (Acquire(lock, owner)) {
    return true;
  }
  std::unique_lock<std::mutex> guard(granted_mu_);
  return granted_cv_.wait_for(guard, std::chrono::microseconds(timeout_micros),
                              [&] { return granted_[{lock, owner}]; });
}

void LockClient::Release(const std::string& lock, const std::string& owner) {
  OpWriter op(kRelease);
  op.args().WriteString(lock);
  op.args().WriteString(owner);
  ProposeAndGet<Unit>(std::move(op).ToEntry());
}

std::string LockClient::Owner(const std::string& lock) {
  ROTxn snapshot = SyncRead();
  auto bytes = snapshot.Get(LockApplicator::LockKey(lock));
  if (!bytes.has_value()) {
    return "";
  }
  // Private decode mirrored here via the applicator's record format.
  Deserializer de(*bytes);
  return de.ReadString();
}

}  // namespace delos::locks
