// DelosLock: the replicated locking service mentioned in §6 (built by one
// engineer in roughly two months on the Delos platform).
//
// Named exclusive locks with FIFO waiter queues. Acquire either grants
// immediately or enqueues the requester; on release the next waiter is
// granted *in the same log entry*, and local waiters learn about their grant
// through a postApply callback — a second demonstration (besides Zelos
// watches) of the soft-state pattern from §3.1.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/apps/app_base.h"
#include "src/common/workload.h"
#include "src/core/engine.h"

namespace delos::locks {

class LockError : public DeterministicError {
 public:
  explicit LockError(const std::string& what) : DeterministicError(what) {}
};
class NotLockOwnerError : public LockError {
 public:
  explicit NotLockOwnerError(const std::string& lock) : LockError("not owner of " + lock) {}
};

class LockApplicator : public IApplicator {
 public:
  std::any Apply(RWTxn& txn, const LogEntry& entry, LogPos pos) override;
  void PostApply(const LogEntry& entry, LogPos pos) override;

  // Local notification when `owner` is granted `lock`. Returns a
  // registration id for RemoveGrantCallback; callbacks are invoked with the
  // registry lock held, so unregistration strictly happens-before or -after
  // any invocation (a destructing client can never be called into).
  using GrantCallback = std::function<void(const std::string& lock, const std::string& owner)>;
  uint64_t OnGrant(GrantCallback callback);
  void RemoveGrantCallback(uint64_t id);

  static std::string LockKey(const std::string& lock);

 private:
  struct LockRecord {
    std::string owner;                 // empty = free
    std::vector<std::string> waiters;  // FIFO
    std::string Encode() const;
    static LockRecord Decode(std::string_view bytes);
  };

  std::any ApplyOp(RWTxn& txn, const LogEntry& entry, LogPos pos);

  // Apply-thread scratch: grants performed by applied-but-not-yet-notified
  // entries. Accumulates across a group-commit batch; drained by the first
  // postApply after the batch commits.
  std::vector<std::pair<std::string, std::string>> pending_grants_;

  std::mutex callbacks_mu_;
  std::map<uint64_t, GrantCallback> callbacks_;
  uint64_t next_callback_id_ = 1;
};

// Workload-attribution hook: both ops map to "lock/<name>" (the lock is the
// first field). Malformed payloads yield "".
class LockKeyExtractor : public IKeyExtractor {
 public:
  std::string KeyOf(std::string_view payload) const override;
  static const LockKeyExtractor* Instance();
};

class LockClient : public AppWrapperBase {
 public:
  LockClient(IEngine* top, LockApplicator* applicator);
  // Unregisters the grant callback: a LockClient may be shorter-lived than
  // its applicator (the verification harness makes one per recorded op).
  ~LockClient();

  // Returns true if granted immediately; false if enqueued.
  bool Acquire(const std::string& lock, const std::string& owner);
  // Blocking acquire: returns once `owner` holds the lock (or the timeout
  // elapses, returning false).
  bool AcquireWait(const std::string& lock, const std::string& owner, int64_t timeout_micros);
  // Releases or abandons a waiter slot. Throws NotLockOwnerError if `owner`
  // neither holds nor waits for the lock.
  void Release(const std::string& lock, const std::string& owner);
  // Strongly consistent owner query (empty = free).
  std::string Owner(const std::string& lock);

  enum Op : uint64_t {
    kAcquire = 1,
    kRelease = 2,
  };

 private:
  LockApplicator* applicator_;
  uint64_t grant_callback_id_ = 0;
  std::mutex granted_mu_;
  std::condition_variable granted_cv_;
  std::map<std::pair<std::string, std::string>, bool> granted_;  // (lock, owner) -> granted
};

}  // namespace delos::locks
