// Per-server shared-log read cache (the read half of the hot path).
//
// Log positions in Delos are immutable once committed: a record read at
// position p is the same bytes forever, until the prefix containing p is
// trimmed away. That makes aggressive caching safe — the only invalidation
// a correct cache ever *needs* is trim — and the read path exploits it:
//
//  * ReadCachingLog decorates an ISharedLog with a bounded, position-indexed
//    cache of committed LogRecords. Every reader on a server shares one
//    instance (ClusterServer wraps the server's log before handing it to the
//    BaseEngine, so the apply loop, the read-ahead prefetcher, the
//    LogBackupEngine's segment uploader, and ad-hoc debug reads all hit the
//    same cache).
//  * Single-flight coalescing: concurrent ReadRanges whose missing suffix is
//    already being fetched wait for that fetch instead of issuing a second
//    backend read. With a quorum loglet behind the cache this turns N
//    readers of the same immutable range into one set of acceptor RPCs.
//  * Write-through fill: a successful Append inserts the payload at its
//    assigned position, so a server replaying its own proposals (the steady
//    state) reads them back without touching the network at all.
//  * Trim awareness: Trim drops the invalidated prefix and reads at or
//    below the trim prefix throw TrimmedError without a backend call. Seal
//    conservatively drops the whole cache (committed entries would stay
//    valid, but seal precedes reconfiguration and is rare enough that
//    correctness-by-emptiness beats reasoning about chain boundaries);
//    reconfiguration drivers can also call InvalidateAll() directly.
//
// Entries silently omitted by the backend (positions above the committed
// tail) are never cached as absent — a later read of the same range goes
// back to the backend for the still-missing suffix.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/sharedlog/shared_log.h"

namespace delos {

struct ReadCacheOptions {
  // Maximum cached records; the lowest positions are evicted first (replay
  // moves forward, so low positions are the coldest).
  size_t capacity_records = 65536;
  // Fill the cache from this server's own successful appends. On in
  // production; the simulator turns it off so every replayed position still
  // flows through the FaultyLog read path where the fault plan lives (a
  // write-through hit would let a replica replay past an injected read
  // crash without ever touching the wedge).
  bool write_through = true;
  // Optional registry for the read.cache.* counters and entries gauge.
  MetricsRegistry* metrics = nullptr;
  // Optional flight recorder; Seal() records a kSeal event through it (seal
  // precedes reconfiguration, so the ring keeps a breadcrumb of every swap).
  FlightRecorder* recorder = nullptr;
};

class ReadCachingLog : public ISharedLog {
 public:
  explicit ReadCachingLog(std::shared_ptr<ISharedLog> inner,
                          ReadCacheOptions options = ReadCacheOptions{});

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  // Drops every cached record (reconfiguration hook; also wired to Seal).
  void InvalidateAll();

  ISharedLog* inner() { return inner_.get(); }

  // Counters (records served from cache / fetched from the backend, backend
  // ReadRange calls issued, records evicted, readers that waited on another
  // reader's in-flight fetch) and the current cache size.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t backend_fetches() const;
  uint64_t evictions() const;
  uint64_t single_flight_waits() const;
  size_t entries() const;

 private:
  // An in-flight backend fetch for [lo, hi]; readers whose first missing
  // position lands inside it wait on `cv` instead of fetching.
  struct Flight {
    LogPos lo = 0;
    LogPos hi = 0;
  };

  // All mutable cache state lives behind a shared_ptr so the write-through
  // append continuation stays safe even if it outlives the decorator.
  struct State {
    explicit State(const ReadCacheOptions& options);

    mutable std::mutex mu;
    std::condition_variable cv;  // signaled on every flight completion
    std::map<LogPos, std::string> cache;
    std::vector<Flight> flights;
    LogPos trim_prefix = 0;
    size_t capacity = 0;
    bool write_through = true;

    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> fetches{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> waits{0};

    FlightRecorder* recorder = nullptr;

    Counter* hit_counter = nullptr;
    Counter* miss_counter = nullptr;
    Counter* eviction_counter = nullptr;
    Counter* wait_counter = nullptr;
    Gauge* entries_gauge = nullptr;

    void InsertLocked(LogPos pos, std::string payload);
    void RemoveFlightLocked(LogPos lo, LogPos hi);
    void PublishSizeLocked();
  };

  std::shared_ptr<ISharedLog> inner_;
  std::shared_ptr<State> state_;
};

}  // namespace delos
