// Zero-latency in-process shared log. The workhorse for unit tests and for
// benches that isolate engine-stack costs from consensus costs.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "src/sharedlog/shared_log.h"

namespace delos {

class InMemoryLog : public ISharedLog {
 public:
  // Positions in this log start at `start_pos` (the VirtualLog chains
  // loglets whose position ranges continue one another).
  explicit InMemoryLog(LogPos start_pos = 1);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  bool sealed() const;

 private:
  mutable std::mutex mu_;
  LogPos start_pos_;
  std::vector<std::string> entries_;  // entries_[i] is position start_pos_ + i
  LogPos trim_prefix_ = 0;
  bool sealed_ = false;
};

}  // namespace delos
