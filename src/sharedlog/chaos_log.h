// Shared-log decorators for tests and benches.
//
//  * DelayedLog adds configurable latency to Append / CheckTail, modeling a
//    consensus round trip without running the full quorum simulation. The
//    Figure 9/10 benches use it to shape the log's latency profile cheaply.
//  * ReorderingLog occasionally swaps the order of adjacent appends. The
//    paper notes disorder "can occur due to leader changes within the log
//    implementation, or due to code changes in the Delos stack" (§4.3); this
//    wrapper manufactures those rare events so the SessionOrderEngine's
//    filtering and re-propose paths can be exercised deterministically.
//  * FaultyLog injects faults at scripted points: everything is keyed to
//    deterministic counters (the n-th append through this server's log, an
//    absolute log position on replay) rather than probabilities, so a
//    simulation schedule derived from a seed reproduces the same injections
//    on every run. This is the log-side actuator of the src/sim harness.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "src/common/blocking_queue.h"
#include "src/common/random.h"
#include "src/common/scheduler.h"
#include "src/common/trace.h"
#include "src/sharedlog/shared_log.h"

namespace delos {

class DelayedLog : public ISharedLog {
 public:
  struct Delays {
    int64_t append_micros = 0;
    int64_t tail_check_micros = 0;
    int64_t jitter_micros = 0;
  };

  DelayedLog(std::shared_ptr<ISharedLog> inner, Delays delays, uint64_t seed = 7);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  void set_delays(Delays delays);

 private:
  int64_t JitteredDelay(int64_t base);
  template <typename T>
  Future<T> DelayFuture(Future<T> inner_future, int64_t delay_micros);

  std::shared_ptr<ISharedLog> inner_;
  std::mutex mu_;
  Delays delays_;
  Rng rng_;
  TimerScheduler scheduler_;
};

// Models a consensus substrate with a serial service bottleneck: every
// append occupies the "SSD/replication pipeline" for service_micros before
// committing (the paper notes write-heavy clusters bottleneck on SSD
// bandwidth for the consensus protocol's synchronous writes, §5.1). This is
// the cost the BatchingEngine amortizes: one batch = one service slot.
// CheckTail costs a round trip of tail_check_micros.
class ThrottledLog : public ISharedLog {
 public:
  struct Costs {
    int64_t append_service_micros = 100;  // serialized per-append cost
    int64_t append_latency_micros = 0;    // additional non-serialized delay
    int64_t tail_check_micros = 0;
  };

  ThrottledLog(std::shared_ptr<ISharedLog> inner, Costs costs);
  ~ThrottledLog() override;

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

 private:
  struct PendingAppend {
    std::string payload;
    std::shared_ptr<Promise<LogPos>> promise;
  };
  void ServiceLoop();

  std::shared_ptr<ISharedLog> inner_;
  Costs costs_;
  BlockingQueue<PendingAppend> queue_;
  TimerScheduler scheduler_;
  std::thread service_thread_;
};

class ReorderingLog : public ISharedLog {
 public:
  // With probability `swap_probability`, an append is held back and issued
  // after the following append (or after `hold_timeout_micros` if no append
  // follows).
  ReorderingLog(std::shared_ptr<ISharedLog> inner, double swap_probability,
                int64_t hold_timeout_micros = 2000, uint64_t seed = 11);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  uint64_t swaps_performed() const;

 private:
  struct Held {
    std::string payload;
    std::shared_ptr<Promise<LogPos>> promise;
    uint64_t ticket;
  };

  void FlushHeldLocked();

  std::shared_ptr<ISharedLog> inner_;
  double swap_probability_;
  int64_t hold_timeout_micros_;
  mutable std::mutex mu_;
  Rng rng_;
  std::optional<Held> held_;
  uint64_t next_ticket_ = 1;
  uint64_t swaps_ = 0;
  TimerScheduler scheduler_;
};

// Deterministic fault injection for the simulation harness. Every fault is
// keyed to a counter, never to a coin flip:
//
//  * Append faults trigger on the 1-based cumulative append index. The
//    counter can be shared across FaultyLog incarnations (a restarted server
//    gets a fresh decorator over the same underlying log), so an index fires
//    at most once per run regardless of crashes in between.
//      - timeout: the entry commits, but the caller's future fails with
//        LogUnavailableError — the classic ambiguous append timeout. Callers
//        must retry idempotently.
//      - dropped: the entry never reaches the log and the future fails
//        (models a partitioned node whose appends cannot reach a quorum).
//      - duplicated: the payload is appended twice; the future completes
//        with the first position.
//      - reordered: the entry is held back and issued after the following
//        append (released unswapped after a timeout if none follows).
//  * crash_at_pos wedges replay: ReadRange refuses to serve any position
//    >= the threshold (partial ranges below it are served), throws
//    LogUnavailableError, and latches crashed(). The engine's apply loop
//    treats that as a transient outage and retries forever; the simulation
//    driver observes crashed() and performs the kill + restart. Because the
//    trigger is an absolute log position, where a run crashes does not
//    depend on thread timing.
class FaultyLog : public ISharedLog {
 public:
  struct Faults {
    std::set<uint64_t> timeout_appends;
    std::set<uint64_t> dropped_appends;
    std::set<uint64_t> duplicated_appends;
    std::set<uint64_t> reordered_appends;
    LogPos crash_at_pos = 0;  // 0 = disabled
  };

  // `append_counter` may be shared across incarnations; when null a private
  // counter starting at zero is used.
  FaultyLog(std::shared_ptr<ISharedLog> inner, Faults faults,
            std::shared_ptr<std::atomic<uint64_t>> append_counter = nullptr,
            int64_t reorder_hold_timeout_micros = 2000);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  uint64_t appends_seen() const { return append_counter_->load(std::memory_order_acquire); }
  uint64_t faults_fired() const { return faults_fired_.load(std::memory_order_relaxed); }

  // When set, every injected fault lands in the recorder as a kFault event
  // (kCrash for the replay wedge), so a post-mortem dump shows which
  // injections this server actually experienced.
  void set_flight_recorder(FlightRecorder* recorder) {
    recorder_.store(recorder, std::memory_order_release);
  }

 private:
  struct Held {
    std::string payload;
    std::shared_ptr<Promise<LogPos>> promise;
    uint64_t ticket;
  };

  Future<LogPos> AppendInner(std::string payload);

  void RecordFault(FlightEventKind kind, std::string detail, uint64_t index);

  std::shared_ptr<ISharedLog> inner_;
  Faults faults_;
  std::shared_ptr<std::atomic<uint64_t>> append_counter_;
  int64_t reorder_hold_timeout_micros_;
  std::atomic<FlightRecorder*> recorder_{nullptr};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> faults_fired_{0};
  mutable std::mutex mu_;
  std::optional<Held> held_;
  uint64_t next_ticket_ = 1;
  TimerScheduler scheduler_;
};

}  // namespace delos
