// Shared-log decorators for tests and benches.
//
//  * DelayedLog adds configurable latency to Append / CheckTail, modeling a
//    consensus round trip without running the full quorum simulation. The
//    Figure 9/10 benches use it to shape the log's latency profile cheaply.
//  * ReorderingLog occasionally swaps the order of adjacent appends. The
//    paper notes disorder "can occur due to leader changes within the log
//    implementation, or due to code changes in the Delos stack" (§4.3); this
//    wrapper manufactures those rare events so the SessionOrderEngine's
//    filtering and re-propose paths can be exercised deterministically.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "src/common/blocking_queue.h"
#include "src/common/random.h"
#include "src/common/scheduler.h"
#include "src/sharedlog/shared_log.h"

namespace delos {

class DelayedLog : public ISharedLog {
 public:
  struct Delays {
    int64_t append_micros = 0;
    int64_t tail_check_micros = 0;
    int64_t jitter_micros = 0;
  };

  DelayedLog(std::shared_ptr<ISharedLog> inner, Delays delays, uint64_t seed = 7);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  void set_delays(Delays delays);

 private:
  int64_t JitteredDelay(int64_t base);
  template <typename T>
  Future<T> DelayFuture(Future<T> inner_future, int64_t delay_micros);

  std::shared_ptr<ISharedLog> inner_;
  std::mutex mu_;
  Delays delays_;
  Rng rng_;
  TimerScheduler scheduler_;
};

// Models a consensus substrate with a serial service bottleneck: every
// append occupies the "SSD/replication pipeline" for service_micros before
// committing (the paper notes write-heavy clusters bottleneck on SSD
// bandwidth for the consensus protocol's synchronous writes, §5.1). This is
// the cost the BatchingEngine amortizes: one batch = one service slot.
// CheckTail costs a round trip of tail_check_micros.
class ThrottledLog : public ISharedLog {
 public:
  struct Costs {
    int64_t append_service_micros = 100;  // serialized per-append cost
    int64_t append_latency_micros = 0;    // additional non-serialized delay
    int64_t tail_check_micros = 0;
  };

  ThrottledLog(std::shared_ptr<ISharedLog> inner, Costs costs);
  ~ThrottledLog() override;

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

 private:
  struct PendingAppend {
    std::string payload;
    std::shared_ptr<Promise<LogPos>> promise;
  };
  void ServiceLoop();

  std::shared_ptr<ISharedLog> inner_;
  Costs costs_;
  BlockingQueue<PendingAppend> queue_;
  TimerScheduler scheduler_;
  std::thread service_thread_;
};

class ReorderingLog : public ISharedLog {
 public:
  // With probability `swap_probability`, an append is held back and issued
  // after the following append (or after `hold_timeout_micros` if no append
  // follows).
  ReorderingLog(std::shared_ptr<ISharedLog> inner, double swap_probability,
                int64_t hold_timeout_micros = 2000, uint64_t seed = 11);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  uint64_t swaps_performed() const;

 private:
  struct Held {
    std::string payload;
    std::shared_ptr<Promise<LogPos>> promise;
    uint64_t ticket;
  };

  void FlushHeldLocked();

  std::shared_ptr<ISharedLog> inner_;
  double swap_probability_;
  int64_t hold_timeout_micros_;
  mutable std::mutex mu_;
  Rng rng_;
  std::optional<Held> held_;
  uint64_t next_ticket_ = 1;
  uint64_t swaps_ = 0;
  TimerScheduler scheduler_;
};

}  // namespace delos
