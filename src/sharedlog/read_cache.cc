#include "src/sharedlog/read_cache.h"

#include <utility>

#include "src/common/errors.h"

namespace delos {

ReadCachingLog::State::State(const ReadCacheOptions& options)
    : capacity(options.capacity_records),
      write_through(options.write_through),
      recorder(options.recorder) {
  if (options.metrics != nullptr) {
    hit_counter = options.metrics->GetCounter("read.cache.hits");
    miss_counter = options.metrics->GetCounter("read.cache.misses");
    eviction_counter = options.metrics->GetCounter("read.cache.evictions");
    wait_counter = options.metrics->GetCounter("read.cache.coalesced_waits");
    entries_gauge = options.metrics->GetGauge("read.cache.entries");
  }
}

void ReadCachingLog::State::InsertLocked(LogPos pos, std::string payload) {
  if (capacity == 0 || pos <= trim_prefix) return;
  cache[pos] = std::move(payload);
  while (cache.size() > capacity) {
    cache.erase(cache.begin());
    evictions.fetch_add(1, std::memory_order_relaxed);
    if (eviction_counter != nullptr) eviction_counter->Increment();
  }
}

void ReadCachingLog::State::RemoveFlightLocked(LogPos lo, LogPos hi) {
  for (auto it = flights.begin(); it != flights.end(); ++it) {
    if (it->lo == lo && it->hi == hi) {
      flights.erase(it);
      return;
    }
  }
}

void ReadCachingLog::State::PublishSizeLocked() {
  if (entries_gauge != nullptr) {
    entries_gauge->Set(static_cast<int64_t>(cache.size()));
  }
}

ReadCachingLog::ReadCachingLog(std::shared_ptr<ISharedLog> inner,
                               ReadCacheOptions options)
    : inner_(std::move(inner)), state_(std::make_shared<State>(options)) {}

Future<LogPos> ReadCachingLog::Append(std::string payload) {
  if (!state_->write_through) {
    return inner_->Append(std::move(payload));
  }
  // Write-through: remember the payload and insert it once the backend
  // assigns a position. Safe against duplicated/reordered appends — every
  // copy of an append commits the same bytes at whatever position it lands.
  auto state = state_;
  auto copy = std::make_shared<std::string>(payload);
  auto promise = std::make_shared<Promise<LogPos>>();
  inner_->Append(std::move(payload))
      .Then([state, copy, promise](Result<LogPos> result) {
        if (result.ok()) {
          {
            std::lock_guard<std::mutex> lock(state->mu);
            state->InsertLocked(result.value(), std::move(*copy));
            state->PublishSizeLocked();
          }
          promise->SetValue(result.value());
        } else {
          promise->SetException(result.error());
        }
      });
  return promise->GetFuture();
}

Future<LogPos> ReadCachingLog::CheckTail() { return inner_->CheckTail(); }

std::vector<LogRecord> ReadCachingLog::ReadRange(LogPos lo, LogPos hi) {
  State& s = *state_;
  std::vector<LogRecord> out;
  if (lo > hi) return out;

  std::unique_lock<std::mutex> lock(s.mu);
  if (lo <= s.trim_prefix) {
    throw TrimmedError("read at or below trim prefix " +
                       std::to_string(s.trim_prefix));
  }
  LogPos next = lo;
  while (true) {
    // Serve the contiguous cached prefix starting at `next`.
    while (next <= hi) {
      auto it = s.cache.find(next);
      if (it == s.cache.end()) break;
      out.push_back(LogRecord{next, it->second});
      s.hits.fetch_add(1, std::memory_order_relaxed);
      if (s.hit_counter != nullptr) s.hit_counter->Increment();
      ++next;
    }
    if (next > hi) return out;  // fully served from cache

    // [next, hi] is missing. If another reader is already fetching a range
    // that covers `next`, wait for it and re-scan (single-flight).
    bool covered = false;
    for (const Flight& f : s.flights) {
      if (f.lo <= next && next <= f.hi) {
        covered = true;
        break;
      }
    }
    if (covered) {
      s.waits.fetch_add(1, std::memory_order_relaxed);
      if (s.wait_counter != nullptr) s.wait_counter->Increment();
      s.cv.wait(lock);
      // Trim may have advanced while we slept; the backend would now refuse
      // the whole range, so the cache must too.
      if (next <= s.trim_prefix) {
        throw TrimmedError("read at or below trim prefix " +
                           std::to_string(s.trim_prefix));
      }
      continue;
    }

    // Become the fetch owner for [next, hi].
    s.flights.push_back(Flight{next, hi});
    lock.unlock();
    std::vector<LogRecord> fetched;
    try {
      s.fetches.fetch_add(1, std::memory_order_relaxed);
      fetched = inner_->ReadRange(next, hi);
    } catch (...) {
      lock.lock();
      s.RemoveFlightLocked(next, hi);
      // Learn the backend's trim prefix so later readers fail without a
      // backend round-trip.
      const LogPos inner_trim = inner_->trim_prefix();
      if (inner_trim > s.trim_prefix) s.trim_prefix = inner_trim;
      s.cv.notify_all();
      throw;
    }
    lock.lock();
    s.RemoveFlightLocked(next, hi);
    for (const LogRecord& record : fetched) {
      s.InsertLocked(record.pos, record.payload);
    }
    s.PublishSizeLocked();
    s.cv.notify_all();
    s.misses.fetch_add(fetched.size(), std::memory_order_relaxed);
    if (s.miss_counter != nullptr && !fetched.empty()) {
      s.miss_counter->Increment(fetched.size());
    }
    for (LogRecord& record : fetched) {
      out.push_back(std::move(record));
    }
    // Positions the backend omitted (above the committed tail) stay
    // uncached; per the ISharedLog contract they are silently dropped.
    return out;
  }
}

void ReadCachingLog::Trim(LogPos prefix) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (prefix > state_->trim_prefix) state_->trim_prefix = prefix;
    state_->cache.erase(state_->cache.begin(),
                        state_->cache.upper_bound(prefix));
    state_->PublishSizeLocked();
  }
  inner_->Trim(prefix);
}

LogPos ReadCachingLog::trim_prefix() const {
  const LogPos inner_trim = inner_->trim_prefix();
  std::lock_guard<std::mutex> lock(state_->mu);
  if (inner_trim > state_->trim_prefix) state_->trim_prefix = inner_trim;
  return state_->trim_prefix;
}

void ReadCachingLog::Seal() {
  // Conservative: committed entries would stay valid across a seal, but seal
  // precedes reconfiguration and is rare — drop everything.
  size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    dropped = state_->cache.size();
  }
  InvalidateAll();
  if (state_->recorder != nullptr) {
    state_->recorder->Record(FlightEventKind::kSeal, "loglet sealed; cache dropped", 0,
                             static_cast<uint64_t>(dropped));
  }
  inner_->Seal();
}

void ReadCachingLog::InvalidateAll() {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->cache.clear();
  state_->PublishSizeLocked();
}

uint64_t ReadCachingLog::hits() const {
  return state_->hits.load(std::memory_order_relaxed);
}
uint64_t ReadCachingLog::misses() const {
  return state_->misses.load(std::memory_order_relaxed);
}
uint64_t ReadCachingLog::backend_fetches() const {
  return state_->fetches.load(std::memory_order_relaxed);
}
uint64_t ReadCachingLog::evictions() const {
  return state_->evictions.load(std::memory_order_relaxed);
}
uint64_t ReadCachingLog::single_flight_waits() const {
  return state_->waits.load(std::memory_order_relaxed);
}
size_t ReadCachingLog::entries() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->cache.size();
}

}  // namespace delos
