#include "src/sharedlog/virtual_log.h"

#include <algorithm>

#include "src/common/errors.h"
#include "src/common/logging.h"

namespace delos {

MetaStore::MetaStore(std::vector<LogletSegment> initial_chain) : chain_(std::move(initial_chain)) {
  if (chain_.empty()) {
    LOG_FATAL << "MetaStore requires a non-empty initial chain";
  }
}

uint64_t MetaStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::vector<LogletSegment> MetaStore::GetChain() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chain_;
}

bool MetaStore::CasChain(uint64_t expected_epoch, std::vector<LogletSegment> new_chain) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ != expected_epoch) {
    return false;
  }
  chain_ = std::move(new_chain);
  epoch_ += 1;
  return true;
}

VirtualLog::VirtualLog(std::shared_ptr<MetaStore> meta, LogletFactory default_factory)
    : meta_(std::move(meta)), default_factory_(std::move(default_factory)) {}

Future<LogPos> VirtualLog::Append(std::string payload) {
  auto promise = std::make_shared<Promise<LogPos>>();
  Future<LogPos> future = promise->GetFuture();
  TryAppend(std::move(payload), std::move(promise), /*attempts=*/4);
  return future;
}

void VirtualLog::TryAppend(std::string payload, std::shared_ptr<Promise<LogPos>> promise,
                           int attempts) {
  const uint64_t epoch = meta_->epoch();
  auto chain = meta_->GetChain();
  std::shared_ptr<ISharedLog> active = chain.back().loglet;
  active->Append(payload).Then([this, payload, promise, attempts,
                                epoch](Result<LogPos> result) mutable {
    if (result.ok()) {
      promise->SetValue(std::move(result).value());
      return;
    }
    try {
      std::rethrow_exception(result.error());
    } catch (const SealedError&) {
      if (attempts <= 0) {
        promise->SetException(result.error());
        return;
      }
      // If nobody installed a successor yet, drive reconfiguration ourselves
      // (Delos clients repair the chain they discover broken).
      if (meta_->epoch() == epoch && default_factory_ != nullptr) {
        try {
          Reconfigure(default_factory_);
        } catch (...) {
          promise->SetException(std::current_exception());
          return;
        }
      }
      TryAppend(std::move(payload), std::move(promise), attempts - 1);
    } catch (...) {
      promise->SetException(result.error());
    }
  });
}

Future<LogPos> VirtualLog::CheckTail() {
  auto chain = meta_->GetChain();
  return chain.back().loglet->CheckTail();
}

std::vector<LogRecord> VirtualLog::ReadRange(LogPos lo, LogPos hi) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (lo <= trim_prefix_) {
      throw TrimmedError("read below trim prefix");
    }
  }
  auto chain = meta_->GetChain();
  std::vector<LogRecord> out;
  for (size_t i = 0; i < chain.size(); ++i) {
    const LogPos seg_lo = chain[i].start_pos;
    const LogPos seg_hi = (i + 1 < chain.size()) ? chain[i + 1].start_pos - 1 : hi;
    const LogPos sub_lo = std::max(lo, seg_lo);
    const LogPos sub_hi = std::min(hi, seg_hi);
    if (sub_lo > sub_hi) {
      continue;
    }
    auto records = chain[i].loglet->ReadRange(sub_lo, sub_hi);
    out.insert(out.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  // Segment-order merge: chain segments are disjoint and ordered by
  // start_pos, and each loglet returns its sub-range sorted, so the
  // concatenation is already globally sorted — no O(n log n) sort needed.
  return out;
}

void VirtualLog::Trim(LogPos prefix) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    trim_prefix_ = std::max(trim_prefix_, prefix);
  }
  auto chain = meta_->GetChain();
  for (size_t i = 0; i < chain.size(); ++i) {
    if (chain[i].start_pos > prefix) {
      break;
    }
    const LogPos seg_hi =
        (i + 1 < chain.size()) ? chain[i + 1].start_pos - 1 : prefix;
    chain[i].loglet->Trim(std::min(prefix, seg_hi));
  }
}

LogPos VirtualLog::trim_prefix() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trim_prefix_;
}

void VirtualLog::Seal() { meta_->GetChain().back().loglet->Seal(); }

void VirtualLog::Reconfigure(const LogletFactory& factory) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const uint64_t epoch = meta_->epoch();
    auto chain = meta_->GetChain();
    std::shared_ptr<ISharedLog> active = chain.back().loglet;
    active->Seal();
    const LogPos sealed_tail = active->CheckTail().Get();
    std::shared_ptr<ISharedLog> successor = factory(sealed_tail, epoch + 1);
    auto new_chain = chain;
    new_chain.push_back(LogletSegment{sealed_tail, std::move(successor)});
    if (meta_->CasChain(epoch, std::move(new_chain))) {
      return;
    }
    if (meta_->epoch() > epoch) {
      return;  // A concurrent reconfiguration won; the chain is repaired.
    }
  }
  throw LogUnavailableError("reconfiguration failed after retries");
}

}  // namespace delos
