#include "src/sharedlog/inmemory_log.h"

#include "src/common/errors.h"

namespace delos {

InMemoryLog::InMemoryLog(LogPos start_pos) : start_pos_(start_pos) {}

Future<LogPos> InMemoryLog::Append(std::string payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) {
    return MakeErrorFuture<LogPos>(std::make_exception_ptr(SealedError("loglet sealed")));
  }
  entries_.push_back(std::move(payload));
  return MakeReadyFuture<LogPos>(start_pos_ + entries_.size() - 1);
}

Future<LogPos> InMemoryLog::CheckTail() {
  std::lock_guard<std::mutex> lock(mu_);
  return MakeReadyFuture<LogPos>(start_pos_ + entries_.size());
}

std::vector<LogRecord> InMemoryLog::ReadRange(LogPos lo, LogPos hi) {
  std::lock_guard<std::mutex> lock(mu_);
  if (lo <= trim_prefix_) {
    throw TrimmedError("read below trim prefix");
  }
  std::vector<LogRecord> out;
  for (LogPos pos = std::max(lo, start_pos_); pos <= hi; ++pos) {
    const size_t index = pos - start_pos_;
    if (index >= entries_.size()) {
      break;
    }
    out.push_back(LogRecord{pos, entries_[index]});
  }
  return out;
}

void InMemoryLog::Trim(LogPos prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  if (prefix > trim_prefix_) {
    trim_prefix_ = prefix;
    // Entries stay allocated but logically trimmed; a production loglet
    // would reclaim storage here. We clear payloads to model reclamation.
    const LogPos last = std::min<LogPos>(prefix, start_pos_ + entries_.size() - 1);
    for (LogPos pos = start_pos_; pos <= last && pos >= start_pos_; ++pos) {
      entries_[pos - start_pos_].clear();
      entries_[pos - start_pos_].shrink_to_fit();
    }
  }
}

LogPos InMemoryLog::trim_prefix() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trim_prefix_;
}

void InMemoryLog::Seal() {
  std::lock_guard<std::mutex> lock(mu_);
  sealed_ = true;
}

bool InMemoryLog::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

}  // namespace delos
