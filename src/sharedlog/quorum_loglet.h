// Quorum-replicated loglet: the reproduction's fault-tolerant consensus
// substrate (the role LogDevice / native Loglets play under the Delos
// VirtualLog).
//
// Design (LogDevice-flavored):
//  * A sequencer assigns positions and fans each entry out to N acceptors.
//  * An append is committed once a majority of acceptors ack AND all lower
//    positions are committed; the sequencer replies to appends in commit
//    order, so the "tail" (first unwritten position) is always contiguous
//    and every completed append is below it — the linearizability anchor
//    for BaseEngine::Sync.
//  * Clients read ranges from acceptors (preferring a colocated one) and
//    merge until the range is covered, bounded above by the committed tail.
//  * Seal stops the sequencer at a fixed tail; the VirtualLog chains a new
//    loglet from there.
//
// All traffic crosses the SimNetwork, so appends and tail checks cost real
// (simulated) round trips — which is exactly what the LeaseEngine experiment
// measures.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/net/sim_network.h"
#include "src/sharedlog/shared_log.h"

namespace delos {

struct QuorumLogletConfig {
  std::string loglet_id = "loglet0";
  int num_acceptors = 3;
  LogPos start_pos = 1;
  // Max attempts for a client read sweep across acceptors.
  int read_attempts = 8;
};

// Server side: owns sequencer + acceptor state and registers their handlers
// on the network. Node ids are "<loglet_id>/seq" and "<loglet_id>/acc<i>".
class QuorumEnsemble {
 public:
  QuorumEnsemble(SimNetwork* network, QuorumLogletConfig config);

  const QuorumLogletConfig& config() const { return config_; }
  NodeId sequencer_node() const;
  NodeId acceptor_node(int index) const;

  // Fault injection: a down acceptor drops all traffic.
  void SetAcceptorUp(int index, bool up);

  // Number of entries currently stored on an acceptor (tests).
  size_t AcceptorEntryCount(int index) const;

 private:
  struct PendingAppend;
  struct SequencerState;
  struct AcceptorState;

  void RegisterSequencer();
  void RegisterAcceptor(int index);
  // Sends (or resends) the store for a pending position to one acceptor.
  // Retransmits on loss up to `attempts_left` times; gives up after that
  // (the client's append times out and it retries end-to-end).
  void SendStore(LogPos pos, int acceptor_index, int attempts_left);
  void HandleStoreAck(LogPos pos, int acceptor_index, bool ok, int attempts_left);
  void AdvanceCommitFrontierLocked(std::vector<std::pair<SimNetwork::ReplyFn, std::string>>* out);

  SimNetwork* network_;
  QuorumLogletConfig config_;
  std::shared_ptr<SequencerState> sequencer_;
  std::vector<std::shared_ptr<AcceptorState>> acceptors_;
};

// Client side: an ISharedLog facade used by one Delos server. `self` is the
// client's network node id (registered implicitly; clients need no handler).
class QuorumLogletClient : public ISharedLog {
 public:
  QuorumLogletClient(SimNetwork* network, NodeId self, QuorumLogletConfig config,
                     int preferred_acceptor = 0);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  // Tail memoization. The sequencer replies to appends in commit order, so
  // the commit frontier is contiguous and monotone: once any reply proves
  // the tail reached T, every position below T is committed forever. The
  // client max-tracks T from CheckTail replies and successful appends, and
  // ReadRange skips the per-batch q.tail RPC whenever the memoized tail
  // already covers [lo, hi].
  LogPos observed_tail() const;
  // ReadRange calls that skipped the q.tail RPC via the memoized tail.
  uint64_t tail_checks_skipped() const;

 private:
  NodeId SequencerNode() const;
  NodeId AcceptorNode(int index) const;

  // Shared with async append/tail continuations, which may outlive `this`.
  struct TailMemo {
    std::atomic<LogPos> tail{0};
    std::atomic<uint64_t> skipped{0};
    void Observe(LogPos t) {
      LogPos cur = tail.load(std::memory_order_relaxed);
      while (t > cur &&
             !tail.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
      }
    }
  };

  SimNetwork* network_;
  NodeId self_;
  QuorumLogletConfig config_;
  int preferred_acceptor_;
  std::shared_ptr<TailMemo> tail_memo_ = std::make_shared<TailMemo>();
  mutable std::mutex mu_;
  LogPos trim_prefix_ = 0;
};

}  // namespace delos
