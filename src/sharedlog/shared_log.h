// The shared log abstraction that log-structured protocols run over.
//
// In Delos this is the VirtualLog of the Virtual Consensus paper [OSDI'20]:
// a virtualized, fault-tolerant totally ordered log. The reproduction keeps
// the same API shape:
//  * Append assigns a position and returns once the entry is durable
//    (majority-replicated in the quorum implementation).
//  * CheckTail returns the first unwritten position; every append that
//    completed before the check is below the returned tail (this is what
//    makes BaseEngine::Sync linearizable).
//  * ReadRange streams back committed entries; positions at or below the
//    trim prefix are gone (TrimmedError).
//  * Seal stops appends at a fixed tail — the VirtualLog uses this to chain
//    loglets during reconfiguration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/future.h"

namespace delos {

// Log positions are 1-based; 0 means "no position".
using LogPos = uint64_t;
inline constexpr LogPos kInvalidLogPos = 0;

struct LogRecord {
  LogPos pos = kInvalidLogPos;
  std::string payload;
};

class ISharedLog {
 public:
  virtual ~ISharedLog() = default;

  // Appends a payload; the future yields the assigned position once the
  // entry is committed (durable). Fails with SealedError on a sealed log and
  // LogUnavailableError when no quorum is reachable.
  virtual Future<LogPos> Append(std::string payload) = 0;

  // Returns the first unwritten position. Linearizable: reflects every
  // append completed before this call started.
  virtual Future<LogPos> CheckTail() = 0;

  // Reads committed entries in [lo, hi] (inclusive), blocking as needed.
  // Entries above the committed tail are silently omitted; positions at or
  // below the trim prefix throw TrimmedError.
  virtual std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) = 0;

  // Garbage-collects positions <= prefix.
  virtual void Trim(LogPos prefix) = 0;
  virtual LogPos trim_prefix() const = 0;

  // Permanently disables appends. CheckTail and reads keep working.
  virtual void Seal() = 0;
};

}  // namespace delos
