#include "src/sharedlog/chaos_log.h"

namespace delos {

// --- DelayedLog ---

DelayedLog::DelayedLog(std::shared_ptr<ISharedLog> inner, Delays delays, uint64_t seed)
    : inner_(std::move(inner)), delays_(delays), rng_(seed) {}

int64_t DelayedLog::JitteredDelay(int64_t base) {
  std::lock_guard<std::mutex> lock(mu_);
  if (delays_.jitter_micros > 0) {
    base += rng_.Uniform(0, delays_.jitter_micros);
  }
  return base;
}

template <typename T>
Future<T> DelayedLog::DelayFuture(Future<T> inner_future, int64_t delay_micros) {
  if (delay_micros <= 0) {
    return inner_future;
  }
  auto promise = std::make_shared<Promise<T>>();
  Future<T> out = promise->GetFuture();
  inner_future.Then([this, promise, delay_micros](Result<T> result) {
    scheduler_.Schedule(delay_micros, [promise, result = std::move(result)]() mutable {
      if (result.ok()) {
        promise->SetValue(std::move(result).value());
      } else {
        promise->SetException(result.error());
      }
    });
  });
  return out;
}

Future<LogPos> DelayedLog::Append(std::string payload) {
  return DelayFuture(inner_->Append(std::move(payload)), JitteredDelay(delays_.append_micros));
}

Future<LogPos> DelayedLog::CheckTail() {
  return DelayFuture(inner_->CheckTail(), JitteredDelay(delays_.tail_check_micros));
}

std::vector<LogRecord> DelayedLog::ReadRange(LogPos lo, LogPos hi) {
  return inner_->ReadRange(lo, hi);
}

void DelayedLog::Trim(LogPos prefix) { inner_->Trim(prefix); }
LogPos DelayedLog::trim_prefix() const { return inner_->trim_prefix(); }
void DelayedLog::Seal() { inner_->Seal(); }

void DelayedLog::set_delays(Delays delays) {
  std::lock_guard<std::mutex> lock(mu_);
  delays_ = delays;
}

// --- ThrottledLog ---

ThrottledLog::ThrottledLog(std::shared_ptr<ISharedLog> inner, Costs costs)
    : inner_(std::move(inner)), costs_(costs) {
  service_thread_ = std::thread([this] { ServiceLoop(); });
}

ThrottledLog::~ThrottledLog() {
  queue_.Close();
  if (service_thread_.joinable()) {
    service_thread_.join();
  }
}

void ThrottledLog::ServiceLoop() {
  while (true) {
    auto pending = queue_.Pop();
    if (!pending.has_value()) {
      return;
    }
    // The serialized service slot (fsync / replication pipeline occupancy).
    RealClock::Instance()->SleepMicros(costs_.append_service_micros);
    Future<LogPos> inner_future = inner_->Append(std::move(pending->payload));
    auto promise = pending->promise;
    const int64_t extra = costs_.append_latency_micros;
    inner_future.Then([this, promise, extra](Result<LogPos> result) mutable {
      if (extra <= 0) {
        if (result.ok()) {
          promise->SetValue(std::move(result).value());
        } else {
          promise->SetException(result.error());
        }
        return;
      }
      scheduler_.Schedule(extra, [promise, result = std::move(result)]() mutable {
        if (result.ok()) {
          promise->SetValue(std::move(result).value());
        } else {
          promise->SetException(result.error());
        }
      });
    });
  }
}

Future<LogPos> ThrottledLog::Append(std::string payload) {
  auto promise = std::make_shared<Promise<LogPos>>();
  Future<LogPos> future = promise->GetFuture();
  if (!queue_.Push(PendingAppend{std::move(payload), promise})) {
    promise->SetException(std::make_exception_ptr(LogUnavailableError("log shut down")));
  }
  return future;
}

Future<LogPos> ThrottledLog::CheckTail() {
  if (costs_.tail_check_micros <= 0) {
    return inner_->CheckTail();
  }
  auto promise = std::make_shared<Promise<LogPos>>();
  Future<LogPos> future = promise->GetFuture();
  inner_->CheckTail().Then([this, promise](Result<LogPos> result) {
    scheduler_.Schedule(costs_.tail_check_micros, [promise, result = std::move(result)]() mutable {
      if (result.ok()) {
        promise->SetValue(std::move(result).value());
      } else {
        promise->SetException(result.error());
      }
    });
  });
  return future;
}

std::vector<LogRecord> ThrottledLog::ReadRange(LogPos lo, LogPos hi) {
  return inner_->ReadRange(lo, hi);
}
void ThrottledLog::Trim(LogPos prefix) { inner_->Trim(prefix); }
LogPos ThrottledLog::trim_prefix() const { return inner_->trim_prefix(); }
void ThrottledLog::Seal() { inner_->Seal(); }

// --- ReorderingLog ---

ReorderingLog::ReorderingLog(std::shared_ptr<ISharedLog> inner, double swap_probability,
                             int64_t hold_timeout_micros, uint64_t seed)
    : inner_(std::move(inner)),
      swap_probability_(swap_probability),
      hold_timeout_micros_(hold_timeout_micros),
      rng_(seed) {}

Future<LogPos> ReorderingLog::Append(std::string payload) {
  std::unique_lock<std::mutex> lock(mu_);
  if (held_.has_value()) {
    // Issue the new entry first, then the held one: an adjacent swap.
    Held held = std::move(*held_);
    held_.reset();
    swaps_ += 1;
    lock.unlock();
    Future<LogPos> first = inner_->Append(std::move(payload));
    inner_->Append(std::move(held.payload))
        .Then([promise = held.promise](Result<LogPos> result) {
          if (result.ok()) {
            promise->SetValue(std::move(result).value());
          } else {
            promise->SetException(result.error());
          }
        });
    return first;
  }
  if (rng_.Bernoulli(swap_probability_)) {
    auto promise = std::make_shared<Promise<LogPos>>();
    const uint64_t ticket = next_ticket_++;
    held_ = Held{std::move(payload), promise, ticket};
    lock.unlock();
    // Safety valve: if no append follows, release the held entry unswapped.
    scheduler_.Schedule(hold_timeout_micros_, [this, ticket] {
      std::unique_lock<std::mutex> inner_lock(mu_);
      if (held_.has_value() && held_->ticket == ticket) {
        Held held = std::move(*held_);
        held_.reset();
        inner_lock.unlock();
        inner_->Append(std::move(held.payload))
            .Then([promise = held.promise](Result<LogPos> result) {
              if (result.ok()) {
                promise->SetValue(std::move(result).value());
              } else {
                promise->SetException(result.error());
              }
            });
      }
    });
    return promise->GetFuture();
  }
  lock.unlock();
  return inner_->Append(std::move(payload));
}

Future<LogPos> ReorderingLog::CheckTail() { return inner_->CheckTail(); }

std::vector<LogRecord> ReorderingLog::ReadRange(LogPos lo, LogPos hi) {
  return inner_->ReadRange(lo, hi);
}

void ReorderingLog::Trim(LogPos prefix) { inner_->Trim(prefix); }
LogPos ReorderingLog::trim_prefix() const { return inner_->trim_prefix(); }
void ReorderingLog::Seal() { inner_->Seal(); }

uint64_t ReorderingLog::swaps_performed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return swaps_;
}

// --- FaultyLog ---

namespace {

void CompleteAppend(const std::shared_ptr<Promise<LogPos>>& promise, Result<LogPos> result) {
  if (result.ok()) {
    promise->SetValue(std::move(result).value());
  } else {
    promise->SetException(result.error());
  }
}

}  // namespace

FaultyLog::FaultyLog(std::shared_ptr<ISharedLog> inner, Faults faults,
                     std::shared_ptr<std::atomic<uint64_t>> append_counter,
                     int64_t reorder_hold_timeout_micros)
    : inner_(std::move(inner)),
      faults_(std::move(faults)),
      append_counter_(std::move(append_counter)),
      reorder_hold_timeout_micros_(reorder_hold_timeout_micros) {
  if (append_counter_ == nullptr) {
    append_counter_ = std::make_shared<std::atomic<uint64_t>>(0);
  }
}

// Issues an append to the inner log, first flushing a held (reordered) entry
// behind it so the swap actually happens.
Future<LogPos> FaultyLog::AppendInner(std::string payload) {
  std::optional<Held> held;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (held_.has_value()) {
      held = std::move(held_);
      held_.reset();
    }
  }
  Future<LogPos> first = inner_->Append(std::move(payload));
  if (held.has_value()) {
    inner_->Append(std::move(held->payload))
        .Then([promise = held->promise](Result<LogPos> result) {
          CompleteAppend(promise, std::move(result));
        });
  }
  return first;
}

void FaultyLog::RecordFault(FlightEventKind kind, std::string detail, uint64_t index) {
  FlightRecorder* recorder = recorder_.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    recorder->Record(kind, std::move(detail), 0, index);
  }
}

Future<LogPos> FaultyLog::Append(std::string payload) {
  const uint64_t index = append_counter_->fetch_add(1, std::memory_order_acq_rel) + 1;

  if (faults_.dropped_appends.count(index) != 0) {
    faults_fired_.fetch_add(1, std::memory_order_relaxed);
    RecordFault(FlightEventKind::kFault, "injected drop of append " + std::to_string(index),
                index);
    return MakeErrorFuture<LogPos>(std::make_exception_ptr(
        LogUnavailableError("injected partition: append " + std::to_string(index) + " dropped")));
  }

  if (faults_.reordered_appends.count(index) != 0) {
    faults_fired_.fetch_add(1, std::memory_order_relaxed);
    RecordFault(FlightEventKind::kFault, "injected reorder of append " + std::to_string(index),
                index);
    auto promise = std::make_shared<Promise<LogPos>>();
    uint64_t ticket;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A second reorder while one entry is already held would stack; issue
      // the previous one first (it loses its swap partner).
      if (held_.has_value()) {
        Held prior = std::move(*held_);
        held_.reset();
        inner_->Append(std::move(prior.payload))
            .Then([p = prior.promise](Result<LogPos> result) {
              CompleteAppend(p, std::move(result));
            });
      }
      ticket = next_ticket_++;
      held_ = Held{std::move(payload), promise, ticket};
    }
    // Safety valve: release unswapped if no append follows.
    scheduler_.Schedule(reorder_hold_timeout_micros_, [this, ticket] {
      std::unique_lock<std::mutex> lock(mu_);
      if (held_.has_value() && held_->ticket == ticket) {
        Held held = std::move(*held_);
        held_.reset();
        lock.unlock();
        inner_->Append(std::move(held.payload))
            .Then([promise = held.promise](Result<LogPos> result) {
              CompleteAppend(promise, std::move(result));
            });
      }
    });
    return promise->GetFuture();
  }

  if (faults_.duplicated_appends.count(index) != 0) {
    faults_fired_.fetch_add(1, std::memory_order_relaxed);
    RecordFault(FlightEventKind::kFault, "injected duplicate of append " + std::to_string(index),
                index);
    std::string copy = payload;
    Future<LogPos> first = AppendInner(std::move(payload));
    inner_->Append(std::move(copy)).Then([](Result<LogPos>) {});
    return first;
  }

  if (faults_.timeout_appends.count(index) != 0) {
    faults_fired_.fetch_add(1, std::memory_order_relaxed);
    RecordFault(FlightEventKind::kFault, "injected timeout of append " + std::to_string(index),
                index);
    // The entry commits; only the acknowledgment is lost.
    auto promise = std::make_shared<Promise<LogPos>>();
    AppendInner(std::move(payload)).Then([promise, index](Result<LogPos>) {
      promise->SetException(std::make_exception_ptr(LogUnavailableError(
          "injected timeout: append " + std::to_string(index) + " unacknowledged")));
    });
    return promise->GetFuture();
  }

  return AppendInner(std::move(payload));
}

Future<LogPos> FaultyLog::CheckTail() { return inner_->CheckTail(); }

std::vector<LogRecord> FaultyLog::ReadRange(LogPos lo, LogPos hi) {
  const LogPos crash = faults_.crash_at_pos;
  if (crash != 0 && lo >= crash) {
    if (!crashed_.exchange(true, std::memory_order_acq_rel)) {
      RecordFault(FlightEventKind::kCrash,
                  "injected crash: replay wedged at position " + std::to_string(crash), crash);
    }
    throw LogUnavailableError("injected crash: replay refused at position " +
                              std::to_string(crash));
  }
  if (crash != 0 && hi >= crash) {
    hi = crash - 1;  // Serve the partial prefix; the next read wedges.
  }
  return inner_->ReadRange(lo, hi);
}

void FaultyLog::Trim(LogPos prefix) { inner_->Trim(prefix); }
LogPos FaultyLog::trim_prefix() const { return inner_->trim_prefix(); }
void FaultyLog::Seal() { inner_->Seal(); }

}  // namespace delos
