#include "src/sharedlog/quorum_loglet.h"

#include <algorithm>

#include "src/common/errors.h"
#include "src/common/logging.h"
#include "src/common/serde.h"

namespace delos {

namespace {

constexpr uint64_t kStatusOk = 0;
constexpr uint64_t kStatusSealed = 1;

std::string EncodePosReply(uint64_t status, LogPos pos) {
  Serializer ser;
  ser.WriteVarint(status);
  ser.WriteVarint(pos);
  return ser.Release();
}

// Decodes a (status, pos) reply, throwing SealedError on a sealed status.
LogPos DecodePosReply(const std::string& reply, const char* what) {
  Deserializer de(reply);
  const uint64_t status = de.ReadVarint();
  const LogPos pos = de.ReadVarint();
  if (status == kStatusSealed) {
    throw SealedError(std::string(what) + ": loglet sealed");
  }
  return pos;
}

}  // namespace

struct QuorumEnsemble::PendingAppend {
  std::vector<bool> acked;  // per-acceptor, so retransmitted acks count once
  bool committed = false;
  std::string store_bytes;
  SimNetwork::ReplyFn reply;
};

struct QuorumEnsemble::SequencerState {
  std::mutex mu;
  LogPos next_pos;
  LogPos commit_frontier;  // first position not yet committed
  bool sealed = false;
  std::map<LogPos, PendingAppend> pending;
};

struct QuorumEnsemble::AcceptorState {
  mutable std::mutex mu;
  std::map<LogPos, std::string> entries;
  LogPos trim_prefix = 0;
  bool sealed = false;
};

QuorumEnsemble::QuorumEnsemble(SimNetwork* network, QuorumLogletConfig config)
    : network_(network), config_(std::move(config)) {
  sequencer_ = std::make_shared<SequencerState>();
  sequencer_->next_pos = config_.start_pos;
  sequencer_->commit_frontier = config_.start_pos;
  for (int i = 0; i < config_.num_acceptors; ++i) {
    acceptors_.push_back(std::make_shared<AcceptorState>());
  }
  RegisterSequencer();
  for (int i = 0; i < config_.num_acceptors; ++i) {
    RegisterAcceptor(i);
  }
}

NodeId QuorumEnsemble::sequencer_node() const { return config_.loglet_id + "/seq"; }

NodeId QuorumEnsemble::acceptor_node(int index) const {
  return config_.loglet_id + "/acc" + std::to_string(index);
}

void QuorumEnsemble::SetAcceptorUp(int index, bool up) {
  network_->SetNodeUp(acceptor_node(index), up);
}

size_t QuorumEnsemble::AcceptorEntryCount(int index) const {
  std::lock_guard<std::mutex> lock(acceptors_[index]->mu);
  return acceptors_[index]->entries.size();
}

void QuorumEnsemble::RegisterSequencer() {
  auto seq = sequencer_;
  const int majority = config_.num_acceptors / 2 + 1;
  const NodeId seq_node = sequencer_node();
  std::vector<NodeId> acceptor_nodes;
  acceptor_nodes.reserve(config_.num_acceptors);
  for (int i = 0; i < config_.num_acceptors; ++i) {
    acceptor_nodes.push_back(acceptor_node(i));
  }

  network_->RegisterAsyncHandler(
      seq_node, [this, seq, majority, seq_node, acceptor_nodes](
                    const NodeId& from, const std::string& method, const std::string& request,
                    SimNetwork::ReplyFn reply) {
        if (method == "q.tail") {
          std::lock_guard<std::mutex> lock(seq->mu);
          reply(EncodePosReply(seq->sealed ? kStatusSealed : kStatusOk, seq->commit_frontier));
          return;
        }
        if (method == "q.seal") {
          LogPos sealed_tail;
          {
            std::lock_guard<std::mutex> lock(seq->mu);
            seq->sealed = true;
            // Uncommitted appends are abandoned; their clients time out and
            // retry against the successor loglet.
            for (auto it = seq->pending.begin(); it != seq->pending.end();) {
              if (!it->second.committed) {
                it = seq->pending.erase(it);
              } else {
                ++it;
              }
            }
            sealed_tail = seq->commit_frontier;
          }
          for (const NodeId& acc : acceptor_nodes) {
            network_->Call(seq_node, acc, "q.seal", "");
          }
          reply(EncodePosReply(kStatusOk, sealed_tail));
          return;
        }
        if (method == "q.append") {
          LogPos pos;
          {
            std::lock_guard<std::mutex> lock(seq->mu);
            if (seq->sealed) {
              reply(EncodePosReply(kStatusSealed, kInvalidLogPos));
              return;
            }
            pos = seq->next_pos++;
            PendingAppend pending;
            pending.acked.assign(config_.num_acceptors, false);
            Serializer store_req;
            store_req.WriteVarint(pos);
            store_req.WriteString(request);
            pending.store_bytes = store_req.Release();
            pending.reply = std::move(reply);
            seq->pending.emplace(pos, std::move(pending));
          }
          for (int i = 0; i < config_.num_acceptors; ++i) {
            SendStore(pos, i, /*attempts_left=*/64);
          }
          return;
        }
        LOG_WARNING << "sequencer: unknown method " << method;
      });
}

void QuorumEnsemble::SendStore(LogPos pos, int acceptor_index, int attempts_left) {
  if (attempts_left <= 0) {
    return;  // Give up; the client's append times out and retries.
  }
  std::string store_bytes;
  {
    std::lock_guard<std::mutex> lock(sequencer_->mu);
    if (sequencer_->sealed) {
      return;
    }
    auto it = sequencer_->pending.find(pos);
    if (it == sequencer_->pending.end() || it->second.acked[acceptor_index]) {
      return;  // Committed+replied, abandoned at seal, or already acked.
    }
    store_bytes = it->second.store_bytes;
  }
  // The continuation only touches shared sequencer state through a weak
  // reference so retransmissions in flight during teardown become no-ops.
  std::weak_ptr<SequencerState> weak_seq = sequencer_;
  network_->Call(sequencer_node(), acceptor_node(acceptor_index), "q.store",
                 std::move(store_bytes))
      .Then([this, weak_seq, pos, acceptor_index, attempts_left](Result<std::string> result) {
        if (weak_seq.expired()) {
          return;  // The ensemble is gone.
        }
        HandleStoreAck(pos, acceptor_index, result.ok() && result.value() == "O",
                       attempts_left - 1);
      });
}

void QuorumEnsemble::HandleStoreAck(LogPos pos, int acceptor_index, bool ok,
                                    int attempts_left) {
  if (!ok) {
    // Lost request or ack: retransmit until the position commits, the
    // loglet seals, or the attempt budget runs out (the drop-tolerance a
    // real sequencer provides).
    SendStore(pos, acceptor_index, attempts_left);
    return;
  }
  const int majority = config_.num_acceptors / 2 + 1;
  std::vector<std::pair<SimNetwork::ReplyFn, std::string>> replies;
  {
    std::lock_guard<std::mutex> lock(sequencer_->mu);
    auto it = sequencer_->pending.find(pos);
    if (it == sequencer_->pending.end()) {
      return;  // Already replied or abandoned at seal.
    }
    it->second.acked[acceptor_index] = true;
    int acks = 0;
    for (const bool acked : it->second.acked) {
      acks += acked ? 1 : 0;
    }
    if (acks >= majority) {
      it->second.committed = true;
      AdvanceCommitFrontierLocked(&replies);
    }
  }
  for (auto& [reply, bytes] : replies) {
    reply(std::move(bytes));
  }
}

void QuorumEnsemble::AdvanceCommitFrontierLocked(
    std::vector<std::pair<SimNetwork::ReplyFn, std::string>>* out) {
  // Reply to appends strictly in position order so the tail is contiguous
  // and every completed append lies below it.
  while (true) {
    auto it = sequencer_->pending.find(sequencer_->commit_frontier);
    if (it == sequencer_->pending.end() || !it->second.committed) {
      return;
    }
    out->emplace_back(std::move(it->second.reply),
                      EncodePosReply(kStatusOk, sequencer_->commit_frontier));
    sequencer_->pending.erase(it);
    sequencer_->commit_frontier += 1;
  }
}

void QuorumEnsemble::RegisterAcceptor(int index) {
  auto acc = acceptors_[index];
  network_->RegisterHandler(
      acceptor_node(index),
      [acc](const NodeId& from, const std::string& method, const std::string& request) {
        std::lock_guard<std::mutex> lock(acc->mu);
        if (method == "q.store") {
          if (acc->sealed) {
            return std::string("S");
          }
          Deserializer de(request);
          const LogPos pos = de.ReadVarint();
          std::string payload = de.ReadString();
          acc->entries[pos] = std::move(payload);
          return std::string("O");
        }
        if (method == "q.read") {
          Deserializer de(request);
          const LogPos lo = de.ReadVarint();
          const LogPos hi = de.ReadVarint();
          Serializer ser;
          // Lead with this acceptor's trim prefix so readers below it learn
          // they fell off the log (and must restore from backup) instead of
          // retrying forever.
          ser.WriteVarint(acc->trim_prefix);
          std::vector<std::pair<LogPos, const std::string*>> found;
          for (auto it = acc->entries.lower_bound(lo); it != acc->entries.end() && it->first <= hi;
               ++it) {
            if (it->first > acc->trim_prefix) {
              found.emplace_back(it->first, &it->second);
            }
          }
          ser.WriteVarint(found.size());
          for (const auto& [pos, payload] : found) {
            ser.WriteVarint(pos);
            ser.WriteString(*payload);
          }
          return ser.Release();
        }
        if (method == "q.trim") {
          Deserializer de(request);
          const LogPos prefix = de.ReadVarint();
          acc->trim_prefix = std::max(acc->trim_prefix, prefix);
          acc->entries.erase(acc->entries.begin(), acc->entries.upper_bound(prefix));
          return std::string("O");
        }
        if (method == "q.seal") {
          acc->sealed = true;
          return std::string("O");
        }
        return std::string("?");
      });
}

// --- client ---

QuorumLogletClient::QuorumLogletClient(SimNetwork* network, NodeId self, QuorumLogletConfig config,
                                       int preferred_acceptor)
    : network_(network),
      self_(std::move(self)),
      config_(std::move(config)),
      preferred_acceptor_(preferred_acceptor) {}

NodeId QuorumLogletClient::SequencerNode() const { return config_.loglet_id + "/seq"; }

NodeId QuorumLogletClient::AcceptorNode(int index) const {
  return config_.loglet_id + "/acc" + std::to_string(index);
}

Future<LogPos> QuorumLogletClient::Append(std::string payload) {
  Promise<LogPos> promise;
  Future<LogPos> future = promise.GetFuture();
  network_->Call(self_, SequencerNode(), "q.append", std::move(payload))
      .Then([promise = std::make_shared<Promise<LogPos>>(std::move(promise)),
             memo = tail_memo_](Result<std::string> result) {
        if (!result.ok()) {
          promise->SetException(result.error());
          return;
        }
        try {
          const LogPos pos = DecodePosReply(result.value(), "append");
          // A committed append at pos proves the tail reached pos + 1.
          memo->Observe(pos + 1);
          promise->SetValue(pos);
        } catch (...) {
          promise->SetException(std::current_exception());
        }
      });
  return future;
}

Future<LogPos> QuorumLogletClient::CheckTail() {
  Promise<LogPos> promise;
  Future<LogPos> future = promise.GetFuture();
  network_->Call(self_, SequencerNode(), "q.tail", "")
      .Then([promise = std::make_shared<Promise<LogPos>>(std::move(promise)),
             memo = tail_memo_](Result<std::string> result) {
        if (!result.ok()) {
          promise->SetException(result.error());
          return;
        }
        try {
          Deserializer de(result.value());
          de.ReadVarint();  // Tail checks succeed on sealed loglets too.
          const LogPos tail = de.ReadVarint();
          memo->Observe(tail);
          promise->SetValue(tail);
        } catch (...) {
          promise->SetException(std::current_exception());
        }
      });
  return future;
}

std::vector<LogRecord> QuorumLogletClient::ReadRange(LogPos lo, LogPos hi) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (lo <= trim_prefix_) {
      throw TrimmedError("read below trim prefix");
    }
  }
  // Positions below the memoized tail are committed forever; only pay the
  // q.tail round trip when the memo does not already cover [lo, hi].
  LogPos tail = tail_memo_->tail.load(std::memory_order_acquire);
  if (tail >= hi + 1) {
    tail_memo_->skipped.fetch_add(1, std::memory_order_relaxed);
  } else {
    tail = CheckTail().Get();
  }
  if (tail == config_.start_pos || lo >= tail) {
    return {};
  }
  hi = std::min<LogPos>(hi, tail - 1);
  if (lo > hi) {
    return {};
  }

  std::map<LogPos, std::string> merged;
  Serializer req;
  req.WriteVarint(lo);
  req.WriteVarint(hi);
  const std::string req_bytes = req.Release();

  const auto needed = static_cast<size_t>(hi - lo + 1);
  for (int attempt = 0; attempt < config_.read_attempts && merged.size() < needed; ++attempt) {
    const int index =
        (preferred_acceptor_ + attempt) % std::max(1, config_.num_acceptors);
    try {
      const std::string reply =
          network_->Call(self_, AcceptorNode(index), "q.read", req_bytes).Get();
      Deserializer de(reply);
      const LogPos acceptor_trim = de.ReadVarint();
      if (acceptor_trim >= lo) {
        std::lock_guard<std::mutex> lock(mu_);
        trim_prefix_ = std::max(trim_prefix_, acceptor_trim);
        throw TrimmedError("requested range trimmed on acceptors");
      }
      const uint64_t count = de.ReadVarint();
      for (uint64_t i = 0; i < count; ++i) {
        const LogPos pos = de.ReadVarint();
        std::string payload = de.ReadString();
        merged.emplace(pos, std::move(payload));
      }
    } catch (const LogUnavailableError&) {
      // Acceptor down or dropped; try the next one.
    }
  }
  if (merged.size() < needed) {
    throw LogUnavailableError("incomplete read of committed range after retries");
  }
  std::vector<LogRecord> out;
  out.reserve(merged.size());
  for (auto& [pos, payload] : merged) {
    out.push_back(LogRecord{pos, std::move(payload)});
  }
  return out;
}

void QuorumLogletClient::Trim(LogPos prefix) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    trim_prefix_ = std::max(trim_prefix_, prefix);
  }
  Serializer req;
  req.WriteVarint(prefix);
  const std::string req_bytes = req.Release();
  for (int i = 0; i < config_.num_acceptors; ++i) {
    network_->Call(self_, AcceptorNode(i), "q.trim", req_bytes);
  }
}

LogPos QuorumLogletClient::trim_prefix() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trim_prefix_;
}

LogPos QuorumLogletClient::observed_tail() const {
  return tail_memo_->tail.load(std::memory_order_acquire);
}

uint64_t QuorumLogletClient::tail_checks_skipped() const {
  return tail_memo_->skipped.load(std::memory_order_relaxed);
}

void QuorumLogletClient::Seal() {
  try {
    network_->Call(self_, SequencerNode(), "q.seal", "").Get();
  } catch (const LogUnavailableError&) {
    // Seal is idempotent; a lost reply is retried by the reconfiguration
    // driver via a fresh Seal call.
  }
  // The memo may exceed the sealed tail: a pre-seal append could have
  // reserved positions the sealed loglet never committed (the sequencer
  // hands out positions before acceptor quorum). Positions above the seal
  // point belong to the successor loglet, so a stale memo would let
  // ReadRange skip the q.tail check and treat an uncommitted range as
  // committed — a phantom read past the seal. Drop the memo; the next read
  // re-learns the authoritative sealed tail from the sequencer.
  tail_memo_->tail.store(0, std::memory_order_release);
}

}  // namespace delos
