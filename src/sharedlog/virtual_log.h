// VirtualLog: a shared log virtualized over a chain of loglets (the Delos
// Virtual Consensus design [OSDI'20], which the paper's BaseEngine runs on).
//
// The chain lives in a MetaStore (a versioned register with compare-and-swap,
// standing in for Delos's metadata store). Reconfiguration — used in
// production for online consensus-protocol swaps — seals the active loglet
// at a fixed tail and CASes a successor loglet into the chain starting at
// that tail. Appends racing a seal fail with SealedError, refresh the chain,
// and retry transparently.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sharedlog/shared_log.h"

namespace delos {

struct LogletSegment {
  LogPos start_pos = 1;
  std::shared_ptr<ISharedLog> loglet;
};

// Builds the successor loglet during reconfiguration.
using LogletFactory = std::function<std::shared_ptr<ISharedLog>(LogPos start_pos, uint64_t epoch)>;

// Versioned register holding the loglet chain; CAS models the consensus the
// real metastore provides. Shared by all VirtualLog clients of a cluster.
class MetaStore {
 public:
  explicit MetaStore(std::vector<LogletSegment> initial_chain);

  uint64_t epoch() const;
  std::vector<LogletSegment> GetChain() const;

  // Installs new_chain iff the epoch still matches; bumps the epoch.
  bool CasChain(uint64_t expected_epoch, std::vector<LogletSegment> new_chain);

 private:
  mutable std::mutex mu_;
  uint64_t epoch_ = 1;
  std::vector<LogletSegment> chain_;
};

class VirtualLog : public ISharedLog {
 public:
  // `default_factory`, when set, lets an appender that discovers a sealed
  // active loglet (with no successor installed yet) drive reconfiguration
  // itself, as Delos clients do.
  VirtualLog(std::shared_ptr<MetaStore> meta, LogletFactory default_factory = nullptr);

  Future<LogPos> Append(std::string payload) override;
  Future<LogPos> CheckTail() override;
  std::vector<LogRecord> ReadRange(LogPos lo, LogPos hi) override;
  void Trim(LogPos prefix) override;
  LogPos trim_prefix() const override;
  void Seal() override;

  // Seals the active loglet and chains a successor built by `factory`
  // starting at the sealed tail. Safe to race: exactly one CAS wins; losers
  // observe the new chain and return.
  void Reconfigure(const LogletFactory& factory);

  uint64_t ChainLength() const { return meta_->GetChain().size(); }

 private:
  void TryAppend(std::string payload, std::shared_ptr<Promise<LogPos>> promise, int attempts);

  std::shared_ptr<MetaStore> meta_;
  LogletFactory default_factory_;
  mutable std::mutex mu_;
  LogPos trim_prefix_ = 0;
};

}  // namespace delos
